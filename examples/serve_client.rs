//! The serving layer end to end: start an in-process `mst-serve` instance
//! on an ephemeral loopback port, ask it a k-MST question over real TCP,
//! read the server's counters, and shut it down gracefully.
//!
//! Run with: `cargo run --release --example serve_client`

use std::sync::Arc;

use mst::datagen::GstdConfig;
use mst::exec::ShardedDatabase;
use mst::search::QueryOptions;
use mst::serve::{Response, ServeClient, Server, ServerConfig};
use mst::trajectory::TrajectoryId;

fn main() -> Result<(), mst::Error> {
    // 1. A small GSTD fleet, sharded 2 ways, served on an ephemeral port
    //    (`port 0` lets the OS choose; `local_addr` reports the choice).
    let fleet: Vec<_> = GstdConfig {
        num_objects: 48,
        samples_per_object: 200,
        ..GstdConfig::paper_dataset(48, 11)
    }
    .generate()
    .into_iter()
    .enumerate()
    .map(|(i, t)| (TrajectoryId(i as u64), t))
    .collect();
    let query = fleet[5].1.clone();
    let window = query.time();
    let db = Arc::new(ShardedDatabase::with_rtree(2, fleet)?);
    let server = Server::start(ServerConfig::new().workers(2).queue_capacity(8), db)?;
    println!("serving on {}", server.local_addr());

    // 2. "Which 3 objects moved most like object 5?" — the same Query
    //    surface as the in-process builder, over the wire.
    let mut client = ServeClient::connect(server.local_addr())?;
    let options = QueryOptions::new().k(3).during(&window);
    match client.kmst(&query, options)? {
        Response::Kmst { degraded, matches } => {
            println!(
                "k-MST answer ({} matches, degraded: {degraded}):",
                matches.len()
            );
            for m in &matches {
                println!("  object {} at dissimilarity {:.6}", m.traj, m.dissim);
            }
        }
        other => println!("unexpected response: {other:?}"),
    }

    // 3. Server-side observability: admission counters plus the merged
    //    work profile of everything executed so far.
    let stats = client.stats()?;
    println!(
        "counters: {} admitted, {} completed, {} overload rejections, {} malformed frames",
        stats.counters.queries_admitted,
        stats.counters.queries_completed,
        stats.counters.overload_rejections,
        stats.counters.malformed_frames,
    );
    println!(
        "work profile: {} index nodes visited, {} piece evaluations",
        stats.profile.nodes_accessed, stats.profile.piece_evals,
    );

    // 4. Graceful shutdown: the ack arrives first, then the server drains
    //    in-flight queries and joins every thread.
    let acked = client.shutdown()?;
    server.join();
    println!("shutdown acknowledged: {acked}; server drained and stopped");
    Ok(())
}
