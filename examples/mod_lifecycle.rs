//! A day in the life of a moving-object database: stream positions in,
//! answer every query flavour, estimate selectivities like an optimizer
//! would, and persist the index across a "restart".
//!
//! Run with: `cargo run --release --example mod_lifecycle`

use mst::datagen::TrucksConfig;
use mst::index::{Rtree3D, TrajectoryIndex};
use mst::search::{
    estimate_selectivity, MovingObjectDatabase, NoShare, NoopSink, Query, SelectivityHistogram,
    TrajectoryStore,
};
use mst::trajectory::{Point, TimeInterval, TrajectoryId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Morning: the fleet comes online and streams GPS fixes. ---
    let fleet = TrucksConfig::small(25, 99).generate();
    let mut db = MovingObjectDatabase::with_rtree();
    // Feed positions in global temporal order, as a live gateway would.
    let mut feed: Vec<(TrajectoryId, mst::trajectory::SamplePoint)> = Vec::new();
    for (i, t) in fleet.iter().enumerate() {
        for p in t.points() {
            feed.push((TrajectoryId(i as u64), *p));
        }
    }
    feed.sort_by(|a, b| a.1.t.total_cmp(&b.1.t).then(a.0.cmp(&b.0)));
    for (id, p) in feed {
        db.append(id, p)?;
    }
    println!(
        "ingested {} objects / {} segments ({} index pages)",
        db.num_objects(),
        db.num_segments(),
        db.index().num_pages()
    );

    let horizon = fleet[0].time();

    // --- Dispatcher queries. ---
    // "Who passed near the depot between 10 and 20 minutes in?"
    let window = TimeInterval::new(600.0, 1200.0)?;
    let depot = Point::new(5000.0, 5000.0);
    let nn = Query::knn_segments(depot)
        .k(3)
        .during(&window)
        .run(&mut db)?;
    println!("\nclosest passes to the depot in [600s, 1200s]:");
    for m in &nn {
        println!(
            "  {} came within {:.0} m (segment starting t={:.0}s)",
            m.entry.traj,
            m.distance,
            m.entry.segment.start().t
        );
    }

    // "Which trucks moved most like truck 7 all day?" — profiled, so the
    // dispatcher also sees what the search cost.
    let q = db.trajectory(TrajectoryId(7)).unwrap();
    let (top, profile) = Query::kmst(&q).k(4).during(&horizon).profile(&mut db)?;
    println!("\ntrucks most similar to truck 7 (DISSIM, whole shift):");
    for m in &top {
        println!("  {}  {:.0}", m.traj, m.dissim);
    }
    println!(
        "  ({} nodes read, {} candidates seen, {} pruned, {} piece integrals)",
        profile.nodes_accessed(),
        profile.candidates.seen,
        profile.candidates.pruned,
        profile.piece_evals()
    );

    // "Same question, but ignore departure times" — the time-relaxed query.
    let clipped = q.clip(&TimeInterval::new(300.0, 1500.0)?)?;
    let relaxed = Query::kmst(&clipped).k(3).time_relaxed().run(&mut db)?;
    println!("\ntime-relaxed matches for truck 7's 300-1500s leg:");
    for m in &relaxed {
        println!(
            "  {}  dissim {:.0} at shift {:+.0}s",
            m.traj, m.dissim, m.shift
        );
    }

    // --- Optimizer statistics. ---
    let store = {
        // Rebuild a read-only snapshot for the estimators.
        let mut s = TrajectoryStore::new();
        for i in 0..db.num_objects() {
            let id = TrajectoryId(i as u64);
            s.insert(id, db.trajectory(id).unwrap());
        }
        s
    };
    let theta = top.last().unwrap().dissim;
    let est = estimate_selectivity(&store, &q, &horizon, theta, 12, 42)?;
    println!(
        "\nselectivity of DISSIM <= {:.0}: sampled estimate {:.1}% +/- {:.1}% \
         (~{:.0} of {} trucks)",
        theta,
        est.fraction * 100.0,
        est.std_err * 100.0,
        est.cardinality(),
        est.population
    );
    let hist = SelectivityHistogram::build(&store, &horizon, 3, 24, 42)?;
    println!(
        "histogram estimate for the same predicate: {:.1}%",
        hist.estimate(&q, theta)? * 100.0
    );

    // --- Evening: persist everything, "restart", and keep serving. ---
    let dir = std::env::temp_dir();
    let idx_path = dir.join("mst_mod_lifecycle.idx");
    let data_path = dir.join("mst_mod_lifecycle.txt");
    db.index_mut().save_to_path(&idx_path)?;
    mst::datagen::io::save_to_path(&data_path, store.iter())?;

    let mut reloaded = Rtree3D::load_from_path(&idx_path)?;
    let dataset = mst::datagen::io::load_from_path(&data_path)?;
    println!(
        "\npersisted and reloaded: {} pages, {} segments, {} trajectories",
        reloaded.num_pages(),
        reloaded.num_entries(),
        dataset.len()
    );
    // The reloaded index answers queries immediately.
    let mut snapshot = TrajectoryStore::new();
    for (id, t) in dataset {
        snapshot.insert(id, t);
    }
    let again = mst::search::bfmst_search(
        &mut reloaded,
        &snapshot,
        &q,
        &horizon,
        &mst::search::MstConfig::k(4),
        &NoShare,
        &mut NoopSink,
    )?;
    assert_eq!(
        again.matches.iter().map(|m| m.traj).collect::<Vec<_>>(),
        top.iter().map(|m| m.traj).collect::<Vec<_>>(),
        "the reloaded index must reproduce the pre-restart answer"
    );
    println!("post-restart k-MST answer matches the pre-restart one");
    std::fs::remove_file(&idx_path).ok();
    std::fs::remove_file(&data_path).ok();
    Ok(())
}
