//! Index explorer: compare the two R-tree-like substrates side by side —
//! structure, build cost, buffer behaviour, and the same k-MST query on
//! both. The paper's premise is that one general-purpose index serves both
//! traditional range queries and similarity search; this example shows it
//! doing both.
//!
//! Run with: `cargo run --release --example index_explorer`

use mst::datagen::GstdConfig;
use mst::index::{check_invariants, Rtree3D, TbTree, TrajectoryIndex};
use mst::search::{bfmst_search, MstConfig, NoShare, NoopSink, TrajectoryStore};
use mst::trajectory::{Mbb, TimeInterval};

fn main() {
    let trajectories = GstdConfig {
        num_objects: 80,
        samples_per_object: 600,
        ..GstdConfig::paper_dataset(80, 9)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(trajectories);

    // Insert in global temporal order — the arrival order of a live MOD.
    let mut entries: Vec<mst::index::LeafEntry> = Vec::new();
    for (id, t) in store.iter() {
        for (seq, segment) in t.segments().enumerate() {
            entries.push(mst::index::LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            });
        }
    }
    entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));

    let mut rtree = Rtree3D::new();
    let mut tbtree = TbTree::new();
    for e in &entries {
        rtree.insert(*e).unwrap();
        tbtree.insert(*e).unwrap();
    }

    println!("structure after inserting {} segments:\n", entries.len());
    for (name, stats, report) in [
        (
            "3D R-tree",
            rtree.stats(),
            check_invariants(&mut rtree).unwrap(),
        ),
        (
            "TB-tree",
            tbtree.stats(),
            check_invariants(&mut tbtree).unwrap(),
        ),
    ] {
        println!(
            "  {:<10} {:>5} pages  {:>6.2} MB  height {}  ({} leaves, {} nodes; invariants OK)",
            name,
            stats.pages,
            stats.size_bytes as f64 / (1024.0 * 1024.0),
            stats.height,
            report.leaves,
            report.nodes,
        );
    }

    // A classic 3D range query: who passed through the city-center quadrant
    // during [100, 160]?
    let window = Mbb::new(0.4, 0.4, 100.0, 0.6, 0.6, 160.0);
    rtree.reset_stats();
    tbtree.reset_stats();
    let hits_r = rtree.range_query(&window).unwrap();
    let hits_t = tbtree.range_query(&window).unwrap();
    assert_eq!(hits_r.len(), hits_t.len(), "both trees index the same data");
    println!(
        "\nrange query (center quadrant, t in [100, 160]): {} segments\n  \
         3D R-tree touched {} pages; TB-tree touched {} pages",
        hits_r.len(),
        rtree.stats().node_reads,
        tbtree.stats().node_reads,
    );

    // The same index now answers a similarity query.
    let period = TimeInterval::new(150.0, 450.0).unwrap();
    let query = store
        .get(mst::trajectory::TrajectoryId(3))
        .unwrap()
        .clip(&period)
        .unwrap();
    println!("\nk-MST query (k = 3, object 3's movement on [150, 450]):");
    for (name, result) in [
        ("3D R-tree", {
            rtree.reset_stats();
            let r = bfmst_search(
                &mut rtree,
                &store,
                &query,
                &period,
                &MstConfig::k(3),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
            (r, rtree.stats())
        }),
        ("TB-tree", {
            tbtree.reset_stats();
            let r = bfmst_search(
                &mut tbtree,
                &store,
                &query,
                &period,
                &MstConfig::k(3),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
            (r, tbtree.stats())
        }),
    ] {
        let (report, stats) = result;
        let ids: Vec<String> = report
            .matches
            .iter()
            .map(|m| format!("{} ({:.4})", m.traj, m.dissim))
            .collect();
        println!(
            "  {:<10} -> [{}]  pages touched: {} / {}  buffer hits/misses: {}/{}",
            name,
            ids.join(", "),
            stats.node_reads,
            stats.pages,
            stats.buffer.hits,
            stats.buffer.misses,
        );
    }
    println!("\nBoth substrates return the same answer; their I/O profiles differ —\nexactly the trade-off Figure 10 of the paper quantifies.");
}
