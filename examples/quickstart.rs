//! Quickstart: build a moving-object dataset, index it, and run a k-MST
//! query — the five-minute tour of the library.
//!
//! Run with: `cargo run --release --example quickstart`

use mst::datagen::GstdConfig;
use mst::index::{Rtree3D, TrajectoryIndex};
use mst::search::{
    bfmst_search, scan_kmst, Integration, MstConfig, NoShare, NoopSink, TrajectoryStore,
};
use mst::trajectory::TimeInterval;

fn main() {
    // 1. A synthetic moving-object dataset: 50 objects, 500 samples each.
    let trajectories = GstdConfig {
        num_objects: 50,
        samples_per_object: 500,
        ..GstdConfig::paper_dataset(50, 42)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(trajectories);
    println!(
        "dataset: {} trajectories, {} segments",
        store.len(),
        store.total_segments()
    );

    // 2. Index every segment in a 3D (x, y, t) R-tree — the same structure
    //    a MOD would keep for range and nearest-neighbour queries.
    let mut index = Rtree3D::new();
    for (id, t) in store.iter() {
        index.insert_trajectory(id, t).expect("valid segments");
    }
    let s = index.stats();
    println!(
        "index: {} pages ({:.1} MB), height {}",
        s.pages,
        s.size_bytes as f64 / (1024.0 * 1024.0),
        s.height
    );

    // 3. Query: the 5 trajectories most similar to object 17's movement
    //    during the window [100, 250].
    let period = TimeInterval::new(100.0, 250.0).unwrap();
    let query = store
        .get(mst::trajectory::TrajectoryId(17))
        .unwrap()
        .clip(&period)
        .unwrap();

    index.reset_stats();
    let report = bfmst_search(
        &mut index,
        &store,
        &query,
        &period,
        &MstConfig::k(5),
        &NoShare,
        &mut NoopSink,
    )
    .expect("well-formed query");
    println!("\nk-MST results (5 most similar to object 17 on [100, 250]):");
    for (rank, m) in report.matches.iter().enumerate() {
        println!("  {}. {}  DISSIM = {:.6}", rank + 1, m.traj, m.dissim);
    }
    println!(
        "\ntraversal: {} of {} pages touched ({} candidates seen, {} rejected early, terminated early: {})",
        index.stats().node_reads,
        index.num_pages(),
        report.candidates_seen,
        report.candidates_rejected,
        report.terminated_early,
    );

    // 4. Cross-check against the exact linear scan: identical answer.
    let scan = scan_kmst(&store, &query, &period, 5, Integration::Exact).unwrap();
    assert_eq!(
        scan.iter().map(|m| m.traj).collect::<Vec<_>>(),
        report.matches.iter().map(|m| m.traj).collect::<Vec<_>>()
    );
    println!("verified: index-based answer equals the exact linear scan");
}
