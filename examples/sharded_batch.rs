//! Sharded batch execution: partition a moving-object dataset across
//! shards, run a mixed batch of k-MST and kNN queries on a worker pool,
//! watch the cross-shard shared bound prune, and verify the answers are
//! bit-identical to the single-threaded baseline.
//!
//! Run with: `cargo run --release --example sharded_batch`

use mst::datagen::GstdConfig;
use mst::exec::{BatchExecutor, BatchQuery, QueryAnswer, ShardedDatabase};
use mst::search::{MovingObjectDatabase, Query, TrajectoryStore};
use mst::trajectory::{TimeInterval, TrajectoryId};

fn main() {
    // 1. A synthetic fleet, sharded 4 ways by object id. Each shard gets
    //    its own TB-tree and its own private LRU buffer pool.
    let trajectories = GstdConfig {
        num_objects: 80,
        samples_per_object: 400,
        ..GstdConfig::paper_dataset(80, 7)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(trajectories);
    let fleet: Vec<_> = store.iter().map(|(id, t)| (id, t.clone())).collect();
    let db = ShardedDatabase::with_tbtree(4, fleet.clone()).expect("shard build");
    println!(
        "sharded database: {} objects across {} shards (object {} lives on shard {})",
        db.num_objects(),
        db.num_shards(),
        17,
        db.shard_of(TrajectoryId(17)),
    );

    // 2. A mixed batch built with the ordinary Query builders: "who moved
    //    like object N during [100, 250]?" for a handful of objects, plus
    //    a couple of trajectory-kNN queries.
    let period = TimeInterval::new(100.0, 250.0).expect("window");
    let mut batch = Vec::new();
    for id in [17u64, 3, 42, 61] {
        let q = db.trajectory(TrajectoryId(id)).expect("known object");
        batch.push(BatchQuery::kmst(Query::kmst(&q).k(5).during(&period)).expect("spec"));
    }
    for id in [8u64, 55] {
        let q = db.trajectory(TrajectoryId(id)).expect("known object");
        batch.push(BatchQuery::knn(Query::knn(&q).k(3).during(&period)).expect("spec"));
    }

    // 3. Run it on 8 workers. Shard jobs of one query share a lock-free
    //    upper bound on its global kth dissimilarity, so a tight match on
    //    one shard prunes candidates on the other three mid-flight.
    let outcome = BatchExecutor::new().workers(8).run(&db, batch);
    println!("\nbatch of {} queries:", outcome.outcomes.len());
    for (i, result) in outcome.outcomes.iter().enumerate() {
        let q = result.as_ref().expect("query succeeded");
        let flavour = match &q.answer {
            QueryAnswer::Kmst(_) => "k-MST",
            QueryAnswer::Knn(_) => "kNN  ",
            QueryAnswer::Segments(_) => "p-kNN",
            QueryAnswer::Range(_) => "range",
        };
        println!(
            "  [{i}] {flavour} {} matches in {:.2} ms (degraded: {})",
            q.answer.len(),
            q.latency_ms(),
            q.degraded,
        );
    }
    let profile = outcome.merged_profile();
    println!(
        "cross-shard cooperation: shared bound consulted {} times, pruned {} candidates",
        profile.pruning.shared_kth_evals, profile.pruning.shared_kth_prunes,
    );

    // 4. Determinism check: the sharded, parallel answers are bit-identical
    //    to single-threaded Query::run on an unsharded database.
    let mut baseline = MovingObjectDatabase::with_tbtree();
    for (id, t) in &fleet {
        baseline.insert_trajectory(*id, t).expect("baseline insert");
    }
    for (i, id) in [17u64, 3, 42, 61].into_iter().enumerate() {
        let q = baseline.trajectory(TrajectoryId(id)).expect("known object");
        let want = Query::kmst(&q)
            .k(5)
            .during(&period)
            .run(&mut baseline)
            .expect("baseline");
        let got = outcome.outcomes[i]
            .as_ref()
            .expect("ok")
            .answer
            .as_kmst()
            .expect("kmst answer");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.traj, w.traj);
            assert_eq!(g.dissim.to_bits(), w.dissim.to_bits());
        }
    }
    println!("verified: batch answers are bit-identical to the single-threaded baseline");

    // 5. Deadlines degrade gracefully: a 1 µs budget cannot finish, so
    //    every query comes back flagged instead of blocking the batch.
    let mut rushed = Vec::new();
    for id in [17u64, 3] {
        let q = db.trajectory(TrajectoryId(id)).expect("known object");
        rushed.push(BatchQuery::kmst(Query::kmst(&q).k(5).during(&period)).expect("spec"));
    }
    let hurried = BatchExecutor::new()
        .workers(4)
        .deadline_us(1)
        .run(&db, rushed);
    println!(
        "with a 1 µs deadline: {}/{} queries degraded (best-effort answers, no errors)",
        hurried.degraded_count(),
        hurried.outcomes.len(),
    );
}
