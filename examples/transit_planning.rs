//! The paper's motivating scenario: a city extends its metro network and
//! planners ask which existing bus lines shadow the new metro line — those
//! are the timetables to change (or the routes to retire).
//!
//! We synthesize a new metro line plus a fleet of bus lines on the same
//! street grid, index the buses, and run a k-MST query with the metro
//! line's planned trajectory. Because DISSIM is *spatiotemporal*, a bus
//! sharing the corridor but at rush-hour-shifted times ranks worse than one
//! that truly duplicates the service.
//!
//! Run with: `cargo run --release --example transit_planning`

use mst::index::TbTree;
use mst::search::{bfmst_search, MstConfig, NoShare, NoopSink, TrajectoryStore};
use mst::trajectory::{SamplePoint, TimeInterval, Trajectory, TrajectoryBuilder, TrajectoryId};

/// A transit line: stops on a polyline, constant cruise speed, fixed dwell
/// at each stop. `depart` shifts the whole schedule.
fn line(stops: &[(f64, f64)], depart: f64, speed: f64, dwell: f64) -> Trajectory {
    let mut b = TrajectoryBuilder::new();
    let mut t = depart;
    let (mut x, mut y) = stops[0];
    b.push(SamplePoint::new(t, x, y)).unwrap();
    for &(nx, ny) in &stops[1..] {
        let dist = ((nx - x).powi(2) + (ny - y).powi(2)).sqrt();
        t += dist / speed;
        b.push(SamplePoint::new(t, nx, ny)).unwrap();
        t += dwell;
        b.push(SamplePoint::new(t, nx, ny)).unwrap();
        (x, y) = (nx, ny);
    }
    b.build().unwrap()
}

fn main() {
    // The new metro line: straight east-west corridor, fast, short dwells.
    // Departure 07:00 (t = 0 s), stops every 800 m.
    let metro_stops: Vec<(f64, f64)> = (0..=10).map(|i| (f64::from(i) * 800.0, 0.0)).collect();
    let metro = line(&metro_stops, 0.0, 16.0, 25.0);

    // Existing bus lines.
    let mut buses: Vec<(&str, Trajectory)> = Vec::new();
    // Bus 12: same corridor, same departure — the redundant line.
    let bus12_stops: Vec<(f64, f64)> = (0..=20).map(|i| (f64::from(i) * 400.0, 30.0)).collect();
    buses.push((
        "bus 12 (same corridor, same schedule)",
        line(&bus12_stops, 0.0, 9.0, 20.0),
    ));
    // Bus 34: same corridor but departs 40 minutes later.
    buses.push((
        "bus 34 (same corridor, +40 min)",
        line(&bus12_stops, 2400.0, 9.0, 20.0),
    ));
    // Bus 56: parallel corridor 2 km north.
    let bus56_stops: Vec<(f64, f64)> = (0..=20).map(|i| (f64::from(i) * 400.0, 2000.0)).collect();
    buses.push((
        "bus 56 (parallel, 2 km north)",
        line(&bus56_stops, 0.0, 9.0, 20.0),
    ));
    // Bus 78: crosses the metro perpendicularly downtown.
    let bus78_stops: Vec<(f64, f64)> = (0..=20)
        .map(|i| (4000.0, f64::from(i) * 400.0 - 4000.0))
        .collect();
    buses.push((
        "bus 78 (perpendicular crossing)",
        line(&bus78_stops, 0.0, 9.0, 20.0),
    ));
    // Bus 90: meandering suburban feeder.
    let bus90_stops: Vec<(f64, f64)> = (0..=20)
        .map(|i| {
            let f = f64::from(i) * 400.0;
            (f, 1200.0 + 600.0 * (f / 900.0).sin())
        })
        .collect();
    buses.push((
        "bus 90 (suburban feeder)",
        line(&bus90_stops, 600.0, 9.0, 20.0),
    ));

    // Evaluate over the metro's first service hour, a period all lines
    // cover once padded: extend every line to span [0, horizon] by keeping
    // vehicles at their terminus.
    let horizon = 3600.0;
    let pad = |t: &Trajectory| -> Trajectory {
        let mut pts: Vec<SamplePoint> = t.points().to_vec();
        let first = pts[0];
        let last = pts[pts.len() - 1];
        if first.t > 0.0 {
            pts.insert(0, SamplePoint::new(0.0, first.x, first.y));
        }
        if last.t < horizon {
            pts.push(SamplePoint::new(horizon, last.x, last.y));
        }
        Trajectory::new(pts).unwrap()
    };

    let mut store = TrajectoryStore::new();
    let mut index = TbTree::new();
    for (i, (_, bus)) in buses.iter().enumerate() {
        let padded = pad(bus);
        let id = TrajectoryId(i as u64);
        index.insert_trajectory(id, &padded).unwrap();
        store.insert(id, padded);
    }

    let period = TimeInterval::new(0.0, horizon).unwrap();
    let metro_padded = pad(&metro);
    let report = bfmst_search(
        &mut index,
        &store,
        &metro_padded,
        &period,
        &MstConfig::k(buses.len()),
        &NoShare,
        &mut NoopSink,
    )
    .expect("planning query");

    println!("Which bus lines shadow the new metro line? (ascending DISSIM)\n");
    for (rank, m) in report.matches.iter().enumerate() {
        let name = buses[m.traj.0 as usize].0;
        println!(
            "  {}. {:<42} DISSIM = {:>14.0}  (mean gap {:>7.1} m)",
            rank + 1,
            name,
            m.dissim,
            m.dissim / period.duration(),
        );
    }
    println!(
        "\nThe redundant line must rank first; the time-shifted twin must rank\n\
         worse than it — spatial-only measures cannot tell those two apart."
    );
    let first = buses[report.matches[0].traj.0 as usize].0;
    assert!(
        first.starts_with("bus 12"),
        "expected bus 12 first, got {first}"
    );
    let rank_of = |needle: &str| {
        report
            .matches
            .iter()
            .position(|m| buses[m.traj.0 as usize].0.starts_with(needle))
            .unwrap()
    };
    assert!(rank_of("bus 34") > rank_of("bus 12"));
    println!("assertions passed: DISSIM separates schedule duplicates from time-shifted ones");
}
