//! Fleet compression audit — the paper's quality experiment as a workflow.
//!
//! A fleet operator archives GPS tracks compressed with TD-TR to save
//! space. Before deleting the originals, they audit that each compressed
//! track still *identifies* its source: querying the archive with the
//! compressed track must return the original as the most similar
//! trajectory. The audit runs DISSIM (index-based) next to LCSS/EDR and
//! their interpolation-improved variants, at increasing compression.
//!
//! Run with: `cargo run --release --example fleet_compression_audit`

use mst::baselines::{epsilon_for, normalize_all, Edr, Lcss};
use mst::datagen::{td_tr_fraction, TrucksConfig};
use mst::index::Rtree3D;
use mst::search::{bfmst_search, MstConfig, NoShare, NoopSink, TrajectoryStore};
use mst::trajectory::{normalize, TrajectoryId};

fn main() {
    let fleet = TrucksConfig {
        num_trucks: 40,
        ..TrucksConfig::paper_like(2026)
    }
    .generate();
    println!(
        "fleet: {} trucks, {:.0} samples/truck on average",
        fleet.len(),
        fleet.iter().map(|t| t.num_points() as f64).sum::<f64>() / fleet.len() as f64
    );

    let store = TrajectoryStore::from_trajectories(fleet.clone());
    let mut index = Rtree3D::new();
    for (id, t) in store.iter() {
        index.insert_trajectory(id, t).unwrap();
    }
    let period = fleet[0].time();

    // Baseline setup per the paper: normalized data, epsilon = 1/4 max std.
    let prepared = normalize_all(&fleet);
    let eps = epsilon_for(prepared.iter());
    let lcss = Lcss::new(eps);
    let edr = Edr::new(eps);

    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "p", "DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I"
    );
    for p in [0.001, 0.01, 0.05, 0.10] {
        let mut wrong = [0usize; 5];
        for (qi, original) in fleet.iter().enumerate() {
            let compressed = td_tr_fraction(original, p);

            // DISSIM via the index.
            let top = bfmst_search(
                &mut index,
                &store,
                &compressed,
                &period,
                &MstConfig::k(1),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap()
            .matches[0]
                .traj;
            wrong[0] += usize::from(top != TrajectoryId(qi as u64));

            // Sequence measures on normalized data.
            let q = normalize(&compressed).unwrap();
            let argmin = |f: &dyn Fn(usize) -> f64| {
                (0..prepared.len())
                    .min_by(|&a, &b| f(a).total_cmp(&f(b)))
                    .unwrap()
            };
            wrong[1] += usize::from(argmin(&|i| lcss.distance(&q, &prepared[i])) != qi);
            wrong[2] += usize::from(argmin(&|i| lcss.distance_improved(&q, &prepared[i])) != qi);
            wrong[3] += usize::from(argmin(&|i| edr.distance(&q, &prepared[i]) as f64) != qi);
            wrong[4] +=
                usize::from(argmin(&|i| edr.distance_improved(&q, &prepared[i]) as f64) != qi);
        }
        let pct = |w: usize| 100.0 * w as f64 / fleet.len() as f64;
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            format!("{:.1}%", p * 100.0),
            pct(wrong[0]),
            pct(wrong[1]),
            pct(wrong[2]),
            pct(wrong[3]),
            pct(wrong[4]),
        );
    }
    println!(
        "\nReading: DISSIM keeps identifying originals far into the compression\n\
         range because it integrates the *spatiotemporal* gap; the edit-style\n\
         measures degrade as the vertex counts diverge (the paper's Figure 9)."
    );
}
