//! Deterministic fault injection at the page-I/O boundary.
//!
//! The search algorithms assume every page read succeeds; production
//! trajectory stores do not get that luxury. This module makes failure a
//! first-class, *testable* input:
//!
//! * [`PageIo`] — the narrow read/write seam every page consumer (the
//!   buffer pool) goes through;
//! * [`FaultInjector`] — an [`mst_prng`]-seeded schedule of transient read
//!   errors, bit-flip corruption, torn writes, and simulated latency
//!   spikes;
//! * [`FaultableStore`] — a [`PageStore`] wrapped with an optional
//!   injector. With injection disabled (the default) it forwards
//!   everything verbatim, so the fault layer costs nothing on the happy
//!   path beyond an `Option` check per physical I/O (which is already the
//!   slow path — a buffer miss).
//!
//! # Determinism
//!
//! All fault decisions are drawn from a [`mst_prng::Rng`] seeded by
//! [`FaultConfig::seed`], in physical-I/O call order. Two runs that issue
//! the same sequence of page reads and writes therefore see the *same*
//! faults on the same calls — which makes every chaos-test failure
//! replayable from its seed. (Physical I/O order is deterministic for
//! single-threaded use; concurrent workers interleave buffer misses
//! nondeterministically, so cross-run comparisons there must be
//! statistical, not bitwise.)
//!
//! # Fault taxonomy
//!
//! | knob                         | effect                               | maskable by |
//! |------------------------------|--------------------------------------|-------------|
//! | [`FaultConfig::read_transient`] | read fails with [`IndexError::TransientIo`] | retry |
//! | [`FaultConfig::read_corrupt`]   | read returns bit-flipped bytes (the stored page is intact) | checksum + retry |
//! | [`FaultConfig::torn_write`]     | write persists only a prefix; the tail stays stale/zero | nothing — caught later by checksum, page quarantined |
//! | [`FaultConfig::stall`]          | read is delayed by [`FaultConfig::stall_us`] *simulated* µs | — (accounting only) |
//!
//! Latency spikes are *accounted*, never slept: library crates are
//! wall-clock-free (xtask rule R5), so a stall adds to
//! [`FaultStats::stall_us`] and the caller's deadline logic can fold the
//! simulated delay in if it wants to.

use mst_prng::Rng;

use crate::{DiskStats, IndexError, PageId, PageStore, Result, PAGE_SIZE};

/// The page read/write seam between the buffer pool and the storage below
/// it. [`PageStore`] implements it directly (no faults);
/// [`FaultableStore`] implements it with an optional injector in the path.
pub trait PageIo {
    /// Reads a whole page. The returned slice is `PAGE_SIZE` bytes.
    fn read_page(&mut self, id: PageId) -> Result<&[u8]>;

    /// Writes a whole page (`data.len() == PAGE_SIZE`).
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()>;
}

impl PageIo for PageStore {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        self.read(id)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        self.write(id, data)
    }
}

/// Probabilities and magnitudes of the injected faults. All rates are in
/// `[0, 1]` per physical I/O; the zero config (any seed, all rates 0)
/// injects nothing and must be behaviourally invisible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Same seed + same I/O order = same
    /// faults.
    pub seed: u64,
    /// Probability a read fails with [`IndexError::TransientIo`]. The
    /// stored page is unharmed; a retry re-draws.
    pub read_transient: f64,
    /// Probability a read returns bytes with one bit flipped ("corruption
    /// on the wire"). The stored page is unharmed, so a checksum-triggered
    /// retry can mask it.
    pub read_corrupt: f64,
    /// Probability a write is torn: only a prefix of the page reaches the
    /// store, the tail is zeroed. Silent at write time — detected by the
    /// checksum on the next read of the page.
    pub torn_write: f64,
    /// Probability a read incurs a simulated latency spike.
    pub stall: f64,
    /// Magnitude of one latency spike, in simulated microseconds.
    pub stall_us: u64,
}

impl FaultConfig {
    /// A schedule that injects nothing (useful as a builder base and for
    /// asserting the fault layer is invisible when quiet).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_transient: 0.0,
            read_corrupt: 0.0,
            torn_write: 0.0,
            stall: 0.0,
            stall_us: 0,
        }
    }

    /// Re-seeds the schedule (e.g. to give each shard of a sweep its own
    /// deterministic fault stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the transient-read failure rate.
    pub fn with_read_transient(mut self, p: f64) -> Self {
        self.read_transient = p;
        self
    }

    /// Sets the corrupted-read rate.
    pub fn with_read_corrupt(mut self, p: f64) -> Self {
        self.read_corrupt = p;
        self
    }

    /// Sets the torn-write rate.
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write = p;
        self
    }

    /// Sets the stall rate and per-stall magnitude.
    pub fn with_stall(mut self, p: f64, stall_us: u64) -> Self {
        self.stall = p;
        self.stall_us = stall_us;
        self
    }
}

/// Counters of what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Physical reads that passed through the injector.
    pub reads: u64,
    /// Physical writes that passed through the injector.
    pub writes: u64,
    /// Reads failed with [`IndexError::TransientIo`].
    pub transient_errors: u64,
    /// Reads served with flipped bits.
    pub corrupted_reads: u64,
    /// Writes torn (prefix persisted, tail zeroed).
    pub torn_writes: u64,
    /// Reads hit by a latency spike.
    pub stalls: u64,
    /// Total simulated stall time, in microseconds.
    pub stall_us: u64,
}

/// What the injector decided for one read.
enum ReadFault {
    None,
    Transient,
    /// Flip bit `mask` of byte `offset` in the returned copy.
    Corrupt {
        offset: usize,
        mask: u8,
    },
}

/// A deterministic schedule of page-I/O faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Rng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector following `config`'s schedule from its seed.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            rng: Rng::seed_from(config.seed),
            stats: FaultStats::default(),
        }
    }

    /// The configuration the injector was built from.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Draws the fault decision for one read. Draw order is fixed (stall,
    /// transient, corrupt) so schedules are stable across refactors of the
    /// consuming code.
    fn on_read(&mut self) -> ReadFault {
        self.stats.reads += 1;
        if self.config.stall > 0.0 && self.rng.chance(self.config.stall) {
            self.stats.stalls += 1;
            self.stats.stall_us += self.config.stall_us;
        }
        if self.config.read_transient > 0.0 && self.rng.chance(self.config.read_transient) {
            self.stats.transient_errors += 1;
            return ReadFault::Transient;
        }
        if self.config.read_corrupt > 0.0 && self.rng.chance(self.config.read_corrupt) {
            self.stats.corrupted_reads += 1;
            let offset = self.rng.usize_below(PAGE_SIZE);
            let mask = 1u8 << self.rng.u64_below(8);
            return ReadFault::Corrupt { offset, mask };
        }
        ReadFault::None
    }

    /// Draws a torn length in `[0, len]` from the seeded schedule: how
    /// many bytes of an unsynced tail survive a simulated crash. Exposed
    /// for the write-ahead log's crash harness, which reuses this
    /// injector's deterministic stream at byte granularity instead of
    /// page granularity.
    pub fn draw_torn_len(&mut self, len: usize) -> usize {
        self.stats.torn_writes += 1;
        if len == 0 {
            0
        } else {
            self.rng.usize_below(len + 1)
        }
    }

    /// Draws the fault decision for one write: `Some(keep)` tears the
    /// write after `keep` bytes.
    fn on_write(&mut self) -> Option<usize> {
        self.stats.writes += 1;
        if self.config.torn_write > 0.0 && self.rng.chance(self.config.torn_write) {
            self.stats.torn_writes += 1;
            // Tear somewhere past the header so the page is plausible, not
            // obviously empty — the nastier case for detection.
            let keep = 24 + self.rng.usize_below(PAGE_SIZE - 24);
            return Some(keep);
        }
        None
    }
}

/// A [`PageStore`] with an optional, deterministic [`FaultInjector`] in
/// the physical I/O path.
///
/// The wrapper exposes the store's full API by forwarding (allocation,
/// freeing, statistics, persistence support), so code holding a
/// `FaultableStore` reads exactly like code holding a `PageStore`; only
/// [`PageIo`] traffic is subject to injection.
#[derive(Debug)]
pub struct FaultableStore {
    inner: PageStore,
    injector: Option<FaultInjector>,
    /// Private copy buffer for corrupted reads: the flipped bits live
    /// here, never in the store, so a retry sees the intact page.
    scratch: Box<[u8]>,
}

impl FaultableStore {
    /// An empty store with injection disabled.
    pub fn new() -> Self {
        FaultableStore::from_store(PageStore::new())
    }

    /// Wraps an existing store (persistence load path), injection
    /// disabled.
    pub fn from_store(inner: PageStore) -> Self {
        FaultableStore {
            inner,
            injector: None,
            scratch: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Enables fault injection with `Some(config)` (replacing any previous
    /// schedule and its statistics), or disables it with `None`.
    pub fn set_injection(&mut self, config: Option<FaultConfig>) {
        self.injector = config.map(FaultInjector::new);
    }

    /// Counters of the injected faults, when injection is enabled.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Read-only access to the wrapped store.
    pub fn inner(&self) -> &PageStore {
        &self.inner
    }

    // ---- PageStore forwarding (same names, same shapes) ----

    /// See [`PageStore::allocate`].
    pub fn allocate(&mut self) -> PageId {
        self.inner.allocate()
    }

    /// See [`PageStore::free`].
    pub fn free(&mut self, id: PageId) -> Result<()> {
        self.inner.free(id)
    }

    /// See [`PageStore::num_pages`].
    pub fn num_pages(&self) -> usize {
        self.inner.num_pages()
    }

    /// See [`PageStore::size_bytes`].
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    /// See [`PageStore::stats`].
    pub fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    /// See [`PageStore::reset_stats`].
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    /// See [`PageStore::corrupt`].
    pub fn corrupt(&mut self, id: PageId, offset: usize, mask: u8) -> Result<()> {
        self.inner.corrupt(id, offset, mask)
    }

    /// See `PageStore::set_stats` (paranoid audit support).
    #[cfg(feature = "paranoid")]
    pub(crate) fn set_stats(&mut self, stats: DiskStats) {
        self.inner.set_stats(stats);
    }

    /// Raw page bytes in allocation order (persistence support).
    pub(crate) fn raw_pages(&self) -> impl Iterator<Item = &[u8]> {
        self.inner.raw_pages()
    }

    /// The current free list (persistence support).
    pub(crate) fn free_list(&self) -> &[PageId] {
        self.inner.free_list()
    }
}

impl Default for FaultableStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageIo for FaultableStore {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        let fault = match self.injector.as_mut() {
            Some(injector) => injector.on_read(),
            None => ReadFault::None,
        };
        match fault {
            ReadFault::Transient => {
                // The store still counts the attempt: a failed read is a
                // disk arm movement all the same.
                let _checked = self.inner.read(id)?;
                Err(IndexError::TransientIo(id))
            }
            ReadFault::Corrupt { offset, mask } => {
                let data = self.inner.read(id)?;
                self.scratch.copy_from_slice(data);
                self.scratch[offset] ^= mask;
                Ok(&self.scratch)
            }
            ReadFault::None => self.inner.read(id),
        }
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        let torn_at = match self.injector.as_mut() {
            Some(injector) => injector.on_write(),
            None => None,
        };
        match torn_at {
            Some(keep) => {
                let keep = keep.min(data.len());
                self.scratch[..keep].copy_from_slice(&data[..keep]);
                self.scratch[keep..].fill(0);
                // Deliberately silent: a torn write *looks* successful.
                // The checksum catches it on the next read.
                let scratch = std::mem::take(&mut self.scratch);
                let outcome = self.inner.write(id, &scratch);
                self.scratch = scratch;
                outcome
            }
            None => self.inner.write(id, data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum;

    fn page_with(byte: u8) -> Vec<u8> {
        let mut page = vec![byte; PAGE_SIZE];
        checksum::embed(&mut page);
        page
    }

    #[test]
    fn quiet_injector_is_invisible() {
        let mut faulty = FaultableStore::new();
        let mut plain = PageStore::new();
        let fid = faulty.allocate();
        let pid = plain.allocate();
        faulty.set_injection(Some(FaultConfig::quiet(7)));
        let page = page_with(5);
        faulty.write_page(fid, &page).unwrap();
        plain.write_page(pid, &page).unwrap();
        assert_eq!(
            faulty.read_page(fid).unwrap(),
            plain.read_page(pid).unwrap()
        );
        let stats = faulty.fault_stats().unwrap();
        assert_eq!((stats.reads, stats.writes), (1, 1));
        assert_eq!(
            stats.transient_errors + stats.corrupted_reads + stats.torn_writes,
            0
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultConfig::quiet(42)
            .with_read_transient(0.3)
            .with_read_corrupt(0.2)
            .with_stall(0.1, 50);
        let run = || {
            let mut store = FaultableStore::new();
            let id = store.allocate();
            store.write_page(id, &page_with(9)).unwrap();
            store.set_injection(Some(config));
            let outcomes: Vec<bool> = (0..200).map(|_| store.read_page(id).is_ok()).collect();
            (outcomes, store.fault_stats().unwrap())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "fault schedule must be a pure function of the seed");
        assert_eq!(sa, sb);
        assert!(sa.transient_errors > 0, "rate 0.3 over 200 reads must fire");
    }

    #[test]
    fn corrupted_reads_leave_the_store_intact() {
        let mut store = FaultableStore::new();
        let id = store.allocate();
        let page = page_with(3);
        store.write_page(id, &page).unwrap();
        store.set_injection(Some(FaultConfig::quiet(1).with_read_corrupt(1.0)));
        let bytes = store.read_page(id).unwrap().to_vec();
        assert_ne!(bytes, page, "a certain-corruption read must differ");
        assert!(
            checksum::verify(&bytes).is_err(),
            "one flipped bit is caught"
        );
        // Disable injection: the stored page was never harmed.
        store.set_injection(None);
        assert_eq!(store.read_page(id).unwrap(), &page[..]);
    }

    #[test]
    fn torn_writes_persist_a_prefix_and_fail_verification() {
        let mut store = FaultableStore::new();
        let id = store.allocate();
        store.set_injection(Some(FaultConfig::quiet(11).with_torn_write(1.0)));
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 13) as u8 + 1;
        }
        checksum::embed(&mut page);
        store.write_page(id, &page).unwrap();
        store.set_injection(None);
        let stored = store.read_page(id).unwrap();
        assert_ne!(stored, &page[..], "the tail must have been lost");
        assert!(
            checksum::verify(stored).is_err(),
            "torn page fails its checksum"
        );
    }

    #[test]
    fn stalls_accumulate_simulated_time_without_failing() {
        let mut store = FaultableStore::new();
        let id = store.allocate();
        store.write_page(id, &page_with(2)).unwrap();
        store.set_injection(Some(FaultConfig::quiet(3).with_stall(1.0, 250)));
        for _ in 0..4 {
            store.read_page(id).unwrap();
        }
        let stats = store.fault_stats().unwrap();
        assert_eq!(stats.stalls, 4);
        assert_eq!(stats.stall_us, 1000);
    }

    #[test]
    fn transient_faults_resolve_on_retry() {
        let mut store = FaultableStore::new();
        let id = store.allocate();
        store.write_page(id, &page_with(8)).unwrap();
        // p = 0.5: some read in the first dozen draws both fails and then
        // succeeds on retry, for any seed.
        store.set_injection(Some(FaultConfig::quiet(5).with_read_transient(0.5)));
        let mut saw_failure = false;
        let mut saw_recovery = false;
        for _ in 0..50 {
            match store.read_page(id) {
                Ok(_) => {
                    if saw_failure {
                        saw_recovery = true;
                    }
                }
                Err(IndexError::TransientIo(p)) => {
                    assert_eq!(p, id);
                    saw_failure = true;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(saw_failure && saw_recovery);
    }
}
