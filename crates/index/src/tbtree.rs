//! The TB-tree (Trajectory-Bundle tree) of Pfoser, Jensen & Theodoridis
//! (VLDB 2000).
//!
//! The TB-tree trades spatial discrimination for *trajectory preservation*:
//! each leaf contains segments of exactly one trajectory, the leaves of a
//! trajectory form a doubly linked list, and new leaves are appended along
//! the right-most path of the tree (insertions arrive in temporal order in a
//! moving-object database, so the right-most path is the "now" edge). These
//! properties make trajectory reconstruction cheap and are why the paper's
//! experiments show the TB-tree overtaking the 3D R-tree as the query
//! length grows.

use std::collections::HashMap;

use mst_trajectory::{Trajectory, TrajectoryId};

use crate::persist::{Image, ImageKind};
use crate::traits::Pager;
use crate::{
    IndexError, IndexStats, InternalEntry, LeafEntry, Node, PageId, PageStore, Result,
    TrajectoryIndex, INTERNAL_CAPACITY, LEAF_CAPACITY, PAGE_SIZE,
};

/// The trajectory-bundle tree: single-trajectory leaves, linked leaf lists,
/// right-most-path appends.
pub struct TbTree {
    pager: Pager,
    root: Option<PageId>,
    height: u8,
    /// Current tip leaf of each trajectory (where its next segment goes).
    tips: HashMap<TrajectoryId, PageId>,
    /// Parent page of every node (root absent). A disk-resident TB-tree
    /// keeps parent pointers in the page header; holding them in memory is
    /// equivalent for the I/O accounting of *queries*, which never use them.
    parents: HashMap<PageId, PageId>,
    num_entries: u64,
    max_speed: f64,
}

impl TbTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        TbTree {
            pager: Pager::new(),
            root: None,
            height: 0,
            tips: HashMap::new(),
            parents: HashMap::new(),
            num_entries: 0,
            max_speed: 0.0,
        }
    }

    /// Inserts one trajectory segment.
    ///
    /// Segments of one trajectory must arrive in temporal order (they are
    /// appended to the trajectory's tip leaf); interleaving different
    /// trajectories is fine and expected.
    pub fn insert(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert_impl(entry)?;
        self.paranoid_audit("insert");
        Ok(())
    }

    /// Audit hook behind the `paranoid` feature: re-validates the whole
    /// tree and the buffer accounting after a mutating operation. The I/O
    /// counters are snapshot-restored around the audit so measurements stay
    /// comparable with unaudited runs.
    #[cfg(feature = "paranoid")]
    fn paranoid_audit(&mut self, op: &str) {
        let disk = self.pager.store.stats();
        let buf = self.pager.pool.stats();
        let reads = self.pager.node_reads;
        let failure = crate::check_invariants(self).err();
        self.pager.store.set_stats(disk);
        self.pager.pool.set_stats(buf);
        self.pager.node_reads = reads;
        if let Some(reason) = failure {
            let _ = &reason;
            debug_assert!(false, "paranoid audit after {op}: {reason}");
        }
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn paranoid_audit(&mut self, _op: &str) {}

    fn insert_impl(&mut self, entry: LeafEntry) -> Result<()> {
        self.max_speed = self.max_speed.max(entry.segment.speed());

        if let Some(&tip) = self.tips.get(&entry.traj) {
            let mut node = self.pager.read_node(tip)?;
            let Node::Leaf { entries, .. } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page: tip,
                    reason: "tip is not a leaf".into(),
                });
            };
            if let Some(last) = entries.last() {
                if last.segment.end().t > entry.segment.start().t {
                    return Err(IndexError::BadInsert(format!(
                        "TB-tree requires temporal order per trajectory: segment starts at {} \
                         but the tip leaf ends at {}",
                        entry.segment.start().t,
                        last.segment.end().t
                    )));
                }
            }
            if entries.len() < LEAF_CAPACITY {
                entries.push(entry);
                self.num_entries += 1;
                let mbb = node.mbb();
                self.pager.write_node(tip, &node)?;
                self.refresh_ancestors(tip, mbb)?;
                return Ok(());
            }
        }

        // Start a new leaf for this trajectory, linked to the previous tip.
        let prev_tip = self.tips.get(&entry.traj).copied();
        let traj = entry.traj;
        let new_leaf_node = Node::Leaf {
            entries: vec![entry],
            owner: Some(traj),
            prev: prev_tip,
            next: None,
        };
        let new_leaf = self.pager.allocate_node(&new_leaf_node)?;
        self.num_entries += 1;
        if let Some(prev) = prev_tip {
            let mut prev_node = self.pager.read_node(prev)?;
            if let Node::Leaf { next, .. } = &mut prev_node {
                *next = Some(new_leaf);
            }
            self.pager.write_node(prev, &prev_node)?;
        }
        self.tips.insert(traj, new_leaf);
        self.attach_leaf(new_leaf, new_leaf_node.mbb())
    }

    /// Hooks a brand-new leaf into the directory along the right-most path.
    fn attach_leaf(&mut self, leaf: PageId, leaf_mbb: mst_trajectory::Mbb) -> Result<()> {
        let Some(root) = self.root else {
            self.root = Some(leaf);
            self.height = 1;
            return Ok(());
        };

        if self.height == 1 {
            // The root is itself a leaf: grow a directory level.
            let root_mbb = self.pager.read_node(root)?.mbb();
            let new_root = Node::Internal {
                level: 1,
                entries: vec![
                    InternalEntry {
                        child: root,
                        mbb: root_mbb,
                    },
                    InternalEntry {
                        child: leaf,
                        mbb: leaf_mbb,
                    },
                ],
            };
            let new_root_page = self.pager.allocate_node(&new_root)?;
            self.parents.insert(root, new_root_page);
            self.parents.insert(leaf, new_root_page);
            self.root = Some(new_root_page);
            self.height = 2;
            return Ok(());
        }

        // Descend the right-most path down to level 1.
        let mut path: Vec<PageId> = Vec::with_capacity(self.height as usize);
        let mut current = root;
        loop {
            let node = self.pager.read_node(current)?;
            let Node::Internal { level, entries } = &node else {
                return Err(IndexError::CorruptNode {
                    page: current,
                    reason: "right-most descent hit a leaf above level 0".into(),
                });
            };
            path.push(current);
            if *level == 1 {
                break;
            }
            current = match entries.last() {
                Some(e) => e.child,
                None => {
                    return Err(IndexError::CorruptNode {
                        page: current,
                        reason: "empty internal node on the right-most path".into(),
                    })
                }
            };
        }

        // Append the leaf entry, splitting B+-tree-style (new right sibling
        // holding just the new entry) when a node on the path is full.
        let mut pending = InternalEntry {
            child: leaf,
            mbb: leaf_mbb,
        };
        for (depth, &page) in path.iter().enumerate().rev() {
            let mut node = self.pager.read_node(page)?;
            let Node::Internal { level, entries } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "leaf node on the internal insertion path".into(),
                });
            };
            if entries.len() < INTERNAL_CAPACITY {
                entries.push(pending);
                self.parents.insert(pending.child, page);
                let mbb = node.mbb();
                self.pager.write_node(page, &node)?;
                self.refresh_ancestors(page, mbb)?;
                return Ok(());
            }
            // Full: start a fresh right sibling at this level.
            let sibling = Node::Internal {
                level: *level,
                entries: vec![pending],
            };
            let sibling_page = self.pager.allocate_node(&sibling)?;
            self.parents.insert(pending.child, sibling_page);
            pending = InternalEntry {
                child: sibling_page,
                mbb: sibling.mbb(),
            };
            if depth == 0 {
                // The root itself was full: grow the tree.
                let old_root_mbb = self.pager.read_node(page)?.mbb();
                let new_root = Node::Internal {
                    level: *level + 1,
                    entries: vec![
                        InternalEntry {
                            child: page,
                            mbb: old_root_mbb,
                        },
                        pending,
                    ],
                };
                let new_root_page = self.pager.allocate_node(&new_root)?;
                self.parents.insert(page, new_root_page);
                self.parents.insert(pending.child, new_root_page);
                self.root = Some(new_root_page);
                self.height += 1;
                return Ok(());
            }
        }
        Err(IndexError::BadInsert(
            "insertion path was empty; the right-most descent pushes at least one node".into(),
        ))
    }

    /// Propagates an updated child MBB to the root.
    fn refresh_ancestors(
        &mut self,
        mut child: PageId,
        mut child_mbb: mst_trajectory::Mbb,
    ) -> Result<()> {
        while let Some(&parent) = self.parents.get(&child) {
            let mut node = self.pager.read_node(parent)?;
            let Node::Internal { entries, .. } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page: parent,
                    reason: "parent map points at a leaf".into(),
                });
            };
            let slot = entries
                .iter_mut()
                .find(|e| e.child == child)
                .ok_or_else(|| IndexError::CorruptNode {
                    page: parent,
                    reason: "parent does not reference child".into(),
                })?;
            if *slot
                == (InternalEntry {
                    child,
                    mbb: child_mbb,
                })
            {
                break; // no change, ancestors already tight
            }
            slot.mbb = child_mbb;
            let mbb = node.mbb();
            self.pager.write_node(parent, &node)?;
            child = parent;
            child_mbb = mbb;
        }
        Ok(())
    }

    /// Inserts every segment of `trajectory` under `id`.
    pub fn insert_trajectory(&mut self, id: TrajectoryId, trajectory: &Trajectory) -> Result<()> {
        for (seq, segment) in trajectory.segments().enumerate() {
            self.insert(LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            })?;
        }
        Ok(())
    }

    /// Reconstructs all indexed segments of `id` by walking its leaf list
    /// backwards from the tip — the operation the TB-tree exists to make
    /// cheap.
    pub fn trajectory_segments(&mut self, id: TrajectoryId) -> Result<Vec<LeafEntry>> {
        let mut out = Vec::new();
        let mut cursor = self.tips.get(&id).copied();
        while let Some(page) = cursor {
            let node = self.pager.read_node(page)?;
            let Node::Leaf { entries, prev, .. } = node else {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "leaf list points at an internal node".into(),
                });
            };
            out.extend(entries.into_iter().rev());
            cursor = prev;
        }
        out.reverse();
        Ok(out)
    }

    /// Retrieves the segments of `id` overlapping `window` by walking the
    /// trajectory's leaf list backwards from the tip — the "partial
    /// trajectory retrieval" the TB-tree's linked leaves were designed for
    /// (no directory traversal at all).
    pub fn trajectory_window(
        &mut self,
        id: TrajectoryId,
        window: &mst_trajectory::TimeInterval,
    ) -> Result<Vec<LeafEntry>> {
        let mut out = Vec::new();
        let mut cursor = self.tips.get(&id).copied();
        while let Some(page) = cursor {
            let node = self.pager.read_node(page)?;
            let Node::Leaf { entries, prev, .. } = node else {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "leaf list points at an internal node".into(),
                });
            };
            out.extend(
                entries
                    .iter()
                    .filter(|e| e.segment.time().overlaps(window))
                    .copied(),
            );
            // Leaves are temporally ordered; once a leaf starts at or
            // before the window, earlier leaves cannot add anything.
            if entries
                .first()
                .is_some_and(|e| e.segment.start().t <= window.start())
            {
                break;
            }
            cursor = prev;
        }
        out.sort_by_key(|e| e.seq);
        Ok(out)
    }

    /// Flushes dirty buffered pages to the page store.
    pub fn flush(&mut self) -> Result<()> {
        self.pager.pool.flush(&mut self.pager.store)
    }

    /// Serializes the whole index (including the per-trajectory tip map and
    /// parent pointers) into `writer`. The image carries LSN 0 — use
    /// [`TbTree::save_lsn`] when the tree lives under a write-ahead log.
    pub fn save<W: std::io::Write>(&mut self, writer: W) -> Result<()> {
        self.save_lsn(writer, 0)
    }

    /// Serializes the whole index, stamping the image with the log
    /// sequence number it is consistent through.
    pub fn save_lsn<W: std::io::Write>(&mut self, writer: W, lsn: u64) -> Result<()> {
        self.flush()?;
        let mut tips: Vec<(TrajectoryId, PageId)> =
            self.tips.iter().map(|(t, p)| (*t, *p)).collect();
        tips.sort();
        let mut parents: Vec<(PageId, PageId)> =
            self.parents.iter().map(|(c, p)| (*c, *p)).collect();
        parents.sort();
        let image = Image {
            kind: ImageKind::TbTree,
            lsn,
            root: self.root,
            height: self.height,
            entries: self.num_entries,
            max_speed: self.max_speed,
            pages: self.pager.store.raw_pages().map(Box::from).collect(),
            free_list: self.pager.store.free_list().to_vec(),
            tips,
            parents,
        };
        image.write_to(writer)
    }

    /// Saves the index to a file.
    pub fn save_to_path<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<()> {
        let file = std::fs::File::create(path).map_err(|e| IndexError::Persist(e.to_string()))?;
        self.save(std::io::BufWriter::new(file))
    }

    /// Reconstructs an index from a persisted image.
    pub fn load<R: std::io::Read>(reader: R) -> Result<Self> {
        Ok(Self::load_lsn(reader)?.0)
    }

    /// Reconstructs an index from a persisted image, also returning the log
    /// sequence number the image is consistent through.
    pub fn load_lsn<R: std::io::Read>(reader: R) -> Result<(Self, u64)> {
        let image = Image::read_from(reader)?;
        if image.kind != ImageKind::TbTree {
            return Err(IndexError::Persist(
                "image holds a 3D R-tree, not a TB-tree".into(),
            ));
        }
        let lsn = image.lsn;
        let store = PageStore::from_raw(image.pages, image.free_list);
        Ok((
            TbTree {
                pager: Pager::from_store(store),
                root: image.root,
                height: image.height,
                tips: image.tips.into_iter().collect(),
                parents: image.parents.into_iter().collect(),
                num_entries: image.entries,
                max_speed: image.max_speed,
            },
            lsn,
        ))
    }

    /// Loads an index from a file.
    pub fn load_from_path<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path).map_err(|e| IndexError::Persist(e.to_string()))?;
        Self::load(std::io::BufReader::new(file))
    }
}

impl Default for TbTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
impl TbTree {
    /// Test-only: overwrite a node's page, bypassing every invariant — used
    /// by the validator's negative tests to plant corruption.
    pub(crate) fn corrupt_node_for_tests(&mut self, page: PageId, node: &Node) -> Result<()> {
        self.pager.write_node(page, node)
    }

    /// Test-only: desynchronize the entry counter.
    pub(crate) fn set_num_entries_for_tests(&mut self, n: u64) {
        self.num_entries = n;
    }

    /// Test-only: pin a resident page and never unpin it (a simulated leak).
    pub(crate) fn leak_pin_for_tests(&mut self, page: PageId) -> Result<()> {
        self.pager.pool.pin(page)
    }
}

impl crate::TrajectoryIndexWrite for TbTree {
    fn insert_entry(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert(entry)
    }
}

impl TrajectoryIndex for TbTree {
    fn root(&self) -> Option<PageId> {
        self.root
    }

    fn read_node(&mut self, page: PageId) -> Result<Node> {
        self.pager.read_node(page)
    }

    fn read_node_traced<S: crate::metrics::MetricsSink>(
        &mut self,
        page: PageId,
        sink: &mut S,
    ) -> Result<Node> {
        self.pager.read_node_traced(page, sink)
    }

    fn num_pages(&self) -> usize {
        self.pager.store.num_pages()
    }

    fn num_entries(&self) -> u64 {
        self.num_entries
    }

    fn height(&self) -> u8 {
        self.height
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            pages: self.pager.store.num_pages(),
            size_bytes: self.pager.store.num_pages() * PAGE_SIZE,
            height: self.height,
            entries: self.num_entries,
            node_reads: self.pager.node_reads,
            disk: self.pager.store.stats(),
            buffer: self.pager.pool.stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pager.reset_stats();
    }

    fn clear_buffer(&mut self) -> Result<()> {
        self.pager.clear_buffer()
    }

    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        self.pager.set_fixed_capacity(capacity)
    }

    fn set_fault_injection(&mut self, config: Option<crate::fault::FaultConfig>) -> Result<()> {
        self.pager.set_fault_injection(config);
        Ok(())
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.pager.store.fault_stats()
    }

    fn leaf_chain_tips(&self) -> Vec<(TrajectoryId, PageId)> {
        let mut tips: Vec<(TrajectoryId, PageId)> =
            self.tips.iter().map(|(&t, &p)| (t, p)).collect();
        tips.sort_unstable();
        tips
    }

    fn audit_buffer(&self) -> std::result::Result<(), String> {
        self.pager.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::{Mbb, SamplePoint, Segment};

    fn entry(id: u64, seq: u32, t: f64) -> LeafEntry {
        let x = f64::from(seq) + id as f64 * 100.0;
        LeafEntry {
            traj: TrajectoryId(id),
            seq,
            segment: Segment::new(
                SamplePoint::new(t, x, 0.0),
                SamplePoint::new(t + 1.0, x + 1.0, 0.5),
            )
            .unwrap(),
        }
    }

    /// Interleaved insertion of `objects` trajectories with `steps` segments
    /// each, mimicking temporal arrival in a MOD.
    fn build(objects: u64, steps: u32) -> TbTree {
        let mut t = TbTree::new();
        for s in 0..steps {
            for id in 0..objects {
                t.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        t
    }

    #[test]
    fn leaves_stay_single_trajectory() {
        let mut t = build(5, 200);
        assert_eq!(t.num_entries(), 1000);
        let report = crate::check_invariants(&mut t).unwrap();
        assert!(report.leaves >= 15, "200 segments need >= 3 leaves each");
    }

    #[test]
    fn leaf_list_reconstructs_trajectories() {
        let mut t = build(3, 150);
        for id in 0..3 {
            let segs = t.trajectory_segments(TrajectoryId(id)).unwrap();
            assert_eq!(segs.len(), 150);
            for (i, s) in segs.iter().enumerate() {
                assert_eq!(s.traj, TrajectoryId(id));
                assert_eq!(s.seq, i as u32);
            }
        }
        // Unknown trajectory -> empty.
        assert!(t.trajectory_segments(TrajectoryId(99)).unwrap().is_empty());
    }

    #[test]
    fn rejects_out_of_order_segments() {
        let mut t = TbTree::new();
        t.insert(entry(1, 0, 10.0)).unwrap();
        let bad = LeafEntry {
            traj: TrajectoryId(1),
            seq: 1,
            segment: Segment::new(
                SamplePoint::new(5.0, 0.0, 0.0),
                SamplePoint::new(6.0, 1.0, 1.0),
            )
            .unwrap(),
        };
        assert!(matches!(t.insert(bad), Err(IndexError::BadInsert(_))));
    }

    #[test]
    fn range_query_sees_everything() {
        let mut t = build(4, 300);
        let all = t
            .range_query(&Mbb::new(-1e12, -1e12, -1e12, 1e12, 1e12, 1e12))
            .unwrap();
        assert_eq!(all.len(), 1200);
    }

    #[test]
    fn grows_multiple_levels() {
        // Enough leaves to overflow a level-1 node (capacity 78): 100
        // trajectories × 68 segments -> 100+ leaves.
        let mut t = build(100, 68);
        assert!(t.height() >= 3, "height {} too small", t.height());
        crate::check_invariants(&mut t).unwrap();
    }

    #[test]
    fn trajectory_window_walks_the_leaf_list_only() {
        let mut t = build(4, 300);
        let window = mst_trajectory::TimeInterval::new(100.0, 150.0).unwrap();
        t.reset_stats();
        let segs = t.trajectory_window(TrajectoryId(2), &window).unwrap();
        // Segments [99..=150] overlap the closed window (segment s spans
        // [s, s+1]).
        assert_eq!(segs.len(), 52);
        for w in segs.windows(2) {
            assert_eq!(w[0].seq + 1, w[1].seq);
        }
        assert!(segs.iter().all(|e| e.traj == TrajectoryId(2)));
        // Only leaf-list pages touched: far fewer than the whole tree.
        let reads = t.stats().node_reads as usize;
        assert!(reads < t.num_pages() / 2, "read {reads} pages");
        // Empty window past the data.
        let late = mst_trajectory::TimeInterval::new(1e6, 2e6).unwrap();
        assert!(t
            .trajectory_window(TrajectoryId(2), &late)
            .unwrap()
            .is_empty());
        // Unknown trajectory.
        assert!(t
            .trajectory_window(TrajectoryId(99), &window)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn single_trajectory_tree() {
        let mut t = TbTree::new();
        for s in 0..70u32 {
            t.insert(entry(9, s, f64::from(s))).unwrap();
        }
        // 70 segments overflow one leaf (capacity 67): two leaves + root.
        assert_eq!(t.height(), 2);
        let segs = t.trajectory_segments(TrajectoryId(9)).unwrap();
        assert_eq!(segs.len(), 70);
        crate::check_invariants(&mut t).unwrap();
    }
}
