//! The STR-tree (Spatio-Temporal R-tree) of Pfoser, Jensen & Theodoridis
//! (VLDB 2000) — the third member of the index trio the paper considers.
//!
//! The STR-tree is an R-tree whose insertion strategy *prefers trajectory
//! preservation*: a new segment is appended to the leaf holding its
//! predecessor segment whenever that leaf has room, and only falls back to
//! the classic least-enlargement descent otherwise. It sits between the
//! 3D R-tree (pure spatial discrimination) and the TB-tree (pure
//! trajectory preservation) in both design and — as the paper's reference
//! [13] showed — performance.

use std::collections::HashMap;

use mst_trajectory::{Mbb, Trajectory, TrajectoryId};

use crate::persist::{Image, ImageKind};
use crate::rtree::{choose_subtree, quadratic_split, MIN_FILL_RATIO};
use crate::traits::Pager;
use crate::{
    IndexError, IndexStats, InternalEntry, LeafEntry, Node, PageId, PageStore, Result,
    TrajectoryIndex, TrajectoryIndexWrite, INTERNAL_CAPACITY, LEAF_CAPACITY, PAGE_SIZE,
};

/// An R-tree with trajectory-preserving insertion (segments join their
/// predecessor's leaf when possible).
pub struct StrTree {
    pager: Pager,
    root: Option<PageId>,
    height: u8,
    /// Leaf currently holding each trajectory's most recent segment.
    tips: HashMap<TrajectoryId, PageId>,
    /// Parent page of every node (root absent), maintained across splits.
    parents: HashMap<PageId, PageId>,
    num_entries: u64,
    max_speed: f64,
}

impl StrTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        StrTree {
            pager: Pager::new(),
            root: None,
            height: 0,
            tips: HashMap::new(),
            parents: HashMap::new(),
            num_entries: 0,
            max_speed: 0.0,
        }
    }

    /// Inserts one trajectory segment: into its predecessor's leaf when
    /// that leaf has room, otherwise via the least-enlargement descent.
    pub fn insert(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert_impl(entry)?;
        self.paranoid_audit("insert");
        Ok(())
    }

    /// Audit hook behind the `paranoid` feature: re-validates the whole
    /// tree and the buffer accounting after a mutating operation. The I/O
    /// counters are snapshot-restored around the audit so measurements stay
    /// comparable with unaudited runs.
    #[cfg(feature = "paranoid")]
    fn paranoid_audit(&mut self, op: &str) {
        let disk = self.pager.store.stats();
        let buf = self.pager.pool.stats();
        let reads = self.pager.node_reads;
        let failure = crate::check_invariants(self).err();
        self.pager.store.set_stats(disk);
        self.pager.pool.set_stats(buf);
        self.pager.node_reads = reads;
        if let Some(reason) = failure {
            let _ = &reason;
            debug_assert!(false, "paranoid audit after {op}: {reason}");
        }
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn paranoid_audit(&mut self, _op: &str) {}

    fn insert_impl(&mut self, entry: LeafEntry) -> Result<()> {
        self.max_speed = self.max_speed.max(entry.segment.speed());
        self.num_entries += 1;

        let Some(root) = self.root else {
            let node = Node::Leaf {
                entries: vec![entry],
                owner: None,
                prev: None,
                next: None,
            };
            let page = self.pager.allocate_node(&node)?;
            self.root = Some(page);
            self.height = 1;
            self.tips.insert(entry.traj, page);
            return Ok(());
        };

        // Trajectory preservation: join the predecessor's leaf if it has
        // room.
        if let Some(&tip) = self.tips.get(&entry.traj) {
            let mut node = self.pager.read_node(tip)?;
            if let Node::Leaf { entries, .. } = &mut node {
                if entries.len() < LEAF_CAPACITY {
                    entries.push(entry);
                    let mbb = node.mbb();
                    self.pager.write_node(tip, &node)?;
                    self.refresh_ancestors(tip, mbb)?;
                    return Ok(());
                }
            }
        }

        // Fallback: classic R-tree descent.
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.height as usize);
        let mut current = root;
        while let Node::Internal { entries, .. } = self.pager.read_node(current)? {
            let idx = choose_subtree(&entries, &entry.mbb());
            path.push((current, idx));
            current = entries[idx].child;
        }

        let mut leaf = self.pager.read_node(current)?;
        let Node::Leaf { entries, .. } = &mut leaf else {
            return Err(IndexError::CorruptNode {
                page: current,
                reason: "descent ended on an internal node".into(),
            });
        };
        entries.push(entry);
        self.tips.insert(entry.traj, current);

        let mut updated_mbb;
        let mut split: Option<InternalEntry> = None;
        if entries.len() > LEAF_CAPACITY {
            let min_fill = (LEAF_CAPACITY as f64 * MIN_FILL_RATIO).ceil() as usize;
            let items: Vec<(Mbb, LeafEntry)> = entries.iter().map(|e| (e.mbb(), *e)).collect();
            let (a, b) = quadratic_split(items, min_fill);
            let node_a = Node::Leaf {
                entries: a.into_iter().map(|(_, e)| e).collect(),
                owner: None,
                prev: None,
                next: None,
            };
            let node_b = Node::Leaf {
                entries: b.into_iter().map(|(_, e)| e).collect(),
                owner: None,
                prev: None,
                next: None,
            };
            updated_mbb = node_a.mbb();
            self.pager.write_node(current, &node_a)?;
            let new_page = self.pager.allocate_node(&node_b)?;
            split = Some(InternalEntry {
                child: new_page,
                mbb: node_b.mbb(),
            });
            self.retarget_tips(current, &node_a, new_page, &node_b);
        } else {
            updated_mbb = leaf.mbb();
            self.pager.write_node(current, &leaf)?;
        }

        // Propagate upwards along the descent path.
        for &(page, child_idx) in path.iter().rev() {
            let mut node = self.pager.read_node(page)?;
            let Node::Internal { level, entries } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "path node is not internal".into(),
                });
            };
            entries[child_idx].mbb = updated_mbb;
            if let Some(new_entry) = split.take() {
                entries.push(new_entry);
                self.parents.insert(new_entry.child, page);
                if entries.len() > INTERNAL_CAPACITY {
                    let min_fill = (INTERNAL_CAPACITY as f64 * MIN_FILL_RATIO).ceil() as usize;
                    let items: Vec<(Mbb, InternalEntry)> =
                        entries.iter().map(|e| (e.mbb, *e)).collect();
                    let (a, b) = quadratic_split(items, min_fill);
                    let level = *level;
                    let node_a = Node::Internal {
                        level,
                        entries: a.into_iter().map(|(_, e)| e).collect(),
                    };
                    let node_b = Node::Internal {
                        level,
                        entries: b.into_iter().map(|(_, e)| e).collect(),
                    };
                    updated_mbb = node_a.mbb();
                    self.pager.write_node(page, &node_a)?;
                    let new_page = self.pager.allocate_node(&node_b)?;
                    // Re-home the moved children's parent pointers.
                    if let Node::Internal { entries, .. } = &node_a {
                        for e in entries {
                            self.parents.insert(e.child, page);
                        }
                    }
                    if let Node::Internal { entries, .. } = &node_b {
                        for e in entries {
                            self.parents.insert(e.child, new_page);
                        }
                    }
                    split = Some(InternalEntry {
                        child: new_page,
                        mbb: node_b.mbb(),
                    });
                    continue;
                }
            }
            updated_mbb = node.mbb();
            self.pager.write_node(page, &node)?;
        }

        if let Some(new_entry) = split {
            let old_root_mbb = self.pager.read_node(root)?.mbb();
            let new_root = Node::Internal {
                level: self.height,
                entries: vec![
                    InternalEntry {
                        child: root,
                        mbb: old_root_mbb,
                    },
                    new_entry,
                ],
            };
            let new_root_page = self.pager.allocate_node(&new_root)?;
            self.parents.insert(root, new_root_page);
            self.parents.insert(new_entry.child, new_root_page);
            self.root = Some(new_root_page);
            self.height += 1;
        }
        Ok(())
    }

    /// After splitting leaf `page_a` into `(node_a, node_b)`, repoints the
    /// tip of every trajectory that tracked the split leaf to whichever
    /// half now holds its latest (max-seq) segment.
    fn retarget_tips(&mut self, page_a: PageId, node_a: &Node, page_b: PageId, node_b: &Node) {
        let mut latest: HashMap<TrajectoryId, (u32, PageId)> = HashMap::new();
        for (page, node) in [(page_a, node_a), (page_b, node_b)] {
            if let Node::Leaf { entries, .. } = node {
                for e in entries {
                    let slot = latest.entry(e.traj).or_insert((e.seq, page));
                    if e.seq >= slot.0 {
                        *slot = (e.seq, page);
                    }
                }
            }
        }
        for (traj, (_, page)) in latest {
            if self.tips.get(&traj) == Some(&page_a) {
                self.tips.insert(traj, page);
            }
        }
    }

    /// Propagates an updated child MBB to the root via the parent map.
    fn refresh_ancestors(&mut self, mut child: PageId, mut child_mbb: Mbb) -> Result<()> {
        while let Some(&parent) = self.parents.get(&child) {
            let mut node = self.pager.read_node(parent)?;
            let Node::Internal { entries, .. } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page: parent,
                    reason: "parent map points at a leaf".into(),
                });
            };
            let slot = entries
                .iter_mut()
                .find(|e| e.child == child)
                .ok_or_else(|| IndexError::CorruptNode {
                    page: parent,
                    reason: "parent does not reference child".into(),
                })?;
            if slot.mbb == child_mbb {
                break;
            }
            slot.mbb = child_mbb;
            let mbb = node.mbb();
            self.pager.write_node(parent, &node)?;
            child = parent;
            child_mbb = mbb;
        }
        Ok(())
    }

    /// Inserts every segment of `trajectory` under `id`.
    pub fn insert_trajectory(&mut self, id: TrajectoryId, trajectory: &Trajectory) -> Result<()> {
        for (seq, segment) in trajectory.segments().enumerate() {
            self.insert(LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            })?;
        }
        Ok(())
    }

    /// Flushes dirty buffered pages to the page store.
    pub fn flush(&mut self) -> Result<()> {
        self.pager.pool.flush(&mut self.pager.store)
    }

    /// Serializes the whole index (including tips and parent pointers).
    /// The image carries LSN 0 — use [`StrTree::save_lsn`] when the tree
    /// lives under a write-ahead log.
    pub fn save<W: std::io::Write>(&mut self, writer: W) -> Result<()> {
        self.save_lsn(writer, 0)
    }

    /// Serializes the whole index, stamping the image with the log
    /// sequence number it is consistent through.
    pub fn save_lsn<W: std::io::Write>(&mut self, writer: W, lsn: u64) -> Result<()> {
        self.flush()?;
        let mut tips: Vec<(TrajectoryId, PageId)> =
            self.tips.iter().map(|(t, p)| (*t, *p)).collect();
        tips.sort();
        let mut parents: Vec<(PageId, PageId)> =
            self.parents.iter().map(|(c, p)| (*c, *p)).collect();
        parents.sort();
        let image = Image {
            kind: ImageKind::StrTree,
            lsn,
            root: self.root,
            height: self.height,
            entries: self.num_entries,
            max_speed: self.max_speed,
            pages: self.pager.store.raw_pages().map(Box::from).collect(),
            free_list: self.pager.store.free_list().to_vec(),
            tips,
            parents,
        };
        image.write_to(writer)
    }

    /// Reconstructs an index from a persisted image.
    pub fn load<R: std::io::Read>(reader: R) -> Result<Self> {
        Ok(Self::load_lsn(reader)?.0)
    }

    /// Reconstructs an index from a persisted image, also returning the log
    /// sequence number the image is consistent through.
    pub fn load_lsn<R: std::io::Read>(reader: R) -> Result<(Self, u64)> {
        let image = Image::read_from(reader)?;
        if image.kind != ImageKind::StrTree {
            return Err(IndexError::Persist("image is not an STR-tree".into()));
        }
        let lsn = image.lsn;
        let store = PageStore::from_raw(image.pages, image.free_list);
        Ok((
            StrTree {
                pager: Pager::from_store(store),
                root: image.root,
                height: image.height,
                tips: image.tips.into_iter().collect(),
                parents: image.parents.into_iter().collect(),
                num_entries: image.entries,
                max_speed: image.max_speed,
            },
            lsn,
        ))
    }
}

impl Default for StrTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TrajectoryIndexWrite for StrTree {
    fn insert_entry(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert(entry)
    }
}

impl TrajectoryIndex for StrTree {
    fn root(&self) -> Option<PageId> {
        self.root
    }

    fn read_node(&mut self, page: PageId) -> Result<Node> {
        self.pager.read_node(page)
    }

    fn read_node_traced<S: crate::metrics::MetricsSink>(
        &mut self,
        page: PageId,
        sink: &mut S,
    ) -> Result<Node> {
        self.pager.read_node_traced(page, sink)
    }

    fn num_pages(&self) -> usize {
        self.pager.store.num_pages()
    }

    fn num_entries(&self) -> u64 {
        self.num_entries
    }

    fn height(&self) -> u8 {
        self.height
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            pages: self.pager.store.num_pages(),
            size_bytes: self.pager.store.num_pages() * PAGE_SIZE,
            height: self.height,
            entries: self.num_entries,
            node_reads: self.pager.node_reads,
            disk: self.pager.store.stats(),
            buffer: self.pager.pool.stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pager.reset_stats();
    }

    fn clear_buffer(&mut self) -> Result<()> {
        self.pager.clear_buffer()
    }

    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        self.pager.set_fixed_capacity(capacity)
    }

    fn set_fault_injection(&mut self, config: Option<crate::fault::FaultConfig>) -> Result<()> {
        self.pager.set_fault_injection(config);
        Ok(())
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.pager.store.fault_stats()
    }

    fn audit_buffer(&self) -> std::result::Result<(), String> {
        self.pager.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::{SamplePoint, Segment};

    fn entry(id: u64, seq: u32, t: f64, x: f64, y: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(id),
            seq,
            segment: Segment::new(
                SamplePoint::new(t, x, y),
                SamplePoint::new(t + 1.0, x + 0.4, y + 0.1),
            )
            .unwrap(),
        }
    }

    /// Interleaved temporal insertion across `objects` trajectories.
    fn build(objects: u64, steps: u32) -> StrTree {
        let mut t = StrTree::new();
        for s in 0..steps {
            for id in 0..objects {
                let x = f64::from(s) * 0.4 + id as f64 * 50.0;
                t.insert(entry(id, s, f64::from(s), x, id as f64)).unwrap();
            }
        }
        t
    }

    #[test]
    fn holds_everything_and_passes_invariants() {
        let mut t = build(8, 150);
        assert_eq!(t.num_entries(), 1200);
        crate::check_invariants(&mut t).unwrap();
        let all = t
            .range_query(&Mbb::new(-1e12, -1e12, -1e12, 1e12, 1e12, 1e12))
            .unwrap();
        assert_eq!(all.len(), 1200);
    }

    #[test]
    fn preserves_trajectories_better_than_plain_rtree() {
        // Count how many leaves each trajectory's segments are spread over:
        // the STR-tree should need no more leaves per trajectory than the
        // 3D R-tree on the same insertion stream.
        use std::collections::{HashMap, HashSet};
        let objects = 10u64;
        let steps = 200u32;
        let mut strtree = StrTree::new();
        let mut rtree = crate::Rtree3D::new();
        for s in 0..steps {
            for id in 0..objects {
                let x = f64::from(s) * 0.4 + id as f64 * 3.0;
                let e = entry(id, s, f64::from(s), x, (id as f64 * 7.3) % 11.0);
                strtree.insert(e).unwrap();
                rtree.insert(e).unwrap();
            }
        }
        let spread = |idx: &mut dyn TrajectoryIndex| -> f64 {
            let mut leaves: HashMap<TrajectoryId, HashSet<PageId>> = HashMap::new();
            let mut stack = vec![idx.root().unwrap()];
            while let Some(page) = stack.pop() {
                match idx.read_node(page).unwrap() {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            leaves.entry(e.traj).or_default().insert(page);
                        }
                    }
                    Node::Internal { entries, .. } => {
                        stack.extend(entries.iter().map(|e| e.child));
                    }
                }
            }
            leaves.values().map(|s| s.len() as f64).sum::<f64>() / leaves.len() as f64
        };
        let s_spread = spread(&mut strtree);
        let r_spread = spread(&mut rtree);
        assert!(
            s_spread <= r_spread + 1e-9,
            "STR spread {s_spread} vs R-tree {r_spread}"
        );
    }

    #[test]
    fn tips_survive_leaf_splits() {
        // One hot trajectory with enough segments to split leaves many
        // times; appends must keep working (and stay findable).
        let mut t = StrTree::new();
        for s in 0..500u32 {
            t.insert(entry(1, s, f64::from(s), f64::from(s) * 0.3, 0.0))
                .unwrap();
        }
        assert_eq!(t.num_entries(), 500);
        crate::check_invariants(&mut t).unwrap();
        let all = t
            .range_query(&Mbb::new(-1e12, -1e12, -1e12, 1e12, 1e12, 1e12))
            .unwrap();
        let seqs: std::collections::HashSet<u32> = all.iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 500);
    }

    #[test]
    fn persistence_roundtrip_keeps_appending() {
        let mut t = build(4, 120);
        let mut bytes = Vec::new();
        t.save(&mut bytes).unwrap();
        let mut loaded = StrTree::load(&bytes[..]).unwrap();
        assert_eq!(loaded.num_entries(), 480);
        crate::check_invariants(&mut loaded).unwrap();
        // Tips survived: appending continues trajectory-preserving.
        loaded
            .insert(entry(2, 120, 120.0, 48.0 + 100.0, 2.0))
            .unwrap();
        assert_eq!(loaded.num_entries(), 481);
        crate::check_invariants(&mut loaded).unwrap();
    }

    #[test]
    fn works_behind_the_write_trait() {
        let mut t = StrTree::new();
        TrajectoryIndexWrite::insert_entry(&mut t, entry(0, 0, 0.0, 0.0, 0.0)).unwrap();
        assert_eq!(t.num_entries(), 1);
    }
}
