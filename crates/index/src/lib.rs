//! Page-based spatiotemporal index substrate for the MST reproduction.
//!
//! The ICDE'07 paper runs its best-first k-MST algorithm on *general-purpose*
//! R-tree-like trajectory indexes — structures a moving-object database
//! would maintain anyway for range and nearest-neighbour queries. This crate
//! builds that substrate from scratch:
//!
//! * [`PageStore`] — an in-process "disk" of fixed 4 KB pages with physical
//!   I/O accounting;
//! * [`BufferPool`] — an LRU buffer manager (the paper: 10% of the index
//!   size, at most 1000 pages);
//! * [`Node`] — byte-serialized leaf/internal nodes; each leaf entry is one
//!   trajectory *segment* `(trajectory id, sequence number, 3D line)`;
//! * [`Rtree3D`] — a Guttman-style 3D (x, y, t) R-tree with quadratic split;
//! * [`TbTree`] — the trajectory-bundle tree of Pfoser et al. (VLDB 2000):
//!   leaves contain segments of a single trajectory, connected in a doubly
//!   linked list, appended at the right-most path;
//! * [`StrTree`] — Pfoser et al.'s spatio-temporal R-tree: R-tree structure
//!   with trajectory-preserving insertion (the middle ground);
//! * [`mindist`] — the exact minimum distance between a (moving-point) query
//!   trajectory and a node MBB over their temporal overlap, following
//!   Frentzos et al.'s nearest-neighbour work that the paper builds on;
//! * [`TrajectoryIndex`] — the read interface the search algorithm consumes,
//!   implemented by both trees.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod buffer;
pub mod checksum;
mod codec;
pub mod fault;
pub mod knn;
pub mod metric;
pub mod metrics;
pub mod mindist;
mod node;
mod pagestore;
pub mod persist;
mod rtree;
pub mod shared;
mod strtree;
mod tbtree;
mod traits;
mod validate;

pub use buffer::{BufferPool, BufferStats, LruCache};
pub use fault::{FaultConfig, FaultInjector, FaultStats, FaultableStore, PageIo};
pub use knn::{knn_segments, knn_segments_traced, KnnMatch};
pub use metric::{BallKind, BallNode, MetricTree};
pub use metrics::{MetricsSink, NoopSink, SharedSink};
pub use node::{InternalEntry, LeafEntry, Node, INTERNAL_CAPACITY, LEAF_CAPACITY};
pub use pagestore::{DiskStats, PageId, PageStore, PAGE_SIZE};
pub use rtree::Rtree3D;
pub use shared::{ConcurrentIndex, IndexReader};
pub use strtree::StrTree;
pub use tbtree::TbTree;
pub use traits::{IndexStats, TrajectoryIndex, TrajectoryIndexWrite};
pub use validate::{check_invariants, InvariantReport};

/// Why an allocated page cannot be served (see
/// [`IndexError::PageUnavailable`]). Distinct from
/// [`IndexError::UnknownPage`], which means the id was *never* allocated —
/// an unknown page is a caller bug (a dangling pointer in the tree), while
/// an unavailable page is a lifecycle state the storage layer itself
/// manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unavailability {
    /// The page was freed and sits on the free list awaiting reuse.
    Freed,
    /// The page was quarantined by the buffer manager after repeated
    /// unrecoverable faults (checksum mismatches or exhausted retries). A
    /// successful write of fresh content lifts the quarantine.
    Quarantined,
}

impl std::fmt::Display for Unavailability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unavailability::Freed => write!(f, "freed"),
            Unavailability::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Errors produced by the index layer.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// A page id did not refer to an allocated page.
    UnknownPage(PageId),
    /// An allocated page exists but is not currently readable (freed, or
    /// quarantined after repeated faults).
    PageUnavailable {
        /// The offending page.
        page: PageId,
        /// Why the page cannot be served.
        reason: Unavailability,
    },
    /// A page read failed transiently (injected or environmental). Retrying
    /// the same read may succeed; the buffer manager does so with bounded
    /// backoff before giving up.
    TransientIo(PageId),
    /// A page's stored checksum disagreed with its contents: bit rot, a
    /// torn write, or corruption in transit.
    ChecksumMismatch {
        /// The offending page.
        page: PageId,
        /// The checksum stored in the page header.
        expected: u32,
        /// The checksum recomputed from the page contents.
        found: u32,
    },
    /// A page's bytes did not decode into a valid node.
    CorruptNode {
        /// The offending page.
        page: PageId,
        /// Human-readable reason.
        reason: String,
    },
    /// The segment being inserted was invalid for this index.
    BadInsert(String),
    /// A persistence operation failed (I/O error or malformed image).
    Persist(String),
    /// The buffer manager detected an accounting violation (pinned-page
    /// eviction, unbalanced unpin, pin of a non-resident page).
    Buffer(String),
    /// A synchronisation primitive guarding index state was poisoned by a
    /// panicking thread. Concurrent read paths surface this instead of
    /// unwrapping the lock (xtask rule R7), so one crashed worker degrades
    /// into an error the caller can report rather than a process abort.
    Poisoned(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::UnknownPage(p) => write!(f, "unknown page {p:?}"),
            IndexError::PageUnavailable { page, reason } => {
                write!(f, "page {page:?} is unavailable: {reason}")
            }
            IndexError::TransientIo(p) => write!(f, "transient I/O failure reading page {p:?}"),
            IndexError::ChecksumMismatch {
                page,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch on page {page:?}: header says {expected:#010x}, \
                 contents hash to {found:#010x}"
            ),
            IndexError::CorruptNode { page, reason } => {
                write!(f, "corrupt node in page {page:?}: {reason}")
            }
            IndexError::BadInsert(msg) => write!(f, "bad insert: {msg}"),
            IndexError::Persist(msg) => write!(f, "persistence failure: {msg}"),
            IndexError::Buffer(msg) => write!(f, "buffer accounting violation: {msg}"),
            IndexError::Poisoned(what) => {
                write!(f, "lock poisoned by a panicking thread: {what}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Result alias for the index crate.
pub type Result<T> = std::result::Result<T, IndexError>;
