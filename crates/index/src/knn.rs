//! k-nearest-neighbour search over indexed trajectory segments — the
//! "traditional" distance-browsing query (Hjaltason & Samet) that the same
//! R-tree-like structures serve alongside MST search, per the paper's
//! premise (and its reference [6], Frentzos et al.'s NN algorithms on
//! moving-object trajectories).
//!
//! The query is a static point plus a time window: *which k segments came
//! closest to this location during the window?* Distance of a segment is
//! the minimum spatial distance of its moving point over the temporal
//! overlap with the window ([`crate::mindist::segment_rect_mindist`] with a
//! degenerate rectangle).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mst_trajectory::{Point, Rect, TimeInterval};

use crate::metrics::{MetricsSink, NoopSink};
use crate::mindist::segment_rect_mindist;
use crate::{LeafEntry, Node, PageId, Result, TrajectoryIndex};

/// One kNN answer: the segment and its minimum distance from the query
/// point during the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnMatch {
    /// The matched segment entry.
    pub entry: LeafEntry,
    /// Its minimum distance from the query point over the temporal overlap.
    pub distance: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum QueueItem {
    Node(PageId),
    Entry(LeafEntry),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Prioritized {
    distance: f64,
    tiebreak: u64,
    item: QueueItem,
}

impl Eq for Prioritized {}

impl Ord for Prioritized {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then(self.tiebreak.cmp(&other.tiebreak))
    }
}

impl PartialOrd for Prioritized {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the `k` segments that came closest to `point` during `window`,
/// in ascending distance order, using best-first distance browsing (each
/// node is visited only if it can still contain a better answer).
pub fn knn_segments<I: TrajectoryIndex>(
    index: &mut I,
    point: Point,
    window: &TimeInterval,
    k: usize,
) -> Result<Vec<KnnMatch>> {
    knn_segments_traced(index, point, window, k, &mut NoopSink)
}

/// [`knn_segments`] with observability: heap traffic, node accesses, and
/// buffer behaviour are reported to `sink`. The traced and untraced paths
/// are the same code — [`knn_segments`] is this function instantiated with
/// the [`NoopSink`].
pub fn knn_segments_traced<I: TrajectoryIndex, S: MetricsSink>(
    index: &mut I,
    point: Point,
    window: &TimeInterval,
    k: usize,
    sink: &mut S,
) -> Result<Vec<KnnMatch>> {
    let mut out = Vec::new();
    if k == 0 {
        return Ok(out);
    }
    let Some(root) = index.root() else {
        return Ok(out);
    };
    let point_rect = Rect::from_point(point);
    let mut tiebreak = 0u64;
    let mut heap: BinaryHeap<Reverse<Prioritized>> = BinaryHeap::new();
    heap.push(Reverse(Prioritized {
        distance: 0.0,
        tiebreak,
        item: QueueItem::Node(root),
    }));
    sink.heap_push();

    while let Some(Reverse(head)) = heap.pop() {
        sink.heap_pop();
        match head.item {
            QueueItem::Entry(entry) => {
                // Entries surface in true distance order: this one is final.
                out.push(KnnMatch {
                    entry,
                    distance: head.distance,
                });
                if out.len() == k {
                    break;
                }
            }
            QueueItem::Node(page) => match index.read_node_traced(page, sink)? {
                Node::Leaf { entries, .. } => {
                    for e in entries {
                        let Some(clipped) = e.segment.clip(window) else {
                            continue;
                        };
                        tiebreak += 1;
                        heap.push(Reverse(Prioritized {
                            distance: segment_rect_mindist(&clipped, &point_rect),
                            tiebreak,
                            item: QueueItem::Entry(e),
                        }));
                        sink.heap_push();
                    }
                }
                Node::Internal { entries, .. } => {
                    for e in entries {
                        if !e.mbb.time().overlaps(window) {
                            continue;
                        }
                        tiebreak += 1;
                        heap.push(Reverse(Prioritized {
                            distance: e.mbb.rect().min_distance(&point),
                            tiebreak,
                            item: QueueItem::Node(e.child),
                        }));
                        sink.heap_push();
                    }
                }
            },
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rtree3D;
    use mst_trajectory::{SamplePoint, Segment, TrajectoryId};

    fn entry(id: u64, seq: u32, t: f64, x: f64, y: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(id),
            seq,
            segment: Segment::new(
                SamplePoint::new(t, x, y),
                SamplePoint::new(t + 1.0, x + 0.3, y),
            )
            .unwrap(),
        }
    }

    fn grid_tree() -> Rtree3D {
        let mut t = Rtree3D::new();
        for i in 0..400u32 {
            let x = f64::from(i % 20) * 5.0;
            let y = f64::from(i / 20) * 5.0;
            t.insert(entry(u64::from(i), 0, f64::from(i % 50), x, y))
                .unwrap();
        }
        t
    }

    /// Brute-force oracle over all segments.
    fn oracle(t: &mut Rtree3D, p: Point, w: &TimeInterval, k: usize) -> Vec<(TrajectoryId, f64)> {
        let all = t
            .range_query(&mst_trajectory::Mbb::new(
                -1e12, -1e12, -1e12, 1e12, 1e12, 1e12,
            ))
            .unwrap();
        let mut dists: Vec<(TrajectoryId, f64)> = all
            .iter()
            .filter_map(|e| {
                let c = e.segment.clip(w)?;
                Some((e.traj, segment_rect_mindist(&c, &Rect::from_point(p))))
            })
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        dists.truncate(k);
        dists
    }

    #[test]
    fn knn_matches_brute_force() {
        let mut t = grid_tree();
        let w = TimeInterval::new(0.0, 100.0).unwrap();
        for (px, py) in [(12.0, 33.0), (0.0, 0.0), (97.0, 97.0)] {
            let p = Point::new(px, py);
            let got = knn_segments(&mut t, p, &w, 5).unwrap();
            let want = oracle(&mut t, p, &w, 5);
            assert_eq!(got.len(), 5);
            for (g, (_, wd)) in got.iter().zip(&want) {
                assert!((g.distance - wd).abs() < 1e-9, "{} vs {wd}", g.distance);
            }
            // Ascending order.
            for pair in got.windows(2) {
                assert!(pair[0].distance <= pair[1].distance);
            }
        }
    }

    #[test]
    fn window_restricts_candidates() {
        let mut t = grid_tree();
        // Segments start at t = i % 50, so [200, 300] excludes everything.
        let w = TimeInterval::new(200.0, 300.0).unwrap();
        let got = knn_segments(&mut t, Point::new(1.0, 1.0), &w, 3).unwrap();
        assert!(got.is_empty());
        // A narrow window keeps only matching start times.
        let w = TimeInterval::new(10.0, 10.5).unwrap();
        let got = knn_segments(&mut t, Point::new(1.0, 1.0), &w, 100).unwrap();
        assert!(!got.is_empty());
        for m in &got {
            assert!(m.entry.segment.time().overlaps(&w));
        }
    }

    #[test]
    fn knn_visits_few_pages() {
        let mut t = grid_tree();
        let w = TimeInterval::new(0.0, 100.0).unwrap();
        t.reset_stats();
        knn_segments(&mut t, Point::new(50.0, 50.0), &w, 1).unwrap();
        let reads = t.stats().node_reads;
        assert!(
            (reads as usize) < t.num_pages() / 2,
            "kNN read {reads} of {} pages",
            t.num_pages()
        );
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let mut t = grid_tree();
        let w = TimeInterval::new(0.0, 100.0).unwrap();
        assert!(knn_segments(&mut t, Point::new(0.0, 0.0), &w, 0)
            .unwrap()
            .is_empty());
        let mut empty = Rtree3D::new();
        assert!(knn_segments(&mut empty, Point::new(0.0, 0.0), &w, 3)
            .unwrap()
            .is_empty());
    }
}
