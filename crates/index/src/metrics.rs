//! Observability hooks of the index layer.
//!
//! The paper's whole evaluation (Section 5) is about *pruning power* and
//! *execution cost*: node accesses, buffer behaviour, and how many
//! candidates each bound kills. This module defines the event sink those
//! measurements flow through. The design constraint is "always-on,
//! zero-cost-when-disabled": every hook is a default-empty method on a
//! trait, callers are generic over the sink, and the [`NoopSink`]
//! instantiation monomorphizes every hook into nothing — the traced and
//! untraced code paths are the *same* code, so tracing can never change a
//! query result.
//!
//! Timing deliberately does not appear here: wall-clock measurement lives
//! in `crates/bench` (xtask rule R5 keeps `std::time` out of library
//! crates), while this layer counts *work* — events that are meaningful on
//! any machine.

/// Receiver of low-level index events during a query.
///
/// All methods have empty default bodies: a sink implements only the events
/// it cares about, and the [`NoopSink`] implements none. Methods take
/// `&mut self` so a plain counter struct needs no interior mutability.
pub trait MetricsSink {
    /// A node was fetched and decoded. `level` is 0 for leaves and grows
    /// towards the root, so a sink can histogram accesses per tree level.
    fn node_access(&mut self, level: u8) {
        let _ = level;
    }

    /// A page request was served from the buffer pool.
    fn buffer_hit(&mut self) {}

    /// A page request faulted through to the page store.
    fn buffer_miss(&mut self) {}

    /// `n` bytes of page payload were handed to the node decoder.
    fn bytes_decoded(&mut self, n: u64) {
        let _ = n;
    }

    /// An element entered a best-first priority queue.
    fn heap_push(&mut self) {}

    /// An element left a best-first priority queue.
    fn heap_pop(&mut self) {}
}

/// The sink that records nothing. Generic query code instantiated with
/// `NoopSink` compiles to exactly the unobserved query — the compiler
/// erases every hook call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {}

impl<S: MetricsSink + ?Sized> MetricsSink for &mut S {
    fn node_access(&mut self, level: u8) {
        (**self).node_access(level);
    }
    fn buffer_hit(&mut self) {
        (**self).buffer_hit();
    }
    fn buffer_miss(&mut self) {
        (**self).buffer_miss();
    }
    fn bytes_decoded(&mut self, n: u64) {
        (**self).bytes_decoded(n);
    }
    fn heap_push(&mut self) {
        (**self).heap_push();
    }
    fn heap_pop(&mut self) {
        (**self).heap_pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Tally {
        nodes: Vec<u8>,
        hits: u64,
        misses: u64,
        bytes: u64,
        pushes: u64,
        pops: u64,
    }

    impl MetricsSink for Tally {
        fn node_access(&mut self, level: u8) {
            self.nodes.push(level);
        }
        fn buffer_hit(&mut self) {
            self.hits += 1;
        }
        fn buffer_miss(&mut self) {
            self.misses += 1;
        }
        fn bytes_decoded(&mut self, n: u64) {
            self.bytes += n;
        }
        fn heap_push(&mut self) {
            self.pushes += 1;
        }
        fn heap_pop(&mut self) {
            self.pops += 1;
        }
    }

    fn drive<S: MetricsSink>(sink: &mut S) {
        sink.node_access(0);
        sink.node_access(2);
        sink.buffer_hit();
        sink.buffer_miss();
        sink.bytes_decoded(4096);
        sink.heap_push();
        sink.heap_push();
        sink.heap_pop();
    }

    #[test]
    fn tally_sink_records_every_event() {
        let mut t = Tally::default();
        drive(&mut t);
        assert_eq!(t.nodes, vec![0, 2]);
        assert_eq!((t.hits, t.misses, t.bytes), (1, 1, 4096));
        assert_eq!((t.pushes, t.pops), (2, 1));
    }

    #[test]
    fn mut_reference_forwards_to_the_underlying_sink() {
        let mut t = Tally::default();
        drive(&mut &mut t);
        assert_eq!(t.nodes, vec![0, 2]);
        assert_eq!(t.bytes, 4096);
    }

    #[test]
    fn noop_sink_accepts_every_event() {
        drive(&mut NoopSink);
    }
}
