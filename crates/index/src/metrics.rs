//! Observability hooks of the index layer.
//!
//! The paper's whole evaluation (Section 5) is about *pruning power* and
//! *execution cost*: node accesses, buffer behaviour, and how many
//! candidates each bound kills. This module defines the event sink those
//! measurements flow through. The design constraint is "always-on,
//! zero-cost-when-disabled": every hook is a default-empty method on a
//! trait, callers are generic over the sink, and the [`NoopSink`]
//! instantiation monomorphizes every hook into nothing — the traced and
//! untraced code paths are the *same* code, so tracing can never change a
//! query result.
//!
//! Timing deliberately does not appear here: wall-clock measurement lives
//! in `crates/bench` (xtask rule R5 keeps `std::time` out of library
//! crates), while this layer counts *work* — events that are meaningful on
//! any machine.

/// Receiver of low-level index events during a query.
///
/// All methods have empty default bodies: a sink implements only the events
/// it cares about, and the [`NoopSink`] implements none. Methods take
/// `&mut self` so a plain counter struct needs no interior mutability.
pub trait MetricsSink {
    /// A node was fetched and decoded. `level` is 0 for leaves and grows
    /// towards the root, so a sink can histogram accesses per tree level.
    fn node_access(&mut self, level: u8) {
        let _ = level;
    }

    /// A page request was served from the buffer pool.
    fn buffer_hit(&mut self) {}

    /// A page request faulted through to the page store.
    fn buffer_miss(&mut self) {}

    /// `n` bytes of page payload were handed to the node decoder.
    fn bytes_decoded(&mut self, n: u64) {
        let _ = n;
    }

    /// An element entered a best-first priority queue.
    fn heap_push(&mut self) {}

    /// An element left a best-first priority queue.
    fn heap_pop(&mut self) {}

    /// A physical page read failed with a retryable fault and the buffer
    /// manager is about to retry it.
    fn io_retry(&mut self) {}

    /// A fetched page failed checksum verification.
    fn io_checksum_failure(&mut self) {}

    /// A page exhausted its retry budget and was quarantined.
    fn io_quarantine(&mut self) {}
}

/// The sink that records nothing. Generic query code instantiated with
/// `NoopSink` compiles to exactly the unobserved query — the compiler
/// erases every hook call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {}

/// A lock-free, thread-shareable [`MetricsSink`] over atomic counters.
///
/// The trait takes `&mut self` so single-threaded sinks stay plain structs,
/// but a concurrent executor wants many workers feeding one ledger. The
/// trick: `SharedSink` records through `&self` internally, and the crate
/// provides `impl MetricsSink for &SharedSink` — each worker holds its own
/// `&SharedSink` copy (which it can borrow `&mut`) while all copies target
/// the same atomics. Per-level node accesses are histogrammed up to
/// [`SharedSink::LEVELS`] levels; deeper accesses saturate into the last
/// bucket (trees here are far shallower in practice).
#[derive(Debug, Default)]
pub struct SharedSink {
    node_accesses: [std::sync::atomic::AtomicU64; SharedSink::LEVELS],
    buffer_hits: std::sync::atomic::AtomicU64,
    buffer_misses: std::sync::atomic::AtomicU64,
    bytes_decoded: std::sync::atomic::AtomicU64,
    heap_pushes: std::sync::atomic::AtomicU64,
    heap_pops: std::sync::atomic::AtomicU64,
    io_retries: std::sync::atomic::AtomicU64,
    checksum_failures: std::sync::atomic::AtomicU64,
    pages_quarantined: std::sync::atomic::AtomicU64,
}

/// A plain-struct snapshot of a [`SharedSink`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedSinkSnapshot {
    /// Node accesses histogrammed by tree level (index 0 = leaves).
    pub node_accesses: [u64; SharedSink::LEVELS],
    /// Buffer pool hits.
    pub buffer_hits: u64,
    /// Buffer pool misses.
    pub buffer_misses: u64,
    /// Bytes handed to the node decoder.
    pub bytes_decoded: u64,
    /// Best-first heap pushes.
    pub heap_pushes: u64,
    /// Best-first heap pops.
    pub heap_pops: u64,
    /// Physical reads retried after a retryable fault.
    pub io_retries: u64,
    /// Pages that failed checksum verification on fetch.
    pub checksum_failures: u64,
    /// Pages quarantined after exhausting their retry budget.
    pub pages_quarantined: u64,
}

impl SharedSinkSnapshot {
    /// Total node accesses across all levels.
    pub fn total_node_accesses(&self) -> u64 {
        self.node_accesses.iter().sum()
    }
}

impl SharedSink {
    /// Number of per-level node-access buckets.
    pub const LEVELS: usize = 16;

    /// A zeroed sink.
    pub fn new() -> Self {
        SharedSink::default()
    }

    fn record_node_access(&self, level: u8) {
        let idx = (level as usize).min(SharedSink::LEVELS - 1);
        self.node_accesses[idx].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Reads all counters. Relaxed ordering: the snapshot is a statistical
    /// summary, not a synchronisation point; take it after workers joined
    /// for exact totals.
    pub fn snapshot(&self) -> SharedSinkSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        let mut node_accesses = [0u64; SharedSink::LEVELS];
        for (slot, counter) in node_accesses.iter_mut().zip(self.node_accesses.iter()) {
            *slot = counter.load(Relaxed);
        }
        SharedSinkSnapshot {
            node_accesses,
            buffer_hits: self.buffer_hits.load(Relaxed),
            buffer_misses: self.buffer_misses.load(Relaxed),
            bytes_decoded: self.bytes_decoded.load(Relaxed),
            heap_pushes: self.heap_pushes.load(Relaxed),
            heap_pops: self.heap_pops.load(Relaxed),
            io_retries: self.io_retries.load(Relaxed),
            checksum_failures: self.checksum_failures.load(Relaxed),
            pages_quarantined: self.pages_quarantined.load(Relaxed),
        }
    }
}

impl MetricsSink for SharedSink {
    fn node_access(&mut self, level: u8) {
        self.record_node_access(level);
    }
    fn buffer_hit(&mut self) {
        self.buffer_hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn buffer_miss(&mut self) {
        self.buffer_misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn bytes_decoded(&mut self, n: u64) {
        self.bytes_decoded
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
    fn heap_push(&mut self) {
        self.heap_pushes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn heap_pop(&mut self) {
        self.heap_pops
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn io_retry(&mut self) {
        self.io_retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn io_checksum_failure(&mut self) {
        self.checksum_failures
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn io_quarantine(&mut self) {
        self.pages_quarantined
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl MetricsSink for &SharedSink {
    fn node_access(&mut self, level: u8) {
        self.record_node_access(level);
    }
    fn buffer_hit(&mut self) {
        self.buffer_hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn buffer_miss(&mut self) {
        self.buffer_misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn bytes_decoded(&mut self, n: u64) {
        self.bytes_decoded
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
    fn heap_push(&mut self) {
        self.heap_pushes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn heap_pop(&mut self) {
        self.heap_pops
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn io_retry(&mut self) {
        self.io_retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn io_checksum_failure(&mut self) {
        self.checksum_failures
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn io_quarantine(&mut self) {
        self.pages_quarantined
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl<S: MetricsSink + ?Sized> MetricsSink for &mut S {
    fn node_access(&mut self, level: u8) {
        (**self).node_access(level);
    }
    fn buffer_hit(&mut self) {
        (**self).buffer_hit();
    }
    fn buffer_miss(&mut self) {
        (**self).buffer_miss();
    }
    fn bytes_decoded(&mut self, n: u64) {
        (**self).bytes_decoded(n);
    }
    fn heap_push(&mut self) {
        (**self).heap_push();
    }
    fn heap_pop(&mut self) {
        (**self).heap_pop();
    }
    fn io_retry(&mut self) {
        (**self).io_retry();
    }
    fn io_checksum_failure(&mut self) {
        (**self).io_checksum_failure();
    }
    fn io_quarantine(&mut self) {
        (**self).io_quarantine();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Tally {
        nodes: Vec<u8>,
        hits: u64,
        misses: u64,
        bytes: u64,
        pushes: u64,
        pops: u64,
        retries: u64,
        checksum_failures: u64,
        quarantines: u64,
    }

    impl MetricsSink for Tally {
        fn node_access(&mut self, level: u8) {
            self.nodes.push(level);
        }
        fn buffer_hit(&mut self) {
            self.hits += 1;
        }
        fn buffer_miss(&mut self) {
            self.misses += 1;
        }
        fn bytes_decoded(&mut self, n: u64) {
            self.bytes += n;
        }
        fn heap_push(&mut self) {
            self.pushes += 1;
        }
        fn heap_pop(&mut self) {
            self.pops += 1;
        }
        fn io_retry(&mut self) {
            self.retries += 1;
        }
        fn io_checksum_failure(&mut self) {
            self.checksum_failures += 1;
        }
        fn io_quarantine(&mut self) {
            self.quarantines += 1;
        }
    }

    fn drive<S: MetricsSink>(sink: &mut S) {
        sink.node_access(0);
        sink.node_access(2);
        sink.buffer_hit();
        sink.buffer_miss();
        sink.bytes_decoded(4096);
        sink.heap_push();
        sink.heap_push();
        sink.heap_pop();
        sink.io_retry();
        sink.io_retry();
        sink.io_checksum_failure();
        sink.io_quarantine();
    }

    #[test]
    fn tally_sink_records_every_event() {
        let mut t = Tally::default();
        drive(&mut t);
        assert_eq!(t.nodes, vec![0, 2]);
        assert_eq!((t.hits, t.misses, t.bytes), (1, 1, 4096));
        assert_eq!((t.pushes, t.pops), (2, 1));
        assert_eq!((t.retries, t.checksum_failures, t.quarantines), (2, 1, 1));
    }

    #[test]
    fn mut_reference_forwards_to_the_underlying_sink() {
        let mut t = Tally::default();
        drive(&mut &mut t);
        assert_eq!(t.nodes, vec![0, 2]);
        assert_eq!(t.bytes, 4096);
    }

    #[test]
    fn noop_sink_accepts_every_event() {
        drive(&mut NoopSink);
    }

    #[test]
    fn shared_sink_records_through_shared_references() {
        let sink = SharedSink::new();
        drive(&mut &sink);
        drive(&mut &sink);
        let snap = sink.snapshot();
        assert_eq!(snap.total_node_accesses(), 4);
        assert_eq!(snap.node_accesses[0], 2);
        assert_eq!(snap.node_accesses[2], 2);
        assert_eq!((snap.buffer_hits, snap.buffer_misses), (2, 2));
        assert_eq!(snap.bytes_decoded, 8192);
        assert_eq!((snap.heap_pushes, snap.heap_pops), (4, 2));
        assert_eq!(snap.io_retries, 4);
        assert_eq!(snap.checksum_failures, 2);
        assert_eq!(snap.pages_quarantined, 2);
    }

    #[test]
    fn shared_sink_sums_across_threads() {
        let sink = SharedSink::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        drive(&mut &sink);
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.total_node_accesses(), 800);
        assert_eq!(snap.heap_pushes, 800);
    }

    #[test]
    fn deep_levels_saturate_into_the_last_bucket() {
        let sink = SharedSink::new();
        let mut by_ref = &sink;
        by_ref.node_access(200);
        by_ref.node_access(255);
        let snap = sink.snapshot();
        assert_eq!(snap.node_accesses[SharedSink::LEVELS - 1], 2);
    }
}
