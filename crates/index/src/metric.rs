//! A ball-partitioning metric tree over whole trajectories — the third
//! first-class index substrate, after Güting et al.'s N-tree observation
//! that DISSIM over co-temporal trajectories is (window-restricted) a
//! metric, so a covering-radius index can prune candidates the MBB filter
//! cannot.
//!
//! The structure has two coupled layers:
//!
//! * **Page layer** — segments live in single-trajectory leaf chains
//!   exactly like the TB-tree's (owner + doubly linked leaf list), under a
//!   wholesale-rebuilt MBB directory, so the tree is a full
//!   [`TrajectoryIndex`]: range queries, the generic MBB descent, the
//!   structural validator, and snapshots all work unchanged. Candidate
//!   refinement reads chain pages through the buffer pool, so the metric
//!   search pays honest I/O for every trajectory it cannot prune.
//! * **Ball layer** — an in-memory ball-partitioning directory over whole
//!   trajectories: each node holds a pivot trajectory and a covering
//!   radius (the maximum build-time distance from the pivot to any
//!   trajectory in its subtree); internal nodes split their population at
//!   the median pivot distance into a near and a far ball. Pivots are
//!   chosen by a deterministic seeded PRNG ([`mst_prng::Rng`]) over the id
//!   list sorted ascending, so two builds over the same population are
//!   identical — bit-for-bit reproducible searches.
//!
//! The ball directory is *metric-agnostic*: [`MetricTree::ensure_directory`]
//! takes the distance oracle as a closure (the search layer passes exact
//! DISSIM over the validity overlap), and the stored radii and member
//! distances are only ever interpreted against that same oracle. The
//! directory is rebuilt lazily on the first search after a mutation.

use std::collections::{HashMap, HashSet};

use mst_prng::Rng;
use mst_trajectory::{Mbb, Trajectory, TrajectoryId};

use crate::metrics::MetricsSink;
use crate::persist::{Image, ImageKind};
use crate::traits::Pager;
use crate::{
    IndexError, IndexStats, InternalEntry, LeafEntry, Node, PageId, PageStore, Result,
    TrajectoryIndex, INTERNAL_CAPACITY, LEAF_CAPACITY, PAGE_SIZE,
};

/// Fixed seed of the pivot-selection PRNG: every build over the same
/// population picks the same pivots, keeping searches reproducible.
const PIVOT_SEED: u64 = 0x4D53_5420_4D54_5245;

/// Maximum trajectories per ball-directory leaf before a median split.
const BALL_BUCKET: usize = 6;

/// Tolerance of the ball-invariant audit (radii and member distances are
/// pure copies of oracle outputs, so the slack only guards future
/// arithmetic in directory maintenance).
const BALL_TOL: f64 = 1e-9;

/// How a ball node partitions its population.
#[derive(Debug, Clone, PartialEq)]
pub enum BallKind {
    /// An internal ball: population split at the median pivot distance.
    Inner {
        /// Index (into the directory) of the ball holding the closer half.
        near: usize,
        /// Index of the ball holding the farther half.
        far: usize,
    },
    /// A leaf ball: the trajectories themselves, each with its build-time
    /// distance from this ball's pivot.
    Leaf {
        /// `(trajectory, distance-to-pivot)` pairs, in build order.
        members: Vec<(TrajectoryId, f64)>,
    },
}

/// One node of the ball directory.
#[derive(Debug, Clone, PartialEq)]
pub struct BallNode {
    /// The pivot trajectory this ball is centred on.
    pub pivot: TrajectoryId,
    /// Covering radius: an upper bound on the distance from the pivot to
    /// every trajectory in this ball's subtree.
    pub radius: f64,
    /// The node's children or members.
    pub kind: BallKind,
}

/// The ball-partitioning metric tree.
pub struct MetricTree {
    pager: Pager,
    root: Option<PageId>,
    height: u8,
    /// Current tip leaf of each trajectory's chain.
    tips: HashMap<TrajectoryId, PageId>,
    /// Parent page of every node (root absent); used to keep directory
    /// MBBs tight as tip leaves grow.
    parents: HashMap<PageId, PageId>,
    /// Every leaf page in creation order with its current MBB — the input
    /// of the wholesale directory rebuild.
    leaf_index: Vec<(PageId, Mbb)>,
    /// Position of each leaf page inside `leaf_index`.
    leaf_pos: HashMap<PageId, usize>,
    /// Directory (internal) pages, freed and rebuilt when a leaf appears.
    directory_pages: Vec<PageId>,
    /// Accumulated sample points per trajectory, in temporal order.
    samples: HashMap<TrajectoryId, Vec<(f64, f64, f64)>>,
    /// Assembled whole trajectories — revalidated on every insert, so
    /// query-time access never fails.
    trajectories: HashMap<TrajectoryId, Trajectory>,
    balls: Vec<BallNode>,
    ball_root: Option<usize>,
    balls_dirty: bool,
    num_entries: u64,
    max_speed: f64,
}

impl MetricTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        MetricTree {
            pager: Pager::new(),
            root: None,
            height: 0,
            tips: HashMap::new(),
            parents: HashMap::new(),
            leaf_index: Vec::new(),
            leaf_pos: HashMap::new(),
            directory_pages: Vec::new(),
            samples: HashMap::new(),
            trajectories: HashMap::new(),
            balls: Vec::new(),
            ball_root: None,
            balls_dirty: false,
            num_entries: 0,
            max_speed: 0.0,
        }
    }

    /// Inserts one trajectory segment.
    ///
    /// Segments of one trajectory must arrive in temporal order and be
    /// contiguous (each segment starts exactly where the previous one
    /// ended): the metric layer computes whole-trajectory distances, so a
    /// gap would make the cached trajectory — and with it every stored
    /// distance — undefined. Violations are a typed
    /// [`IndexError::BadInsert`] with the structure unchanged.
    pub fn insert(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert_impl(entry)?;
        self.paranoid_audit("insert");
        Ok(())
    }

    /// Audit hook behind the `paranoid` feature: re-validates the page
    /// structure and buffer accounting after a mutation, with the I/O
    /// counters snapshot-restored so measurements stay comparable.
    #[cfg(feature = "paranoid")]
    fn paranoid_audit(&mut self, op: &str) {
        let disk = self.pager.store.stats();
        let buf = self.pager.pool.stats();
        let reads = self.pager.node_reads;
        let failure = crate::check_invariants(self).err();
        self.pager.store.set_stats(disk);
        self.pager.pool.set_stats(buf);
        self.pager.node_reads = reads;
        if let Some(reason) = failure {
            let _ = &reason;
            debug_assert!(false, "paranoid audit after {op}: {reason}");
        }
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn paranoid_audit(&mut self, _op: &str) {}

    fn insert_impl(&mut self, entry: LeafEntry) -> Result<()> {
        // 1. Validate continuity against the cached samples and extend
        //    them, before any page mutates — a rejected insert leaves the
        //    tree exactly as it was.
        let s = entry.segment.start();
        let e = entry.segment.end();
        let pts = self.samples.entry(entry.traj).or_default();
        let added = if let Some(&(lt, lx, ly)) = pts.last() {
            if s.t.to_bits() != lt.to_bits()
                || s.x.to_bits() != lx.to_bits()
                || s.y.to_bits() != ly.to_bits()
            {
                return Err(IndexError::BadInsert(format!(
                    "metric tree requires contiguous segments per trajectory: segment starts \
                     at ({}, {}, {}) but the trajectory ends at ({lt}, {lx}, {ly})",
                    s.t, s.x, s.y
                )));
            }
            pts.push((e.t, e.x, e.y));
            1
        } else {
            pts.push((s.t, s.x, s.y));
            pts.push((e.t, e.x, e.y));
            2
        };
        match Trajectory::from_txy(pts) {
            Ok(t) => {
                self.trajectories.insert(entry.traj, t);
            }
            Err(err) => {
                let pts = self.samples.entry(entry.traj).or_default();
                pts.truncate(pts.len() - added);
                if pts.is_empty() {
                    self.samples.remove(&entry.traj);
                }
                return Err(IndexError::BadInsert(format!(
                    "segment does not extend a valid trajectory: {err}"
                )));
            }
        }
        self.max_speed = self.max_speed.max(entry.segment.speed());
        self.balls_dirty = true;

        // 2. Page layer: append to the trajectory's tip leaf, or start a
        //    new chained leaf and rebuild the MBB directory over it.
        if let Some(&tip) = self.tips.get(&entry.traj) {
            let mut node = self.pager.read_node(tip)?;
            let Node::Leaf { entries, .. } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page: tip,
                    reason: "tip is not a leaf".into(),
                });
            };
            if entries.len() < LEAF_CAPACITY {
                entries.push(entry);
                self.num_entries += 1;
                let mbb = node.mbb();
                self.pager.write_node(tip, &node)?;
                if let Some(&pos) = self.leaf_pos.get(&tip) {
                    if let Some(slot) = self.leaf_index.get_mut(pos) {
                        slot.1 = mbb;
                    }
                }
                return self.refresh_ancestors(tip, mbb);
            }
        }

        let prev_tip = self.tips.get(&entry.traj).copied();
        let traj = entry.traj;
        let new_leaf_node = Node::Leaf {
            entries: vec![entry],
            owner: Some(traj),
            prev: prev_tip,
            next: None,
        };
        let new_leaf = self.pager.allocate_node(&new_leaf_node)?;
        self.num_entries += 1;
        if let Some(prev) = prev_tip {
            let mut prev_node = self.pager.read_node(prev)?;
            if let Node::Leaf { next, .. } = &mut prev_node {
                *next = Some(new_leaf);
            }
            self.pager.write_node(prev, &prev_node)?;
        }
        self.tips.insert(traj, new_leaf);
        self.leaf_pos.insert(new_leaf, self.leaf_index.len());
        self.leaf_index.push((new_leaf, new_leaf_node.mbb()));
        self.rebuild_directory()
    }

    /// Rebuilds the MBB directory wholesale over `leaf_index` (called when
    /// a new leaf appears — every ~[`LEAF_CAPACITY`] inserts).
    fn rebuild_directory(&mut self) -> Result<()> {
        for page in std::mem::take(&mut self.directory_pages) {
            self.pager.free_node(page)?;
        }
        self.parents.clear();
        match self.leaf_index.as_slice() {
            [] => {
                self.root = None;
                self.height = 0;
                return Ok(());
            }
            [(page, _)] => {
                self.root = Some(*page);
                self.height = 1;
                return Ok(());
            }
            _ => {}
        }
        let mut level_entries: Vec<InternalEntry> = self
            .leaf_index
            .iter()
            .map(|&(child, mbb)| InternalEntry { child, mbb })
            .collect();
        let mut level: u8 = 1;
        loop {
            let mut next: Vec<InternalEntry> = Vec::new();
            for chunk in level_entries.chunks(INTERNAL_CAPACITY) {
                let node = Node::Internal {
                    level,
                    entries: chunk.to_vec(),
                };
                let page = self.pager.allocate_node(&node)?;
                self.directory_pages.push(page);
                for e in chunk {
                    self.parents.insert(e.child, page);
                }
                next.push(InternalEntry {
                    child: page,
                    mbb: node.mbb(),
                });
            }
            if let [root] = next.as_slice() {
                self.root = Some(root.child);
                self.height = level + 1;
                return Ok(());
            }
            level_entries = next;
            level = match level.checked_add(1) {
                Some(l) => l,
                None => {
                    return Err(IndexError::BadInsert(
                        "directory deeper than 255 levels".into(),
                    ))
                }
            };
        }
    }

    /// Propagates an updated leaf MBB to the root.
    fn refresh_ancestors(&mut self, mut child: PageId, mut child_mbb: Mbb) -> Result<()> {
        while let Some(&parent) = self.parents.get(&child) {
            let mut node = self.pager.read_node(parent)?;
            let Node::Internal { entries, .. } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page: parent,
                    reason: "parent map points at a leaf".into(),
                });
            };
            let slot = entries
                .iter_mut()
                .find(|e| e.child == child)
                .ok_or_else(|| IndexError::CorruptNode {
                    page: parent,
                    reason: "parent does not reference child".into(),
                })?;
            if *slot
                == (InternalEntry {
                    child,
                    mbb: child_mbb,
                })
            {
                break;
            }
            slot.mbb = child_mbb;
            let mbb = node.mbb();
            self.pager.write_node(parent, &node)?;
            child = parent;
            child_mbb = mbb;
        }
        Ok(())
    }

    /// Inserts every segment of `trajectory` under `id`.
    pub fn insert_trajectory(&mut self, id: TrajectoryId, trajectory: &Trajectory) -> Result<()> {
        for (seq, segment) in trajectory.segments().enumerate() {
            let seq = u32::try_from(seq)
                .map_err(|_| IndexError::BadInsert(format!("segment count {seq} exceeds u32")))?;
            self.insert(LeafEntry {
                traj: id,
                seq,
                segment,
            })?;
        }
        Ok(())
    }

    /// Number of whole trajectories the tree holds.
    pub fn num_trajectories(&self) -> usize {
        self.trajectories.len()
    }

    /// The ids of every indexed trajectory, ascending.
    pub fn trajectory_ids(&self) -> Vec<TrajectoryId> {
        let mut ids: Vec<TrajectoryId> = self.trajectories.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The cached whole trajectory of `id` (metadata access: validity
    /// window, pivot geometry). Refinement should read the chain pages via
    /// [`MetricTree::assemble_trajectory_traced`] instead, so candidate
    /// I/O stays honest.
    pub fn cached_trajectory(&self, id: TrajectoryId) -> Option<&Trajectory> {
        self.trajectories.get(&id)
    }

    /// Root of the ball directory, when built and non-empty.
    pub fn ball_root(&self) -> Option<usize> {
        self.ball_root
    }

    /// A ball-directory node by index.
    pub fn ball(&self, idx: usize) -> Option<&BallNode> {
        self.balls.get(idx)
    }

    /// Number of ball-directory nodes.
    pub fn ball_count(&self) -> usize {
        self.balls.len()
    }

    /// True when a mutation has invalidated the ball directory.
    pub fn directory_stale(&self) -> bool {
        self.balls_dirty
    }

    /// Builds (or rebuilds, after mutations) the ball directory using
    /// `dist` as the metric oracle. The oracle must be symmetric and
    /// satisfy the triangle inequality on the population for the stored
    /// radii to prune soundly; the search layer passes exact DISSIM over
    /// the trajectories' validity overlap. A no-op when the directory is
    /// current.
    pub fn ensure_directory<E, F>(&mut self, mut dist: F) -> std::result::Result<(), E>
    where
        E: std::fmt::Display,
        F: FnMut(&Trajectory, &Trajectory) -> std::result::Result<f64, E>,
    {
        if !self.balls_dirty {
            return Ok(());
        }
        self.balls.clear();
        self.ball_root = None;
        let ids = self.trajectory_ids();
        if !ids.is_empty() {
            let mut rng = Rng::seed_from(PIVOT_SEED);
            let root = build_ball(
                &self.trajectories,
                &mut self.balls,
                &ids,
                &mut rng,
                &mut dist,
            )?;
            self.ball_root = root;
        }
        self.balls_dirty = false;
        #[cfg(feature = "paranoid")]
        {
            if let Err(reason) = self.check_ball_invariants(&mut dist) {
                let _ = &reason;
                debug_assert!(false, "paranoid ball audit after build: {reason}");
            }
        }
        Ok(())
    }

    /// Audits the ball directory against the oracle that built it:
    ///
    /// 1. every subtree trajectory lies within its ball's covering radius;
    /// 2. every leaf member's stored pivot distance matches the oracle;
    /// 3. each ball's pivot belongs to its own subtree;
    /// 4. the leaves partition the population exactly (each trajectory in
    ///    exactly one leaf).
    ///
    /// Returns a description of the first violation. A stale directory
    /// (mutated since the last build) is reported as such.
    pub fn check_ball_invariants<E, F>(&self, mut dist: F) -> std::result::Result<(), String>
    where
        E: std::fmt::Display,
        F: FnMut(&Trajectory, &Trajectory) -> std::result::Result<f64, E>,
    {
        if self.balls_dirty {
            return Err("ball directory is stale: mutations since the last build".into());
        }
        let Some(root) = self.ball_root else {
            if self.trajectories.is_empty() {
                return Ok(());
            }
            return Err("tree holds trajectories but the ball directory is empty".into());
        };
        let mut covered: HashSet<TrajectoryId> = HashSet::new();
        self.audit_ball(root, &mut covered, &mut dist)?;
        if covered.len() != self.trajectories.len()
            || !self.trajectories.keys().all(|id| covered.contains(id))
        {
            return Err(format!(
                "ball leaves cover {} trajectories but the tree holds {}",
                covered.len(),
                self.trajectories.len()
            ));
        }
        Ok(())
    }

    /// Recursive arm of [`MetricTree::check_ball_invariants`]; returns the
    /// subtree's trajectory ids via `covered`.
    fn audit_ball<E, F>(
        &self,
        idx: usize,
        covered: &mut HashSet<TrajectoryId>,
        dist: &mut F,
    ) -> std::result::Result<Vec<TrajectoryId>, String>
    where
        E: std::fmt::Display,
        F: FnMut(&Trajectory, &Trajectory) -> std::result::Result<f64, E>,
    {
        let Some(node) = self.balls.get(idx) else {
            return Err(format!("ball index {idx} out of bounds"));
        };
        let Some(pivot_t) = self.trajectories.get(&node.pivot) else {
            return Err(format!("ball {idx} pivots on unknown {}", node.pivot));
        };
        let subtree: Vec<TrajectoryId> = match &node.kind {
            BallKind::Inner { near, far } => {
                let mut ids = self.audit_ball(*near, covered, dist)?;
                ids.extend(self.audit_ball(*far, covered, dist)?);
                ids
            }
            BallKind::Leaf { members } => {
                for &(id, stored) in members {
                    if !covered.insert(id) {
                        return Err(format!("{id} appears in more than one ball leaf"));
                    }
                    let Some(t) = self.trajectories.get(&id) else {
                        return Err(format!("ball leaf {idx} lists unknown {id}"));
                    };
                    let d = dist(pivot_t, t).map_err(|e| format!("distance oracle: {e}"))?;
                    if (d - stored).abs() > BALL_TOL {
                        return Err(format!(
                            "ball leaf {idx}: stored pivot distance {stored} for {id} \
                             disagrees with the oracle ({d})"
                        ));
                    }
                }
                members.iter().map(|&(id, _)| id).collect()
            }
        };
        if !subtree.contains(&node.pivot) {
            return Err(format!(
                "ball {idx}: pivot {} is not in its own subtree",
                node.pivot
            ));
        }
        for id in &subtree {
            let Some(t) = self.trajectories.get(id) else {
                return Err(format!("ball {idx} subtree lists unknown {id}"));
            };
            let d = dist(pivot_t, t).map_err(|e| format!("distance oracle: {e}"))?;
            if d > node.radius + BALL_TOL {
                return Err(format!(
                    "ball {idx}: {id} at distance {d} escapes the covering radius {}",
                    node.radius
                ));
            }
        }
        Ok(subtree)
    }

    /// Reassembles the whole trajectory of `id` by walking its leaf chain
    /// through the buffer pool — every page touched is reported to `sink`,
    /// so refinement I/O shows up in profiles exactly like the MBB
    /// substrates' leaf reads. Returns `None` for an unknown trajectory.
    pub fn assemble_trajectory_traced<S: MetricsSink>(
        &mut self,
        id: TrajectoryId,
        sink: &mut S,
    ) -> Result<Option<Trajectory>> {
        let Some(&tip) = self.tips.get(&id) else {
            return Ok(None);
        };
        let mut entries: Vec<LeafEntry> = Vec::new();
        let mut cursor = Some(tip);
        let mut seen: HashSet<PageId> = HashSet::new();
        while let Some(page) = cursor {
            if !seen.insert(page) {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "leaf chain contains a cycle".into(),
                });
            }
            let node = self.pager.read_node_traced(page, sink)?;
            let Node::Leaf {
                entries: es, prev, ..
            } = node
            else {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "leaf chain points at an internal node".into(),
                });
            };
            entries.extend(es.into_iter().rev());
            cursor = prev;
        }
        entries.reverse();
        entries.sort_by_key(|e| e.seq);
        if entries.is_empty() {
            return Ok(None);
        }
        let mut pts: Vec<(f64, f64, f64)> = Vec::with_capacity(entries.len() + 1);
        for (i, e) in entries.iter().enumerate() {
            let s = e.segment.start();
            if i == 0 {
                pts.push((s.t, s.x, s.y));
            } else {
                let p = entries[i - 1].segment.end();
                if s.t.to_bits() != p.t.to_bits()
                    || s.x.to_bits() != p.x.to_bits()
                    || s.y.to_bits() != p.y.to_bits()
                {
                    return Err(IndexError::CorruptNode {
                        page: tip,
                        reason: format!("chain of {id} is not contiguous at seq {}", e.seq),
                    });
                }
            }
            let end = e.segment.end();
            pts.push((end.t, end.x, end.y));
        }
        Trajectory::from_txy(&pts)
            .map(Some)
            .map_err(|err| IndexError::CorruptNode {
                page: tip,
                reason: format!("chain of {id} does not assemble: {err}"),
            })
    }

    /// Flushes dirty buffered pages to the page store.
    pub fn flush(&mut self) -> Result<()> {
        self.pager.pool.flush(&mut self.pager.store)
    }

    /// Serializes the whole index into `writer` with LSN 0 — use
    /// [`MetricTree::save_lsn`] when the tree lives under a write-ahead
    /// log.
    pub fn save<W: std::io::Write>(&mut self, writer: W) -> Result<()> {
        self.save_lsn(writer, 0)
    }

    /// Serializes the whole index, stamping the image with the log
    /// sequence number it is consistent through. Only the page layer is
    /// persisted — the ball directory is derived state and is rebuilt by
    /// the first search after loading.
    pub fn save_lsn<W: std::io::Write>(&mut self, writer: W, lsn: u64) -> Result<()> {
        self.flush()?;
        let mut tips: Vec<(TrajectoryId, PageId)> =
            self.tips.iter().map(|(t, p)| (*t, *p)).collect();
        tips.sort();
        let image = Image {
            kind: ImageKind::MetricTree,
            lsn,
            root: self.root,
            height: self.height,
            entries: self.num_entries,
            max_speed: self.max_speed,
            pages: self.pager.store.raw_pages().map(Box::from).collect(),
            free_list: self.pager.store.free_list().to_vec(),
            tips,
            parents: Vec::new(),
        };
        image.write_to(writer)
    }

    /// Saves the index to a file.
    pub fn save_to_path<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<()> {
        let file = std::fs::File::create(path).map_err(|e| IndexError::Persist(e.to_string()))?;
        self.save(std::io::BufWriter::new(file))
    }

    /// Reconstructs an index from a persisted image.
    pub fn load<R: std::io::Read>(reader: R) -> Result<Self> {
        Ok(Self::load_lsn(reader)?.0)
    }

    /// Reconstructs an index from a persisted image, also returning the
    /// log sequence number the image is consistent through.
    ///
    /// The image's leaf chains are walked and every segment re-inserted in
    /// `(trajectory, sequence)` order: the derived state (cached
    /// trajectories, leaf index, directory) is rebuilt from first
    /// principles, so a structurally inconsistent image is rejected rather
    /// than trusted.
    pub fn load_lsn<R: std::io::Read>(reader: R) -> Result<(Self, u64)> {
        let image = Image::read_from(reader)?;
        if image.kind != ImageKind::MetricTree {
            return Err(IndexError::Persist(
                "image does not hold a metric tree".into(),
            ));
        }
        let lsn = image.lsn;
        let expected_entries = image.entries;
        let store = PageStore::from_raw(image.pages, image.free_list);
        let mut pager = Pager::from_store(store);
        let mut entries: Vec<LeafEntry> = Vec::new();
        for (traj, tip) in &image.tips {
            let mut cursor = Some(*tip);
            let mut seen: HashSet<PageId> = HashSet::new();
            while let Some(page) = cursor {
                if !seen.insert(page) {
                    return Err(IndexError::Persist(format!(
                        "leaf chain of {traj} contains a cycle at {page:?}"
                    )));
                }
                let node = pager.read_node(page)?;
                let Node::Leaf {
                    entries: es,
                    owner,
                    prev,
                    ..
                } = node
                else {
                    return Err(IndexError::Persist(format!(
                        "leaf chain of {traj} points at an internal node"
                    )));
                };
                if owner != Some(*traj) {
                    return Err(IndexError::Persist(format!(
                        "leaf chain of {traj} crosses into a leaf owned by {owner:?}"
                    )));
                }
                entries.extend(es);
                cursor = prev;
            }
        }
        if u64::try_from(entries.len()).unwrap_or(u64::MAX) != expected_entries {
            return Err(IndexError::Persist(format!(
                "image advertises {expected_entries} entries but its chains hold {}",
                entries.len()
            )));
        }
        entries.sort_by(|a, b| a.traj.cmp(&b.traj).then(a.seq.cmp(&b.seq)));
        let mut tree = MetricTree::new();
        for e in entries {
            tree.insert_impl(e)
                .map_err(|err| IndexError::Persist(format!("image replay: {err}")))?;
        }
        Ok((tree, lsn))
    }

    /// Loads an index from a file.
    pub fn load_from_path<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path).map_err(|e| IndexError::Persist(e.to_string()))?;
        Self::load(std::io::BufReader::new(file))
    }
}

/// Recursively builds a ball over `ids`, appending nodes to `balls` and
/// returning the subtree root's index (`None` only for an empty id list).
fn build_ball<E, F>(
    trajs: &HashMap<TrajectoryId, Trajectory>,
    balls: &mut Vec<BallNode>,
    ids: &[TrajectoryId],
    rng: &mut Rng,
    dist: &mut F,
) -> std::result::Result<Option<usize>, E>
where
    F: FnMut(&Trajectory, &Trajectory) -> std::result::Result<f64, E>,
{
    if ids.is_empty() {
        return Ok(None);
    }
    let pivot = ids[rng.usize_below(ids.len())];
    let Some(pivot_t) = trajs.get(&pivot) else {
        // Ids originate from the trajectory map; an absent pivot would be
        // a caller bug, degraded here into an empty subtree.
        return Ok(None);
    };
    let mut with_dist: Vec<(f64, TrajectoryId)> = Vec::with_capacity(ids.len());
    for &id in ids {
        let Some(t) = trajs.get(&id) else { continue };
        with_dist.push((dist(pivot_t, t)?, id));
    }
    let radius = with_dist.iter().fold(0.0_f64, |acc, &(d, _)| acc.max(d));
    if with_dist.len() <= BALL_BUCKET {
        balls.push(BallNode {
            pivot,
            radius,
            kind: BallKind::Leaf {
                members: with_dist.iter().map(|&(d, id)| (id, d)).collect(),
            },
        });
        return Ok(Some(balls.len() - 1));
    }
    with_dist.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mid = with_dist.len() / 2;
    let near_ids: Vec<TrajectoryId> = with_dist[..mid].iter().map(|&(_, id)| id).collect();
    let far_ids: Vec<TrajectoryId> = with_dist[mid..].iter().map(|&(_, id)| id).collect();
    let (Some(near), Some(far)) = (
        build_ball(trajs, balls, &near_ids, rng, dist)?,
        build_ball(trajs, balls, &far_ids, rng, dist)?,
    ) else {
        // Both halves are non-empty by construction (mid >= 1 and
        // len - mid >= 1); an empty child means the map lost ids mid-build.
        return Ok(None);
    };
    balls.push(BallNode {
        pivot,
        radius,
        kind: BallKind::Inner { near, far },
    });
    Ok(Some(balls.len() - 1))
}

impl Default for MetricTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
impl MetricTree {
    /// Test-only: inflate or shrink a ball's covering radius, bypassing
    /// every invariant — used by the negative audit tests.
    pub(crate) fn corrupt_ball_radius_for_tests(&mut self, idx: usize, radius: f64) {
        if let Some(b) = self.balls.get_mut(idx) {
            b.radius = radius;
        }
    }

    /// Test-only: bend a leaf member's stored pivot distance.
    pub(crate) fn corrupt_ball_member_for_tests(&mut self, idx: usize, pos: usize, d: f64) {
        if let Some(BallNode {
            kind: BallKind::Leaf { members },
            ..
        }) = self.balls.get_mut(idx)
        {
            if let Some(m) = members.get_mut(pos) {
                m.1 = d;
            }
        }
    }

    /// Test-only: overwrite a node's page, bypassing every invariant.
    pub(crate) fn corrupt_node_for_tests(&mut self, page: PageId, node: &Node) -> Result<()> {
        self.pager.write_node(page, node)
    }
}

impl crate::TrajectoryIndexWrite for MetricTree {
    fn insert_entry(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert(entry)
    }
    // delete_entry keeps the refusing default: point deletes would leave
    // the cached trajectories (and with them every stored ball distance)
    // inconsistent, so the substrate declares itself delete-free.
}

impl TrajectoryIndex for MetricTree {
    fn root(&self) -> Option<PageId> {
        self.root
    }

    fn read_node(&mut self, page: PageId) -> Result<Node> {
        self.pager.read_node(page)
    }

    fn read_node_traced<S: MetricsSink>(&mut self, page: PageId, sink: &mut S) -> Result<Node> {
        self.pager.read_node_traced(page, sink)
    }

    fn num_pages(&self) -> usize {
        self.pager.store.num_pages()
    }

    fn num_entries(&self) -> u64 {
        self.num_entries
    }

    fn height(&self) -> u8 {
        self.height
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            pages: self.pager.store.num_pages(),
            size_bytes: self.pager.store.num_pages() * PAGE_SIZE,
            height: self.height,
            entries: self.num_entries,
            node_reads: self.pager.node_reads,
            disk: self.pager.store.stats(),
            buffer: self.pager.pool.stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pager.reset_stats();
    }

    fn clear_buffer(&mut self) -> Result<()> {
        self.pager.clear_buffer()
    }

    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        self.pager.set_fixed_capacity(capacity)
    }

    fn set_fault_injection(&mut self, config: Option<crate::fault::FaultConfig>) -> Result<()> {
        self.pager.set_fault_injection(config);
        Ok(())
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.pager.store.fault_stats()
    }

    fn leaf_chain_tips(&self) -> Vec<(TrajectoryId, PageId)> {
        let mut tips: Vec<(TrajectoryId, PageId)> =
            self.tips.iter().map(|(&t, &p)| (t, p)).collect();
        tips.sort_unstable();
        tips
    }

    fn audit_buffer(&self) -> std::result::Result<(), String> {
        self.pager.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_invariants;
    use mst_trajectory::{SamplePoint, Segment, TimeInterval};
    use std::convert::Infallible;

    /// A cheap deterministic metric for directory tests: distance between
    /// the trajectories' first sample points (a true metric on the test
    /// population, which has distinct starts).
    fn start_dist(a: &Trajectory, b: &Trajectory) -> std::result::Result<f64, Infallible> {
        let (pa, pb) = (a.position_at(a.start_time()), b.position_at(b.start_time()));
        match (pa, pb) {
            (Ok(x), Ok(y)) => Ok(x.distance(&y)),
            _ => Ok(0.0),
        }
    }

    fn traj(y: f64, steps: u32) -> Trajectory {
        let pts: Vec<(f64, f64, f64)> = (0..=steps)
            .map(|s| (f64::from(s), f64::from(s) * 0.5, y))
            .collect();
        Trajectory::from_txy(&pts).unwrap()
    }

    fn build(objects: u64, steps: u32) -> MetricTree {
        let mut t = MetricTree::new();
        // Interleaved temporal arrival, as a MOD would deliver.
        let store: Vec<(TrajectoryId, Trajectory)> = (0..objects)
            .map(|id| (TrajectoryId(id), traj(id as f64 * 3.0, steps)))
            .collect();
        for s in 0..steps {
            for (id, tr) in &store {
                let seg = tr.segment(s as usize);
                t.insert(LeafEntry {
                    traj: *id,
                    seq: s,
                    segment: seg,
                })
                .unwrap();
            }
        }
        t
    }

    #[test]
    fn page_structure_validates_and_reconstructs() {
        let mut t = build(5, 150);
        assert_eq!(t.num_entries(), 750);
        assert_eq!(t.num_trajectories(), 5);
        let report = check_invariants(&mut t).unwrap();
        assert!(report.leaves >= 15, "150 segments need >= 3 leaves each");
        let mut sink = crate::metrics::NoopSink;
        for id in 0..5 {
            let got = t
                .assemble_trajectory_traced(TrajectoryId(id), &mut sink)
                .unwrap()
                .unwrap();
            assert_eq!(got.num_segments(), 150);
            assert_eq!(&got, t.cached_trajectory(TrajectoryId(id)).unwrap());
        }
        assert!(t
            .assemble_trajectory_traced(TrajectoryId(99), &mut sink)
            .unwrap()
            .is_none());
    }

    #[test]
    fn rejects_gaps_and_leaves_the_tree_unchanged() {
        let mut t = build(2, 10);
        let before = t.num_entries();
        let bad = LeafEntry {
            traj: TrajectoryId(0),
            seq: 10,
            // Starts one time unit after trajectory 0 ends: a gap.
            segment: Segment::new(
                SamplePoint::new(11.0, 5.0, 0.0),
                SamplePoint::new(12.0, 5.5, 0.0),
            )
            .unwrap(),
        };
        assert!(matches!(t.insert(bad), Err(IndexError::BadInsert(_))));
        assert_eq!(t.num_entries(), before);
        check_invariants(&mut t).unwrap();
        // The cached trajectory is untouched.
        assert_eq!(
            t.cached_trajectory(TrajectoryId(0)).unwrap().end_time(),
            10.0
        );
    }

    #[test]
    fn ball_directory_is_deterministic_and_valid() {
        let mut t = build(20, 12);
        t.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        assert!(t.ball_count() > 1, "20 trajectories split past one bucket");
        t.check_ball_invariants(|a, b| start_dist(a, b)).unwrap();
        let first: Vec<BallNode> = t.balls.clone();
        // Rebuild from scratch: identical directory.
        t.balls_dirty = true;
        t.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        assert_eq!(t.balls, first);
        // A mutation marks it stale; the audit notices.
        let extra = traj(100.0, 3);
        t.insert_trajectory(TrajectoryId(90), &extra).unwrap();
        assert!(t.directory_stale());
        assert!(t
            .check_ball_invariants(|a, b| start_dist(a, b))
            .unwrap_err()
            .contains("stale"));
        t.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        t.check_ball_invariants(|a, b| start_dist(a, b)).unwrap();
    }

    #[test]
    fn shrunken_radius_is_detected() {
        let mut t = build(20, 12);
        t.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        let root = t.ball_root().unwrap();
        t.corrupt_ball_radius_for_tests(root, 0.0);
        let err = t
            .check_ball_invariants(|a, b| start_dist(a, b))
            .unwrap_err();
        assert!(err.contains("escapes the covering radius"), "{err}");
    }

    #[test]
    fn bent_member_distance_is_detected() {
        let mut t = build(20, 12);
        t.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        let leaf = (0..t.ball_count())
            .find(|&i| matches!(t.ball(i).unwrap().kind, BallKind::Leaf { .. }))
            .unwrap();
        t.corrupt_ball_member_for_tests(leaf, 0, 1e9);
        let err = t
            .check_ball_invariants(|a, b| start_dist(a, b))
            .unwrap_err();
        assert!(err.contains("disagrees with the oracle"), "{err}");
    }

    #[test]
    fn corrupted_chain_fails_assembly() {
        let mut t = build(3, 150);
        let (owner, tip) = t.leaf_chain_tips()[0];
        let Node::Leaf {
            mut entries,
            owner: o,
            prev,
            next,
        } = t.read_node(tip).unwrap()
        else {
            panic!("tips point at leaves");
        };
        // Teleport the last segment: the chain is no longer contiguous.
        let broken = entries.pop().unwrap();
        let s = broken.segment.start();
        let e = broken.segment.end();
        entries.push(LeafEntry {
            traj: broken.traj,
            seq: broken.seq,
            segment: Segment::new(
                SamplePoint::new(s.t, s.x + 50.0, s.y),
                SamplePoint::new(e.t, e.x + 50.0, e.y),
            )
            .unwrap(),
        });
        t.corrupt_node_for_tests(
            tip,
            &Node::Leaf {
                entries,
                owner: o,
                prev,
                next,
            },
        )
        .unwrap();
        let mut sink = crate::metrics::NoopSink;
        let err = t
            .assemble_trajectory_traced(owner, &mut sink)
            .expect_err("teleported segment must fail assembly");
        assert!(matches!(err, IndexError::CorruptNode { .. }));
    }

    #[test]
    fn range_query_sees_everything() {
        let mut t = build(4, 100);
        let all = t
            .range_query(&Mbb::new(-1e12, -1e12, -1e12, 1e12, 1e12, 1e12))
            .unwrap();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn persistence_roundtrips_and_rejects_mismatches() {
        let mut t = build(6, 120);
        t.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        let mut bytes = Vec::new();
        t.save_lsn(&mut bytes, 42).unwrap();
        let (mut loaded, lsn) = MetricTree::load_lsn(&bytes[..]).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(loaded.num_entries(), t.num_entries());
        assert_eq!(loaded.num_trajectories(), 6);
        assert_eq!(loaded.max_speed(), t.max_speed());
        check_invariants(&mut loaded).unwrap();
        for id in 0..6 {
            assert_eq!(
                loaded.cached_trajectory(TrajectoryId(id)),
                t.cached_trajectory(TrajectoryId(id))
            );
        }
        // The rebuilt ball directory over the same population is identical.
        loaded.ensure_directory(|a, b| start_dist(a, b)).unwrap();
        assert_eq!(loaded.balls, t.balls);
        // The loaded tree keeps accepting inserts.
        let more = traj(500.0, 4);
        loaded.insert_trajectory(TrajectoryId(50), &more).unwrap();
        check_invariants(&mut loaded).unwrap();
        // Other substrates' images are refused.
        let mut rtree = crate::Rtree3D::new();
        rtree
            .insert(LeafEntry {
                traj: TrajectoryId(0),
                seq: 0,
                segment: Segment::new(
                    SamplePoint::new(0.0, 0.0, 0.0),
                    SamplePoint::new(1.0, 1.0, 0.0),
                )
                .unwrap(),
            })
            .unwrap();
        let mut other = Vec::new();
        rtree.save(&mut other).unwrap();
        assert!(matches!(
            MetricTree::load(&other[..]),
            Err(IndexError::Persist(_))
        ));
        // Truncations are clean persistence errors at every depth.
        for cut in [4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                MetricTree::load(&bytes[..cut]),
                Err(IndexError::Persist(_))
            ));
        }
    }

    #[test]
    fn delete_is_refused() {
        use crate::TrajectoryIndexWrite;
        let mut t = build(2, 10);
        assert!(t.delete_entry(TrajectoryId(0), 0).is_err());
    }

    #[test]
    fn single_trajectory_tree_and_window_queries() {
        let mut t = MetricTree::new();
        let tr = traj(0.0, 70);
        t.insert_trajectory(TrajectoryId(9), &tr).unwrap();
        // 70 segments overflow one leaf (capacity 67): two leaves + root.
        assert_eq!(t.height(), 2);
        check_invariants(&mut t).unwrap();
        let window = TimeInterval::new(10.0, 20.0).unwrap();
        let hits = t
            .range_query(&Mbb::new(
                -1e12,
                -1e12,
                window.start(),
                1e12,
                1e12,
                window.end(),
            ))
            .unwrap();
        // Segments [9,10] through [20,21] all touch the window: 12 hits.
        assert_eq!(hits.len(), 12);
    }
}
