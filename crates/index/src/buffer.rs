//! LRU page buffer.
//!
//! The paper's experiments use "a (variable size) buffer fitting 10% of the
//! index size, with a maximum capacity of 1000 pages". [`BufferPool`]
//! reproduces that: a write-back LRU cache in front of the [`PageStore`],
//! with hit/miss/eviction accounting. The underlying [`LruCache`] is a
//! general-purpose O(1) structure (hash map + arena-allocated doubly linked
//! list) that is also unit-tested on its own.
//!
//! # Fault handling
//!
//! The pool is the single chokepoint between node consumers and physical
//! pages, so page-level fault tolerance lives here. Every dirty page is
//! sealed — its checksum embedded — as it leaves for the store, and every
//! page faulted in is checksum-verified ([`crate::checksum`]); a transient
//! read error or a checksum mismatch is retried up to [`RETRY_LIMIT`]
//! times with exponential *accounted* backoff (no sleeping — library
//! crates are wall-clock-free, so backoff is a counter the caller can
//! convert to time). A page that exhausts its retries is **quarantined**:
//! further reads fail fast with
//! [`crate::IndexError::PageUnavailable`] instead of hammering a rotten
//! page. A successful [`BufferPool::write`] of fresh content lifts the
//! quarantine — the write-back of a re-built node is exactly the repair
//! action that makes the page trustworthy again (self-healing).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::fault::PageIo;
use crate::{IndexError, PageId, Result, Unavailability, PAGE_SIZE};

/// How many times a retryable fault (transient I/O, checksum mismatch) is
/// retried before the page is quarantined. With the injector's worst
/// realistic transient rates (≤ 20%), four attempts mask virtually every
/// fault; a *persistent* corruption fails all four and gets quarantined.
pub const RETRY_LIMIT: u32 = 3;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache with O(1) get/insert/evict.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        self.slots[i].value.as_ref()
    }

    /// Mutable lookup, promoting to most-recently-used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let &i = self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        self.slots[i].value.as_mut()
    }

    /// True when `key` is cached (does *not* promote).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key -> value` as most-recently-used. Returns the evicted
    /// `(key, value)` when the cache was full, or the replaced value when the
    /// key was already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            let old = self.slots[i]
                .value
                .replace(value)
                // invariant: `map` only points at occupied slots.
                .expect("live slots always hold a value");
            if i != self.head {
                self.unlink(i);
                self.push_front(i);
            }
            return Some((key, old));
        }
        let evicted = if self.map.len() >= self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let slot = Slot {
            key: key.clone(),
            value: Some(value),
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(free) = self.free.pop() {
            self.slots[free] = slot;
            free
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let i = self.tail;
        self.unlink(i);
        self.free.push(i);
        let key = self.slots[i].key.clone();
        self.map.remove(&key);
        let value = self.slots[i]
            .value
            .take()
            // invariant: `map` only points at occupied slots.
            .expect("live slots always hold a value");
        Some((key, value))
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        self.slots[i].value.take()
    }

    /// Drains the cache in LRU-to-MRU order.
    pub fn drain(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(kv) = self.pop_lru() {
            out.push(kv);
        }
        out
    }

    /// Adjusts the capacity, returning entries evicted to fit (LRU first).
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<(K, V)> {
        self.capacity = capacity.max(1);
        let mut evicted = Vec::new();
        while self.map.len() > self.capacity {
            if let Some(kv) = self.pop_lru() {
                evicted.push(kv);
            }
        }
        evicted
    }

    /// Verifies the map/list/arena bookkeeping: the list is a cycle-free
    /// chain whose ends match `head`/`tail`, every linked slot is occupied
    /// and mapped back to its index, and free slots are empty. O(n); meant
    /// for test harnesses and the `paranoid` audit hooks.
    pub fn audit(&self) -> std::result::Result<(), String> {
        let mut walked = 0usize;
        let mut prev = NIL;
        let mut i = self.head;
        while i != NIL {
            if walked >= self.slots.len() {
                return Err("LRU list contains a cycle".into());
            }
            let slot = self
                .slots
                .get(i)
                .ok_or_else(|| format!("list index {i} is out of bounds"))?;
            if slot.prev != prev {
                return Err(format!(
                    "slot {i}: prev link {} disagrees with the walk ({prev})",
                    slot.prev
                ));
            }
            if slot.value.is_none() {
                return Err(format!("slot {i} is linked but holds no value"));
            }
            if self.map.get(&slot.key) != Some(&i) {
                return Err(format!("slot {i}: its key does not map back to it"));
            }
            walked += 1;
            prev = i;
            i = slot.next;
        }
        if prev != self.tail {
            return Err(format!(
                "tail {} disagrees with the walk ({prev})",
                self.tail
            ));
        }
        if walked != self.map.len() {
            return Err(format!(
                "list links {walked} slots but the map holds {}",
                self.map.len()
            ));
        }
        for &f in &self.free {
            if self.slots.get(f).map_or(true, |s| s.value.is_some()) {
                return Err(format!("free slot {f} still holds a value"));
            }
        }
        Ok(())
    }

    /// Iterates over `(key, value)` pairs in unspecified order without
    /// promoting anything.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(move |(k, &i)| {
            (
                k,
                self.slots[i]
                    .value
                    .as_ref()
                    // invariant: `map` only points at occupied slots.
                    .expect("live slots always hold a value"),
            )
        })
    }
}

/// Hit/miss statistics of the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests satisfied from the buffer.
    pub hits: u64,
    /// Page requests that went to the disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to disk on eviction or flush.
    pub writebacks: u64,
    /// Physical reads retried after a retryable fault.
    pub retries: u64,
    /// Fetches that failed checksum verification.
    pub checksum_failures: u64,
    /// Pages quarantined after exhausting their retry budget.
    pub quarantined: u64,
    /// Simulated backoff accrued across retries (exponential units:
    /// 1, 2, 4, … per successive retry of one fetch). A deployment maps
    /// one unit to its base backoff interval.
    pub backoff_units: u64,
}

#[derive(Default)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
}

/// Seals `data` — embedding its checksum — and hands it to the store: the
/// single physical-write path of the pool. Hashing happens here, at the
/// disk boundary, rather than on every logical node encode, so a hot page
/// rewritten many times while cached is sealed once, when it actually
/// leaves for disk.
fn seal_and_write<S: PageIo>(store: &mut S, id: PageId, data: &mut [u8]) -> Result<()> {
    crate::checksum::embed(data);
    store.write_page(id, data)
}

/// A write-back LRU buffer pool in front of a [`PageStore`].
pub struct BufferPool {
    cache: LruCache<PageId, Frame>,
    /// Outstanding pin counts. Pins are short-lived — taken while a caller
    /// decodes a frame's bytes — and every pin must be matched by an
    /// [`BufferPool::unpin`] before the pool is considered idle; the audits
    /// flag leftovers as leaks.
    pins: HashMap<PageId, u32>,
    /// Pages that exhausted their retry budget. Reads fail fast until a
    /// write of fresh content heals them.
    quarantined: HashSet<PageId>,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool caching at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            cache: LruCache::new(capacity),
            pins: HashMap::new(),
            quarantined: HashSet::new(),
            stats: BufferStats::default(),
        }
    }

    /// True when `id` is currently quarantined.
    pub fn is_quarantined(&self, id: PageId) -> bool {
        self.quarantined.contains(&id)
    }

    /// Number of currently quarantined pages.
    pub fn quarantined_pages(&self) -> usize {
        self.quarantined.len()
    }

    /// Current page capacity.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Resizes the pool (the paper's buffer grows with the index: 10% of its
    /// pages up to 1000), writing back any dirty pages that fall out.
    pub fn set_capacity<S: PageIo>(&mut self, capacity: usize, store: &mut S) -> Result<()> {
        for (id, mut frame) in self.cache.set_capacity(capacity) {
            self.stats.evictions += 1;
            if frame.dirty {
                self.stats.writebacks += 1;
                seal_and_write(store, id, &mut frame.data)?;
            }
            if self.pins.contains_key(&id) {
                return Err(IndexError::Buffer(format!("evicted pinned page {id:?}")));
            }
        }
        Ok(())
    }

    /// Fetches a page from the store with checksum verification,
    /// retry-with-bounded-backoff on retryable faults, and quarantine on
    /// exhaustion. The single physical-read path of the pool.
    fn fetch_verified<S: PageIo, M: crate::metrics::MetricsSink>(
        &mut self,
        store: &mut S,
        id: PageId,
        sink: &mut M,
    ) -> Result<Vec<u8>> {
        if self.quarantined.contains(&id) {
            return Err(IndexError::PageUnavailable {
                page: id,
                reason: Unavailability::Quarantined,
            });
        }
        let mut attempt = 0u32;
        loop {
            let fault = match store.read_page(id) {
                Ok(bytes) => match crate::checksum::verify(bytes) {
                    Ok(()) => return Ok(bytes.to_vec()),
                    Err((expected, found)) => {
                        self.stats.checksum_failures += 1;
                        sink.io_checksum_failure();
                        IndexError::ChecksumMismatch {
                            page: id,
                            expected,
                            found,
                        }
                    }
                },
                Err(fault @ IndexError::TransientIo(_)) => fault,
                // Unknown, freed — retrying cannot change the answer.
                Err(permanent) => return Err(permanent),
            };
            if attempt < RETRY_LIMIT {
                self.stats.retries += 1;
                self.stats.backoff_units += 1u64 << attempt;
                sink.io_retry();
                attempt += 1;
                continue;
            }
            self.quarantined.insert(id);
            self.stats.quarantined += 1;
            sink.io_quarantine();
            return Err(fault);
        }
    }

    /// Reads a page through the buffer, faulting it in from the store on a
    /// miss.
    pub fn read<'a, S: PageIo>(&'a mut self, store: &mut S, id: PageId) -> Result<&'a [u8]> {
        if self.cache.contains(&id) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let data = self.fetch_verified(store, id, &mut crate::metrics::NoopSink)?;
            self.install(store, id, Frame { data, dirty: false })?;
        }
        // The page was either present or installed just above; a miss here
        // would mean the cache dropped it mid-call, which is a real error,
        // not a panic-worthy impossibility.
        match self.cache.get(&id) {
            Some(frame) => Ok(&frame.data),
            None => Err(IndexError::UnknownPage(id)),
        }
    }

    /// Like [`BufferPool::read`], but leaves the page pinned so the caller
    /// can decode the returned bytes knowing the frame is accounted for.
    /// Every successful call must be matched by an [`BufferPool::unpin`].
    pub fn read_pinned<'a, S: PageIo>(&'a mut self, store: &mut S, id: PageId) -> Result<&'a [u8]> {
        self.read_pinned_traced(store, id, &mut crate::metrics::NoopSink)
    }

    /// [`BufferPool::read_pinned`] with per-query observability: the hit or
    /// miss is reported to `sink` in addition to the pool's own aggregate
    /// [`BufferStats`] (which span queries and survive until `reset_stats`).
    pub fn read_pinned_traced<'a, S: PageIo, M: crate::metrics::MetricsSink>(
        &'a mut self,
        store: &mut S,
        id: PageId,
        sink: &mut M,
    ) -> Result<&'a [u8]> {
        if self.cache.contains(&id) {
            self.stats.hits += 1;
            sink.buffer_hit();
        } else {
            self.stats.misses += 1;
            sink.buffer_miss();
            let data = self.fetch_verified(store, id, sink)?;
            self.install(store, id, Frame { data, dirty: false })?;
        }
        *self.pins.entry(id).or_insert(0) += 1;
        match self.cache.get(&id) {
            Some(frame) => Ok(&frame.data),
            None => Err(IndexError::UnknownPage(id)),
        }
    }

    /// Pins a resident page. Pinning a page that is not in the buffer is an
    /// accounting error.
    pub fn pin(&mut self, id: PageId) -> Result<()> {
        if !self.cache.contains(&id) {
            return Err(IndexError::Buffer(format!(
                "pin of non-resident page {id:?}"
            )));
        }
        *self.pins.entry(id).or_insert(0) += 1;
        Ok(())
    }

    /// Releases one pin on `id`. Unpinning a page with no outstanding pins
    /// is an accounting error.
    pub fn unpin(&mut self, id: PageId) -> Result<()> {
        match self.pins.get_mut(&id) {
            Some(n) if *n > 1 => {
                *n -= 1;
                Ok(())
            }
            Some(_) => {
                self.pins.remove(&id);
                Ok(())
            }
            None => Err(IndexError::Buffer(format!(
                "unbalanced unpin of page {id:?}"
            ))),
        }
    }

    /// Structural audit: LRU bookkeeping consistent and every pinned page
    /// resident. Returns a description of the first violation.
    pub fn audit(&self) -> std::result::Result<(), String> {
        self.cache.audit()?;
        for (&id, &n) in &self.pins {
            if n == 0 {
                return Err(format!("page {id:?} carries a zero pin-count entry"));
            }
            if !self.cache.contains(&id) {
                return Err(format!("pinned page {id:?} is not resident"));
            }
        }
        Ok(())
    }

    /// [`BufferPool::audit`] plus the between-operations requirement that no
    /// pins are outstanding — a leftover pin means some caller leaked one.
    pub fn audit_idle(&self) -> std::result::Result<(), String> {
        self.audit()?;
        if let Some((&id, &n)) = self.pins.iter().next() {
            return Err(format!("leaked pin: page {id:?} still pinned {n} time(s)"));
        }
        Ok(())
    }

    /// Writes a page through the buffer (write-back: the store is only
    /// touched when the page is evicted or flushed).
    ///
    /// A write also lifts any quarantine on `id`: the caller is replacing
    /// the page's content wholesale, so whatever rotted on disk is
    /// superseded — this is the self-healing path.
    pub fn write<S: PageIo>(&mut self, store: &mut S, id: PageId, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), PAGE_SIZE, "pages are written whole");
        self.quarantined.remove(&id);
        if let Some(frame) = self.cache.get_mut(&id) {
            frame.data.clear();
            frame.data.extend_from_slice(data);
            frame.dirty = true;
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        self.install(
            store,
            id,
            Frame {
                data: data.to_vec(),
                dirty: true,
            },
        )
    }

    fn install<S: PageIo>(&mut self, store: &mut S, id: PageId, frame: Frame) -> Result<()> {
        if let Some((old_id, mut old)) = self.cache.insert(id, frame) {
            if old_id != id {
                self.stats.evictions += 1;
            }
            if old.dirty {
                self.stats.writebacks += 1;
                seal_and_write(store, old_id, &mut old.data)?;
            }
            if old_id != id && self.pins.contains_key(&old_id) {
                return Err(IndexError::Buffer(format!(
                    "evicted pinned page {old_id:?}"
                )));
            }
        }
        Ok(())
    }

    /// Writes all dirty pages back to the store (cache contents retained).
    pub fn flush<S: PageIo>(&mut self, store: &mut S) -> Result<()> {
        // Collect dirty ids first to appease the borrow checker.
        let dirty: Vec<PageId> = self
            .cache
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        for id in dirty {
            if let Some(frame) = self.cache.get_mut(&id) {
                frame.dirty = false;
                self.stats.writebacks += 1;
                // Seal the cached frame itself (decode ignores the slot),
                // keeping the buffered bytes identical to the disk image.
                crate::checksum::embed(&mut frame.data);
                let data = frame.data.clone();
                store.write_page(id, &data)?;
            }
        }
        Ok(())
    }

    /// Empties the cache entirely (writing back dirty pages), so the next
    /// queries run against a cold buffer.
    pub fn clear<S: PageIo>(&mut self, store: &mut S) -> Result<()> {
        if let Some((&id, _)) = self.pins.iter().next() {
            return Err(IndexError::Buffer(format!(
                "clear while page {id:?} is pinned"
            )));
        }
        for (id, mut frame) in self.cache.drain() {
            if frame.dirty {
                self.stats.writebacks += 1;
                seal_and_write(store, id, &mut frame.data)?;
            }
        }
        Ok(())
    }

    /// Drops a page from the cache without writing it back (used when the
    /// page has been freed and its content is dead).
    pub fn discard(&mut self, id: PageId) {
        self.cache.remove(&id);
    }

    /// Snapshot of the buffer statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// Restores a previously captured counter snapshot (used by the
    /// `paranoid` audit hooks so their own reads stay invisible to the
    /// experiment's accounting).
    #[cfg(feature = "paranoid")]
    pub(crate) fn set_stats(&mut self, stats: BufferStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultableStore};
    use crate::{checksum, PageStore};

    /// A page whose bytes are `fill` everywhere but the checksum slot,
    /// ready to survive verification.
    fn sealed_page(fill: u8) -> Vec<u8> {
        let mut page = vec![fill; PAGE_SIZE];
        checksum::embed(&mut page);
        page
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        assert!(c.insert(1, "a".into()).is_none());
        assert!(c.insert(2, "b".into()).is_none());
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1).map(String::as_str), Some("a"));
        let evicted = c.insert(3, "c".into()).expect("full cache evicts");
        assert_eq!(evicted, (2, "b".into()));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_reinsert_replaces_value() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        let replaced = c.insert(1, 11);
        assert_eq!(replaced, Some((1, 10)));
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_pop_and_remove() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.pop_lru(), Some((1, 10)));
        assert_eq!(c.remove(&3), Some(30));
        assert_eq!(c.remove(&3), None);
        assert_eq!(c.len(), 1);
        // Freed slots are recycled without breaking the list.
        c.insert(4, 40);
        c.insert(5, 50);
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop_lru(), Some((2, 20)));
    }

    #[test]
    fn lru_shrink_capacity_evicts_in_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i * 10);
        }
        c.get(&0); // order now (MRU→LRU): 0,3,2,1
        let evicted = c.set_capacity(2);
        assert_eq!(evicted, vec![(1, 10), (2, 20)]);
        assert!(c.contains(&0) && c.contains(&3));
    }

    #[test]
    fn lru_heavy_mixed_workload_stays_consistent() {
        // Pseudo-random workload cross-checked against a naive model.
        let mut c: LruCache<u64, u64> = LruCache::new(8);
        let mut model: Vec<u64> = Vec::new(); // MRU at the end
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 16;
            if x.is_multiple_of(3) {
                let hit = c.get(&key).is_some();
                assert_eq!(hit, model.contains(&key));
                if hit {
                    model.retain(|&k| k != key);
                    model.push(key);
                }
            } else {
                let evicted = c.insert(key, key);
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                    model.push(key);
                    assert_eq!(evicted.map(|(k, _)| k), Some(key));
                } else {
                    if model.len() == 8 {
                        let lru = model.remove(0);
                        assert_eq!(evicted.map(|(k, _)| k), Some(lru));
                    } else {
                        assert!(evicted.is_none());
                    }
                    model.push(key);
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    fn lru_audit_accepts_live_and_catches_corruption() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        c.get(&1);
        c.pop_lru();
        c.insert(7, 7);
        c.audit().expect("healthy cache audits clean");
        // Break the list by hand: point a linked slot's prev somewhere wrong.
        let head = c.head;
        let second = c.slots[head].next;
        c.slots[second].prev = NIL;
        let err = c.audit().expect_err("broken prev link must be caught");
        assert!(err.contains("prev link"), "{err}");
        // And a cycle: make the list chase its own tail.
        let mut c2: LruCache<u32, u32> = LruCache::new(2);
        c2.insert(1, 1);
        c2.insert(2, 2);
        let h = c2.head;
        let t = c2.slots[h].next;
        c2.slots[t].next = h;
        let err = c2.audit().expect_err("cycle must be caught");
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn pool_pin_accounting_and_leak_detection() {
        let mut store = PageStore::new();
        let a = store.allocate();
        let mut pool = BufferPool::new(2);
        assert!(matches!(pool.pin(a), Err(IndexError::Buffer(_))));
        pool.read(&mut store, a).unwrap();
        pool.pin(a).unwrap();
        pool.pin(a).unwrap();
        pool.audit().expect("pins on resident pages audit clean");
        let err = pool.audit_idle().expect_err("outstanding pins are a leak");
        assert!(err.contains("leaked pin"), "{err}");
        pool.unpin(a).unwrap();
        pool.unpin(a).unwrap();
        pool.audit_idle()
            .expect("balanced pins leave the pool idle");
        assert!(matches!(pool.unpin(a), Err(IndexError::Buffer(_))));
    }

    #[test]
    fn pool_refuses_to_evict_or_clear_pinned_pages() {
        let mut store = PageStore::new();
        let a = store.allocate();
        let b = store.allocate();
        let mut pool = BufferPool::new(1);
        pool.read(&mut store, a).unwrap();
        pool.pin(a).unwrap();
        // Faulting b in must evict a, which is pinned: accounting violation.
        assert!(matches!(
            pool.read(&mut store, b),
            Err(IndexError::Buffer(_))
        ));
        let mut pool = BufferPool::new(2);
        pool.read(&mut store, a).unwrap();
        pool.pin(a).unwrap();
        assert!(matches!(pool.clear(&mut store), Err(IndexError::Buffer(_))));
        assert!(matches!(
            pool.set_capacity(1, &mut store)
                .and_then(|()| { pool.read(&mut store, b).map(|_| ()) }),
            Err(IndexError::Buffer(_))
        ));
        pool.unpin(a).unwrap();
    }

    #[test]
    fn pool_read_pinned_matches_read_stats() {
        let mut store = PageStore::new();
        let a = store.allocate();
        store.reset_stats();
        let mut pool = BufferPool::new(2);
        pool.read_pinned(&mut store, a).unwrap();
        pool.unpin(a).unwrap();
        pool.read_pinned(&mut store, a).unwrap();
        pool.unpin(a).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        pool.audit_idle().expect("pins balanced");
    }

    #[test]
    fn pool_counts_hits_and_misses() {
        let mut store = PageStore::new();
        let a = store.allocate();
        let b = store.allocate();
        store.reset_stats();
        let mut pool = BufferPool::new(1);
        pool.read(&mut store, a).unwrap();
        pool.read(&mut store, a).unwrap();
        pool.read(&mut store, b).unwrap(); // evicts a (clean)
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.writebacks, 0);
        assert_eq!(store.stats().reads, 2);
    }

    #[test]
    fn pool_writes_back_dirty_pages() {
        let mut store = PageStore::new();
        let a = store.allocate();
        let b = store.allocate();
        store.reset_stats();
        let mut pool = BufferPool::new(1);
        let mut page = vec![0u8; PAGE_SIZE];
        // Byte 9 is outside the checksum slot ([4..8]).
        page[9] = 42;
        checksum::embed(&mut page);
        pool.write(&mut store, a, &page).unwrap();
        // Nothing hit the disk yet (write-back).
        assert_eq!(store.stats().writes, 0);
        // Faulting b evicts dirty a.
        pool.read(&mut store, b).unwrap();
        assert_eq!(store.stats().writes, 1);
        assert_eq!(pool.stats().writebacks, 1);
        // The data survived the round trip.
        pool.read(&mut store, a).unwrap();
        assert_eq!(pool.read(&mut store, a).unwrap()[9], 42);
    }

    #[test]
    fn pool_flush_and_clear() {
        let mut store = PageStore::new();
        let a = store.allocate();
        let mut pool = BufferPool::new(4);
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 9;
        checksum::embed(&mut page);
        pool.write(&mut store, a, &page).unwrap();
        pool.flush(&mut store).unwrap();
        assert_eq!(store.stats().writes, 1);
        // Flushing again writes nothing (page now clean).
        pool.flush(&mut store).unwrap();
        assert_eq!(store.stats().writes, 1);
        pool.clear(&mut store).unwrap();
        store.reset_stats();
        // After clear, reads are cold again.
        pool.read(&mut store, a).unwrap();
        assert_eq!(store.stats().reads, 1);
        assert_eq!(pool.read(&mut store, a).unwrap()[0], 9);
    }

    #[test]
    fn corrupted_page_fails_with_checksum_mismatch_and_quarantines() {
        let mut store = PageStore::new();
        let a = store.allocate();
        store.write(a, &sealed_page(7)).unwrap();
        store.corrupt(a, 1000, 0b100).unwrap();
        let mut pool = BufferPool::new(2);
        let err = pool.read(&mut store, a).expect_err("rot must be caught");
        match err {
            IndexError::ChecksumMismatch {
                page,
                expected,
                found,
            } => {
                assert_eq!(page, a);
                assert_ne!(expected, found);
            }
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
        let s = pool.stats();
        // 1 initial attempt + RETRY_LIMIT retries, every one failing
        // verification, then quarantine.
        assert_eq!(s.retries, u64::from(RETRY_LIMIT));
        assert_eq!(s.checksum_failures, u64::from(RETRY_LIMIT) + 1);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.backoff_units, (1 << RETRY_LIMIT) - 1);
        assert!(pool.is_quarantined(a));
        // Quarantined reads fail fast without touching the disk.
        let reads_before = store.stats().reads;
        assert!(matches!(
            pool.read(&mut store, a),
            Err(IndexError::PageUnavailable {
                reason: Unavailability::Quarantined,
                ..
            })
        ));
        assert_eq!(store.stats().reads, reads_before);
    }

    #[test]
    fn write_heals_a_quarantined_page() {
        let mut store = PageStore::new();
        let a = store.allocate();
        store.write(a, &sealed_page(1)).unwrap();
        store.corrupt(a, 50, 0xFF).unwrap();
        let mut pool = BufferPool::new(2);
        assert!(pool.read(&mut store, a).is_err());
        assert_eq!(pool.quarantined_pages(), 1);
        // Rebuilding the page's content through the pool lifts the
        // quarantine and the page serves reads again.
        let fresh = sealed_page(9);
        pool.write(&mut store, a, &fresh).unwrap();
        assert!(!pool.is_quarantined(a));
        assert_eq!(pool.read(&mut store, a).unwrap(), &fresh[..]);
        // And the healed content survives a round trip to disk.
        pool.clear(&mut store).unwrap();
        assert_eq!(pool.read(&mut store, a).unwrap(), &fresh[..]);
    }

    #[test]
    fn transient_faults_are_masked_by_retries() {
        let mut store = FaultableStore::new();
        let a = store.allocate();
        let page = sealed_page(3);
        store.write_page(a, &page).unwrap();
        // 30% transient rate: with 4 attempts per fetch the chance of a
        // fetch failing outright is 0.3^4 < 1%; over 40 cold fetches some
        // retries certainly fire. Seeded, so the run is reproducible.
        store.set_injection(Some(FaultConfig::quiet(0xFEED).with_read_transient(0.3)));
        let mut pool = BufferPool::new(1);
        let b = store.allocate();
        store.set_injection(None);
        store.write_page(b, &sealed_page(4)).unwrap();
        store.set_injection(Some(FaultConfig::quiet(0xFEED).with_read_transient(0.3)));
        let mut served = 0;
        for _ in 0..20 {
            // Alternate two pages through a capacity-1 pool: every read is
            // a cold physical fetch.
            for &id in &[a, b] {
                match pool.read(&mut store, id) {
                    Ok(_) => served += 1,
                    Err(IndexError::TransientIo(_)) => {}
                    Err(other) => panic!("unexpected error {other:?}"),
                }
            }
        }
        let s = pool.stats();
        assert!(s.retries > 0, "a 30% rate over 40 fetches must retry");
        assert!(served > 30, "retries must mask nearly every fault");
        assert_eq!(s.checksum_failures, 0);
    }

    #[test]
    fn zero_rate_injection_changes_nothing() {
        let mut faulty = FaultableStore::new();
        let a = faulty.allocate();
        faulty.write_page(a, &sealed_page(5)).unwrap();
        faulty.set_injection(Some(FaultConfig::quiet(99)));
        let mut pool = BufferPool::new(2);
        let bytes = pool.read(&mut faulty, a).unwrap().to_vec();
        assert_eq!(bytes, sealed_page(5));
        let s = pool.stats();
        assert_eq!(
            (
                s.retries,
                s.checksum_failures,
                s.quarantined,
                s.backoff_units
            ),
            (0, 0, 0, 0)
        );
    }
}
