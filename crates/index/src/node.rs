//! On-page node layout shared by the 3D R-tree and the TB-tree.
//!
//! Every node occupies exactly one 4 KB page:
//!
//! ```text
//! header (24 bytes)
//!   [0]      node type      u8   (0 = leaf, 1 = internal)
//!   [1]      level          u8   (0 at leaves, grows towards the root)
//!   [2..4]   entry count    u16
//!   [4..8]   reserved       u32  (zero)
//!   [8..16]  owner traj id  u64  (TB-tree leaves; u64::MAX elsewhere)
//!   [16..20] prev leaf      u32  (TB-tree doubly linked leaf list)
//!   [20..24] next leaf      u32
//! entries
//!   leaf:     traj id u64 | seq u32 | t1 x1 y1 t2 x2 y2 (6 × f64)   = 60 B
//!   internal: child page u32 | x_min y_min t_min x_max y_max t_max  = 52 B
//! ```
//!
//! Capacities derive from the page size: 67 segments per leaf, 78 children
//! per internal node — matching the order of magnitude of the paper's
//! indexes (4 KB pages over 3D line segments).

use mst_trajectory::{Mbb, SamplePoint, Segment, TrajectoryId};

use crate::codec::{Reader, Writer};
use crate::{IndexError, PageId, Result, PAGE_SIZE};

const HEADER_SIZE: usize = 24;
const LEAF_ENTRY_SIZE: usize = 8 + 4 + 6 * 8;
const INTERNAL_ENTRY_SIZE: usize = 4 + 6 * 8;

/// Maximum number of segment entries in a leaf page.
pub const LEAF_CAPACITY: usize = (PAGE_SIZE - HEADER_SIZE) / LEAF_ENTRY_SIZE;
/// Maximum number of child entries in an internal page.
pub const INTERNAL_CAPACITY: usize = (PAGE_SIZE - HEADER_SIZE) / INTERNAL_ENTRY_SIZE;

const TYPE_LEAF: u8 = 0;
const TYPE_INTERNAL: u8 = 1;
const NO_OWNER: u64 = u64::MAX;

/// One indexed trajectory segment (a leaf-level index entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    /// The trajectory this segment belongs to.
    pub traj: TrajectoryId,
    /// Position of the segment within its trajectory (0-based).
    pub seq: u32,
    /// The 3D line segment itself.
    pub segment: Segment,
}

impl LeafEntry {
    /// The 3D bounding box of the segment.
    pub fn mbb(&self) -> Mbb {
        self.segment.mbb()
    }
}

/// A child pointer plus its minimum bounding box (an internal index entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InternalEntry {
    /// Page of the child node.
    pub child: PageId,
    /// Minimum bounding box of the whole child subtree.
    pub mbb: Mbb,
}

/// A decoded index node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf node holding trajectory segments.
    Leaf {
        /// Segment entries.
        entries: Vec<LeafEntry>,
        /// For TB-tree leaves: the single trajectory the leaf belongs to.
        owner: Option<TrajectoryId>,
        /// Previous leaf of the same trajectory (TB-tree leaf list).
        prev: Option<PageId>,
        /// Next leaf of the same trajectory (TB-tree leaf list).
        next: Option<PageId>,
    },
    /// An internal (directory) node.
    Internal {
        /// Height of the node above the leaf level (leaves are level 0, so
        /// internal nodes have `level >= 1`).
        level: u8,
        /// Child entries.
        entries: Vec<InternalEntry>,
    },
}

impl Node {
    /// Creates an empty plain leaf (R-tree style, no owner/links).
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
            owner: None,
            prev: None,
            next: None,
        }
    }

    /// The node's level: 0 for leaves, `>= 1` for internal nodes.
    pub fn level(&self) -> u8 {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal { level, .. } => *level,
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of entries in the node.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { entries, .. } => entries.len(),
        }
    }

    /// True when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node's capacity in entries (leaf vs internal).
    pub fn capacity(&self) -> usize {
        match self {
            Node::Leaf { .. } => LEAF_CAPACITY,
            Node::Internal { .. } => INTERNAL_CAPACITY,
        }
    }

    /// The minimum bounding box of all entries ([`Mbb::empty`] for an empty
    /// node).
    pub fn mbb(&self) -> Mbb {
        match self {
            Node::Leaf { entries, .. } => entries
                .iter()
                .fold(Mbb::empty(), |acc, e| acc.union(&e.mbb())),
            Node::Internal { entries, .. } => entries
                .iter()
                .fold(Mbb::empty(), |acc, e| acc.union(&e.mbb)),
        }
    }

    /// Serializes the node into a fresh `PAGE_SIZE` buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut w = Writer::new(&mut buf);
        match self {
            Node::Leaf {
                entries,
                owner,
                prev,
                next,
            } => {
                assert!(entries.len() <= LEAF_CAPACITY, "leaf overflow");
                w.put_u8(TYPE_LEAF);
                w.put_u8(0);
                w.put_u16(entries.len() as u16);
                w.put_u32(0);
                w.put_u64(owner.map_or(NO_OWNER, |t| t.0));
                w.put_u32(prev.unwrap_or(PageId::NONE).0);
                w.put_u32(next.unwrap_or(PageId::NONE).0);
                for e in entries {
                    w.put_u64(e.traj.0);
                    w.put_u32(e.seq);
                    let (s, t) = (e.segment.start(), e.segment.end());
                    w.put_f64(s.t);
                    w.put_f64(s.x);
                    w.put_f64(s.y);
                    w.put_f64(t.t);
                    w.put_f64(t.x);
                    w.put_f64(t.y);
                }
            }
            Node::Internal { level, entries } => {
                assert!(entries.len() <= INTERNAL_CAPACITY, "internal overflow");
                assert!(*level >= 1, "internal nodes live above the leaves");
                w.put_u8(TYPE_INTERNAL);
                w.put_u8(*level);
                w.put_u16(entries.len() as u16);
                w.put_u32(0);
                w.put_u64(NO_OWNER);
                w.put_u32(PageId::NONE.0);
                w.put_u32(PageId::NONE.0);
                for e in entries {
                    w.put_u32(e.child.0);
                    w.put_f64(e.mbb.x_min);
                    w.put_f64(e.mbb.y_min);
                    w.put_f64(e.mbb.t_min);
                    w.put_f64(e.mbb.x_max);
                    w.put_f64(e.mbb.y_max);
                    w.put_f64(e.mbb.t_max);
                }
            }
        }
        let entry_size = match self {
            Node::Leaf { .. } => LEAF_ENTRY_SIZE,
            Node::Internal { .. } => INTERNAL_ENTRY_SIZE,
        };
        assert_eq!(
            w.position(),
            HEADER_SIZE + self.len() * entry_size,
            "encoded size disagrees with the layout constants"
        );
        // The reserved header word doubles as the page checksum slot; the
        // buffer pool seals it at write-back (decode ignores the slot, so
        // encode/decode round-trips are unaffected either way).
        buf
    }

    /// Decodes a node from page bytes.
    ///
    /// Total over arbitrary input: short buffers, overrunning entry counts,
    /// and malformed payloads all come back as
    /// [`IndexError::CorruptNode`] — never a panic.
    pub fn decode(page: PageId, buf: &[u8]) -> Result<Node> {
        let corrupt = |reason: String| IndexError::CorruptNode { page, reason };
        let truncated = || corrupt("page truncated mid-field".to_string());
        if buf.len() != PAGE_SIZE {
            return Err(corrupt(format!(
                "page has {} bytes, expected {}",
                buf.len(),
                PAGE_SIZE
            )));
        }
        let mut r = Reader::new(buf);
        let node_type = r.try_get_u8().ok_or_else(truncated)?;
        let level = r.try_get_u8().ok_or_else(truncated)?;
        let count = usize::from(r.try_get_u16().ok_or_else(truncated)?);
        let _reserved = r.try_get_u32().ok_or_else(truncated)?;
        let owner = r.try_get_u64().ok_or_else(truncated)?;
        let prev = r.try_get_u32().ok_or_else(truncated)?;
        let next = r.try_get_u32().ok_or_else(truncated)?;
        debug_assert_eq!(r.position(), HEADER_SIZE);
        match node_type {
            TYPE_LEAF => {
                if count > LEAF_CAPACITY {
                    return Err(corrupt(format!(
                        "leaf count {count} exceeds capacity {LEAF_CAPACITY}"
                    )));
                }
                if r.remaining() < count * LEAF_ENTRY_SIZE {
                    return Err(corrupt(format!(
                        "leaf count {count} overruns the page: {} bytes needed, {} left",
                        count * LEAF_ENTRY_SIZE,
                        r.remaining()
                    )));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let traj = TrajectoryId(r.try_get_u64().ok_or_else(truncated)?);
                    let seq = r.try_get_u32().ok_or_else(truncated)?;
                    let mut f = || r.try_get_f64().ok_or_else(truncated);
                    let (t1, x1, y1) = (f()?, f()?, f()?);
                    let (t2, x2, y2) = (f()?, f()?, f()?);
                    let segment =
                        Segment::new(SamplePoint::new(t1, x1, y1), SamplePoint::new(t2, x2, y2))
                            .map_err(|e| IndexError::CorruptNode {
                                page,
                                reason: format!("invalid segment: {e}"),
                            })?;
                    entries.push(LeafEntry { traj, seq, segment });
                }
                debug_assert_eq!(r.position(), HEADER_SIZE + count * LEAF_ENTRY_SIZE);
                Ok(Node::Leaf {
                    entries,
                    owner: (owner != NO_OWNER).then_some(TrajectoryId(owner)),
                    prev: (prev != PageId::NONE.0).then_some(PageId(prev)),
                    next: (next != PageId::NONE.0).then_some(PageId(next)),
                })
            }
            TYPE_INTERNAL => {
                if count > INTERNAL_CAPACITY {
                    return Err(corrupt(format!(
                        "internal count {count} exceeds capacity {INTERNAL_CAPACITY}"
                    )));
                }
                if level == 0 {
                    return Err(corrupt("internal node with level 0".to_string()));
                }
                if r.remaining() < count * INTERNAL_ENTRY_SIZE {
                    return Err(corrupt(format!(
                        "internal count {count} overruns the page: {} bytes needed, {} left",
                        count * INTERNAL_ENTRY_SIZE,
                        r.remaining()
                    )));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = PageId(r.try_get_u32().ok_or_else(truncated)?);
                    let mut f = || r.try_get_f64().ok_or_else(truncated);
                    let (x_min, y_min, t_min) = (f()?, f()?, f()?);
                    let (x_max, y_max, t_max) = (f()?, f()?, f()?);
                    if !(x_min <= x_max && y_min <= y_max && t_min <= t_max) {
                        return Err(corrupt("inverted MBB".to_string()));
                    }
                    entries.push(InternalEntry {
                        child,
                        mbb: Mbb::new(x_min, y_min, t_min, x_max, y_max, t_max),
                    });
                }
                debug_assert_eq!(r.position(), HEADER_SIZE + count * INTERNAL_ENTRY_SIZE);
                Ok(Node::Internal { level, entries })
            }
            other => Err(corrupt(format!("unknown node type {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, seq: u32, t0: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(id),
            seq,
            segment: Segment::new(
                SamplePoint::new(t0, id as f64, seq as f64),
                SamplePoint::new(t0 + 1.0, id as f64 + 0.5, seq as f64 - 0.25),
            )
            .unwrap(),
        }
    }

    #[test]
    fn capacities_match_layout() {
        assert_eq!(LEAF_CAPACITY, 67);
        assert_eq!(INTERNAL_CAPACITY, 78);
        const { assert!(HEADER_SIZE + LEAF_CAPACITY * LEAF_ENTRY_SIZE <= PAGE_SIZE) };
        const { assert!(HEADER_SIZE + INTERNAL_CAPACITY * INTERNAL_ENTRY_SIZE <= PAGE_SIZE) };
    }

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: (0..LEAF_CAPACITY as u32)
                .map(|i| entry(7, i, i as f64))
                .collect(),
            owner: Some(TrajectoryId(7)),
            prev: Some(PageId(3)),
            next: None,
        };
        let bytes = node.encode();
        assert_eq!(bytes.len(), PAGE_SIZE);
        let back = Node::decode(PageId(0), &bytes).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            level: 3,
            entries: (0..INTERNAL_CAPACITY as u32)
                .map(|i| InternalEntry {
                    child: PageId(i),
                    mbb: Mbb::new(
                        -(i as f64),
                        0.0,
                        i as f64,
                        i as f64 + 1.0,
                        2.0,
                        i as f64 + 5.0,
                    ),
                })
                .collect(),
        };
        let back = Node::decode(PageId(9), &node.encode()).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = Node::empty_leaf();
        let back = Node::decode(PageId(0), &node.encode()).unwrap();
        assert_eq!(back, node);
        assert!(back.is_empty());
        assert!(back.mbb().is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = 99; // unknown type
        assert!(matches!(
            Node::decode(PageId(1), &buf),
            Err(IndexError::CorruptNode { .. })
        ));
        // Internal node claiming level 0.
        let mut buf2 = vec![0u8; PAGE_SIZE];
        buf2[0] = TYPE_INTERNAL;
        buf2[1] = 0;
        assert!(Node::decode(PageId(1), &buf2).is_err());
        // Leaf with an absurd count.
        let mut buf3 = vec![0u8; PAGE_SIZE];
        buf3[0] = TYPE_LEAF;
        buf3[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(Node::decode(PageId(1), &buf3).is_err());
        // Wrong buffer length.
        assert!(Node::decode(PageId(1), &buf[..100]).is_err());
    }

    #[test]
    fn node_mbb_covers_entries() {
        let node = Node::Leaf {
            entries: vec![entry(1, 0, 0.0), entry(2, 5, 10.0)],
            owner: None,
            prev: None,
            next: None,
        };
        let mbb = node.mbb();
        if let Node::Leaf { entries, .. } = &node {
            for e in entries {
                let u = mbb.union(&e.mbb());
                assert_eq!(u, mbb);
            }
        }
    }
}
