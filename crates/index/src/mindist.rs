//! MINDIST between a (moving-point) query trajectory and an index node MBB.
//!
//! Following the nearest-neighbour groundwork of Frentzos et al. that the
//! MST paper builds on, `MINDIST(Q, N)` is the minimum *spatial* Euclidean
//! distance between the query's moving point and the node's spatial
//! rectangle, taken over the temporal overlap of the query period and the
//! node's temporal extent. It is exact for the linear-interpolation
//! movement model:
//!
//! For one query segment, the point's coordinates are linear in `t`, so the
//! clamped axis gaps `dx(t) = max(0, x_min - x(t), x(t) - x_max)` (and
//! `dy(t)` alike) are piecewise linear with breakpoints where the moving
//! point crosses the rectangle's face lines. On each piece,
//! `dx(t)^2 + dy(t)^2` is a convex quadratic whose minimum is at its vertex
//! or at the piece boundary — all closed-form.

use mst_trajectory::float;
use mst_trajectory::{Mbb, Rect, Segment, TimeInterval, Trajectory};

/// Minimum spatial distance between a moving point (one trajectory segment)
/// and a static rectangle, over the segment's own time span.
pub fn segment_rect_mindist(seg: &Segment, rect: &Rect) -> f64 {
    let t0 = seg.start().t;
    let t1 = seg.end().t;
    // Work in relative time for conditioning.
    let dur = t1 - t0;
    let (vx, vy) = seg.velocity();
    let (x0, y0) = (seg.start().x, seg.start().y);

    // Breakpoints: crossings of the four face lines within (0, dur).
    let mut cuts = [0.0f64; 6];
    let mut n = 0;
    cuts[n] = 0.0;
    n += 1;
    for (p0, v, lo, hi) in [
        (x0, vx, rect.x_min, rect.x_max),
        (y0, vy, rect.y_min, rect.y_max),
    ] {
        if !float::exactly_zero(v) {
            for bound in [lo, hi] {
                let tc = (bound - p0) / v;
                if tc > 0.0 && tc < dur {
                    cuts[n] = tc;
                    n += 1;
                }
            }
        }
    }
    cuts[n] = dur;
    n += 1;
    let cuts = &mut cuts[..n];
    cuts.sort_by(f64::total_cmp);

    // Axis gap of a clamped coordinate.
    let gap = |p: f64, lo: f64, hi: f64| (lo - p).max(0.0).max(p - hi);

    let mut best = f64::INFINITY;
    for w in cuts.windows(2) {
        let (u, v) = (w[0], w[1]);
        if u == v {
            continue;
        }
        // Linear gap functions on this piece, written as g(s) = g_u + slope*s
        // with s in [0, v-u].
        let dx_u = gap(x0 + vx * u, rect.x_min, rect.x_max);
        let dx_v = gap(x0 + vx * v, rect.x_min, rect.x_max);
        let dy_u = gap(y0 + vy * u, rect.y_min, rect.y_max);
        let dy_v = gap(y0 + vy * v, rect.y_min, rect.y_max);
        let len = v - u;
        let (bx, by) = ((dx_v - dx_u) / len, (dy_v - dy_u) / len);
        // f(s) = (dx_u + bx s)^2 + (dy_u + by s)^2, convex: check endpoints
        // and the interior vertex.
        let mut piece = (dx_u * dx_u + dy_u * dy_u).min(dx_v * dx_v + dy_v * dy_v);
        let denom = bx * bx + by * by;
        if denom > 0.0 {
            let s_star = -(dx_u * bx + dy_u * by) / denom;
            if s_star > 0.0 && s_star < len {
                let gx = dx_u + bx * s_star;
                let gy = dy_u + by * s_star;
                piece = piece.min(gx * gx + gy * gy);
            }
        }
        best = best.min(piece);
        if float::exactly_zero(best) {
            break;
        }
    }
    best.sqrt()
}

/// `MINDIST(Q, N)`: minimum spatial distance between the query trajectory
/// and the node MBB over the temporal overlap of `period`, the query's
/// validity, and the node's temporal extent.
///
/// Returns `None` when there is no temporal overlap (the node cannot
/// contribute to the query period at all).
pub fn trajectory_mbb_mindist(query: &Trajectory, mbb: &Mbb, period: &TimeInterval) -> Option<f64> {
    let window = period.intersect(&query.time())?.intersect(&mbb.time())?;
    let rect = mbb.rect();
    if window.is_instant() {
        // Point-in-time overlap: a single interpolated position.
        let p = query.position_at(window.start()).ok()?;
        return Some(rect.min_distance(&p));
    }
    let mut best = f64::INFINITY;
    // Jump straight to the first segment overlapping the window instead of
    // scanning from the query's start (internal nodes are checked once per
    // child entry, so this is hot).
    let first = query
        .segment_index_at(window.start())
        // invariant: `window` was intersected with `query.time()` above.
        .expect("window is inside the query's validity");
    for i in first..query.num_segments() {
        let seg = query.segment(i);
        if seg.time().start() >= window.end() {
            break;
        }
        let Some(clipped) = seg.clip(&window) else {
            continue;
        };
        best = best.min(segment_rect_mindist(&clipped, &rect));
        if float::exactly_zero(best) {
            break;
        }
    }
    (best < f64::INFINITY).then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::SamplePoint;

    fn seg(t0: f64, x0: f64, y0: f64, t1: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(SamplePoint::new(t0, x0, y0), SamplePoint::new(t1, x1, y1)).unwrap()
    }

    /// Brute-force oracle: sample the segment densely.
    fn oracle(s: &Segment, r: &Rect) -> f64 {
        let (t0, t1) = (s.start().t, s.end().t);
        let mut best = f64::INFINITY;
        for i in 0..=10_000 {
            let t = t0 + (t1 - t0) * f64::from(i) / 10_000.0;
            let p = s.position_at_unchecked(t);
            best = best.min(r.min_distance(&p));
        }
        best
    }

    #[test]
    fn stationary_point_outside_rect() {
        let s = seg(0.0, 5.0, 0.0, 1.0, 5.0, 0.0);
        let r = Rect::new(0.0, -1.0, 2.0, 1.0);
        assert!((segment_rect_mindist(&s, &r) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn passing_through_the_rect_gives_zero() {
        let s = seg(0.0, -5.0, 0.5, 1.0, 5.0, 0.5);
        let r = Rect::new(-1.0, -1.0, 1.0, 1.0);
        assert_eq!(segment_rect_mindist(&s, &r), 0.0);
    }

    #[test]
    fn closest_approach_between_faces() {
        // Moves parallel to the rect's top edge at height 3, rect top at 1.
        let s = seg(0.0, -10.0, 3.0, 1.0, 10.0, 3.0);
        let r = Rect::new(-1.0, -1.0, 1.0, 1.0);
        assert!((segment_rect_mindist(&s, &r) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_flyby_matches_oracle() {
        let cases = [
            (
                seg(0.0, -4.0, 6.0, 3.0, 7.0, -5.0),
                Rect::new(0.0, 0.0, 2.0, 2.0),
            ),
            (
                seg(1.0, 8.0, 8.0, 4.0, 9.0, 9.0),
                Rect::new(-1.0, -1.0, 1.0, 1.0),
            ),
            (
                seg(0.0, -3.0, -3.0, 2.0, -2.9, -3.1),
                Rect::new(0.0, 0.0, 1.0, 1.0),
            ),
            (
                seg(0.0, 0.5, -9.0, 5.0, 0.5, 9.0),
                Rect::new(0.0, 0.0, 1.0, 1.0),
            ),
        ];
        for (s, r) in cases {
            let fast = segment_rect_mindist(&s, &r);
            let slow = oracle(&s, &r);
            assert!(
                (fast - slow).abs() < 1e-3,
                "fast={fast} oracle={slow} for {s:?} {r:?}"
            );
            assert!(fast <= slow + 1e-12, "analytic must lower-bound sampling");
        }
    }

    #[test]
    fn trajectory_mindist_respects_temporal_overlap() {
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        // Node active only in [20, 30]: no overlap with the query's life.
        let far = Mbb::new(0.0, 0.0, 20.0, 1.0, 1.0, 30.0);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        assert_eq!(trajectory_mbb_mindist(&q, &far, &period), None);
        // Node active in [2, 4]; query x in [2, 4] then, and the node's rect
        // is x,y in [100, 101]: distance is approx 96+ in x.
        let node = Mbb::new(100.0, 0.0, 2.0, 101.0, 1.0, 4.0);
        let d = trajectory_mbb_mindist(&q, &node, &period).unwrap();
        assert!((d - 96.0).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn trajectory_mindist_zero_when_query_enters_box() {
        let q = Trajectory::from_txy(&[(0.0, -5.0, 0.5), (10.0, 5.0, 0.5)]).unwrap();
        let node = Mbb::new(-1.0, -1.0, 0.0, 1.0, 1.0, 10.0);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        assert_eq!(trajectory_mbb_mindist(&q, &node, &period), Some(0.0));
    }

    #[test]
    fn instant_overlap_uses_point_distance() {
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        // Node's time extent touches the query period at exactly t=10.
        let node = Mbb::new(13.0, 0.0, 10.0, 14.0, 1.0, 20.0);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let d = trajectory_mbb_mindist(&q, &node, &period).unwrap();
        // Query is at (10, 0) at t=10; rect x starts at 13.
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tighter_window_cannot_decrease_distance() {
        let q =
            Trajectory::from_txy(&[(0.0, -10.0, 2.0), (5.0, 0.0, 2.0), (10.0, 10.0, 2.0)]).unwrap();
        let node = Mbb::new(-1.0, -1.0, 0.0, 1.0, 1.0, 10.0);
        let full = TimeInterval::new(0.0, 10.0).unwrap();
        let tight = TimeInterval::new(0.0, 2.0).unwrap();
        let d_full = trajectory_mbb_mindist(&q, &node, &full).unwrap();
        let d_tight = trajectory_mbb_mindist(&q, &node, &tight).unwrap();
        assert!(d_tight >= d_full);
    }
}
