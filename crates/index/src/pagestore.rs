//! The simulated disk: a flat array of fixed-size pages with I/O accounting.
//!
//! The paper's experiments ran on a real disk with a 4 KB page size; this
//! in-process substitute preserves the quantity the evaluation actually
//! reports — *how much of the index a query touches* — while making runs
//! deterministic and portable (see DESIGN.md, substitution 3).

use std::collections::HashSet;

use crate::{IndexError, Result, Unavailability};

/// Size of one disk page in bytes (the paper's setting).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used on disk for "no page" (e.g. a TB-tree leaf with no
    /// predecessor).
    pub const NONE: PageId = PageId(u32::MAX);

    /// The page's index into the store's backing array — the one sanctioned
    /// `u32 → usize` conversion in the storage layer.
    pub(crate) fn index(self) -> usize {
        const _: () = assert!(
            usize::BITS >= u32::BITS,
            "16-bit targets cannot address the page store"
        );
        self.0 as usize // invariant: lossless, by the const assertion above
    }
}

/// Physical I/O counters of the simulated disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of page reads served by the "disk" (i.e. buffer misses).
    pub reads: u64,
    /// Number of page writes that reached the "disk".
    pub writes: u64,
}

/// An in-process array of 4 KB pages standing in for a disk volume.
#[derive(Debug)]
pub struct PageStore {
    pages: Vec<Box<[u8]>>,
    /// Pages returned by [`PageStore::free`], reused by the next allocation.
    free_list: Vec<PageId>,
    /// Set view of `free_list` for O(1) lifecycle checks: reading, writing
    /// or re-freeing a freed page is a typed error
    /// ([`IndexError::PageUnavailable`]), not an `UnknownPage` — "freed" and
    /// "never allocated" are different caller bugs.
    freed: HashSet<PageId>,
    stats: DiskStats,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PageStore {
            pages: Vec::new(),
            free_list: Vec::new(),
            freed: HashSet::new(),
            stats: DiskStats::default(),
        }
    }

    /// Allocates a zeroed page (reusing a freed one when available) and
    /// returns its id.
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free_list.pop() {
            self.freed.remove(&id);
            self.pages[id.index()].fill(0);
            return id;
        }
        let id = PageId(
            // invariant: a store of u32::MAX 4 KB pages is 16 TiB of index —
            // allocation fails long before the id space runs out.
            u32::try_from(self.pages.len()).expect("page store limited to u32::MAX - 1 pages"),
        );
        assert!(id != PageId::NONE, "page store exhausted");
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        id
    }

    /// Returns a page to the free list for reuse. Freeing a never-allocated
    /// page is [`IndexError::UnknownPage`]; a double free is
    /// [`IndexError::PageUnavailable`] — both typed, neither a panic.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        if id.index() >= self.pages.len() {
            return Err(IndexError::UnknownPage(id));
        }
        if !self.freed.insert(id) {
            return Err(IndexError::PageUnavailable {
                page: id,
                reason: Unavailability::Freed,
            });
        }
        self.free_list.push(id);
        Ok(())
    }

    /// Classifies `id` before serving it: never allocated is
    /// [`IndexError::UnknownPage`], freed is
    /// [`IndexError::PageUnavailable`].
    fn check_live(&self, id: PageId) -> Result<()> {
        if id.index() >= self.pages.len() {
            return Err(IndexError::UnknownPage(id));
        }
        if self.freed.contains(&id) {
            return Err(IndexError::PageUnavailable {
                page: id,
                reason: Unavailability::Freed,
            });
        }
        Ok(())
    }

    /// Number of live pages (allocated minus freed).
    pub fn num_pages(&self) -> usize {
        self.pages.len() - self.free_list.len()
    }

    /// Total size of the store in bytes.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Reads a page, counting one physical read.
    pub fn read(&mut self, id: PageId) -> Result<&[u8]> {
        self.stats.reads += 1;
        self.check_live(id)?;
        Ok(&self.pages[id.index()][..])
    }

    /// Writes a full page, counting one physical write.
    pub fn write(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), PAGE_SIZE, "pages are written whole");
        self.check_live(id)?;
        self.pages[id.index()].copy_from_slice(data);
        self.stats.writes += 1;
        Ok(())
    }

    /// Flips bit(s) of one stored byte in place — `XOR`s `mask` into the
    /// byte at `offset` — bypassing the I/O counters. Chaos/robustness test
    /// support: simulates bit rot landing on the "disk" between I/Os.
    pub fn corrupt(&mut self, id: PageId, offset: usize, mask: u8) -> Result<()> {
        assert!(offset < PAGE_SIZE, "corruption offset beyond the page");
        self.check_live(id)?;
        self.pages[id.index()][offset] ^= mask;
        Ok(())
    }

    /// Raw page bytes in allocation order (persistence support).
    pub(crate) fn raw_pages(&self) -> impl Iterator<Item = &[u8]> {
        self.pages.iter().map(|p| &p[..])
    }

    /// The current free list (persistence support).
    pub(crate) fn free_list(&self) -> &[PageId] {
        &self.free_list
    }

    /// Rebuilds a store from persisted raw pages and free list.
    pub(crate) fn from_raw(pages: Vec<Box<[u8]>>, free_list: Vec<PageId>) -> Self {
        let freed = free_list.iter().copied().collect();
        PageStore {
            pages,
            free_list,
            freed,
            stats: DiskStats::default(),
        }
    }

    /// Snapshot of the physical I/O counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets the physical I/O counters (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Restores a previously captured counter snapshot (used by the
    /// `paranoid` audit hooks so their own page reads stay invisible to the
    /// experiment's I/O accounting).
    #[cfg(feature = "paranoid")]
    pub(crate) fn set_stats(&mut self, stats: DiskStats) {
        self.stats = stats;
    }
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let mut s = PageStore::new();
        let a = s.allocate();
        let b = s.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(s.num_pages(), 2);
        assert_eq!(s.size_bytes(), 2 * PAGE_SIZE);

        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        s.write(b, &data).unwrap();
        let r = s.read(b).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);
        // Page `a` is still zeroed.
        assert!(s.read(a).unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn stats_count_physical_io() {
        let mut s = PageStore::new();
        let a = s.allocate();
        let zero = vec![0u8; PAGE_SIZE];
        s.write(a, &zero).unwrap();
        s.read(a).unwrap();
        s.read(a).unwrap();
        assert_eq!(
            s.stats(),
            DiskStats {
                reads: 2,
                writes: 1
            }
        );
        s.reset_stats();
        assert_eq!(s.stats(), DiskStats::default());
    }

    #[test]
    fn unknown_page_is_an_error() {
        let mut s = PageStore::new();
        assert!(matches!(
            s.read(PageId(7)),
            Err(IndexError::UnknownPage(PageId(7)))
        ));
        assert!(s.write(PageId(7), &[0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn freed_pages_are_unavailable_not_unknown() {
        let mut s = PageStore::new();
        let a = s.allocate();
        s.free(a).unwrap();
        let unavailable = |r: Result<()>| {
            matches!(
                r,
                Err(IndexError::PageUnavailable {
                    reason: Unavailability::Freed,
                    ..
                })
            )
        };
        assert!(unavailable(s.read(a).map(|_| ())));
        assert!(unavailable(s.write(a, &[0u8; PAGE_SIZE])));
        assert!(unavailable(s.corrupt(a, 0, 1)));
        // Double free is the same lifecycle error, typed, not a panic.
        assert!(unavailable(s.free(a)));
        // Reallocation revives the page.
        let b = s.allocate();
        assert_eq!(b, a);
        assert!(s.read(b).is_ok());
    }

    #[test]
    fn corrupt_flips_exactly_the_requested_bit() {
        let mut s = PageStore::new();
        let a = s.allocate();
        let mut data = vec![0u8; PAGE_SIZE];
        data[100] = 0b1010_0000;
        s.write(a, &data).unwrap();
        let writes_before = s.stats().writes;
        s.corrupt(a, 100, 0b0000_0001).unwrap();
        assert_eq!(s.stats().writes, writes_before, "corruption is not I/O");
        assert_eq!(s.read(a).unwrap()[100], 0b1010_0001);
    }
}
