//! Single-file persistence for the index structures.
//!
//! Both trees serialize into the same framed binary image:
//!
//! ```text
//! magic   "MSTIDX02"                       8 bytes
//! kind    u8 (0 = 3D R-tree, 1 = TB-tree, 2 = STR-tree)
//! lsn     u64  (log sequence number the image is consistent through)
//! root    u32 (PageId::NONE for empty)
//! height  u8
//! entries u64
//! vmax    f64
//! pages   u64  (total allocated slots, including freed)
//! free    u32 count, then that many u32 page ids
//! tips    u32 count, then (u64 traj, u32 page) pairs   (TB-tree only)
//! parents u32 count, then (u32 child, u32 parent) pairs (TB-tree only)
//! data    pages × 4096 raw bytes
//! ```
//!
//! Dirty buffered pages are flushed before the image is taken, so the file
//! is a faithful snapshot. Loading rebuilds the store and a cold buffer —
//! the image is validated structurally on first use by the usual node
//! decoding (plus [`crate::check_invariants`] for the paranoid).
//!
//! The `lsn` field couples an image to a write-ahead log: it names the
//! last log record the image already contains, so recovery is
//! `load(image) + replay(lsn..)`. Images saved outside a durability
//! wrapper carry LSN 0 ("contains nothing from any log").

use std::io::{Read, Write};

use mst_trajectory::TrajectoryId;

use crate::{IndexError, PageId, Result, PAGE_SIZE};

const MAGIC: &[u8; 8] = b"MSTIDX02";

/// Which tree kind a persisted image holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// A 3D R-tree image.
    Rtree3D,
    /// A TB-tree image.
    TbTree,
    /// An STR-tree image.
    StrTree,
    /// A metric-tree image.
    MetricTree,
}

/// Everything needed to reconstruct a tree (internal representation shared
/// by both save paths).
pub(crate) struct Image {
    pub kind: ImageKind,
    /// Log sequence number this image is consistent through (0 when the
    /// image was saved outside a write-ahead-log wrapper).
    pub lsn: u64,
    pub root: Option<PageId>,
    pub height: u8,
    pub entries: u64,
    pub max_speed: f64,
    pub pages: Vec<Box<[u8]>>,
    pub free_list: Vec<PageId>,
    pub tips: Vec<(TrajectoryId, PageId)>,
    pub parents: Vec<(PageId, PageId)>,
}

fn io_err(e: std::io::Error) -> IndexError {
    IndexError::Persist(e.to_string())
}

impl Image {
    pub(crate) fn write_to<W: Write>(&self, mut w: W) -> Result<()> {
        let mut header = Vec::with_capacity(64);
        header.extend_from_slice(MAGIC);
        header.push(match self.kind {
            ImageKind::Rtree3D => 0,
            ImageKind::TbTree => 1,
            ImageKind::StrTree => 2,
            ImageKind::MetricTree => 3,
        });
        header.extend_from_slice(&self.lsn.to_le_bytes());
        header.extend_from_slice(&self.root.unwrap_or(PageId::NONE).0.to_le_bytes());
        header.push(self.height);
        header.extend_from_slice(&self.entries.to_le_bytes());
        header.extend_from_slice(&self.max_speed.to_bits().to_le_bytes());
        header.extend_from_slice(&len_u64(self.pages.len(), "page")?.to_le_bytes());
        header.extend_from_slice(&len_u32(self.free_list.len(), "free-list")?.to_le_bytes());
        for id in &self.free_list {
            header.extend_from_slice(&id.0.to_le_bytes());
        }
        header.extend_from_slice(&len_u32(self.tips.len(), "tip")?.to_le_bytes());
        for (traj, page) in &self.tips {
            header.extend_from_slice(&traj.0.to_le_bytes());
            header.extend_from_slice(&page.0.to_le_bytes());
        }
        header.extend_from_slice(&len_u32(self.parents.len(), "parent")?.to_le_bytes());
        for (child, parent) in &self.parents {
            header.extend_from_slice(&child.0.to_le_bytes());
            header.extend_from_slice(&parent.0.to_le_bytes());
        }
        w.write_all(&header).map_err(io_err)?;
        for page in &self.pages {
            w.write_all(page).map_err(io_err)?;
        }
        w.flush().map_err(io_err)
    }

    pub(crate) fn read_from<R: Read>(mut r: R) -> Result<Image> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(io_err)?;
        if &magic != MAGIC {
            return Err(IndexError::Persist("bad magic — not an index image".into()));
        }
        let kind = match read_u8(&mut r)? {
            0 => ImageKind::Rtree3D,
            1 => ImageKind::TbTree,
            2 => ImageKind::StrTree,
            3 => ImageKind::MetricTree,
            other => {
                return Err(IndexError::Persist(format!("unknown tree kind {other}")));
            }
        };
        let lsn = read_u64(&mut r)?;
        let root_raw = read_u32(&mut r)?;
        let height = read_u8(&mut r)?;
        let entries = read_u64(&mut r)?;
        let max_speed = f64::from_bits(read_u64(&mut r)?);
        if !max_speed.is_finite() || max_speed < 0.0 {
            return Err(IndexError::Persist(format!("invalid vmax {max_speed}")));
        }
        let num_pages = count_from_u64(read_u64(&mut r)?, "page")?;
        let free_count = count_from_u32(read_u32(&mut r)?);
        if free_count > num_pages {
            return Err(IndexError::Persist(format!(
                "{free_count} free pages exceed the {num_pages} allocated"
            )));
        }
        let mut free_list = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free_list.push(PageId(read_u32(&mut r)?));
        }
        let tips_count = count_from_u32(read_u32(&mut r)?);
        let mut tips = Vec::with_capacity(tips_count);
        for _ in 0..tips_count {
            tips.push((TrajectoryId(read_u64(&mut r)?), PageId(read_u32(&mut r)?)));
        }
        let parents_count = count_from_u32(read_u32(&mut r)?);
        let mut parents = Vec::with_capacity(parents_count);
        for _ in 0..parents_count {
            parents.push((PageId(read_u32(&mut r)?), PageId(read_u32(&mut r)?)));
        }
        let mut pages = Vec::with_capacity(num_pages);
        for _ in 0..num_pages {
            let mut page = vec![0u8; PAGE_SIZE];
            r.read_exact(&mut page).map_err(io_err)?;
            pages.push(page.into_boxed_slice());
        }
        let root = (root_raw != PageId::NONE.0).then_some(PageId(root_raw));
        if let Some(root) = root {
            if root.index() >= num_pages {
                return Err(IndexError::Persist(format!(
                    "root {root:?} outside the {num_pages}-page image"
                )));
            }
        }
        Ok(Image {
            kind,
            lsn,
            root,
            height,
            entries,
            max_speed,
            pages,
            free_list,
            tips,
            parents,
        })
    }
}

/// Converts a collection length to the on-disk `u64` count field.
fn len_u64(n: usize, what: &str) -> Result<u64> {
    u64::try_from(n).map_err(|_| IndexError::Persist(format!("{what} count {n} exceeds u64")))
}

/// Converts a collection length to the on-disk `u32` count field.
fn len_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| IndexError::Persist(format!("{what} count {n} exceeds u32")))
}

/// Converts an on-disk `u64` count into an in-memory `usize`, rejecting
/// values this platform cannot address.
fn count_from_u64(n: u64, what: &str) -> Result<usize> {
    usize::try_from(n)
        .map_err(|_| IndexError::Persist(format!("{what} count {n} exceeds the address space")))
}

/// Converts an on-disk `u32` count into an in-memory `usize` (lossless:
/// 16-bit targets are rejected at compile time by the page store).
fn count_from_u32(n: u32) -> usize {
    PageId(n).index()
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_garbage_images() {
        let err = Image::read_from(&b"not an index"[..])
            .err()
            .expect("must fail");
        assert!(matches!(err, IndexError::Persist(_)));
        // Correct magic, truncated body.
        let err = Image::read_from(&b"MSTIDX02"[..]).err().expect("must fail");
        assert!(matches!(err, IndexError::Persist(_)));
        // A previous-generation magic is a clean rejection, not a
        // misparse: the LSN field changed the layout.
        let err = Image::read_from(&b"MSTIDX01"[..]).err().expect("must fail");
        assert!(matches!(err, IndexError::Persist(_)));
        // Unknown kind byte.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(9);
        let err = Image::read_from(&buf[..]).err().expect("must fail");
        assert!(matches!(err, IndexError::Persist(_)));
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use crate::{check_invariants, LeafEntry, Rtree3D, StrTree, TbTree, TrajectoryIndex};
    use mst_trajectory::{Mbb, SamplePoint, Segment, TrajectoryId};

    fn entry(id: u64, seq: u32, t: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(id),
            seq,
            segment: Segment::new(
                SamplePoint::new(t, f64::from(seq) * 0.7 + id as f64, 0.3 * id as f64),
                SamplePoint::new(
                    t + 1.0,
                    f64::from(seq) * 0.7 + id as f64 + 0.5,
                    0.3 * id as f64,
                ),
            )
            .unwrap(),
        }
    }

    #[test]
    fn rtree_roundtrips_through_bytes() {
        let mut tree = Rtree3D::new();
        for s in 0..120u32 {
            for id in 0..5u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        // Exercise the free list too.
        for s in (0..120u32).step_by(7) {
            assert!(tree.delete(TrajectoryId(2), s).unwrap());
        }
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let mut loaded = Rtree3D::load(&bytes[..]).unwrap();

        assert_eq!(loaded.num_entries(), tree.num_entries());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.max_speed(), tree.max_speed());
        assert_eq!(loaded.num_pages(), tree.num_pages());
        check_invariants(&mut loaded).unwrap();
        // Every surviving entry is still reachable.
        let all = |t: &mut Rtree3D| {
            let mut v = t
                .range_query(&Mbb::new(-1e12, -1e12, -1e12, 1e12, 1e12, 1e12))
                .unwrap();
            v.sort_by_key(|e| (e.traj, e.seq));
            v
        };
        assert_eq!(all(&mut loaded), all(&mut tree));
        // The loaded tree keeps working.
        loaded.insert(entry(9, 0, 500.0)).unwrap();
        check_invariants(&mut loaded).unwrap();
    }

    #[test]
    fn tbtree_roundtrips_with_tips_and_parents() {
        let mut tree = TbTree::new();
        for s in 0..200u32 {
            for id in 0..4u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let mut loaded = TbTree::load(&bytes[..]).unwrap();
        assert_eq!(loaded.num_entries(), 800);
        check_invariants(&mut loaded).unwrap();
        // Leaf-list reconstruction still works (tips survived).
        let segs = loaded.trajectory_segments(TrajectoryId(3)).unwrap();
        assert_eq!(segs.len(), 200);
        // And appending continues where the tip left off (parents survived).
        loaded.insert(entry(3, 200, 200.0)).unwrap();
        assert_eq!(
            loaded.trajectory_segments(TrajectoryId(3)).unwrap().len(),
            201
        );
        check_invariants(&mut loaded).unwrap();
    }

    #[test]
    fn strtree_roundtrips_through_bytes() {
        let mut tree = StrTree::new();
        for s in 0..150u32 {
            for id in 0..5u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let mut loaded = StrTree::load(&bytes[..]).unwrap();

        assert_eq!(loaded.num_entries(), tree.num_entries());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.max_speed(), tree.max_speed());
        assert_eq!(loaded.num_pages(), tree.num_pages());
        check_invariants(&mut loaded).unwrap();
        // Every entry is still reachable, bit-identically.
        let all = |t: &mut StrTree| {
            let mut v = t
                .range_query(&Mbb::new(-1e12, -1e12, -1e12, 1e12, 1e12, 1e12))
                .unwrap();
            v.sort_by_key(|e| (e.traj, e.seq));
            v
        };
        assert_eq!(all(&mut loaded), all(&mut tree));
        // The loaded tree keeps accepting inserts.
        loaded.insert(entry(9, 0, 500.0)).unwrap();
        check_invariants(&mut loaded).unwrap();
    }

    /// Truncating a saved STR-tree image at any depth is a clean
    /// [`IndexError::Persist`](crate::IndexError::Persist) — the variant
    /// existed but only R-tree/TB-tree images had truncation coverage.
    #[test]
    fn truncated_strtree_images_are_rejected_at_every_depth() {
        let mut tree = StrTree::new();
        for s in 0..150u32 {
            for id in 0..5u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        assert!(StrTree::load(&bytes[..]).is_ok(), "untruncated sanity");

        let cuts = [
            4,               // inside the magic
            12,              // inside the LSN field
            48,              // around the free list / tips counts
            bytes.len() / 2, // mid page data
            bytes.len() - 1, // one byte short
        ];
        for cut in cuts {
            let err = StrTree::load(&bytes[..cut])
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} must fail"));
            assert!(
                matches!(err, crate::IndexError::Persist(_)),
                "truncation at {cut}: expected Persist, got {err:?}"
            );
        }
    }

    /// The LSN stamp survives the round trip on every substrate, and the
    /// plain `save`/`load` pair behaves as LSN 0.
    #[test]
    fn lsn_stamp_roundtrips() {
        let mut rtree = Rtree3D::new();
        rtree.insert(entry(0, 0, 0.0)).unwrap();
        let mut bytes = Vec::new();
        rtree.save_lsn(&mut bytes, 0xDEAD_BEEF_CAFE).unwrap();
        let (_, lsn) = Rtree3D::load_lsn(&bytes[..]).unwrap();
        assert_eq!(lsn, 0xDEAD_BEEF_CAFE);

        let mut tb = TbTree::new();
        tb.insert(entry(0, 0, 0.0)).unwrap();
        bytes.clear();
        tb.save_lsn(&mut bytes, 7).unwrap();
        let (_, lsn) = TbTree::load_lsn(&bytes[..]).unwrap();
        assert_eq!(lsn, 7);

        let mut st = StrTree::new();
        st.insert(entry(0, 0, 0.0)).unwrap();
        bytes.clear();
        st.save(&mut bytes).unwrap();
        let (_, lsn) = StrTree::load_lsn(&bytes[..]).unwrap();
        assert_eq!(lsn, 0, "plain save stamps LSN 0");
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let mut rtree = Rtree3D::new();
        rtree.insert(entry(0, 0, 0.0)).unwrap();
        let mut bytes = Vec::new();
        rtree.save(&mut bytes).unwrap();
        assert!(TbTree::load(&bytes[..]).is_err());
        assert!(Rtree3D::load(&bytes[..]).is_ok());
    }

    /// Truncating a saved image at any depth — inside the header, inside
    /// the free list, mid-page, or one byte short — is a clean
    /// [`IndexError::Persist`](crate::IndexError::Persist), never a panic
    /// or a silently short tree.
    #[test]
    fn truncated_images_are_rejected_at_every_depth() {
        let mut tree = Rtree3D::new();
        for s in 0..120u32 {
            for id in 0..5u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        assert!(Rtree3D::load(&bytes[..]).is_ok(), "untruncated sanity");

        let cuts = [
            4,               // inside the magic
            10,              // inside the fixed header
            40,              // around the free list / tips counts
            bytes.len() / 2, // mid page data
            bytes.len() - 1, // one byte short
        ];
        for cut in cuts {
            let err = Rtree3D::load(&bytes[..cut])
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} must fail"));
            assert!(
                matches!(err, crate::IndexError::Persist(_)),
                "truncation at {cut}: expected Persist, got {err:?}"
            );
        }
    }

    /// A single flipped bit in the page-data region survives loading (the
    /// image is structurally sound) but is caught by the page checksum on
    /// the first fetch of the rotten page — and the page is quarantined
    /// afterwards, so the second fetch fast-fails without re-reading.
    #[test]
    fn bit_flipped_page_is_caught_on_first_fetch_and_quarantined() {
        let mut tree = Rtree3D::new();
        for s in 0..120u32 {
            for id in 0..5u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        let root = tree.root().expect("non-empty tree");
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();

        // The page data is the image's tail: pages × PAGE_SIZE raw bytes.
        let data_start = bytes.len() - tree.num_pages() * crate::PAGE_SIZE;
        let rot = data_start + root.index() * crate::PAGE_SIZE + 100;
        bytes[rot] ^= 0x10;

        let mut loaded = Rtree3D::load(&bytes[..]).expect("structurally sound image loads");
        let err = loaded.read_node(root).expect_err("rot must surface");
        match err {
            crate::IndexError::ChecksumMismatch {
                page,
                expected,
                found,
            } => {
                assert_eq!(page, root);
                assert_ne!(expected, found);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // Retries exhausted on a persistently-rotten page ⇒ quarantined.
        match loaded.read_node(root).expect_err("still unavailable") {
            crate::IndexError::PageUnavailable { page, reason } => {
                assert_eq!(page, root);
                assert_eq!(reason, crate::Unavailability::Quarantined);
            }
            other => panic!("expected PageUnavailable, got {other:?}"),
        }
    }

    /// Same rot, but on a page the search never touches: queries against
    /// the healthy part of the tree keep answering.
    #[test]
    fn rot_outside_the_search_path_leaves_other_reads_working() {
        let mut tree = Rtree3D::new();
        for s in 0..120u32 {
            for id in 0..5u64 {
                tree.insert(entry(id, s, f64::from(s))).unwrap();
            }
        }
        let root = tree.root().expect("non-empty tree");
        // Pick a victim that is not the root.
        let victim = (0..tree.num_pages() as u32)
            .map(crate::PageId)
            .find(|p| *p != root)
            .expect("more than one page");
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let data_start = bytes.len() - tree.num_pages() * crate::PAGE_SIZE;
        bytes[data_start + victim.index() * crate::PAGE_SIZE + 9] ^= 0x01;

        let mut loaded = Rtree3D::load(&bytes[..]).expect("loads");
        // The root still reads cleanly.
        loaded.read_node(root).expect("healthy page reads fine");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mst_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rtree.idx");
        let mut tree = Rtree3D::new();
        for s in 0..50u32 {
            tree.insert(entry(1, s, f64::from(s))).unwrap();
        }
        tree.save_to_path(&path).unwrap();
        let mut loaded = Rtree3D::load_from_path(&path).unwrap();
        assert_eq!(loaded.num_entries(), 50);
        check_invariants(&mut loaded).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
