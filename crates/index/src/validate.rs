//! Structural invariant checker for the R-tree-like structures.
//!
//! Used by tests (including property tests) and available to downstream
//! users as a debugging aid: it verifies the containment, level, capacity,
//! and entry-count invariants that the search algorithm's correctness rests
//! on.

use std::collections::{HashMap, HashSet};

use mst_trajectory::{Mbb, TrajectoryId};

use crate::{Node, PageId, TrajectoryIndex};

/// Tolerance for MBB containment comparisons (pure f64 copies should be
/// exact; the slack guards against future arithmetic in MBB maintenance).
const TOL: f64 = 1e-9;

/// Summary of a structural validation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Total nodes visited.
    pub nodes: usize,
    /// Leaf nodes visited.
    pub leaves: usize,
    /// Leaf entries counted.
    pub entries: u64,
    /// Maximum depth observed (root = 0).
    pub max_depth: usize,
}

fn mbb_contains(outer: &Mbb, inner: &Mbb) -> bool {
    outer.x_min <= inner.x_min + TOL
        && outer.y_min <= inner.y_min + TOL
        && outer.t_min <= inner.t_min + TOL
        && outer.x_max >= inner.x_max - TOL
        && outer.y_max >= inner.y_max - TOL
        && outer.t_max >= inner.t_max - TOL
}

/// Walks the whole tree checking:
///
/// 1. every internal entry's MBB contains (within tolerance) the MBB of the
///    child subtree it points to;
/// 2. levels decrease by exactly one on each descent and reach 0 at leaves;
/// 3. no node exceeds its capacity;
/// 4. every leaf sits at the same depth;
/// 5. reported entry/height metadata matches the structure;
/// 6. for trajectory-preserving indexes (TB-tree), every leaf chain walks
///    back from its tip through correctly back-and-forward-linked,
///    single-trajectory, temporally ordered leaves, and the chains cover
///    exactly the owned leaves present in the tree;
/// 7. the buffer manager's bookkeeping is consistent with no leaked pins.
///
/// Returns a summary on success, or a description of the first violation.
pub fn check_invariants<I: TrajectoryIndex>(index: &mut I) -> Result<InvariantReport, String> {
    let mut report = InvariantReport::default();
    let Some(root) = index.root() else {
        if index.num_entries() != 0 {
            return Err("empty tree reports nonzero entries".into());
        }
        return Ok(report);
    };

    let root_node = index.read_node(root).map_err(|e| e.to_string())?;
    let expected_height = index.height();
    if root_node.level() + 1 != expected_height {
        return Err(format!(
            "root level {} inconsistent with height {}",
            root_node.level(),
            expected_height
        ));
    }

    let mut leaf_depth: Option<usize> = None;
    let mut owned_leaves: HashMap<TrajectoryId, usize> = HashMap::new();
    // (page, expected_level, expected_mbb (None at root), depth)
    let mut stack: Vec<(PageId, u8, Option<Mbb>, usize)> = vec![(root, root_node.level(), None, 0)];

    while let Some((page, expected_level, expected_mbb, depth)) = stack.pop() {
        let node = index.read_node(page).map_err(|e| e.to_string())?;
        report.nodes += 1;
        report.max_depth = report.max_depth.max(depth);
        if node.level() != expected_level {
            return Err(format!(
                "page {page:?}: level {} but parent expects {expected_level}",
                node.level()
            ));
        }
        if node.len() > node.capacity() {
            return Err(format!(
                "page {page:?}: {} entries exceed capacity {}",
                node.len(),
                node.capacity()
            ));
        }
        if node.is_empty() && depth > 0 {
            return Err(format!("page {page:?}: empty non-root node"));
        }
        if let Some(parent_mbb) = expected_mbb {
            let own = node.mbb();
            if !mbb_contains(&parent_mbb, &own) {
                return Err(format!(
                    "page {page:?}: parent MBB {parent_mbb:?} does not contain node MBB {own:?}"
                ));
            }
        }
        match node {
            Node::Leaf { entries, owner, .. } => {
                report.leaves += 1;
                report.entries += entries.len() as u64;
                if let Some(d) = leaf_depth {
                    if d != depth {
                        return Err(format!(
                            "page {page:?}: leaf at depth {depth}, earlier leaves at {d}"
                        ));
                    }
                } else {
                    leaf_depth = Some(depth);
                }
                // TB-tree leaves must be single-trajectory and temporally
                // ordered (segments are appended in time order).
                if let Some(owner) = owner {
                    if entries.iter().any(|e| e.traj != owner) {
                        return Err(format!(
                            "page {page:?}: owned leaf ({owner}) contains foreign segments"
                        ));
                    }
                    for w in entries.windows(2) {
                        if w[0].segment.end().t > w[1].segment.start().t + TOL {
                            return Err(format!(
                                "page {page:?}: owned leaf entries out of temporal order"
                            ));
                        }
                    }
                    *owned_leaves.entry(owner).or_insert(0) += 1;
                }
            }
            Node::Internal { level, entries } => {
                for e in entries {
                    stack.push((e.child, level - 1, Some(e.mbb), depth + 1));
                }
            }
        }
    }

    if report.entries != index.num_entries() {
        return Err(format!(
            "tree holds {} entries but index reports {}",
            report.entries,
            index.num_entries()
        ));
    }

    check_leaf_chains(index, &owned_leaves)?;
    index
        .audit_buffer()
        .map_err(|e| format!("buffer audit: {e}"))?;
    Ok(report)
}

/// Walks every trajectory's leaf chain backwards from its tip, verifying
/// ownership, doubly-linked consistency (`next` of each predecessor points
/// at its successor and the tip's `next` is empty), temporal order across
/// the chain, acyclicity, and that the chains cover exactly the owned
/// leaves the tree walk found. No-op for indexes without leaf chains.
fn check_leaf_chains<I: TrajectoryIndex>(
    index: &mut I,
    owned_leaves: &HashMap<TrajectoryId, usize>,
) -> Result<(), String> {
    let tips = index.leaf_chain_tips();
    if tips.is_empty() {
        if !owned_leaves.is_empty() {
            return Err("tree holds owned leaves but reports no chain tips".into());
        }
        return Ok(());
    }
    let mut chained: HashMap<TrajectoryId, usize> = HashMap::new();
    for (traj, tip) in tips {
        let mut current = tip;
        let mut expected_next: Option<PageId> = None;
        let mut later_start = f64::INFINITY;
        let mut seen: HashSet<PageId> = HashSet::new();
        loop {
            if !seen.insert(current) {
                return Err(format!(
                    "trajectory {traj}: leaf chain contains a cycle at {current:?}"
                ));
            }
            let node = index.read_node(current).map_err(|e| e.to_string())?;
            let Node::Leaf {
                entries,
                owner,
                prev,
                next,
            } = node
            else {
                return Err(format!(
                    "trajectory {traj}: chain page {current:?} is not a leaf"
                ));
            };
            if owner != Some(traj) {
                return Err(format!(
                    "trajectory {traj}: chain page {current:?} is owned by {owner:?}"
                ));
            }
            if next != expected_next {
                return Err(format!(
                    "trajectory {traj}: page {current:?} has next {next:?}                      but the chain expects {expected_next:?}"
                ));
            }
            let (Some(first), Some(last)) = (entries.first(), entries.last()) else {
                return Err(format!(
                    "trajectory {traj}: empty leaf {current:?} on the chain"
                ));
            };
            if last.segment.end().t > later_start + TOL {
                return Err(format!(
                    "trajectory {traj}: chain out of temporal order at {current:?}"
                ));
            }
            later_start = first.segment.start().t;
            *chained.entry(traj).or_insert(0) += 1;
            match prev {
                Some(p) => {
                    expected_next = Some(current);
                    current = p;
                }
                None => break,
            }
        }
    }
    if &chained != owned_leaves {
        return Err(format!(
            "leaf chains cover {chained:?} but the tree holds owned leaves {owned_leaves:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternalEntry, LeafEntry, Rtree3D, TbTree};
    use mst_trajectory::{SamplePoint, Segment};

    fn entry(traj: u64, seq: u32, t0: f64, x: f64, y: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(traj),
            seq,
            segment: Segment::new(
                SamplePoint::new(t0, x, y),
                SamplePoint::new(t0 + 1.0, x + 1.0, y),
            )
            .expect("valid test segment"),
        }
    }

    fn multi_level_rtree() -> Rtree3D {
        let mut t = Rtree3D::new();
        for i in 0..200u32 {
            t.insert(entry(
                u64::from(i % 10),
                i / 10,
                f64::from(i),
                f64::from(i % 17),
                f64::from(i % 13),
            ))
            .expect("insert");
        }
        assert!(t.height() > 1, "corruption tests need a directory level");
        check_invariants(&mut t).expect("freshly built tree is valid");
        t
    }

    fn chained_tbtree() -> TbTree {
        let mut t = TbTree::new();
        // Enough segments to span several leaves per trajectory.
        for s in 0..150u32 {
            for id in [1u64, 2] {
                t.insert(entry(id, s, f64::from(s) * 2.0, f64::from(s), 0.0))
                    .expect("insert");
            }
        }
        check_invariants(&mut t).expect("freshly built tree is valid");
        t
    }

    #[test]
    fn inflated_child_mbb_is_detected() {
        let mut t = multi_level_rtree();
        let root = t.root().expect("non-empty");
        let Node::Internal { level, mut entries } = t.read_node(root).unwrap() else {
            panic!("multi-level tree has an internal root");
        };
        // Shrink the first entry's box to a point: the child's real MBB now
        // sticks out of what the parent advertises.
        let m = entries[0].mbb;
        entries[0].mbb = Mbb::new(m.x_min, m.y_min, m.t_min, m.x_min, m.y_min, m.t_min);
        t.corrupt_node_for_tests(root, &Node::Internal { level, entries })
            .unwrap();
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("does not contain"), "{err}");
    }

    #[test]
    fn mis_leveled_node_is_detected() {
        let mut t = multi_level_rtree();
        let root = t.root().expect("non-empty");
        let Node::Internal { entries, .. } = t.read_node(root).unwrap() else {
            panic!("multi-level tree has an internal root");
        };
        // Replace a level-0 child with an internal node claiming level 1.
        let victim = entries[0].child;
        let fake = Node::Internal {
            level: 1,
            entries: vec![InternalEntry {
                child: root,
                mbb: entries[0].mbb,
            }],
        };
        t.corrupt_node_for_tests(victim, &fake).unwrap();
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("parent expects"), "{err}");
    }

    #[test]
    fn foreign_segment_in_owned_leaf_is_detected() {
        let mut t = chained_tbtree();
        let (owner_id, tip) = t.leaf_chain_tips()[0];
        let Node::Leaf {
            mut entries,
            owner,
            prev,
            next,
        } = t.read_node(tip).unwrap()
        else {
            panic!("tips point at leaves");
        };
        assert_eq!(owner, Some(owner_id));
        // Relabel the last entry: same geometry (so the MBBs stay
        // consistent), different trajectory.
        let mut foreign = entries.pop().expect("tip leaves are non-empty");
        foreign.traj = TrajectoryId(owner_id.0 + 1);
        entries.push(foreign);
        t.corrupt_node_for_tests(
            tip,
            &Node::Leaf {
                entries,
                owner,
                prev,
                next,
            },
        )
        .unwrap();
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("foreign segments"), "{err}");
    }

    #[test]
    fn desynced_entry_count_is_detected() {
        let mut t = multi_level_rtree();
        let n = t.num_entries();
        t.set_num_entries_for_tests(n + 1);
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("reports"), "{err}");

        let mut t = chained_tbtree();
        let n = t.num_entries();
        t.set_num_entries_for_tests(n - 1);
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("reports"), "{err}");
    }

    #[test]
    fn broken_leaf_chain_next_pointer_is_detected() {
        let mut t = chained_tbtree();
        let (_, tip) = t.leaf_chain_tips()[0];
        let Node::Leaf { prev, .. } = t.read_node(tip).unwrap() else {
            panic!("tips point at leaves");
        };
        let predecessor = prev.expect("150 segments span several leaves");
        let Node::Leaf {
            entries,
            owner,
            prev: pp,
            ..
        } = t.read_node(predecessor).unwrap()
        else {
            panic!("chain pages are leaves");
        };
        // Sever the forward link: the predecessor forgets its successor.
        t.corrupt_node_for_tests(
            predecessor,
            &Node::Leaf {
                entries,
                owner,
                prev: pp,
                next: None,
            },
        )
        .unwrap();
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("next"), "{err}");
    }

    #[test]
    fn leaf_chain_cycle_is_detected() {
        let mut t = chained_tbtree();
        let (_, tip) = t.leaf_chain_tips()[0];
        let Node::Leaf { prev, .. } = t.read_node(tip).unwrap() else {
            panic!("tips point at leaves");
        };
        let predecessor = prev.expect("150 segments span several leaves");
        let Node::Leaf { entries, owner, .. } = t.read_node(predecessor).unwrap() else {
            panic!("chain pages are leaves");
        };
        // Point the predecessor back at the tip: tip -> pred -> tip -> ...
        t.corrupt_node_for_tests(
            predecessor,
            &Node::Leaf {
                entries,
                owner,
                prev: Some(tip),
                next: Some(tip),
            },
        )
        .unwrap();
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn leaked_buffer_pin_is_detected() {
        let mut t = multi_level_rtree();
        let root = t.root().expect("non-empty");
        t.read_node(root).expect("root is resident after this");
        t.leak_pin_for_tests(root).expect("root is resident");
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("leaked pin"), "{err}");

        let mut t = chained_tbtree();
        let root = t.root().expect("non-empty");
        t.read_node(root).expect("root is resident after this");
        t.leak_pin_for_tests(root).expect("root is resident");
        let err = check_invariants(&mut t).unwrap_err();
        assert!(err.contains("leaked pin"), "{err}");
    }
}
