//! Structural invariant checker for the R-tree-like structures.
//!
//! Used by tests (including property tests) and available to downstream
//! users as a debugging aid: it verifies the containment, level, capacity,
//! and entry-count invariants that the search algorithm's correctness rests
//! on.

use mst_trajectory::Mbb;

use crate::{Node, PageId, TrajectoryIndex};

/// Tolerance for MBB containment comparisons (pure f64 copies should be
/// exact; the slack guards against future arithmetic in MBB maintenance).
const TOL: f64 = 1e-9;

/// Summary of a structural validation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Total nodes visited.
    pub nodes: usize,
    /// Leaf nodes visited.
    pub leaves: usize,
    /// Leaf entries counted.
    pub entries: u64,
    /// Maximum depth observed (root = 0).
    pub max_depth: usize,
}

fn mbb_contains(outer: &Mbb, inner: &Mbb) -> bool {
    outer.x_min <= inner.x_min + TOL
        && outer.y_min <= inner.y_min + TOL
        && outer.t_min <= inner.t_min + TOL
        && outer.x_max >= inner.x_max - TOL
        && outer.y_max >= inner.y_max - TOL
        && outer.t_max >= inner.t_max - TOL
}

/// Walks the whole tree checking:
///
/// 1. every internal entry's MBB contains (within tolerance) the MBB of the
///    child subtree it points to;
/// 2. levels decrease by exactly one on each descent and reach 0 at leaves;
/// 3. no node exceeds its capacity;
/// 4. every leaf sits at the same depth;
/// 5. reported entry/height metadata matches the structure.
///
/// Returns a summary on success, or a description of the first violation.
pub fn check_invariants<I: TrajectoryIndex>(index: &mut I) -> Result<InvariantReport, String> {
    let mut report = InvariantReport::default();
    let Some(root) = index.root() else {
        if index.num_entries() != 0 {
            return Err("empty tree reports nonzero entries".into());
        }
        return Ok(report);
    };

    let root_node = index.read_node(root).map_err(|e| e.to_string())?;
    let expected_height = index.height();
    if root_node.level() + 1 != expected_height {
        return Err(format!(
            "root level {} inconsistent with height {}",
            root_node.level(),
            expected_height
        ));
    }

    let mut leaf_depth: Option<usize> = None;
    // (page, expected_level, expected_mbb (None at root), depth)
    let mut stack: Vec<(PageId, u8, Option<Mbb>, usize)> = vec![(root, root_node.level(), None, 0)];

    while let Some((page, expected_level, expected_mbb, depth)) = stack.pop() {
        let node = index.read_node(page).map_err(|e| e.to_string())?;
        report.nodes += 1;
        report.max_depth = report.max_depth.max(depth);
        if node.level() != expected_level {
            return Err(format!(
                "page {page:?}: level {} but parent expects {expected_level}",
                node.level()
            ));
        }
        if node.len() > node.capacity() {
            return Err(format!(
                "page {page:?}: {} entries exceed capacity {}",
                node.len(),
                node.capacity()
            ));
        }
        if node.is_empty() && depth > 0 {
            return Err(format!("page {page:?}: empty non-root node"));
        }
        if let Some(parent_mbb) = expected_mbb {
            let own = node.mbb();
            if !mbb_contains(&parent_mbb, &own) {
                return Err(format!(
                    "page {page:?}: parent MBB {parent_mbb:?} does not contain node MBB {own:?}"
                ));
            }
        }
        match node {
            Node::Leaf { entries, owner, .. } => {
                report.leaves += 1;
                report.entries += entries.len() as u64;
                if let Some(d) = leaf_depth {
                    if d != depth {
                        return Err(format!(
                            "page {page:?}: leaf at depth {depth}, earlier leaves at {d}"
                        ));
                    }
                } else {
                    leaf_depth = Some(depth);
                }
                // TB-tree leaves must be single-trajectory.
                if let Some(owner) = owner {
                    if entries.iter().any(|e| e.traj != owner) {
                        return Err(format!(
                            "page {page:?}: owned leaf ({owner}) contains foreign segments"
                        ));
                    }
                }
            }
            Node::Internal { level, entries } => {
                for e in entries {
                    stack.push((e.child, level - 1, Some(e.mbb), depth + 1));
                }
            }
        }
    }

    if report.entries != index.num_entries() {
        return Err(format!(
            "tree holds {} entries but index reports {}",
            report.entries,
            index.num_entries()
        ));
    }
    Ok(report)
}
