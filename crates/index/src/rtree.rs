//! A 3D (x, y, t) R-tree over trajectory segments.
//!
//! This is the "3D R-tree" of the paper's experimental study
//! (Theodoridis/Vazirgiannis/Sellis, ICMCS 1996): a classic Guttman R-tree
//! whose keys are the 3D minimum bounding boxes of individual trajectory
//! line segments. Insertion descends by least volume enlargement and
//! resolves overflows with the quadratic split.

use mst_trajectory::{Mbb, Trajectory, TrajectoryId};

use crate::persist::{Image, ImageKind};
use crate::traits::Pager;
use crate::{
    IndexError, IndexStats, InternalEntry, LeafEntry, Node, PageId, PageStore, Result,
    TrajectoryIndex, INTERNAL_CAPACITY, LEAF_CAPACITY, PAGE_SIZE,
};

/// Minimum fill fraction enforced by the quadratic split.
pub(crate) const MIN_FILL_RATIO: f64 = 0.4;

/// A Guttman-style 3D R-tree storing one entry per trajectory segment.
pub struct Rtree3D {
    pager: Pager,
    root: Option<PageId>,
    height: u8,
    num_entries: u64,
    max_speed: f64,
}

impl Rtree3D {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Rtree3D {
            pager: Pager::new(),
            root: None,
            height: 0,
            num_entries: 0,
            max_speed: 0.0,
        }
    }

    /// Inserts one trajectory segment.
    pub fn insert(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert_impl(entry)?;
        self.paranoid_audit("insert");
        Ok(())
    }

    /// Audit hook behind the `paranoid` feature: re-validates the whole
    /// tree and the buffer accounting after a mutating operation. The I/O
    /// counters are snapshot-restored around the audit so measurements stay
    /// comparable with unaudited runs.
    #[cfg(feature = "paranoid")]
    fn paranoid_audit(&mut self, op: &str) {
        let disk = self.pager.store.stats();
        let buf = self.pager.pool.stats();
        let reads = self.pager.node_reads;
        let failure = crate::check_invariants(self).err();
        self.pager.store.set_stats(disk);
        self.pager.pool.set_stats(buf);
        self.pager.node_reads = reads;
        if let Some(reason) = failure {
            let _ = &reason;
            debug_assert!(false, "paranoid audit after {op}: {reason}");
        }
    }

    #[cfg(not(feature = "paranoid"))]
    #[inline(always)]
    fn paranoid_audit(&mut self, _op: &str) {}

    fn insert_impl(&mut self, entry: LeafEntry) -> Result<()> {
        self.max_speed = self.max_speed.max(entry.segment.speed());
        self.num_entries += 1;

        let Some(root) = self.root else {
            let node = Node::Leaf {
                entries: vec![entry],
                owner: None,
                prev: None,
                next: None,
            };
            self.root = Some(self.pager.allocate_node(&node)?);
            self.height = 1;
            return Ok(());
        };

        // Descend to the best leaf, remembering the path.
        let mut path: Vec<(PageId, usize)> = Vec::with_capacity(self.height as usize);
        let mut current = root;
        while let Node::Internal { entries, .. } = self.pager.read_node(current)? {
            let idx = choose_subtree(&entries, &entry.mbb());
            path.push((current, idx));
            current = entries[idx].child;
        }

        // Insert into the leaf, splitting on overflow.
        let mut leaf = self.pager.read_node(current)?;
        let Node::Leaf { entries, .. } = &mut leaf else {
            return Err(IndexError::CorruptNode {
                page: current,
                reason: "descent ended on an internal node".into(),
            });
        };
        entries.push(entry);
        let mut updated_mbb; // MBB of the child we just modified
        let mut split: Option<InternalEntry> = None;
        if entries.len() > LEAF_CAPACITY {
            let min_fill = (LEAF_CAPACITY as f64 * MIN_FILL_RATIO).ceil() as usize;
            let items: Vec<(Mbb, LeafEntry)> = entries.iter().map(|e| (e.mbb(), *e)).collect();
            let (a, b) = quadratic_split(items, min_fill);
            let node_a = Node::Leaf {
                entries: a.into_iter().map(|(_, e)| e).collect(),
                owner: None,
                prev: None,
                next: None,
            };
            let node_b = Node::Leaf {
                entries: b.into_iter().map(|(_, e)| e).collect(),
                owner: None,
                prev: None,
                next: None,
            };
            updated_mbb = node_a.mbb();
            self.pager.write_node(current, &node_a)?;
            let new_page = self.pager.allocate_node(&node_b)?;
            split = Some(InternalEntry {
                child: new_page,
                mbb: node_b.mbb(),
            });
        } else {
            updated_mbb = leaf.mbb();
            self.pager.write_node(current, &leaf)?;
        }

        // Walk back up: refresh the child MBB, absorb any split.
        for &(page, child_idx) in path.iter().rev() {
            let mut node = self.pager.read_node(page)?;
            let Node::Internal { level, entries } = &mut node else {
                return Err(IndexError::CorruptNode {
                    page,
                    reason: "path node is not internal".into(),
                });
            };
            entries[child_idx].mbb = updated_mbb;
            if let Some(new_entry) = split.take() {
                entries.push(new_entry);
                if entries.len() > INTERNAL_CAPACITY {
                    let min_fill = (INTERNAL_CAPACITY as f64 * MIN_FILL_RATIO).ceil() as usize;
                    let items: Vec<(Mbb, InternalEntry)> =
                        entries.iter().map(|e| (e.mbb, *e)).collect();
                    let (a, b) = quadratic_split(items, min_fill);
                    let level = *level;
                    let node_a = Node::Internal {
                        level,
                        entries: a.into_iter().map(|(_, e)| e).collect(),
                    };
                    let node_b = Node::Internal {
                        level,
                        entries: b.into_iter().map(|(_, e)| e).collect(),
                    };
                    updated_mbb = node_a.mbb();
                    self.pager.write_node(page, &node_a)?;
                    let new_page = self.pager.allocate_node(&node_b)?;
                    split = Some(InternalEntry {
                        child: new_page,
                        mbb: node_b.mbb(),
                    });
                    continue;
                }
            }
            updated_mbb = node.mbb();
            self.pager.write_node(page, &node)?;
        }

        // Root split: grow the tree by one level.
        if let Some(new_entry) = split {
            let old_root_mbb = self.pager.read_node(root)?.mbb();
            let new_root = Node::Internal {
                level: self.height,
                entries: vec![
                    InternalEntry {
                        child: root,
                        mbb: old_root_mbb,
                    },
                    new_entry,
                ],
            };
            self.root = Some(self.pager.allocate_node(&new_root)?);
            self.height += 1;
        }
        Ok(())
    }

    /// Builds a tree bottom-up from a batch of entries with Sort-Tile-
    /// Recursive packing (Leutenegger et al.): leaves are filled to
    /// capacity along an x/y/t tiling, then each directory level is packed
    /// the same way. Produces a noticeably smaller, better-clustered tree
    /// than one-by-one insertion — the right tool for loading historical
    /// trajectory archives.
    pub fn bulk_load(entries: Vec<LeafEntry>) -> Result<Self> {
        let mut tree = Rtree3D::new();
        if entries.is_empty() {
            return Ok(tree);
        }
        tree.num_entries = entries.len() as u64;
        tree.max_speed = entries
            .iter()
            .map(|e| e.segment.speed())
            .fold(0.0, f64::max);

        // Pack the leaf level.
        let mut items: Vec<(Mbb, LeafEntry)> = entries.into_iter().map(|e| (e.mbb(), e)).collect();
        let mut groups: Vec<Vec<(Mbb, LeafEntry)>> = Vec::new();
        str_pack(&mut items, LEAF_CAPACITY, 3, &mut groups);
        let mut level_entries: Vec<InternalEntry> = Vec::with_capacity(groups.len());
        for g in groups {
            let node = Node::Leaf {
                entries: g.into_iter().map(|(_, e)| e).collect(),
                owner: None,
                prev: None,
                next: None,
            };
            let mbb = node.mbb();
            let page = tree.pager.allocate_node(&node)?;
            level_entries.push(InternalEntry { child: page, mbb });
        }
        tree.height = 1;

        // Pack directory levels until one node remains.
        while level_entries.len() > 1 {
            let mut items: Vec<(Mbb, InternalEntry)> =
                level_entries.into_iter().map(|e| (e.mbb, e)).collect();
            let mut groups: Vec<Vec<(Mbb, InternalEntry)>> = Vec::new();
            str_pack(&mut items, INTERNAL_CAPACITY, 3, &mut groups);
            let mut next: Vec<InternalEntry> = Vec::with_capacity(groups.len());
            for g in groups {
                let node = Node::Internal {
                    level: tree.height,
                    entries: g.into_iter().map(|(_, e)| e).collect(),
                };
                let mbb = node.mbb();
                let page = tree.pager.allocate_node(&node)?;
                next.push(InternalEntry { child: page, mbb });
            }
            level_entries = next;
            tree.height += 1;
        }
        tree.root = Some(level_entries[0].child);
        tree.paranoid_audit("bulk_load");
        Ok(tree)
    }

    /// Inserts every segment of `trajectory` under `id` (sequence numbers
    /// follow the segment order).
    pub fn insert_trajectory(&mut self, id: TrajectoryId, trajectory: &Trajectory) -> Result<()> {
        for (seq, segment) in trajectory.segments().enumerate() {
            self.insert(LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            })?;
        }
        Ok(())
    }

    /// Flushes dirty buffered pages to the page store.
    pub fn flush(&mut self) -> Result<()> {
        self.pager.pool.flush(&mut self.pager.store)
    }

    /// Serializes the whole index into `writer` (dirty pages are flushed
    /// first, so the image is a faithful snapshot). The image carries LSN 0
    /// — use [`Rtree3D::save_lsn`] when the tree lives under a write-ahead
    /// log.
    pub fn save<W: std::io::Write>(&mut self, writer: W) -> Result<()> {
        self.save_lsn(writer, 0)
    }

    /// Serializes the whole index into `writer`, stamping the image with
    /// the log sequence number it is consistent through.
    pub fn save_lsn<W: std::io::Write>(&mut self, writer: W, lsn: u64) -> Result<()> {
        self.flush()?;
        let image = Image {
            kind: ImageKind::Rtree3D,
            lsn,
            root: self.root,
            height: self.height,
            entries: self.num_entries,
            max_speed: self.max_speed,
            pages: self.pager.store.raw_pages().map(Box::from).collect(),
            free_list: self.pager.store.free_list().to_vec(),
            tips: Vec::new(),
            parents: Vec::new(),
        };
        image.write_to(writer)
    }

    /// Saves the index to a file.
    pub fn save_to_path<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<()> {
        let file = std::fs::File::create(path).map_err(|e| IndexError::Persist(e.to_string()))?;
        self.save(std::io::BufWriter::new(file))
    }

    /// Reconstructs an index from a persisted image.
    pub fn load<R: std::io::Read>(reader: R) -> Result<Self> {
        Ok(Self::load_lsn(reader)?.0)
    }

    /// Reconstructs an index from a persisted image, also returning the log
    /// sequence number the image is consistent through.
    pub fn load_lsn<R: std::io::Read>(reader: R) -> Result<(Self, u64)> {
        let image = Image::read_from(reader)?;
        if image.kind != ImageKind::Rtree3D {
            return Err(IndexError::Persist(
                "image holds a TB-tree, not a 3D R-tree".into(),
            ));
        }
        let lsn = image.lsn;
        let store = PageStore::from_raw(image.pages, image.free_list);
        Ok((
            Rtree3D {
                pager: Pager::from_store(store),
                root: image.root,
                height: image.height,
                num_entries: image.entries,
                max_speed: image.max_speed,
            },
            lsn,
        ))
    }

    /// Loads an index from a file.
    pub fn load_from_path<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path).map_err(|e| IndexError::Persist(e.to_string()))?;
        Self::load(std::io::BufReader::new(file))
    }

    /// Deletes one segment entry (matched by trajectory id + sequence
    /// number), condensing the tree à la Guttman: underfull nodes on the
    /// path are dissolved and their surviving entries reinserted; freed
    /// pages return to the store. Returns `false` when no such entry
    /// exists.
    ///
    /// `max_speed` is intentionally *not* recomputed — it remains a sound
    /// (if possibly loose) upper bound for the Vmax-based pruning metrics.
    pub fn delete(&mut self, traj: TrajectoryId, seq: u32) -> Result<bool> {
        let deleted = self.delete_impl(traj, seq)?;
        self.paranoid_audit("delete");
        Ok(deleted)
    }

    fn delete_impl(&mut self, traj: TrajectoryId, seq: u32) -> Result<bool> {
        let Some(root) = self.root else {
            return Ok(false);
        };
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let Some(leaf_page) = self.find_leaf(root, traj, seq, &mut path)? else {
            return Ok(false);
        };

        let mut node = self.pager.read_node(leaf_page)?;
        let Node::Leaf { entries, .. } = &mut node else {
            return Err(IndexError::CorruptNode {
                page: leaf_page,
                reason: "find_leaf returned a non-leaf page".into(),
            });
        };
        let Some(idx) = entries.iter().position(|e| e.traj == traj && e.seq == seq) else {
            return Err(IndexError::CorruptNode {
                page: leaf_page,
                reason: "leaf lost the matched entry between lookup and delete".into(),
            });
        };
        entries.remove(idx);
        self.num_entries -= 1;
        self.pager.write_node(leaf_page, &node)?;
        self.condense(leaf_page, node, path)?;
        Ok(true)
    }

    /// Depth-first search for the leaf holding `(traj, seq)`, recording the
    /// root-to-parent path of the match.
    fn find_leaf(
        &mut self,
        page: PageId,
        traj: TrajectoryId,
        seq: u32,
        path: &mut Vec<(PageId, usize)>,
    ) -> Result<Option<PageId>> {
        match self.pager.read_node(page)? {
            Node::Leaf { entries, .. } => {
                if entries.iter().any(|e| e.traj == traj && e.seq == seq) {
                    Ok(Some(page))
                } else {
                    Ok(None)
                }
            }
            Node::Internal { entries, .. } => {
                for (i, e) in entries.iter().enumerate() {
                    path.push((page, i));
                    if let Some(found) = self.find_leaf(e.child, traj, seq, path)? {
                        return Ok(Some(found));
                    }
                    path.pop();
                }
                Ok(None)
            }
        }
    }

    /// Guttman's CondenseTree: walk the deletion path upward, dissolving
    /// underfull nodes (their leaf entries are reinserted afterwards) and
    /// tightening ancestor MBBs; then shrink the root while it has a single
    /// child.
    fn condense(
        &mut self,
        mut child_page: PageId,
        mut child_node: Node,
        path: Vec<(PageId, usize)>,
    ) -> Result<()> {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        for &(parent_page, child_idx) in path.iter().rev() {
            let mut parent = self.pager.read_node(parent_page)?;
            let Node::Internal { entries, .. } = &mut parent else {
                return Err(IndexError::CorruptNode {
                    page: parent_page,
                    reason: "deletion path holds a leaf above level 0".into(),
                });
            };
            let min_fill = (child_node.capacity() as f64 * MIN_FILL_RATIO).ceil() as usize;
            if child_node.len() < min_fill {
                // Dissolve the child: harvest its leaf entries, free its
                // pages, drop it from the parent.
                self.harvest(&child_node, &mut orphans)?;
                self.pager.free_node(child_page)?;
                entries.remove(child_idx);
            } else {
                entries[child_idx].mbb = child_node.mbb();
            }
            self.pager.write_node(parent_page, &parent)?;
            child_page = parent_page;
            child_node = parent;
        }

        // Shrink the root: empty leaf -> empty tree; single-child internal
        // chains collapse.
        loop {
            match &child_node {
                Node::Leaf { entries, .. } => {
                    if entries.is_empty() && orphans.is_empty() {
                        self.pager.free_node(child_page)?;
                        self.root = None;
                        self.height = 0;
                    }
                    break;
                }
                Node::Internal { entries, .. } => match entries.len() {
                    0 => {
                        self.pager.free_node(child_page)?;
                        self.root = None;
                        self.height = 0;
                        break;
                    }
                    1 => {
                        let only = entries[0].child;
                        self.pager.free_node(child_page)?;
                        self.root = Some(only);
                        self.height -= 1;
                        child_page = only;
                        child_node = self.pager.read_node(only)?;
                    }
                    _ => break,
                },
            }
        }

        // Reinsert what the dissolved nodes still held. `insert_impl`
        // counts entries, so compensate; the unaudited path is deliberate —
        // the tree is transiently inconsistent until the last orphan lands,
        // and the delete wrapper audits the final state.
        for e in orphans {
            self.num_entries -= 1;
            self.insert_impl(e)?;
        }
        Ok(())
    }

    /// Collects every leaf entry below `node` and frees the visited
    /// descendant pages (the node's own page is freed by the caller).
    fn harvest(&mut self, node: &Node, out: &mut Vec<LeafEntry>) -> Result<()> {
        match node {
            Node::Leaf { entries, .. } => out.extend(entries.iter().copied()),
            Node::Internal { entries, .. } => {
                for e in entries {
                    let child = self.pager.read_node(e.child)?;
                    self.harvest(&child, out)?;
                    self.pager.free_node(e.child)?;
                }
            }
        }
        Ok(())
    }
}

impl Default for Rtree3D {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
impl Rtree3D {
    /// Test-only: overwrite a node's page, bypassing every invariant — used
    /// by the validator's negative tests to plant corruption.
    pub(crate) fn corrupt_node_for_tests(&mut self, page: PageId, node: &Node) -> Result<()> {
        self.pager.write_node(page, node)
    }

    /// Test-only: desynchronize the entry counter.
    pub(crate) fn set_num_entries_for_tests(&mut self, n: u64) {
        self.num_entries = n;
    }

    /// Test-only: pin a resident page and never unpin it (a simulated leak).
    pub(crate) fn leak_pin_for_tests(&mut self, page: PageId) -> Result<()> {
        self.pager.pool.pin(page)
    }
}

impl crate::TrajectoryIndexWrite for Rtree3D {
    fn insert_entry(&mut self, entry: LeafEntry) -> Result<()> {
        self.insert(entry)
    }

    fn delete_entry(&mut self, traj: TrajectoryId, seq: u32) -> Result<bool> {
        self.delete(traj, seq)
    }
}

impl TrajectoryIndex for Rtree3D {
    fn root(&self) -> Option<PageId> {
        self.root
    }

    fn read_node(&mut self, page: PageId) -> Result<Node> {
        self.pager.read_node(page)
    }

    fn read_node_traced<S: crate::metrics::MetricsSink>(
        &mut self,
        page: PageId,
        sink: &mut S,
    ) -> Result<Node> {
        self.pager.read_node_traced(page, sink)
    }

    fn num_pages(&self) -> usize {
        self.pager.store.num_pages()
    }

    fn num_entries(&self) -> u64 {
        self.num_entries
    }

    fn height(&self) -> u8 {
        self.height
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            pages: self.pager.store.num_pages(),
            size_bytes: self.pager.store.num_pages() * PAGE_SIZE,
            height: self.height,
            entries: self.num_entries,
            node_reads: self.pager.node_reads,
            disk: self.pager.store.stats(),
            buffer: self.pager.pool.stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.pager.reset_stats();
    }

    fn clear_buffer(&mut self) -> Result<()> {
        self.pager.clear_buffer()
    }

    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        self.pager.set_fixed_capacity(capacity)
    }

    fn set_fault_injection(&mut self, config: Option<crate::fault::FaultConfig>) -> Result<()> {
        self.pager.set_fault_injection(config);
        Ok(())
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.pager.store.fault_stats()
    }

    fn audit_buffer(&self) -> std::result::Result<(), String> {
        self.pager.audit()
    }
}

/// Picks the child whose MBB needs the least volume enlargement to absorb
/// `mbb` (ties broken by smaller volume, then by index for determinism).
pub(crate) fn choose_subtree(entries: &[InternalEntry], mbb: &Mbb) -> usize {
    let mut best = 0;
    let mut best_enlargement = f64::INFINITY;
    let mut best_volume = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let enlargement = e.mbb.enlargement(mbb);
        let volume = e.mbb.volume();
        if enlargement < best_enlargement
            || (enlargement == best_enlargement && volume < best_volume)
        {
            best = i;
            best_enlargement = enlargement;
            best_volume = volume;
        }
    }
    best
}

/// One half of a quadratic split: boxed items assigned to a group.
pub(crate) type SplitGroup<T> = Vec<(Mbb, T)>;

/// Guttman's quadratic split: pick the pair of seeds wasting the most dead
/// space, then assign each remaining item to the group whose MBB grows the
/// least, forcing assignment when a group must take everything left to reach
/// the minimum fill.
pub(crate) fn quadratic_split<T: Copy>(
    items: Vec<(Mbb, T)>,
    min_fill: usize,
) -> (SplitGroup<T>, SplitGroup<T>) {
    debug_assert!(items.len() >= 2);
    // Seed selection: maximize union volume minus the two volumes.
    let (mut seed_a, mut seed_b) = (0, 1);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let dead =
                items[i].0.union(&items[j].0).volume() - items[i].0.volume() - items[j].0.volume();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a: Vec<(Mbb, T)> = vec![items[seed_a]];
    let mut group_b: Vec<(Mbb, T)> = vec![items[seed_b]];
    let mut mbb_a = items[seed_a].0;
    let mut mbb_b = items[seed_b].0;

    let mut rest: Vec<(Mbb, T)> = items
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != seed_a && i != seed_b)
        .map(|(_, it)| it)
        .collect();

    while let Some(next) = pick_next(&rest, &mbb_a, &mbb_b) {
        let remaining = rest.len();
        // Forced assignment to honour the minimum fill.
        if group_a.len() + remaining <= min_fill {
            for it in rest.drain(..) {
                mbb_a = mbb_a.union(&it.0);
                group_a.push(it);
            }
            break;
        }
        if group_b.len() + remaining <= min_fill {
            for it in rest.drain(..) {
                mbb_b = mbb_b.union(&it.0);
                group_b.push(it);
            }
            break;
        }
        let it = rest.swap_remove(next);
        let grow_a = mbb_a.enlargement(&it.0);
        let grow_b = mbb_b.enlargement(&it.0);
        let to_a = match grow_a.partial_cmp(&grow_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => {
                // Tie: smaller volume, then fewer entries.
                if mbb_a.volume() != mbb_b.volume() {
                    mbb_a.volume() < mbb_b.volume()
                } else {
                    group_a.len() <= group_b.len()
                }
            }
        };
        if to_a {
            mbb_a = mbb_a.union(&it.0);
            group_a.push(it);
        } else {
            mbb_b = mbb_b.union(&it.0);
            group_b.push(it);
        }
    }
    (group_a, group_b)
}

/// PickNext of the quadratic split: the remaining item with the greatest
/// preference (|enlargement difference|) for one group over the other.
fn pick_next<T>(rest: &[(Mbb, T)], mbb_a: &Mbb, mbb_b: &Mbb) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_pref = f64::NEG_INFINITY;
    for (i, (mbb, _)) in rest.iter().enumerate() {
        let pref = (mbb_a.enlargement(mbb) - mbb_b.enlargement(mbb)).abs();
        if pref > best_pref {
            best_pref = pref;
            best = i;
        }
    }
    Some(best)
}

/// Sort-Tile-Recursive partitioning: recursively sorts by the current
/// dimension's box center (x, then y, then t), slices into
/// `ceil(P^(1/dims))` slabs, and recurses with one dimension fewer; the
/// base case chunks a run into capacity-sized groups.
pub(crate) fn str_pack<T: Copy>(
    items: &mut [(Mbb, T)],
    cap: usize,
    dims: usize,
    out: &mut Vec<Vec<(Mbb, T)>>,
) {
    if items.len() <= cap {
        out.push(items.to_vec());
        return;
    }
    let center = |m: &Mbb, d: usize| match d {
        3 => 0.5 * (m.x_min + m.x_max),
        2 => 0.5 * (m.y_min + m.y_max),
        _ => 0.5 * (m.t_min + m.t_max),
    };
    if dims <= 1 {
        items.sort_by(|a, b| center(&a.0, 1).total_cmp(&center(&b.0, 1)));
        for chunk in items.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let pages = items.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / dims as f64).ceil() as usize;
    let slab_size = items.len().div_ceil(slabs.max(1));
    items.sort_by(|a, b| center(&a.0, dims).total_cmp(&center(&b.0, dims)));
    for chunk in items.chunks_mut(slab_size.max(cap)) {
        str_pack(chunk, cap, dims - 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::{SamplePoint, Segment};

    fn seg(t0: f64, x0: f64, y0: f64, t1: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(SamplePoint::new(t0, x0, y0), SamplePoint::new(t1, x1, y1)).unwrap()
    }

    fn entry(id: u64, seq: u32, t: f64, x: f64, y: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(id),
            seq,
            segment: seg(t, x, y, t + 1.0, x + 0.5, y + 0.25),
        }
    }

    #[test]
    fn empty_tree_has_no_root() {
        let t = Rtree3D::new();
        assert!(t.root().is_none());
        assert_eq!(t.num_entries(), 0);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn single_insert_creates_leaf_root() {
        let mut t = Rtree3D::new();
        t.insert(entry(1, 0, 0.0, 0.0, 0.0)).unwrap();
        assert_eq!(t.height(), 1);
        let root = t.root().unwrap();
        let node = t.read_node(root).unwrap();
        assert!(node.is_leaf());
        assert_eq!(node.len(), 1);
    }

    #[test]
    fn grows_and_keeps_all_entries() {
        let mut t = Rtree3D::new();
        let n = 1000u32;
        for i in 0..n {
            // Scatter deterministically.
            let x = (i as f64 * 17.0) % 97.0;
            let y = (i as f64 * 29.0) % 89.0;
            t.insert(entry(u64::from(i % 50), i / 50, i as f64, x, y))
                .unwrap();
        }
        assert_eq!(t.num_entries(), u64::from(n));
        assert!(t.height() >= 2, "1000 entries must overflow one leaf");
        // Every entry is reachable via a full-space range query.
        let all = t
            .range_query(&Mbb::new(
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::INFINITY,
                f64::INFINITY,
            ))
            .unwrap();
        assert_eq!(all.len(), n as usize);
        crate::check_invariants(&mut t).unwrap();
    }

    #[test]
    fn range_query_filters_spatially() {
        let mut t = Rtree3D::new();
        for i in 0..200u32 {
            let x = f64::from(i % 20) * 10.0;
            let y = f64::from(i / 20) * 10.0;
            t.insert(entry(u64::from(i), 0, f64::from(i), x, y))
                .unwrap();
        }
        // A window that covers x in [0, 15], y in [0, 15], all times: only
        // entries whose segment boxes intersect it qualify.
        let window = Mbb::new(0.0, 0.0, 0.0, 15.0, 15.0, 1e9);
        let hits = t.range_query(&window).unwrap();
        assert!(!hits.is_empty());
        for e in &hits {
            assert!(e.mbb().intersects(&window));
        }
        // Complement check against a scan of all entries.
        let all = t
            .range_query(&Mbb::new(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9))
            .unwrap();
        let expected = all.iter().filter(|e| e.mbb().intersects(&window)).count();
        assert_eq!(hits.len(), expected);
    }

    #[test]
    fn max_speed_tracks_fastest_segment() {
        let mut t = Rtree3D::new();
        t.insert(LeafEntry {
            traj: TrajectoryId(1),
            seq: 0,
            segment: seg(0.0, 0.0, 0.0, 1.0, 3.0, 4.0), // speed 5
        })
        .unwrap();
        t.insert(LeafEntry {
            traj: TrajectoryId(2),
            seq: 0,
            segment: seg(0.0, 0.0, 0.0, 2.0, 2.0, 0.0), // speed 1
        })
        .unwrap();
        assert_eq!(t.max_speed(), 5.0);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let items: Vec<(Mbb, u32)> = (0..10)
            .map(|i| {
                let f = f64::from(i);
                (Mbb::new(f, f, f, f + 1.0, f + 1.0, f + 1.0), i as u32)
            })
            .collect();
        let (a, b) = quadratic_split(items, 4);
        assert_eq!(a.len() + b.len(), 10);
        assert!(a.len() >= 4 && b.len() >= 4);
    }

    #[test]
    fn split_separates_distant_clusters() {
        // Two tight clusters far apart should end up in different groups.
        let mut items: Vec<(Mbb, u32)> = Vec::new();
        for i in 0..5 {
            let f = f64::from(i) * 0.1;
            items.push((Mbb::new(f, f, f, f + 0.1, f + 0.1, f + 0.1), i as u32));
        }
        for i in 0..5 {
            let f = 1000.0 + f64::from(i) * 0.1;
            items.push((Mbb::new(f, f, f, f + 0.1, f + 0.1, f + 0.1), 100 + i as u32));
        }
        let (a, b) = quadratic_split(items, 2);
        let a_low = a.iter().all(|&(_, v)| v < 100) || a.iter().all(|&(_, v)| v >= 100);
        let b_low = b.iter().all(|&(_, v)| v < 100) || b.iter().all(|&(_, v)| v >= 100);
        assert!(a_low && b_low, "clusters were mixed: {a:?} {b:?}");
    }

    #[test]
    fn delete_removes_entry_and_preserves_invariants() {
        let mut t = Rtree3D::new();
        let n = 600u32;
        for i in 0..n {
            let x = (f64::from(i) * 13.0) % 83.0;
            let y = (f64::from(i) * 7.0) % 41.0;
            t.insert(entry(u64::from(i % 20), i / 20, f64::from(i), x, y))
                .unwrap();
        }
        // Delete every third entry.
        let mut deleted = 0u64;
        for i in (0..n).step_by(3) {
            assert!(t.delete(TrajectoryId(u64::from(i % 20)), i / 20).unwrap());
            deleted += 1;
        }
        assert_eq!(t.num_entries(), u64::from(n) - deleted);
        crate::check_invariants(&mut t).unwrap();
        // Deleted entries are gone; survivors remain findable.
        let all = t
            .range_query(&Mbb::new(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9))
            .unwrap();
        assert_eq!(all.len() as u64, u64::from(n) - deleted);
        assert!(!all.iter().any(|e| e.traj == TrajectoryId(0) && e.seq == 0));
    }

    #[test]
    fn delete_missing_entry_returns_false() {
        let mut t = Rtree3D::new();
        t.insert(entry(1, 0, 0.0, 0.0, 0.0)).unwrap();
        assert!(!t.delete(TrajectoryId(9), 0).unwrap());
        assert!(!t.delete(TrajectoryId(1), 5).unwrap());
        assert_eq!(t.num_entries(), 1);
    }

    #[test]
    fn delete_everything_empties_the_tree_and_reuses_pages() {
        let mut t = Rtree3D::new();
        let n = 300u32;
        for i in 0..n {
            t.insert(entry(u64::from(i), 0, f64::from(i), f64::from(i % 9), 0.0))
                .unwrap();
        }
        let pages_full = t.num_pages();
        for i in 0..n {
            assert!(t.delete(TrajectoryId(u64::from(i)), 0).unwrap(), "i={i}");
        }
        assert_eq!(t.num_entries(), 0);
        assert!(t.root().is_none());
        assert_eq!(t.height(), 0);
        crate::check_invariants(&mut t).unwrap();
        // Freed pages are recycled by fresh insertions.
        for i in 0..n {
            t.insert(entry(u64::from(i), 1, f64::from(i), f64::from(i % 9), 1.0))
                .unwrap();
        }
        assert!(
            t.num_pages() <= pages_full + 4,
            "rebuild used {} pages vs {} before",
            t.num_pages(),
            pages_full
        );
        crate::check_invariants(&mut t).unwrap();
    }

    #[test]
    fn interleaved_insert_delete_stays_consistent() {
        let mut t = Rtree3D::new();
        let mut live: Vec<(u64, u32)> = Vec::new();
        let mut x: u64 = 0xDEADBEEF;
        for step in 0..1500u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let coin = (x >> 60) % 4;
            if coin == 0 && !live.is_empty() {
                let idx = (x >> 20) as usize % live.len();
                let (tr, seq) = live.swap_remove(idx);
                assert!(t.delete(TrajectoryId(tr), seq).unwrap());
            } else {
                let tr = u64::from(step % 30);
                let seq = step;
                let fx = f64::from((x >> 10) as u32 % 1000) / 10.0;
                let fy = f64::from((x >> 30) as u32 % 1000) / 10.0;
                t.insert(entry(tr, seq, f64::from(step), fx, fy)).unwrap();
                live.push((tr, seq));
            }
        }
        assert_eq!(t.num_entries() as usize, live.len());
        crate::check_invariants(&mut t).unwrap();
    }

    #[test]
    fn bulk_load_packs_tighter_and_answers_identically() {
        let mut entries: Vec<LeafEntry> = Vec::new();
        for i in 0..3000u32 {
            let x = (f64::from(i) * 13.7) % 211.0;
            let y = (f64::from(i) * 7.1) % 157.0;
            entries.push(entry(u64::from(i % 40), i / 40, f64::from(i), x, y));
        }
        let mut incremental = Rtree3D::new();
        for e in &entries {
            incremental.insert(*e).unwrap();
        }
        let mut bulk = Rtree3D::bulk_load(entries.clone()).unwrap();
        assert_eq!(bulk.num_entries(), 3000);
        assert_eq!(bulk.max_speed(), incremental.max_speed());
        crate::check_invariants(&mut bulk).unwrap();
        // Packing beats incremental construction on size.
        assert!(
            bulk.num_pages() < incremental.num_pages(),
            "bulk {} vs incremental {}",
            bulk.num_pages(),
            incremental.num_pages()
        );
        // Same answers for range queries.
        let window = Mbb::new(20.0, 20.0, 100.0, 120.0, 90.0, 900.0);
        let mut a = bulk.range_query(&window).unwrap();
        let mut b = incremental.range_query(&window).unwrap();
        let key = |e: &LeafEntry| (e.traj, e.seq);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        // A bulk-loaded tree keeps accepting inserts and deletes.
        bulk.insert(entry(99, 0, 5000.0, 1.0, 1.0)).unwrap();
        assert!(bulk.delete(TrajectoryId(99), 0).unwrap());
        crate::check_invariants(&mut bulk).unwrap();
    }

    #[test]
    fn bulk_load_edge_cases() {
        let empty = Rtree3D::bulk_load(Vec::new()).unwrap();
        assert!(empty.root().is_none());
        let mut single = Rtree3D::bulk_load(vec![entry(1, 0, 0.0, 0.0, 0.0)]).unwrap();
        assert_eq!(single.height(), 1);
        assert_eq!(single.num_entries(), 1);
        crate::check_invariants(&mut single).unwrap();
        // Exactly one full leaf.
        let full: Vec<LeafEntry> = (0..LEAF_CAPACITY as u32)
            .map(|i| entry(1, i, f64::from(i), f64::from(i), 0.0))
            .collect();
        let mut one_leaf = Rtree3D::bulk_load(full).unwrap();
        assert_eq!(one_leaf.height(), 1);
        assert_eq!(one_leaf.num_pages(), 1);
        crate::check_invariants(&mut one_leaf).unwrap();
    }

    #[test]
    fn stats_report_structure_and_io() {
        let mut t = Rtree3D::new();
        for i in 0..300u32 {
            t.insert(entry(u64::from(i), 0, f64::from(i), f64::from(i % 7), 0.0))
                .unwrap();
        }
        let s = t.stats();
        assert!(s.pages >= 5);
        assert_eq!(s.entries, 300);
        assert_eq!(s.size_bytes, s.pages * PAGE_SIZE);
        assert!(s.node_reads > 0);
        t.reset_stats();
        assert_eq!(t.stats().node_reads, 0);
    }
}
