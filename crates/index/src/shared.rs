//! Thread-shareable read access to an index.
//!
//! Every index in this crate is a single-owner mutable structure: even a
//! pure *read* mutates state, because pages move through a private LRU
//! buffer pool and I/O counters tick. That is the right shape for the
//! paper's single-query experiments, but a concurrent executor needs many
//! threads reading the same shard. [`ConcurrentIndex`] closes the gap with
//! the smallest possible mechanism: the whole index (tree + buffer pool)
//! lives behind one [`Mutex`], and [`IndexReader`] hands out cheap per-job
//! handles whose `&mut self` trait methods lock only for the duration of a
//! single node fetch.
//!
//! Two properties matter for the executor built on top:
//!
//! * **Per-shard buffer pools.** The lock protects the shard's *own* pager,
//!   so each shard keeps a private LRU buffer exactly as the paper sizes it
//!   (10% of the shard's pages, max 1000). Shards never contend with each
//!   other — only jobs on the *same* shard serialize their node fetches.
//! * **Poisoning is an error, not a panic.** If a thread panics while
//!   holding the lock, every subsequent access returns
//!   [`IndexError::Poisoned`] instead of unwrapping (xtask rule R7). A
//!   crashed worker therefore fails its own query and leaves the rest of
//!   the batch reporting clean errors.
//!
//! Structural metadata (root page, height, entry count, `Vmax`) is
//! immutable while queries run, so a reader snapshots it once at
//! construction and serves those accessors without touching the lock.

use std::sync::{Mutex, MutexGuard};

use mst_trajectory::TrajectoryId;

use crate::metrics::MetricsSink;
use crate::{IndexError, IndexStats, Node, PageId, Result, TrajectoryIndex};

/// Maps a poisoned lock into the index error space (xtask rule R7: lock
/// poisoning must surface as [`IndexError::Poisoned`], never a panic).
fn poisoned<T>(_: std::sync::PoisonError<T>) -> IndexError {
    IndexError::Poisoned("concurrent index".to_string())
}

/// An index wrapped for shared read access from many threads.
///
/// Wraps any [`TrajectoryIndex`] in a [`Mutex`] and exposes a `&self` API:
/// [`ConcurrentIndex::reader`] creates a lightweight [`IndexReader`] per
/// job, and [`ConcurrentIndex::with`] runs a closure under the lock for
/// maintenance operations (buffer resizing, stat resets).
pub struct ConcurrentIndex<I> {
    inner: Mutex<I>,
    snapshot: Snapshot,
}

/// Immutable structural facts captured when the index is wrapped.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    root: Option<PageId>,
    num_pages: usize,
    num_entries: u64,
    height: u8,
    max_speed: f64,
    stats: IndexStats,
    chain_tips: usize,
}

impl<I: TrajectoryIndex> ConcurrentIndex<I> {
    /// Wraps a fully built index for shared read access. The index must not
    /// grow afterwards: the structural snapshot (root, height, `Vmax`) is
    /// taken here and served lock-free.
    pub fn new(index: I) -> Self {
        let snapshot = Snapshot {
            root: index.root(),
            num_pages: index.num_pages(),
            num_entries: index.num_entries(),
            height: index.height(),
            max_speed: index.max_speed(),
            stats: index.stats(),
            chain_tips: index.leaf_chain_tips().len(),
        };
        ConcurrentIndex {
            inner: Mutex::new(index),
            snapshot,
        }
    }

    /// Runs `f` with exclusive access to the underlying index. Used for
    /// maintenance between batches (clearing the buffer, resetting I/O
    /// counters); queries go through [`ConcurrentIndex::reader`] instead.
    pub fn with<R>(&self, f: impl FnOnce(&mut I) -> R) -> Result<R> {
        let mut guard = self.lock()?;
        Ok(f(&mut guard))
    }

    /// Unwraps the index, returning it to single-owner use.
    pub fn into_inner(self) -> Result<I> {
        self.inner.into_inner().map_err(poisoned)
    }

    /// A cheap per-job read handle. Creating one never blocks; the lock is
    /// taken per node fetch inside the handle's [`TrajectoryIndex`] methods.
    pub fn reader(&self) -> IndexReader<'_, I> {
        IndexReader { shared: self }
    }

    /// Number of trajectories with a leaf chain (non-zero only for the
    /// TB-tree). Exposed so shard builders can sanity-check substrates.
    pub fn chain_tip_count(&self) -> usize {
        self.snapshot.chain_tips
    }

    fn lock(&self) -> Result<MutexGuard<'_, I>> {
        self.inner.lock().map_err(poisoned)
    }
}

/// A per-job view of a [`ConcurrentIndex`] implementing [`TrajectoryIndex`].
///
/// The handle is `Copy`-cheap to create and intended to live for one query
/// job. Metadata accessors answer from the construction-time snapshot;
/// [`TrajectoryIndex::read_node`] and friends lock the shard for the single
/// fetch and release it before the search continues, so concurrent jobs on
/// the same shard interleave at node granularity.
pub struct IndexReader<'a, I> {
    shared: &'a ConcurrentIndex<I>,
}

impl<I: TrajectoryIndex> TrajectoryIndex for IndexReader<'_, I> {
    fn root(&self) -> Option<PageId> {
        self.shared.snapshot.root
    }

    fn read_node(&mut self, page: PageId) -> Result<Node> {
        let mut guard = self.shared.lock()?;
        guard.read_node(page)
    }

    fn read_node_traced<S: MetricsSink>(&mut self, page: PageId, sink: &mut S) -> Result<Node> {
        let mut guard = self.shared.lock()?;
        guard.read_node_traced(page, sink)
    }

    fn num_pages(&self) -> usize {
        self.shared.snapshot.num_pages
    }

    fn num_entries(&self) -> u64 {
        self.shared.snapshot.num_entries
    }

    fn height(&self) -> u8 {
        self.shared.snapshot.height
    }

    fn max_speed(&self) -> f64 {
        self.shared.snapshot.max_speed
    }

    /// Structural statistics from the construction-time snapshot. I/O
    /// counters reflect the state when the index was wrapped; live counters
    /// during concurrent execution flow through the per-query
    /// [`MetricsSink`] instead, which is the only meaningful attribution
    /// once many jobs interleave on one pager.
    fn stats(&self) -> IndexStats {
        self.shared.snapshot.stats
    }

    fn reset_stats(&mut self) {
        // Counter resets race concurrent jobs by definition; a reader
        // deliberately leaves the shared counters alone. Use
        // `ConcurrentIndex::with` between batches instead.
    }

    fn clear_buffer(&mut self) -> Result<()> {
        let mut guard = self.shared.lock()?;
        guard.clear_buffer()
    }

    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        let mut guard = self.shared.lock()?;
        guard.set_buffer_capacity(capacity)
    }

    fn set_fault_injection(&mut self, config: Option<crate::fault::FaultConfig>) -> Result<()> {
        let mut guard = self.shared.lock()?;
        guard.set_fault_injection(config)
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        match self.shared.lock() {
            Ok(guard) => guard.fault_stats(),
            // This signature cannot carry a poisoning error; `None` is the
            // documented "no injection data" value.
            Err(_) => None,
        }
    }

    fn leaf_chain_tips(&self) -> Vec<(TrajectoryId, PageId)> {
        match self.shared.lock() {
            Ok(guard) => guard.leaf_chain_tips(),
            // The poisoned case cannot report an error through this
            // signature; an empty list is the documented "no chains" value
            // and merely skips chain validation.
            Err(_) => Vec::new(),
        }
    }

    fn audit_buffer(&self) -> std::result::Result<(), String> {
        match self.shared.lock() {
            Ok(guard) => guard.audit_buffer(),
            Err(e) => Err(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use crate::{Rtree3D, TrajectoryIndexWrite};
    use mst_trajectory::{SamplePoint, Segment, TrajectoryId};

    fn entry(traj: u64, seq: u32, t0: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(traj),
            seq,
            segment: Segment::new(
                SamplePoint::new(t0, traj as f64, seq as f64),
                SamplePoint::new(t0 + 1.0, traj as f64 + 0.5, seq as f64 + 0.5),
            )
            .expect("valid segment"),
        }
    }

    fn small_tree() -> Rtree3D {
        let mut tree = Rtree3D::new();
        for traj in 0..4u64 {
            for seq in 0..8u32 {
                tree.insert_entry(entry(traj, seq, f64::from(seq)))
                    .expect("insert");
            }
        }
        tree
    }

    #[test]
    fn reader_metadata_matches_wrapped_index() {
        let tree = small_tree();
        let (root, pages, entries, height, vmax) = (
            tree.root(),
            tree.num_pages(),
            tree.num_entries(),
            tree.height(),
            tree.max_speed(),
        );
        let shared = ConcurrentIndex::new(tree);
        let reader = shared.reader();
        assert_eq!(reader.root(), root);
        assert_eq!(reader.num_pages(), pages);
        assert_eq!(reader.num_entries(), entries);
        assert_eq!(reader.height(), height);
        assert_eq!(reader.max_speed(), vmax);
    }

    #[test]
    fn reader_reads_the_same_nodes_as_the_owner() {
        let mut tree = small_tree();
        let root = tree.root().expect("non-empty");
        let direct = tree.read_node(root).expect("direct read");
        let shared = ConcurrentIndex::new(tree);
        let mut reader = shared.reader();
        let via_reader = reader.read_node(root).expect("shared read");
        assert_eq!(direct.level(), via_reader.level());
        assert_eq!(direct.mbb(), via_reader.mbb());
    }

    #[test]
    fn concurrent_readers_see_consistent_nodes() {
        let tree = small_tree();
        let shared = ConcurrentIndex::new(tree);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut reader = shared.reader();
                    let root = reader.root().expect("non-empty");
                    for _ in 0..16 {
                        let node = reader.read_node(root).expect("read under contention");
                        assert!(node.level() < 8);
                    }
                });
            }
        });
    }

    #[test]
    fn poisoned_lock_surfaces_as_index_error() {
        let shared = ConcurrentIndex::new(small_tree());
        let panicker = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.lock().expect("first lock");
            panic!("poison the shard");
        }));
        assert!(panicker.is_err());
        let mut reader = shared.reader();
        let root = reader.root().expect("non-empty");
        match reader.read_node(root) {
            Err(IndexError::Poisoned(_)) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }

    #[test]
    fn with_gives_exclusive_maintenance_access() {
        let shared = ConcurrentIndex::new(small_tree());
        let pages = shared.with(|tree| tree.num_pages()).expect("lock");
        assert!(pages > 0);
        shared
            .with(|tree| tree.clear_buffer())
            .expect("lock")
            .expect("clear");
    }

    #[test]
    fn into_inner_returns_the_index() {
        let shared = ConcurrentIndex::new(small_tree());
        let tree = shared.into_inner().expect("not poisoned");
        assert!(tree.num_entries() > 0);
    }
}
