//! Thread-shareable read access to an index.
//!
//! Every index in this crate is a single-owner mutable structure: even a
//! pure *read* mutates state, because pages move through a private LRU
//! buffer pool and I/O counters tick. That is the right shape for the
//! paper's single-query experiments, but a concurrent executor needs many
//! threads reading the same shard. [`ConcurrentIndex`] closes the gap with
//! the smallest possible mechanism: the whole index (tree + buffer pool)
//! lives behind one [`Mutex`], and [`IndexReader`] hands out cheap per-job
//! handles whose `&mut self` trait methods lock only for the duration of a
//! single node fetch.
//!
//! Two properties matter for the executor built on top:
//!
//! * **Per-shard buffer pools.** The lock protects the shard's *own* pager,
//!   so each shard keeps a private LRU buffer exactly as the paper sizes it
//!   (10% of the shard's pages, max 1000). Shards never contend with each
//!   other — only jobs on the *same* shard serialize their node fetches.
//! * **Poisoning is an error, not a panic.** If a thread panics while
//!   holding the lock, every subsequent access returns
//!   [`IndexError::Poisoned`] instead of unwrapping (xtask rule R7). A
//!   crashed worker therefore fails its own query and leaves the rest of
//!   the batch reporting clean errors.
//!
//! Structural metadata (root page, height, entry count, `Vmax`) is
//! immutable while a *generation* of the index is live, so a reader pins
//! a generation-stamped snapshot at construction and serves those
//! accessors without touching the lock. Online ingest replaces the
//! snapshot ([`ConcurrentIndex::apply`] / [`ConcurrentIndex::refresh`]):
//! readers created before the swap keep answering on the pre-ingest
//! generation's metadata (root, `Vmax`, counts) until they finish, new
//! readers see the new generation — generation-based visibility instead
//! of a global write lock. The only shared mutable state is the
//! `Arc<Snapshot>` slot, swapped wholesale under its own short lock, so
//! an old generation is reclaimed exactly when its last reader drops its
//! `Arc`.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use mst_trajectory::TrajectoryId;

use crate::metrics::MetricsSink;
use crate::{IndexError, IndexStats, Node, PageId, Result, TrajectoryIndex};

/// Maps a poisoned lock into the index error space (xtask rule R7: lock
/// poisoning must surface as [`IndexError::Poisoned`], never a panic).
fn poisoned<T>(_: std::sync::PoisonError<T>) -> IndexError {
    IndexError::Poisoned("concurrent index".to_string())
}

/// An index wrapped for shared read access from many threads.
///
/// Wraps any [`TrajectoryIndex`] in a [`Mutex`] and exposes a `&self` API:
/// [`ConcurrentIndex::reader`] creates a lightweight [`IndexReader`] per
/// job, and [`ConcurrentIndex::with`] runs a closure under the lock for
/// maintenance operations (buffer resizing, stat resets).
pub struct ConcurrentIndex<I> {
    inner: Mutex<I>,
    /// The published structural snapshot. Replaced wholesale (never
    /// mutated in place) by [`ConcurrentIndex::apply`]/
    /// [`ConcurrentIndex::refresh`]; readers pin the `Arc` they found at
    /// creation. Lock order (xtask R10): `inner` is always taken before
    /// this slot — `publish` swaps while holding `inner`, readers take
    /// only the slot.
    snapshot: RwLock<Arc<Snapshot>>,
}

/// Immutable structural facts captured at one generation of the index.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    generation: u64,
    root: Option<PageId>,
    num_pages: usize,
    num_entries: u64,
    height: u8,
    max_speed: f64,
    stats: IndexStats,
    chain_tips: usize,
}

impl Snapshot {
    fn capture<I: TrajectoryIndex>(index: &I, generation: u64) -> Self {
        Snapshot {
            generation,
            root: index.root(),
            num_pages: index.num_pages(),
            num_entries: index.num_entries(),
            height: index.height(),
            max_speed: index.max_speed(),
            stats: index.stats(),
            chain_tips: index.leaf_chain_tips().len(),
        }
    }
}

impl<I: TrajectoryIndex> ConcurrentIndex<I> {
    /// Wraps a fully built index for shared read access. The structural
    /// snapshot (root, height, `Vmax`) is taken here as generation 0;
    /// mutations must go through [`ConcurrentIndex::apply`] (or call
    /// [`ConcurrentIndex::refresh`] after [`ConcurrentIndex::with`]) so
    /// the published snapshot tracks the structure.
    pub fn new(index: I) -> Self {
        let snapshot = Arc::new(Snapshot::capture(&index, 0));
        ConcurrentIndex {
            inner: Mutex::new(index),
            snapshot: RwLock::new(snapshot),
        }
    }

    /// Runs `f` with exclusive access to the underlying index. Used for
    /// maintenance between batches (clearing the buffer, resetting I/O
    /// counters); queries go through [`ConcurrentIndex::reader`] instead
    /// and structural mutations through [`ConcurrentIndex::apply`].
    pub fn with<R>(&self, f: impl FnOnce(&mut I) -> R) -> Result<R> {
        let mut guard = self.lock()?;
        Ok(f(&mut guard))
    }

    /// Runs a *mutating* closure under the index lock and publishes a new
    /// snapshot generation before releasing it: readers created after
    /// `apply` returns see the new structure, readers created before keep
    /// their pinned pre-ingest generation. Returns the closure's value and
    /// the new generation. When `f` fails nothing is published — but the
    /// index may have partially changed; the durable-store layer recovers
    /// such states from its log, in-memory callers should treat the shard
    /// as degraded.
    pub fn apply<R>(&self, f: impl FnOnce(&mut I) -> Result<R>) -> Result<(R, u64)> {
        let mut guard = self.lock()?;
        let out = f(&mut guard)?;
        let generation = self.publish(&guard)?;
        Ok((out, generation))
    }

    /// Re-captures the structural snapshot from the current index state
    /// and publishes it as a new generation. Needed after mutating through
    /// [`ConcurrentIndex::with`]; [`ConcurrentIndex::apply`] does it
    /// automatically.
    pub fn refresh(&self) -> Result<u64> {
        let guard = self.lock()?;
        self.publish(&guard)
    }

    /// Captures and swaps in a new snapshot. Callers hold the `inner`
    /// guard, which serializes generation numbering (R10 lock order:
    /// `inner` → `snapshot`).
    fn publish(&self, index: &I) -> Result<u64> {
        let generation = self.snapshot_arc().generation + 1;
        let next = Arc::new(Snapshot::capture(index, generation));
        let mut slot = self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = next;
        Ok(generation)
    }

    /// The currently published snapshot. A poisoned slot still holds a
    /// wholesale-replaced, internally consistent `Arc` (writers never
    /// mutate through it), so poison recovery here is sound rather than a
    /// silent lie.
    fn snapshot_arc(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The generation of the currently published snapshot (0 at wrap
    /// time, +1 per [`ConcurrentIndex::apply`]/[`ConcurrentIndex::refresh`]).
    pub fn generation(&self) -> u64 {
        self.snapshot_arc().generation
    }

    /// Unwraps the index, returning it to single-owner use.
    pub fn into_inner(self) -> Result<I> {
        self.inner.into_inner().map_err(poisoned)
    }

    /// A cheap per-job read handle pinned to the generation published at
    /// this moment. Creating one never blocks on the index lock; node
    /// fetches lock per call inside the handle's [`TrajectoryIndex`]
    /// methods.
    pub fn reader(&self) -> IndexReader<'_, I> {
        IndexReader {
            shared: self,
            snapshot: self.snapshot_arc(),
        }
    }

    /// Number of trajectories with a leaf chain (non-zero only for the
    /// TB-tree). Exposed so shard builders can sanity-check substrates.
    pub fn chain_tip_count(&self) -> usize {
        self.snapshot_arc().chain_tips
    }

    fn lock(&self) -> Result<MutexGuard<'_, I>> {
        self.inner.lock().map_err(poisoned)
    }
}

/// A per-job view of a [`ConcurrentIndex`] implementing [`TrajectoryIndex`].
///
/// The handle is cheap to create and intended to live for one query job.
/// Metadata accessors answer from the generation snapshot pinned at
/// creation — an ingest committing mid-job does not shift this reader's
/// root or `Vmax` under it. [`TrajectoryIndex::read_node`] and friends
/// lock the shard for the single fetch and release it before the search
/// continues, so concurrent jobs on the same shard interleave at node
/// granularity.
pub struct IndexReader<'a, I> {
    shared: &'a ConcurrentIndex<I>,
    snapshot: Arc<Snapshot>,
}

impl<I> IndexReader<'_, I> {
    /// The generation this reader is pinned to.
    pub fn generation(&self) -> u64 {
        self.snapshot.generation
    }
}

impl<I: TrajectoryIndex> IndexReader<'_, I> {
    /// Runs `f` with exclusive access to the underlying index, holding the
    /// shard lock for the whole call instead of per node fetch.
    ///
    /// Substrates whose search needs the concrete index — the metric
    /// tree's ball search reads the ball directory and cached trajectories,
    /// which the node-at-a-time [`TrajectoryIndex`] surface cannot carry —
    /// run their whole per-shard search under this lock. Jobs on *other*
    /// shards are unaffected (per-shard locks); jobs on the same shard
    /// serialize, which matches the executor's one-job-per-shard dispatch.
    /// A poisoned shard surfaces as [`IndexError::Poisoned`] (rule R7).
    pub fn with_exclusive<R>(&mut self, f: impl FnOnce(&mut I) -> R) -> Result<R> {
        let mut guard = self.shared.lock()?;
        Ok(f(&mut guard))
    }
}

impl<I: TrajectoryIndex> TrajectoryIndex for IndexReader<'_, I> {
    fn root(&self) -> Option<PageId> {
        self.snapshot.root
    }

    fn read_node(&mut self, page: PageId) -> Result<Node> {
        let mut guard = self.shared.lock()?;
        guard.read_node(page)
    }

    fn read_node_traced<S: MetricsSink>(&mut self, page: PageId, sink: &mut S) -> Result<Node> {
        let mut guard = self.shared.lock()?;
        guard.read_node_traced(page, sink)
    }

    fn num_pages(&self) -> usize {
        self.snapshot.num_pages
    }

    fn num_entries(&self) -> u64 {
        self.snapshot.num_entries
    }

    fn height(&self) -> u8 {
        self.snapshot.height
    }

    fn max_speed(&self) -> f64 {
        self.snapshot.max_speed
    }

    /// Structural statistics from the construction-time snapshot. I/O
    /// counters reflect the state when the index was wrapped; live counters
    /// during concurrent execution flow through the per-query
    /// [`MetricsSink`] instead, which is the only meaningful attribution
    /// once many jobs interleave on one pager.
    fn stats(&self) -> IndexStats {
        self.snapshot.stats
    }

    fn reset_stats(&mut self) {
        // Counter resets race concurrent jobs by definition; a reader
        // deliberately leaves the shared counters alone. Use
        // `ConcurrentIndex::with` between batches instead.
    }

    fn clear_buffer(&mut self) -> Result<()> {
        let mut guard = self.shared.lock()?;
        guard.clear_buffer()
    }

    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        let mut guard = self.shared.lock()?;
        guard.set_buffer_capacity(capacity)
    }

    fn set_fault_injection(&mut self, config: Option<crate::fault::FaultConfig>) -> Result<()> {
        let mut guard = self.shared.lock()?;
        guard.set_fault_injection(config)
    }

    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        match self.shared.lock() {
            Ok(guard) => guard.fault_stats(),
            // This signature cannot carry a poisoning error; `None` is the
            // documented "no injection data" value.
            Err(_) => None,
        }
    }

    fn leaf_chain_tips(&self) -> Vec<(TrajectoryId, PageId)> {
        match self.shared.lock() {
            Ok(guard) => guard.leaf_chain_tips(),
            // The poisoned case cannot report an error through this
            // signature; an empty list is the documented "no chains" value
            // and merely skips chain validation.
            Err(_) => Vec::new(),
        }
    }

    fn audit_buffer(&self) -> std::result::Result<(), String> {
        match self.shared.lock() {
            Ok(guard) => guard.audit_buffer(),
            Err(e) => Err(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use crate::{Rtree3D, TrajectoryIndexWrite};
    use mst_trajectory::{SamplePoint, Segment, TrajectoryId};

    fn entry(traj: u64, seq: u32, t0: f64) -> LeafEntry {
        LeafEntry {
            traj: TrajectoryId(traj),
            seq,
            segment: Segment::new(
                SamplePoint::new(t0, traj as f64, seq as f64),
                SamplePoint::new(t0 + 1.0, traj as f64 + 0.5, seq as f64 + 0.5),
            )
            .expect("valid segment"),
        }
    }

    fn small_tree() -> Rtree3D {
        let mut tree = Rtree3D::new();
        for traj in 0..4u64 {
            for seq in 0..8u32 {
                tree.insert_entry(entry(traj, seq, f64::from(seq)))
                    .expect("insert");
            }
        }
        tree
    }

    #[test]
    fn reader_metadata_matches_wrapped_index() {
        let tree = small_tree();
        let (root, pages, entries, height, vmax) = (
            tree.root(),
            tree.num_pages(),
            tree.num_entries(),
            tree.height(),
            tree.max_speed(),
        );
        let shared = ConcurrentIndex::new(tree);
        let reader = shared.reader();
        assert_eq!(reader.root(), root);
        assert_eq!(reader.num_pages(), pages);
        assert_eq!(reader.num_entries(), entries);
        assert_eq!(reader.height(), height);
        assert_eq!(reader.max_speed(), vmax);
    }

    #[test]
    fn reader_reads_the_same_nodes_as_the_owner() {
        let mut tree = small_tree();
        let root = tree.root().expect("non-empty");
        let direct = tree.read_node(root).expect("direct read");
        let shared = ConcurrentIndex::new(tree);
        let mut reader = shared.reader();
        let via_reader = reader.read_node(root).expect("shared read");
        assert_eq!(direct.level(), via_reader.level());
        assert_eq!(direct.mbb(), via_reader.mbb());
    }

    #[test]
    fn concurrent_readers_see_consistent_nodes() {
        let tree = small_tree();
        let shared = ConcurrentIndex::new(tree);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut reader = shared.reader();
                    let root = reader.root().expect("non-empty");
                    for _ in 0..16 {
                        let node = reader.read_node(root).expect("read under contention");
                        assert!(node.level() < 8);
                    }
                });
            }
        });
    }

    #[test]
    fn poisoned_lock_surfaces_as_index_error() {
        let shared = ConcurrentIndex::new(small_tree());
        let panicker = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.lock().expect("first lock");
            panic!("poison the shard");
        }));
        assert!(panicker.is_err());
        let mut reader = shared.reader();
        let root = reader.root().expect("non-empty");
        match reader.read_node(root) {
            Err(IndexError::Poisoned(_)) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }

    #[test]
    fn with_gives_exclusive_maintenance_access() {
        let shared = ConcurrentIndex::new(small_tree());
        let pages = shared.with(|tree| tree.num_pages()).expect("lock");
        assert!(pages > 0);
        shared
            .with(|tree| tree.clear_buffer())
            .expect("lock")
            .expect("clear");
    }

    #[test]
    fn apply_publishes_a_new_generation_while_old_readers_stay_pinned() {
        let shared = ConcurrentIndex::new(small_tree());
        assert_eq!(shared.generation(), 0);
        let old_reader = shared.reader();
        let entries_before = old_reader.num_entries();

        let ((), generation) = shared
            .apply(|tree| tree.insert_entry(entry(9, 0, 100.0)))
            .expect("apply");
        assert_eq!(generation, 1);
        assert_eq!(shared.generation(), 1);

        // The pre-ingest reader still answers with its pinned metadata...
        assert_eq!(old_reader.generation(), 0);
        assert_eq!(old_reader.num_entries(), entries_before);
        // ...while a fresh reader sees the committed generation.
        let new_reader = shared.reader();
        assert_eq!(new_reader.generation(), 1);
        assert_eq!(new_reader.num_entries(), entries_before + 1);
    }

    #[test]
    fn failed_apply_publishes_nothing() {
        let shared = ConcurrentIndex::new(small_tree());
        let err = shared
            .apply(|_| -> Result<()> { Err(IndexError::Poisoned("synthetic".into())) })
            .expect_err("closure error propagates");
        assert!(matches!(err, IndexError::Poisoned(_)));
        assert_eq!(shared.generation(), 0, "no generation published");
    }

    #[test]
    fn refresh_republishes_after_with() {
        let shared = ConcurrentIndex::new(small_tree());
        shared
            .with(|tree| tree.insert_entry(entry(9, 1, 101.0)))
            .expect("lock")
            .expect("insert");
        // `with` alone leaves the snapshot stale by design...
        assert_eq!(shared.generation(), 0);
        // ...until refresh publishes the new structure.
        let generation = shared.refresh().expect("refresh");
        assert_eq!(generation, 1);
        assert_eq!(shared.reader().num_entries(), 4 * 8 + 1);
    }

    #[test]
    fn into_inner_returns_the_index() {
        let shared = ConcurrentIndex::new(small_tree());
        let tree = shared.into_inner().expect("not poisoned");
        assert!(tree.num_entries() > 0);
    }
}
