//! Page checksums: a word-folded FNV-1a variant over the page body,
//! stored in the header's reserved slot.
//!
//! Every node page (see `node.rs`) reserves bytes `[4..8]` of its 24-byte
//! header. This module repurposes that slot as a little-endian 32-bit
//! checksum of the *rest* of the page (the slot itself is treated as zero
//! while hashing, so embedding the checksum does not perturb it).
//!
//! The hash is FNV-1a lifted from bytes to 64-bit little-endian words and
//! spread over four independent lanes that are folded (with distinct
//! rotations and a final avalanche) into 32 bits. Canonical byte-serial
//! FNV-1a carries a loop-borne xor-multiply dependency — roughly four
//! cycles per byte, ~5 µs per 4 KiB page — which blew the checksum budget
//! on read-heavy workloads; the four-lane word variant keeps the same
//! in-tree, dependency-free spirit while letting the multiplies pipeline
//! (~0.1 µs per page). The function is an internal consistency check, not
//! an interchange format, so it only has to agree with itself.
//!
//! The write path (the buffer pool's write-back of a dirty frame) embeds
//! a checksum into every page that leaves for the store; the read path
//! (the pool's miss handler) verifies it on every fetch, so bit rot,
//! torn writes, and wire corruption surface as a typed
//! [`crate::IndexError::ChecksumMismatch`] instead of a decode failure at
//! best and a silently wrong answer at worst. Sealing at the disk
//! boundary rather than in `Node::encode` means a hot page rewritten many
//! times while cached is hashed once — when it actually leaves for disk.
//!
//! One deliberate exception: a page of *all zero bytes* verifies clean.
//! Freshly allocated pages are zeroed and carry no payload to protect,
//! and rejecting them would force every allocation to write a checksummed
//! image even when the caller immediately overwrites it. A zeroed page
//! still fails node *decoding* loudly, so the gap cannot produce a wrong
//! answer — only a different error.

/// Byte range of the checksum slot inside a page (the node header's
/// reserved word).
pub const CHECKSUM_RANGE: std::ops::Range<usize> = 4..8;

const FNV_OFFSET64: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME64: u64 = 0x0000_0100_0000_01B3;

/// Distinct lane seeds: the FNV-1a offset basis stepped over the lane
/// index, so no two lanes start equal.
const LANE_SEEDS: [u64; 4] = [
    FNV_OFFSET64,
    (FNV_OFFSET64 ^ 1).wrapping_mul(FNV_PRIME64),
    (FNV_OFFSET64 ^ 2).wrapping_mul(FNV_PRIME64),
    (FNV_OFFSET64 ^ 3).wrapping_mul(FNV_PRIME64),
];

/// Bytes `[4..8)` of a page are the checksum slot — the high 32 bits of
/// the little-endian word built from bytes `[0..8)`. Masking with this
/// keeps the payload half of that word and zeroes the slot.
const SLOT_MASK: u64 = 0x0000_0000_FFFF_FFFF;

/// One FNV-1a step over a whole word.
fn step(lane: u64, word: u64) -> u64 {
    (lane ^ word).wrapping_mul(FNV_PRIME64)
}

/// A little-endian word from up to 8 bytes, zero-padded on the right.
fn word(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = bytes.len().min(8);
    b[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(b)
}

/// The checksum of `page` with the checksum slot treated as zero. Works
/// on any length; buffers shorter than 8 bytes are zero-padded into a
/// single word (the length is folded in, so padding cannot alias).
pub fn compute(page: &[u8]) -> u32 {
    let mut lanes = LANE_SEEDS;
    let split = page.len().min(8);
    let (head, body) = page.split_at(split);
    lanes[0] = step(lanes[0], word(head) & SLOT_MASK);
    let mut chunks = body.chunks_exact(32);
    for chunk in &mut chunks {
        lanes[0] = step(lanes[0], word(&chunk[0..8]));
        lanes[1] = step(lanes[1], word(&chunk[8..16]));
        lanes[2] = step(lanes[2], word(&chunk[16..24]));
        lanes[3] = step(lanes[3], word(&chunk[24..32]));
    }
    for (i, tail) in chunks.remainder().chunks(8).enumerate() {
        lanes[i % 4] = step(lanes[i % 4], word(tail));
    }
    let mut h = lanes[0];
    h = step(h, lanes[1].rotate_left(17));
    h = step(h, lanes[2].rotate_left(31));
    h = step(h, lanes[3].rotate_left(47));
    h = step(h, u64::try_from(page.len()).unwrap_or(u64::MAX));
    // Avalanche so a change in any lane reaches every output bit before
    // the xor-fold down to 32.
    h ^= h >> 33;
    h = h.wrapping_mul(FNV_PRIME64);
    h ^= h >> 29;
    let b = h.to_le_bytes();
    u32::from_le_bytes([b[0] ^ b[4], b[1] ^ b[5], b[2] ^ b[6], b[3] ^ b[7]])
}

/// The word-folded FNV of an arbitrary byte string, with **no** checksum
/// slot carved out: every byte participates. This is the same four-lane
/// fold [`compute`] uses for pages, exported for callers that frame their
/// own records (the write-ahead log frames each entry with it) so the
/// whole workspace shares one checksum idiom.
pub fn fold_bytes(bytes: &[u8]) -> u32 {
    let mut lanes = LANE_SEEDS;
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        lanes[0] = step(lanes[0], word(&chunk[0..8]));
        lanes[1] = step(lanes[1], word(&chunk[8..16]));
        lanes[2] = step(lanes[2], word(&chunk[16..24]));
        lanes[3] = step(lanes[3], word(&chunk[24..32]));
    }
    for (i, tail) in chunks.remainder().chunks(8).enumerate() {
        lanes[i % 4] = step(lanes[i % 4], word(tail));
    }
    let mut h = lanes[0];
    h = step(h, lanes[1].rotate_left(17));
    h = step(h, lanes[2].rotate_left(31));
    h = step(h, lanes[3].rotate_left(47));
    h = step(h, u64::try_from(bytes.len()).unwrap_or(u64::MAX));
    h ^= h >> 33;
    h = h.wrapping_mul(FNV_PRIME64);
    h ^= h >> 29;
    let b = h.to_le_bytes();
    u32::from_le_bytes([b[0] ^ b[4], b[1] ^ b[5], b[2] ^ b[6], b[3] ^ b[7]])
}

/// The checksum currently stored in `page`'s slot (0 when the page is too
/// short to hold one).
pub fn stored(page: &[u8]) -> u32 {
    match page.get(CHECKSUM_RANGE) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

/// Computes and embeds the checksum into `page`'s slot. Pages too short
/// for the slot are left untouched.
pub fn embed(page: &mut [u8]) {
    let sum = compute(page);
    if let Some(slot) = page.get_mut(CHECKSUM_RANGE) {
        slot.copy_from_slice(&sum.to_le_bytes());
    }
}

/// Verifies `page` against its embedded checksum. Returns
/// `Err((expected, found))` on mismatch, where `expected` is the stored
/// value and `found` the recomputed one. All-zero pages verify clean (see
/// the module docs).
pub fn verify(page: &[u8]) -> Result<(), (u32, u32)> {
    let expected = stored(page);
    let found = compute(page);
    if expected == found {
        return Ok(());
    }
    if page.iter().all(|&b| b == 0) {
        return Ok(());
    }
    Err((expected, found))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn embed_then_verify_roundtrips() {
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        embed(&mut page);
        verify(&page).expect("freshly embedded checksum verifies");
        assert_eq!(stored(&page), compute(&page));
    }

    #[test]
    fn embed_is_idempotent() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[9] = 0x5A;
        page[4000] = 0xA5;
        embed(&mut page);
        let first = page.clone();
        embed(&mut page);
        assert_eq!(page, first, "re-sealing a sealed page changes nothing");
    }

    #[test]
    fn any_single_bit_flip_in_payload_is_caught() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 1;
        page[100] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        embed(&mut page);
        for &offset in &[0usize, 1, 3, 8, 100, 2048, PAGE_SIZE - 1] {
            let mut torn = page.clone();
            torn[offset] ^= 0x10;
            let (expected, found) = verify(&torn).expect_err("flip must be caught");
            assert_ne!(expected, found);
        }
    }

    #[test]
    fn every_payload_bit_position_reaches_the_checksum() {
        // Exhaustive over byte positions (one bit each): no lane, chunk
        // boundary, or tail byte is dead weight in the fold.
        let mut page = vec![0u8; PAGE_SIZE];
        page[9] = 3;
        embed(&mut page);
        for offset in 0..PAGE_SIZE {
            if CHECKSUM_RANGE.contains(&offset) {
                continue;
            }
            let mut torn = page.clone();
            torn[offset] ^= 0x01;
            assert!(
                verify(&torn).is_err(),
                "bit flip at byte {offset} slipped through"
            );
        }
    }

    #[test]
    fn corrupting_the_checksum_slot_itself_is_caught() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[40] = 7;
        embed(&mut page);
        page[5] ^= 0xFF;
        assert!(verify(&page).is_err());
    }

    #[test]
    fn all_zero_pages_verify_clean() {
        let page = vec![0u8; PAGE_SIZE];
        verify(&page).expect("zeroed pages carry no payload");
    }

    #[test]
    fn torn_tail_is_caught() {
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 7) as u8 + 1;
        }
        embed(&mut page);
        // Simulate a torn write: the tail never made it to disk.
        let mut torn = page.clone();
        for b in &mut torn[1024..] {
            *b = 0;
        }
        assert!(verify(&torn).is_err());
    }

    #[test]
    fn fold_bytes_sees_every_byte_and_the_length() {
        let mut buf = vec![0u8; 100];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 13) as u8;
        }
        let base = fold_bytes(&buf);
        for offset in 0..buf.len() {
            let mut torn = buf.clone();
            torn[offset] ^= 0x01;
            assert_ne!(fold_bytes(&torn), base, "flip at byte {offset} aliased");
        }
        // Unlike `compute`, the slot bytes [4..8) are live payload here.
        let mut slot = buf.clone();
        slot[5] ^= 0xFF;
        assert_ne!(fold_bytes(&slot), base);
        // Length folds in: a zero-extended buffer hashes differently.
        let mut longer = buf.clone();
        longer.push(0);
        assert_ne!(fold_bytes(&longer), base);
        assert_eq!(fold_bytes(&[]), fold_bytes(&[]));
    }

    #[test]
    fn short_buffers_do_not_panic() {
        let mut tiny = vec![1u8, 2, 3];
        embed(&mut tiny);
        assert_eq!(stored(&tiny), 0);
        // Stored reads as 0, computed over the bytes differs: mismatch, but
        // never a panic.
        assert!(verify(&tiny).is_err());
    }
}
