//! The read interface the MST search consumes, plus the shared pager that
//! both trees use to move nodes through the buffer.

use mst_trajectory::{Mbb, TrajectoryId};

use crate::fault::{FaultConfig, FaultStats, FaultableStore};
use crate::metrics::{MetricsSink, NoopSink};
use crate::{
    BufferPool, BufferStats, DiskStats, IndexError, LeafEntry, Node, PageId, PageStore, Result,
};

/// The paper's buffer sizing rule: 10% of the index size, capped at 1000
/// pages (and floored at a handful so tiny indexes still run buffered).
pub(crate) fn paper_buffer_capacity(index_pages: usize) -> usize {
    (index_pages / 10).clamp(8, 1000)
}

/// Combined statistics of an index: structure plus I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Total pages occupied by the index.
    pub pages: usize,
    /// Total bytes (`pages * PAGE_SIZE`).
    pub size_bytes: usize,
    /// Tree height (number of levels; a single-leaf tree has height 1).
    pub height: u8,
    /// Segment entries stored.
    pub entries: u64,
    /// Logical node reads performed (through the buffer).
    pub node_reads: u64,
    /// Physical disk counters.
    pub disk: DiskStats,
    /// Buffer counters.
    pub buffer: BufferStats,
}

/// Pages + buffer, shared by both tree implementations. The store is
/// wrapped in a [`FaultableStore`] so every physical I/O can be subjected
/// to deterministic fault injection; with injection disabled (the
/// default) the wrapper is a transparent pass-through.
pub(crate) struct Pager {
    pub store: FaultableStore,
    pub pool: BufferPool,
    pub node_reads: u64,
    /// When set, pins the buffer to a fixed page count instead of the
    /// paper's auto-sizing rule (used by the buffer-sweep ablation).
    pub fixed_capacity: Option<usize>,
}

impl Pager {
    pub fn new() -> Self {
        Pager {
            store: FaultableStore::new(),
            pool: BufferPool::new(paper_buffer_capacity(0)),
            node_reads: 0,
            fixed_capacity: None,
        }
    }

    /// Wraps a rebuilt store (persistence load path) with a cold buffer.
    pub fn from_store(store: PageStore) -> Self {
        let cap = paper_buffer_capacity(store.num_pages());
        Pager {
            store: FaultableStore::from_store(store),
            pool: BufferPool::new(cap),
            node_reads: 0,
            fixed_capacity: None,
        }
    }

    /// Enables (`Some`) or disables (`None`) deterministic fault injection
    /// on the pager's physical I/O.
    pub fn set_fault_injection(&mut self, config: Option<FaultConfig>) {
        self.store.set_injection(config);
    }

    /// Pins (or, with `None`, un-pins) the buffer capacity.
    pub fn set_fixed_capacity(&mut self, capacity: Option<usize>) -> Result<()> {
        self.fixed_capacity = capacity;
        let cap = capacity.unwrap_or_else(|| paper_buffer_capacity(self.store.num_pages()));
        self.pool.set_capacity(cap, &mut self.store)
    }

    /// Allocates a page for `node` and writes it (through the buffer).
    pub fn allocate_node(&mut self, node: &Node) -> Result<PageId> {
        let id = self.store.allocate();
        self.write_node(id, node)?;
        // Grow the buffer with the index, per the paper's 10%/1000 rule
        // (unless the caller pinned a capacity).
        if self.fixed_capacity.is_none() {
            let cap = paper_buffer_capacity(self.store.num_pages());
            if cap != self.pool.capacity() {
                self.pool.set_capacity(cap, &mut self.store)?;
            }
        }
        Ok(id)
    }

    /// Reads and decodes the node stored in `page`. The frame stays pinned
    /// for the duration of the decode, so the buffer audits see every node
    /// access and a decode can never race an eviction.
    pub fn read_node(&mut self, page: PageId) -> Result<Node> {
        self.read_node_traced(page, &mut NoopSink)
    }

    /// [`Pager::read_node`] with observability: the buffer hit/miss, the
    /// decoded byte count, and the node access (tagged with the node's tree
    /// level) are reported to `sink`.
    pub fn read_node_traced<S: MetricsSink>(&mut self, page: PageId, sink: &mut S) -> Result<Node> {
        self.node_reads += 1;
        let decoded = {
            let bytes = self.pool.read_pinned_traced(&mut self.store, page, sink)?;
            sink.bytes_decoded(bytes.len() as u64);
            Node::decode(page, bytes)
        };
        self.pool.unpin(page)?;
        if let Ok(node) = &decoded {
            sink.node_access(node.level());
        }
        decoded
    }

    /// Encodes and writes `node` into `page`.
    pub fn write_node(&mut self, page: PageId, node: &Node) -> Result<()> {
        let bytes = node.encode();
        self.pool.write(&mut self.store, page, &bytes)
    }

    pub fn reset_stats(&mut self) {
        self.node_reads = 0;
        self.store.reset_stats();
        self.pool.reset_stats();
    }

    /// Drops all cached pages so the next query starts cold.
    pub fn clear_buffer(&mut self) -> Result<()> {
        self.pool.clear(&mut self.store)
    }

    /// Frees a node's page (its bytes are dead; the buffer copy is
    /// discarded, the page returns to the store's free list).
    pub fn free_node(&mut self, page: PageId) -> Result<()> {
        self.pool.discard(page);
        self.store.free(page)
    }

    /// Buffer-manager audit: LRU bookkeeping consistent and no leaked pins.
    /// The pager pins only inside [`Pager::read_node`], so between calls the
    /// pool must be fully unpinned.
    pub fn audit(&self) -> std::result::Result<(), String> {
        self.pool.audit_idle()
    }
}

/// Read access to an R-tree-like trajectory index, as required by the
/// best-first MST search: a root pointer, node fetches (with I/O
/// accounting), and the metadata the bounds need (`max_speed`, sizes).
pub trait TrajectoryIndex {
    /// The root page, or `None` for an empty index.
    fn root(&self) -> Option<PageId>;

    /// Fetches and decodes a node (counts one logical read; physical I/O
    /// depends on the buffer).
    fn read_node(&mut self, page: PageId) -> Result<Node>;

    /// [`TrajectoryIndex::read_node`] with observability: reports the node
    /// access (tagged with the node's level) to `sink`. Implementations
    /// backed by a buffer pool override this to also report the buffer
    /// hit/miss and the decoded byte count; the default reports the access
    /// alone. (`Self: Sized` keeps the trait object-safe — trait objects
    /// fall back to the untraced [`TrajectoryIndex::read_node`].)
    fn read_node_traced<S: MetricsSink>(&mut self, page: PageId, sink: &mut S) -> Result<Node>
    where
        Self: Sized,
    {
        let node = self.read_node(page)?;
        sink.node_access(node.level());
        Ok(node)
    }

    /// Number of pages the index occupies.
    fn num_pages(&self) -> usize;

    /// Number of segment entries stored.
    fn num_entries(&self) -> u64;

    /// Tree height (1 for a single-leaf tree, 0 when empty).
    fn height(&self) -> u8;

    /// Maximum speed over all indexed segments (the `Vmax` ingredient of the
    /// speed-dependent bounds; the query adds its own max speed).
    fn max_speed(&self) -> f64;

    /// Snapshot of structural and I/O statistics.
    fn stats(&self) -> IndexStats;

    /// Resets the I/O counters (structure metadata is preserved).
    fn reset_stats(&mut self);

    /// Empties the buffer pool so subsequent queries run cold.
    fn clear_buffer(&mut self) -> Result<()>;

    /// Pins the buffer pool to a fixed page capacity, or restores the
    /// paper's auto-sizing rule with `None` (used by buffer ablations).
    fn set_buffer_capacity(&mut self, capacity: Option<usize>) -> Result<()>;

    /// Enables (`Some(config)`) or disables (`None`) deterministic fault
    /// injection on the index's physical page I/O (chaos testing).
    /// Enabling replaces any previous schedule and resets its statistics.
    /// The default is for index views without their own storage: disabling
    /// is a no-op, enabling is an error rather than a silent lie.
    fn set_fault_injection(&mut self, config: Option<FaultConfig>) -> Result<()> {
        match config {
            None => Ok(()),
            Some(_) => Err(IndexError::Buffer(
                "this index view has no fault-injectable page store".to_string(),
            )),
        }
    }

    /// Counters of the injected faults, when fault injection is enabled.
    /// `None` when injection is off or unsupported.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }

    /// For trajectory-preserving indexes (the TB-tree): each trajectory's
    /// tip leaf, the head of its backward leaf chain. Indexes without leaf
    /// chains return an empty list, which skips the chain validation in
    /// [`crate::check_invariants`].
    fn leaf_chain_tips(&self) -> Vec<(TrajectoryId, PageId)> {
        Vec::new()
    }

    /// Audits the buffer manager's bookkeeping (LRU consistency, leaked
    /// pins). The default is a no-op for index views without a buffer.
    fn audit_buffer(&self) -> std::result::Result<(), String> {
        Ok(())
    }

    /// All segments whose MBB intersects `window` — the classic 3D range
    /// query the substrate also serves (the paper's premise is that the
    /// *same* index answers both traditional and similarity queries).
    fn range_query(&mut self, window: &Mbb) -> Result<Vec<LeafEntry>>
    where
        Self: Sized,
    {
        self.range_query_traced(window, &mut NoopSink)
    }

    /// [`TrajectoryIndex::range_query`] with observability: every node
    /// visited during the traversal is reported to `sink`.
    fn range_query_traced<S: MetricsSink>(
        &mut self,
        window: &Mbb,
        sink: &mut S,
    ) -> Result<Vec<LeafEntry>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        let Some(root) = self.root() else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            match self.read_node_traced(page, sink)? {
                Node::Leaf { entries, .. } => {
                    out.extend(
                        entries
                            .iter()
                            .filter(|e| e.mbb().intersects(window))
                            .copied(),
                    );
                }
                Node::Internal { entries, .. } => {
                    stack.extend(
                        entries
                            .iter()
                            .filter(|e| e.mbb.intersects(window))
                            .map(|e| e.child),
                    );
                }
            }
        }
        Ok(out)
    }
}

/// Write access to an R-tree-like trajectory index. Separate from
/// [`TrajectoryIndex`] because read-only views (e.g. a loaded snapshot
/// served to queries) need not be writable.
pub trait TrajectoryIndexWrite: TrajectoryIndex {
    /// Inserts one segment entry.
    fn insert_entry(&mut self, entry: LeafEntry) -> Result<()>;

    /// Deletes one segment entry, matched by trajectory id + sequence
    /// number. Returns `Ok(false)` when no such entry exists. The default
    /// refuses rather than silently dropping the request: substrates whose
    /// structure cannot support point deletes (the TB-tree's leaf chains,
    /// the STR-tree's packed layout) surface a typed error, and ingest
    /// paths route deletes to substrates that can.
    fn delete_entry(&mut self, traj: TrajectoryId, seq: u32) -> Result<bool> {
        let _ = (traj, seq);
        Err(IndexError::Persist(
            "this index substrate does not support point deletes".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_capacity_follows_paper_rule() {
        assert_eq!(paper_buffer_capacity(0), 8);
        assert_eq!(paper_buffer_capacity(50), 8);
        assert_eq!(paper_buffer_capacity(200), 20);
        assert_eq!(paper_buffer_capacity(5000), 500);
        assert_eq!(paper_buffer_capacity(100_000), 1000);
    }
}
