//! Minimal little-endian page codec.
//!
//! Nodes are persisted as raw bytes inside fixed 4 KB pages; this module
//! provides the cursor-style reader/writer the node (de)serializers use.
//!
//! The reader is *total*: every accessor is a `try_get_*` returning
//! `Option`, so a truncated or overrun page surfaces as a clean
//! [`crate::IndexError::CorruptNode`] at the decode layer instead of a
//! panic. [`Reader::remaining`] lets decoders validate an entry count
//! against the bytes actually present before allocating for it.
//!
//! The writer stays panicking-by-slice-indexing: encoders write layouts
//! whose sizes are compile-time constants checked against `PAGE_SIZE`
//! (see `node.rs`), so an overflow there is a programming error, and the
//! slice bounds check is exactly the assertion we want.

/// Sequential writer over a fixed-size page buffer.
pub struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    /// Starts writing at the beginning of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Writer { buf, pos: 0 }
    }

    /// Bytes written so far (encoders use this to cross-check the layout
    /// arithmetic after serializing).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    /// Appends a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Sequential checked reader over a page buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Takes the next `n` bytes, or `None` when fewer remain.
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte, or `None` at end of buffer.
    pub fn try_get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian u16, or `None` when under 2 bytes remain.
    pub fn try_get_u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32, or `None` when under 4 bytes remain.
    pub fn try_get_u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64, or `None` when under 8 bytes remain.
    pub fn try_get_u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian f64, or `None` when under 8 bytes remain.
    pub fn try_get_f64(&mut self) -> Option<f64> {
        self.try_get_u64().map(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = vec![0u8; 64];
        let mut w = Writer::new(&mut buf);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0123456789ABCDEF);
        w.put_f64(-1234.5678e12);
        w.put_f64(f64::INFINITY);
        let written = w.position();

        let mut r = Reader::new(&buf);
        assert_eq!(r.try_get_u8(), Some(0xAB));
        assert_eq!(r.try_get_u16(), Some(0x1234));
        assert_eq!(r.try_get_u32(), Some(0xDEADBEEF));
        assert_eq!(r.try_get_u64(), Some(0x0123456789ABCDEF));
        assert_eq!(r.try_get_f64(), Some(-1234.5678e12));
        assert_eq!(r.try_get_f64(), Some(f64::INFINITY));
        assert_eq!(r.position(), written);
        assert_eq!(r.remaining(), 64 - written);
    }

    #[test]
    fn f64_bit_exact_including_negative_zero() {
        let mut buf = vec![0u8; 16];
        let mut w = Writer::new(&mut buf);
        w.put_f64(-0.0);
        let mut r = Reader::new(&buf);
        let v = r.try_get_f64().unwrap();
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn truncated_buffers_return_none_not_panic() {
        // One byte short of each width, at every prefix of a 7-byte buffer.
        let buf = [1u8, 2, 3, 4, 5, 6, 7];
        assert_eq!(Reader::new(&buf[..0]).try_get_u8(), None);
        assert_eq!(Reader::new(&buf[..1]).try_get_u16(), None);
        assert_eq!(Reader::new(&buf[..3]).try_get_u32(), None);
        assert_eq!(Reader::new(&buf[..7]).try_get_u64(), None);
        assert_eq!(Reader::new(&buf[..7]).try_get_f64(), None);
        // A failed read consumes nothing and leaves the cursor usable.
        let mut r = Reader::new(&buf);
        assert_eq!(r.try_get_u32(), Some(u32::from_le_bytes([1, 2, 3, 4])));
        assert_eq!(r.try_get_u64(), None);
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.try_get_u16(), Some(u16::from_le_bytes([5, 6])));
        assert_eq!(r.try_get_u8(), Some(7));
        assert_eq!(r.try_get_u8(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn remaining_tracks_consumption() {
        let buf = [0u8; 12];
        let mut r = Reader::new(&buf);
        assert_eq!(r.remaining(), 12);
        r.try_get_u64();
        assert_eq!(r.remaining(), 4);
        r.try_get_u32();
        assert_eq!(r.remaining(), 0);
    }
}
