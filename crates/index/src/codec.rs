//! Minimal little-endian page codec.
//!
//! Nodes are persisted as raw bytes inside fixed 4 KB pages; this module
//! provides the cursor-style reader/writer the node (de)serializers use.
//! Panics on overflow are intentional: layout constants guarantee fits, so
//! an overflow is a programming error, not a runtime condition.

/// Sequential writer over a fixed-size page buffer.
pub struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    /// Starts writing at the beginning of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Writer { buf, pos: 0 }
    }

    /// Bytes written so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    /// Appends a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Sequential reader over a page buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(
            self.buf[self.pos..self.pos + 2]
                .try_into()
                .expect("2 bytes"),
        );
        self.pos += 2;
        v
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        v
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(
            self.buf[self.pos..self.pos + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.pos += 8;
        v
    }

    /// Reads a little-endian f64.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = vec![0u8; 64];
        let mut w = Writer::new(&mut buf);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0123456789ABCDEF);
        w.put_f64(-1234.5678e12);
        w.put_f64(f64::INFINITY);
        let written = w.position();

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0123456789ABCDEF);
        assert_eq!(r.get_f64(), -1234.5678e12);
        assert_eq!(r.get_f64(), f64::INFINITY);
        assert_eq!(r.position(), written);
    }

    #[test]
    fn f64_bit_exact_including_negative_zero() {
        let mut buf = vec![0u8; 16];
        let mut w = Writer::new(&mut buf);
        w.put_f64(-0.0);
        let mut r = Reader::new(&buf);
        let v = r.get_f64();
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
    }
}
