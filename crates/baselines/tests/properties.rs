//! Property-based tests for the baseline measures.

use proptest::prelude::*;

use mst_baselines::{interpolation_improve, lockstep_euclidean, Dtw, Edr, Lcss};
use mst_trajectory::Trajectory;

fn trajectory(n: usize) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), n).prop_map(|coords| {
        Trajectory::new(
            coords
                .into_iter()
                .enumerate()
                .map(|(i, (x, y))| mst_trajectory::SamplePoint::new(i as f64, x, y))
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lcss_similarity_is_bounded_and_symmetric(
        (a, b) in (trajectory(9), trajectory(13)),
        eps in 0.01f64..5.0,
    ) {
        let m = Lcss::new(eps);
        let s = m.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(m.lcss_length(&a, &b), m.lcss_length(&b, &a));
        // Self-similarity is 1 for any positive epsilon.
        prop_assert_eq!(m.similarity(&a, &a), 1.0);
    }

    #[test]
    fn lcss_is_monotone_in_epsilon((a, b) in (trajectory(8), trajectory(8))) {
        let tight = Lcss::new(0.1).lcss_length(&a, &b);
        let loose = Lcss::new(2.0).lcss_length(&a, &b);
        prop_assert!(loose >= tight);
    }

    #[test]
    fn edr_is_symmetric_and_bounded(
        (a, b) in (trajectory(7), trajectory(11)),
        eps in 0.01f64..5.0,
    ) {
        let m = Edr::new(eps);
        let d = m.distance(&a, &b);
        prop_assert_eq!(d, m.distance(&b, &a));
        prop_assert!(d <= a.num_points().max(b.num_points()));
        prop_assert!(d >= a.num_points().abs_diff(b.num_points()));
        prop_assert_eq!(m.distance(&a, &a), 0);
        prop_assert!((0.0..=1.0).contains(&m.normalized_distance(&a, &b)));
    }

    #[test]
    fn dtw_never_exceeds_lockstep_on_equal_lengths((a, b) in (trajectory(10), trajectory(10))) {
        let dtw = Dtw::new().distance(&a, &b);
        let lockstep = lockstep_euclidean(&a, &b).unwrap();
        prop_assert!(dtw <= lockstep + 1e-9, "dtw {dtw} > lockstep {lockstep}");
        prop_assert!(dtw >= -1e-12);
        prop_assert!((Dtw::new().distance(&a, &a)).abs() < 1e-12);
    }

    #[test]
    fn interpolation_improve_is_a_superset_resampling(
        (q, d) in (trajectory(5), trajectory(12)),
    ) {
        let improved = interpolation_improve(&q, &d);
        // All original query timestamps survive.
        let stamps: Vec<f64> = improved.points().iter().map(|p| p.t).collect();
        for p in q.points() {
            prop_assert!(stamps.contains(&p.t));
        }
        // Positions still lie on the original query's polyline.
        for p in improved.points() {
            let on_line = q.position_at(p.t).unwrap();
            prop_assert!((p.x - on_line.x).abs() < 1e-9);
            prop_assert!((p.y - on_line.y).abs() < 1e-9);
        }
    }
}
