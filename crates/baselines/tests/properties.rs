//! Property-based tests for the baseline measures, run as seeded
//! deterministic loops (the hermetic build carries no `proptest`; the
//! in-tree [`mst_prng`] generator drives the same invariants instead).

use mst_baselines::{interpolation_improve, lockstep_euclidean, Dtw, Edr, Lcss};
use mst_prng::Rng;
use mst_trajectory::Trajectory;

/// A random trajectory with `n` points on the shared grid `0, 1, ..., n-1`
/// and coordinates in `[-5, 5]`.
fn trajectory(rng: &mut Rng, n: usize) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| {
                mst_trajectory::SamplePoint::new(
                    i as f64,
                    rng.f64_range(-5.0, 5.0),
                    rng.f64_range(-5.0, 5.0),
                )
            })
            .collect(),
    )
    .unwrap()
}

/// Runs `cases` independently seeded iterations of `body`; the failure
/// message carries the case seed so any violation replays exactly.
fn check(name: &str, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::seed_from(0xBA5E_11E5 ^ case.wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            panic!("property `{name}` failed at case {case}: {e:?}");
        }
    }
}

#[test]
fn lcss_similarity_is_bounded_and_symmetric() {
    check("lcss_bounded_symmetric", 96, |rng| {
        let a = trajectory(rng, 9);
        let b = trajectory(rng, 13);
        let eps = rng.f64_range(0.01, 5.0);
        let m = Lcss::new(eps);
        let s = m.similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(m.lcss_length(&a, &b), m.lcss_length(&b, &a));
        // Self-similarity is 1 for any positive epsilon.
        assert_eq!(m.similarity(&a, &a), 1.0);
    });
}

#[test]
fn lcss_is_monotone_in_epsilon() {
    check("lcss_monotone_in_epsilon", 96, |rng| {
        let a = trajectory(rng, 8);
        let b = trajectory(rng, 8);
        let tight = Lcss::new(0.1).lcss_length(&a, &b);
        let loose = Lcss::new(2.0).lcss_length(&a, &b);
        assert!(loose >= tight);
    });
}

#[test]
fn edr_is_symmetric_and_bounded() {
    check("edr_symmetric_bounded", 96, |rng| {
        let a = trajectory(rng, 7);
        let b = trajectory(rng, 11);
        let eps = rng.f64_range(0.01, 5.0);
        let m = Edr::new(eps);
        let d = m.distance(&a, &b);
        assert_eq!(d, m.distance(&b, &a));
        assert!(d <= a.num_points().max(b.num_points()));
        assert!(d >= a.num_points().abs_diff(b.num_points()));
        assert_eq!(m.distance(&a, &a), 0);
        assert!((0.0..=1.0).contains(&m.normalized_distance(&a, &b)));
    });
}

#[test]
fn dtw_never_exceeds_lockstep_on_equal_lengths() {
    check("dtw_vs_lockstep", 96, |rng| {
        let a = trajectory(rng, 10);
        let b = trajectory(rng, 10);
        let dtw = Dtw::new().distance(&a, &b);
        let lockstep = lockstep_euclidean(&a, &b).unwrap();
        assert!(dtw <= lockstep + 1e-9, "dtw {dtw} > lockstep {lockstep}");
        assert!(dtw >= -1e-12);
        assert!((Dtw::new().distance(&a, &a)).abs() < 1e-12);
    });
}

#[test]
fn interpolation_improve_is_a_superset_resampling() {
    check("interpolation_improve_superset", 96, |rng| {
        let q = trajectory(rng, 5);
        let d = trajectory(rng, 12);
        let improved = interpolation_improve(&q, &d);
        // All original query timestamps survive.
        let stamps: Vec<f64> = improved.points().iter().map(|p| p.t).collect();
        for p in q.points() {
            assert!(stamps.contains(&p.t));
        }
        // Positions still lie on the original query's polyline.
        for p in improved.points() {
            let on_line = q.position_at(p.t).unwrap();
            assert!((p.x - on_line.x).abs() < 1e-9);
            assert!((p.y - on_line.y).abs() < 1e-9);
        }
    });
}
