//! Baseline trajectory similarity measures the paper compares DISSIM
//! against (Section 5.2): LCSS (Vlachos et al., ICDE 2002), EDR (Chen et
//! al., SIGMOD 2005), DTW (Berndt & Clifford), and lock-step Euclidean
//! distance — plus the "improved" LCSS-I / EDR-I variants the paper
//! constructs by interpolating extra samples into the under-sampled query.
//!
//! All of these operate on the *point sequences* of the trajectories and
//! (except where noted) ignore the time dimension — that is precisely the
//! weakness the paper's quality experiment (Figure 9) exposes when
//! trajectories are sampled at different rates.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dtw;
mod edr;
mod euclid;
mod lcss;
mod prep;

pub use dtw::Dtw;
pub use edr::Edr;
pub use euclid::lockstep_euclidean;
pub use lcss::Lcss;
pub use prep::{epsilon_for, interpolation_improve, normalize_all};
