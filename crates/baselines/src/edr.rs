//! Edit Distance on Real sequences (Chen, Özsu & Oria, SIGMOD 2005).
//!
//! The number of insert/delete/replace operations needed to turn one point
//! sequence into the other, where two points "match" (replace cost 0) when
//! both coordinate differences are within `epsilon`. More robust to noise
//! than DTW/LCSS, but — as the paper's Figure 9 analysis shows — strongly
//! penalized by differing sequence lengths: `EDR(A, A_compressed) >= n - m`,
//! which lets short unrelated trajectories outscore the true original.

use mst_trajectory::{SamplePoint, Trajectory};

use crate::prep::interpolation_improve;

/// EDR distance with matching threshold `epsilon`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edr {
    /// Per-coordinate matching threshold.
    pub epsilon: f64,
}

impl Edr {
    /// Creates an EDR measure.
    pub fn new(epsilon: f64) -> Self {
        Edr { epsilon }
    }

    #[inline]
    fn matches(&self, a: &SamplePoint, b: &SamplePoint) -> bool {
        (a.x - b.x).abs() <= self.epsilon && (a.y - b.y).abs() <= self.epsilon
    }

    /// The raw edit distance (number of operations).
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> usize {
        let pa = a.points();
        let pb = b.points();
        let (n, m) = (pa.len(), pb.len());
        let mut prev: Vec<usize> = (0..=m).collect();
        let mut curr = vec![0usize; m + 1];
        for i in 1..=n {
            curr[0] = i;
            for j in 1..=m {
                let subcost = usize::from(!self.matches(&pa[i - 1], &pb[j - 1]));
                curr[j] = (prev[j - 1] + subcost)
                    .min(prev[j] + 1)
                    .min(curr[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m]
    }

    /// Edit distance normalized by the longer sequence, in `[0, 1]`.
    pub fn normalized_distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let max_len = a.num_points().max(b.num_points());
        self.distance(a, b) as f64 / max_len as f64
    }

    /// EDR-I: interpolate samples into the query at the data trajectory's
    /// timestamps before computing the edit distance.
    pub fn distance_improved(&self, query: &Trajectory, data: &Trajectory) -> usize {
        let improved = interpolation_improve(query, data);
        self.distance(&improved, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_txy(pts).unwrap()
    }

    #[test]
    fn identical_sequences_cost_zero() {
        let t = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 2.0, 0.0)]);
        assert_eq!(Edr::new(0.1).distance(&t, &t), 0);
        assert_eq!(Edr::new(0.1).normalized_distance(&t, &t), 0.0);
    }

    #[test]
    fn length_difference_lower_bounds_the_distance() {
        // The paper's analysis: EDR(A, Ac) >= n - m.
        let long_pts: Vec<(f64, f64, f64)> =
            (0..10).map(|i| (f64::from(i), f64::from(i), 0.0)).collect();
        let a = traj(&long_pts);
        let ac = traj(&[(0.0, 0.0, 0.0), (9.0, 9.0, 0.0)]);
        let d = Edr::new(0.1).distance(&a, &ac);
        assert!(d >= 8);
    }

    #[test]
    fn one_substitution_costs_one() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0), (2.0, 2.0, 0.0)]);
        let b = traj(&[(0.0, 0.0, 0.0), (1.0, 50.0, 0.0), (2.0, 2.0, 0.0)]);
        assert_eq!(Edr::new(0.1).distance(&a, &b), 1);
    }

    #[test]
    fn insertion_costs_one() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0), (2.0, 2.0, 0.0)]);
        let b = traj(&[(0.0, 0.0, 0.0), (2.0, 2.0, 0.0)]);
        assert_eq!(Edr::new(0.1).distance(&a, &b), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 3.0, 1.0),
            (2.0, 5.0, 0.0),
            (3.0, 2.0, 2.0),
        ]);
        let b = traj(&[(0.0, 0.1, 0.0), (1.0, 4.0, 1.0), (2.0, 5.0, 0.1)]);
        let e = Edr::new(0.3);
        assert_eq!(e.distance(&a, &b), e.distance(&b, &a));
    }

    #[test]
    fn improvement_recovers_compressed_originals() {
        // Straight line, original 11 points vs compressed 2 points: raw EDR
        // is ~9, EDR-I drops to 0.
        let orig_pts: Vec<(f64, f64, f64)> = (0..=10)
            .map(|i| (f64::from(i), f64::from(i), 0.0))
            .collect();
        let orig = traj(&orig_pts);
        let compressed = traj(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        let e = Edr::new(0.2);
        assert!(e.distance(&compressed, &orig) >= 9);
        assert_eq!(e.distance_improved(&compressed, &orig), 0);
    }

    #[test]
    fn edr_triangle_like_bound_against_empty_ish() {
        // Completely disjoint sequences: distance equals max length (replace
        // everything, then insert/delete the remainder).
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0), (2.0, 2.0, 0.0)]);
        let b = traj(&[(0.0, 100.0, 0.0), (1.0, 101.0, 0.0)]);
        assert_eq!(Edr::new(0.5).distance(&a, &b), 3);
    }
}
