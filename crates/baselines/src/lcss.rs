//! Longest Common SubSequence similarity for trajectories
//! (Vlachos, Kollios & Gunopulos, ICDE 2002).
//!
//! Two points match when both coordinate differences are below `epsilon`;
//! an optional temporal constraint `delta` restricts matching to index
//! positions at most `delta` apart. LCSS tolerates outliers and different
//! scaling, but — matching sampled positions one by one — fails when
//! sampling rates differ (the paper's Figure 1 argument).

use mst_trajectory::{SamplePoint, Trajectory};

use crate::prep::interpolation_improve;

/// LCSS similarity/distance with threshold `epsilon` and optional index
/// warp window `delta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lcss {
    /// Per-coordinate matching threshold.
    pub epsilon: f64,
    /// Maximum index offset between matched positions (`None` = unlimited).
    pub delta: Option<usize>,
}

impl Lcss {
    /// Creates an LCSS measure with no temporal constraint.
    pub fn new(epsilon: f64) -> Self {
        Lcss {
            epsilon,
            delta: None,
        }
    }

    /// Creates an LCSS measure with a `delta` index window.
    pub fn with_delta(epsilon: f64, delta: usize) -> Self {
        Lcss {
            epsilon,
            delta: Some(delta),
        }
    }

    #[inline]
    fn matches(&self, a: &SamplePoint, b: &SamplePoint) -> bool {
        (a.x - b.x).abs() < self.epsilon && (a.y - b.y).abs() < self.epsilon
    }

    /// Length of the longest common subsequence of the two point sequences.
    pub fn lcss_length(&self, a: &Trajectory, b: &Trajectory) -> usize {
        let pa = a.points();
        let pb = b.points();
        let (n, m) = (pa.len(), pb.len());
        // Two-row DP.
        let mut prev = vec![0usize; m + 1];
        let mut curr = vec![0usize; m + 1];
        for i in 1..=n {
            for j in 1..=m {
                let within_delta = match self.delta {
                    Some(d) => i.abs_diff(j) <= d,
                    None => true,
                };
                curr[j] = if within_delta && self.matches(&pa[i - 1], &pb[j - 1]) {
                    prev[j - 1] + 1
                } else {
                    prev[j].max(curr[j - 1])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
            curr.fill(0);
        }
        prev[m]
    }

    /// Similarity in `[0, 1]`: `LCSS / min(n, m)`.
    pub fn similarity(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let min_len = a.num_points().min(b.num_points());
        self.lcss_length(a, b) as f64 / min_len as f64
    }

    /// Distance in `[0, 1]`: `1 - similarity`.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        1.0 - self.similarity(a, b)
    }

    /// LCSS-I: the paper's improved variant — interpolate samples into the
    /// query at the data trajectory's timestamps before matching.
    pub fn distance_improved(&self, query: &Trajectory, data: &Trajectory) -> f64 {
        let improved = interpolation_improve(query, data);
        self.distance(&improved, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_txy(pts).unwrap()
    }

    #[test]
    fn identical_sequences_have_similarity_one() {
        let t = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 2.0, 0.0)]);
        let m = Lcss::new(0.1);
        assert_eq!(m.lcss_length(&t, &t), 3);
        assert_eq!(m.similarity(&t, &t), 1.0);
        assert_eq!(m.distance(&t, &t), 0.0);
    }

    #[test]
    fn disjoint_sequences_have_similarity_zero() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let b = traj(&[(0.0, 100.0, 100.0), (1.0, 101.0, 100.0)]);
        let m = Lcss::new(0.5);
        assert_eq!(m.similarity(&a, &b), 0.0);
        assert_eq!(m.distance(&a, &b), 1.0);
    }

    #[test]
    fn tolerates_one_outlier() {
        // Same path except one wild sample in the middle: LCSS skips it.
        let a = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 2.0, 0.0),
            (3.0, 3.0, 0.0),
        ]);
        let b = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 500.0, 0.0), // outlier
            (3.0, 3.0, 0.0),
        ]);
        let m = Lcss::new(0.2);
        assert_eq!(m.lcss_length(&a, &b), 3);
        assert!((m.similarity(&a, &b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_subsequence() {
        // a: p q r s ; b: q s -> LCS = 2.
        let a = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 2.0, 0.0),
            (3.0, 3.0, 0.0),
        ]);
        let b = traj(&[(0.0, 1.0, 0.0), (1.0, 3.0, 0.0)]);
        let m = Lcss::new(0.1);
        assert_eq!(m.lcss_length(&a, &b), 2);
        assert_eq!(m.similarity(&a, &b), 1.0); // normalized by min(4, 2)
    }

    #[test]
    fn delta_window_restricts_matches() {
        // Matching elements sit 3 index positions apart.
        let a = traj(&[
            (0.0, 9.0, 9.0),
            (1.0, 8.0, 8.0),
            (2.0, 7.0, 7.0),
            (3.0, 0.0, 0.0),
        ]);
        let b = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 5.0, 5.0),
            (2.0, 6.0, 6.0),
            (3.0, 4.0, 4.0),
        ]);
        assert_eq!(Lcss::new(0.1).lcss_length(&a, &b), 1);
        assert_eq!(Lcss::with_delta(0.1, 1).lcss_length(&a, &b), 0);
        assert_eq!(Lcss::with_delta(0.1, 3).lcss_length(&a, &b), 1);
    }

    #[test]
    fn undersampling_hurts_lcss_but_not_lcss_i() {
        // The same straight movement, sampled 3 vs 13 times with samples at
        // incompatible positions: plain LCSS matches poorly, LCSS-I
        // (interpolating the query at the data's timestamps) matches fully.
        let query = traj(&[(0.0, 0.0, 0.0), (6.5, 6.5, 0.0), (13.0, 13.0, 0.0)]);
        let data_pts: Vec<(f64, f64, f64)> = (0..=12)
            .map(|i| (f64::from(i), f64::from(i), 0.0))
            .collect();
        let data = traj(&data_pts);
        let m = Lcss::new(0.3);
        let plain = m.distance(&query, &data);
        let improved = m.distance_improved(&query, &data);
        assert!(improved < plain, "improved={improved} plain={plain}");
        assert!(improved.abs() < 1e-12, "perfect match after interpolation");
    }

    #[test]
    fn similarity_is_symmetric_without_delta() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 2.0, 1.0), (2.0, 4.0, 0.0)]);
        let b = traj(&[
            (0.0, 0.1, 0.0),
            (1.0, 1.9, 1.0),
            (2.0, 7.0, 0.0),
            (3.0, 4.1, 0.0),
        ]);
        let m = Lcss::new(0.5);
        assert_eq!(m.lcss_length(&a, &b), m.lcss_length(&b, &a));
    }
}
