//! Lock-step Euclidean distance — the strawman the sequence measures
//! improve on: it requires equal lengths and aligned sampling.

use mst_trajectory::Trajectory;

/// Sum of point-wise Euclidean distances between two equally long point
/// sequences, or `None` when the lengths differ (the measure is undefined
/// then — exactly the limitation the paper's related work discusses for
/// [22] and similar shape-based approaches).
pub fn lockstep_euclidean(a: &Trajectory, b: &Trajectory) -> Option<f64> {
    if a.num_points() != b.num_points() {
        return None;
    }
    Some(
        a.points()
            .iter()
            .zip(b.points())
            .map(|(p, q)| p.position().distance(&q.position()))
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_txy(pts).unwrap()
    }

    #[test]
    fn equal_length_sums_distances() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0)]);
        let b = traj(&[(0.0, 3.0, 4.0), (1.0, 0.0, 1.0)]);
        assert_eq!(lockstep_euclidean(&a, &b), Some(6.0));
    }

    #[test]
    fn unequal_length_is_undefined() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (2.0, 0.0, 0.0)]);
        let b = traj(&[(0.0, 0.0, 0.0), (1.0, 0.0, 0.0)]);
        assert_eq!(lockstep_euclidean(&a, &b), None);
    }

    #[test]
    fn self_distance_is_zero() {
        let a = traj(&[(0.0, 1.0, 2.0), (1.0, 3.0, 4.0)]);
        assert_eq!(lockstep_euclidean(&a, &a), Some(0.0));
    }
}
