//! Shared preprocessing for the baseline measures: the matching threshold
//! `epsilon`, per-trajectory normalization, and the interpolation
//! improvement the paper applies to build LCSS-I / EDR-I.

use mst_trajectory::{Trajectory, TrajectoryStats};

/// The paper's epsilon rule (following Chen et al.): a quarter of the
/// maximum coordinate standard deviation over all trajectories.
pub fn epsilon_for<'a, I: IntoIterator<Item = &'a Trajectory>>(trajectories: I) -> f64 {
    let max_std = trajectories
        .into_iter()
        .map(|t| TrajectoryStats::of(t).max_std())
        .fold(0.0, f64::max);
    0.25 * max_std
}

/// Normalizes every trajectory to zero mean / unit variance per coordinate,
/// as the paper does before running LCSS/EDR (returns fresh trajectories;
/// the DISSIM pipeline never normalizes).
pub fn normalize_all(trajectories: &[Trajectory]) -> Vec<Trajectory> {
    trajectories
        .iter()
        .map(|t| mst_trajectory::normalize(t).expect("normalizing a valid trajectory"))
        .collect()
}

/// The paper's "obvious improvement over LCSS and EDR": re-sample the
/// (typically under-sampled) query by adding, via linear interpolation,
/// samples at the timestamps where `data` was sampled.
///
/// The result contains the union of the query's own timestamps and those of
/// `data` that fall inside the query's validity period.
pub fn interpolation_improve(query: &Trajectory, data: &Trajectory) -> Trajectory {
    let mut stamps: Vec<f64> = query.points().iter().map(|p| p.t).collect();
    stamps.extend(
        data.points()
            .iter()
            .map(|p| p.t)
            .filter(|&t| t >= query.start_time() && t <= query.end_time()),
    );
    stamps.sort_by(f64::total_cmp);
    stamps.dedup();
    query
        .resample(&stamps)
        .expect("union timestamps lie inside the query's validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_txy(pts).unwrap()
    }

    #[test]
    fn epsilon_takes_quarter_of_max_std() {
        // One trajectory with std_x = 0.5 (values 0/1 repeated), another
        // with a larger spread.
        let a = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 0.0, 0.0),
            (3.0, 1.0, 0.0),
        ]);
        let b = traj(&[(0.0, -10.0, 0.0), (1.0, 10.0, 0.0)]);
        let eps = epsilon_for([&a, &b]);
        assert!((eps - 2.5).abs() < 1e-12); // std of {-10, 10} is 10; /4
    }

    #[test]
    fn improve_adds_data_timestamps() {
        let query = traj(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        let data = traj(&[
            (0.0, 0.0, 1.0),
            (2.5, 1.0, 1.0),
            (5.0, 2.0, 1.0),
            (10.0, 4.0, 1.0),
        ]);
        let improved = interpolation_improve(&query, &data);
        let stamps: Vec<f64> = improved.points().iter().map(|p| p.t).collect();
        assert_eq!(stamps, vec![0.0, 2.5, 5.0, 10.0]);
        // Interpolated positions follow the query's own line.
        assert_eq!(improved.points()[1].x, 2.5);
    }

    #[test]
    fn improve_ignores_timestamps_outside_query() {
        let query = traj(&[(2.0, 0.0, 0.0), (4.0, 2.0, 0.0)]);
        let data = traj(&[(0.0, 0.0, 0.0), (3.0, 1.0, 0.0), (9.0, 2.0, 0.0)]);
        let improved = interpolation_improve(&query, &data);
        let stamps: Vec<f64> = improved.points().iter().map(|p| p.t).collect();
        assert_eq!(stamps, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn improve_with_identical_sampling_is_identity() {
        let query = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 2.0, 0.0)]);
        let improved = interpolation_improve(&query, &query);
        assert_eq!(improved, query);
    }

    #[test]
    fn normalize_all_standardizes_each() {
        let out = normalize_all(&[
            traj(&[(0.0, 100.0, 0.0), (1.0, 104.0, 4.0), (2.0, 108.0, 0.0)]),
            traj(&[(0.0, -5.0, 7.0), (1.0, 5.0, 7.0)]),
        ]);
        for t in &out {
            let s = TrajectoryStats::of(t);
            assert!(s.mean_x.abs() < 1e-9 && s.mean_y.abs() < 1e-9);
        }
    }
}
