//! Dynamic Time Warping (Berndt & Clifford).
//!
//! Aligns two point sequences by stretching them along the index axis,
//! summing the Euclidean distances of aligned pairs. Included for
//! completeness (the paper cites it but omits it from Figure 9 because LCSS
//! and EDR were already shown to outperform it).

use mst_trajectory::Trajectory;

use crate::prep::interpolation_improve;

/// Classic DTW with Euclidean point cost and an optional Sakoe–Chiba band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dtw {
    /// Band half-width in index positions (`None` = unconstrained).
    pub band: Option<usize>,
}

impl Dtw {
    /// Unconstrained DTW.
    pub fn new() -> Self {
        Dtw { band: None }
    }

    /// DTW restricted to a Sakoe–Chiba band of half-width `band`.
    pub fn with_band(band: usize) -> Self {
        Dtw { band: Some(band) }
    }

    /// The DTW distance between the two point sequences.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        let pa = a.points();
        let pb = b.points();
        let (n, m) = (pa.len(), pb.len());
        // Effective band: must be at least |n - m| for a path to exist.
        let band = self
            .band
            .map(|w| w.max(n.abs_diff(m)))
            .unwrap_or(usize::MAX);
        let mut prev = vec![f64::INFINITY; m + 1];
        let mut curr = vec![f64::INFINITY; m + 1];
        prev[0] = 0.0;
        for i in 1..=n {
            curr[0] = f64::INFINITY;
            let lo = if band == usize::MAX {
                1
            } else {
                i.saturating_sub(band).max(1)
            };
            let hi = if band == usize::MAX {
                m
            } else {
                (i + band).min(m)
            };
            for j in 1..=m {
                if j < lo || j > hi {
                    curr[j] = f64::INFINITY;
                    continue;
                }
                let cost = pa[i - 1].position().distance(&pb[j - 1].position());
                curr[j] = cost + prev[j - 1].min(prev[j]).min(curr[j - 1]);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m]
    }

    /// DTW after interpolating query samples at the data's timestamps.
    pub fn distance_improved(&self, query: &Trajectory, data: &Trajectory) -> f64 {
        let improved = interpolation_improve(query, data);
        self.distance(&improved, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_txy(pts).unwrap()
    }

    #[test]
    fn identical_sequences_cost_zero() {
        let t = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 2.0), (2.0, 2.0, 0.0)]);
        assert_eq!(Dtw::new().distance(&t, &t), 0.0);
    }

    #[test]
    fn warping_absorbs_stretched_sampling() {
        // The same shape sampled at different densities still aligns
        // (point-for-point duplicates cost 0 under warping).
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0), (2.0, 2.0, 0.0)]);
        let b = traj(&[
            (0.0, 0.0, 0.0),
            (0.5, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (1.5, 1.0, 0.0),
            (2.0, 2.0, 0.0),
        ]);
        assert_eq!(Dtw::new().distance(&a, &b), 0.0);
    }

    #[test]
    fn hand_computed_small_case() {
        // a = [(0,0), (2,0)]; b = [(1,0)]: both points align to (1,0),
        // cost 1 + 1 = 2.
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 2.0, 0.0)]);
        let b = traj(&[(0.0, 1.0, 0.0), (0.5, 1.0, 0.0)]);
        assert_eq!(Dtw::new().distance(&a, &b), 2.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 3.0, 1.0), (2.0, 1.0, 4.0)]);
        let b = traj(&[
            (0.0, 0.5, 0.0),
            (1.0, 2.0, 2.0),
            (2.0, 1.5, 3.0),
            (3.0, 0.0, 1.0),
        ]);
        let d = Dtw::new();
        assert!((d.distance(&a, &b) - d.distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn band_never_beats_unconstrained() {
        let a = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 5.0, 0.0),
            (2.0, 0.0, 0.0),
            (3.0, 5.0, 0.0),
        ]);
        let b = traj(&[
            (0.0, 5.0, 0.0),
            (1.0, 0.0, 0.0),
            (2.0, 5.0, 0.0),
            (3.0, 0.0, 0.0),
        ]);
        let free = Dtw::new().distance(&a, &b);
        let banded = Dtw::with_band(1).distance(&a, &b);
        assert!(banded >= free);
        assert!(
            banded.is_finite(),
            "band is widened to keep a path feasible"
        );
    }

    #[test]
    fn improved_variant_helps_undersampled_queries() {
        let query = traj(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        let data_pts: Vec<(f64, f64, f64)> = (0..=10)
            .map(|i| (f64::from(i), f64::from(i), 0.0))
            .collect();
        let data = traj(&data_pts);
        let d = Dtw::new();
        assert!(d.distance_improved(&query, &data) < d.distance(&query, &data));
    }
}
