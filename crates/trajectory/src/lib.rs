//! Trajectory model for moving-object databases.
//!
//! This crate provides the geometric and kinematic substrate used by the
//! Most-Similar-Trajectory (MST) search reproduction of Frentzos, Gratsias
//! and Theodoridis (ICDE 2007):
//!
//! * [`Point`], [`SamplePoint`] — spatial and spatiotemporal positions;
//! * [`Segment`] — a moving point interpolated linearly between two samples;
//! * [`Trajectory`] — a validated, time-ordered polyline of samples;
//! * [`Rect`] / [`Mbb`] — 2D and 3D (x, y, t) bounding boxes;
//! * [`TimeInterval`] — closed time periods with overlap arithmetic;
//! * [`kinematics::DistanceTrinomial`] — the Euclidean distance between two
//!   linearly moving points as a function of time, `D(t) = sqrt(a t^2 + b t +
//!   c)`, with its exact integral, trapezoid approximation, and the Lemma 1
//!   error bound of the paper;
//! * [`cosample`] — co-temporal alignment of two trajectories, producing the
//!   synchronized segment pairs over which DISSIM is integrated.
//!
//! Trajectories are immutable after construction and guaranteed to have
//! finite coordinates and strictly increasing timestamps, so downstream code
//! never re-validates.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cosample;
mod error;
pub mod float;
pub mod kinematics;
mod mbb;
mod point;
mod segment;
mod stats;
mod time;
mod trajectory;

pub use error::TrajectoryError;
pub use mbb::{Mbb, Rect};
pub use point::{Point, SamplePoint};
pub use segment::Segment;
pub use stats::{normalize, TrajectoryStats};
pub use time::TimeInterval;
pub use trajectory::{Trajectory, TrajectoryBuilder};

/// Identifier of a trajectory inside a moving-object dataset.
///
/// The MST index stores one entry per trajectory *segment*; the id ties the
/// segments of an object together across index nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrajectoryId(pub u64);

impl std::fmt::Display for TrajectoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Result alias used throughout the trajectory crate.
pub type Result<T> = std::result::Result<T, TrajectoryError>;
