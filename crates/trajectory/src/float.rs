//! Floating-point comparison policy for the whole workspace.
//!
//! Library code never writes `==` / `!=` against floats directly — the
//! static-analysis gate (`cargo run -p xtask -- check`, rule R4) rejects
//! it. The two legitimate needs are named here instead, so every call site
//! states *which* kind of comparison it means:
//!
//! * [`approx_eq`] — value comparison under the workspace tolerance, for
//!   geometric/metric quantities accumulated through rounding arithmetic;
//! * [`exactly_zero`] — bit-exact zero tests, for division guards and
//!   "can't get any smaller" early exits where a tolerance would be wrong
//!   (a denominator of `1e-30` is small but perfectly divisible; a distance
//!   of `1e-30` must not terminate a search that could still reach `0`).
//!
//! This module is the R4 allowlist: it is the only non-test code permitted
//! to compare floats exactly.

/// Workspace-wide relative/absolute tolerance for metric comparisons.
///
/// Matches the slack used by the structural validator and the property
/// suites: large enough to absorb double-rounding in the DISSIM integrals,
/// far below any physically meaningful distance in the datasets.
pub const TOLERANCE: f64 = 1e-9;

/// True when `a` and `b` agree within [`TOLERANCE`], scaled by magnitude.
///
/// Uses the mixed absolute/relative form `|a - b| <= TOLERANCE * (1 +
/// max(|a|, |b|))`, so values near zero are compared absolutely and large
/// values relatively.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOLERANCE * (1.0 + a.abs().max(b.abs()))
}

/// True when `x` is exactly `+0.0` or `-0.0`.
///
/// This is a deliberate bit-exact test for division guards (any nonzero
/// divisor is usable) and for early exits on quantities that are bounded
/// below by zero (a squared distance of exactly `0` cannot improve).
#[inline]
pub fn exactly_zero(x: f64) -> bool {
    x == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absorbs_tolerance_scale_noise() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(0.0, 1e-10));
        assert!(!approx_eq(0.0, 1e-6));
        // Relative at large magnitude: 1e9 +- 0.1 is within 1e-9 relative.
        assert!(approx_eq(1.0e9, 1.0e9 + 0.1));
        assert!(!approx_eq(1.0e9, 1.0e9 + 10.0));
    }

    #[test]
    fn exactly_zero_is_bit_exact() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f64::MIN_POSITIVE));
        assert!(!exactly_zero(1e-300));
        assert!(!exactly_zero(f64::NAN));
    }
}
