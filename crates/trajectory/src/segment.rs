use crate::{Mbb, Point, Result, SamplePoint, TimeInterval, TrajectoryError};

/// A moving point between two consecutive trajectory samples.
///
/// The object is assumed to move linearly (constant velocity) from
/// `start` to `end`; this is the standard linear-interpolation model of
/// moving-object databases and the model the ICDE'07 paper's kinematics
/// (Section 3) are derived under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    start: SamplePoint,
    end: SamplePoint,
}

impl Segment {
    /// Creates a segment, requiring `start.t < end.t` and finite samples.
    pub fn new(start: SamplePoint, end: SamplePoint) -> Result<Self> {
        if !start.is_finite() {
            return Err(TrajectoryError::NonFinite { index: 0 });
        }
        if !end.is_finite() {
            return Err(TrajectoryError::NonFinite { index: 1 });
        }
        if start.t >= end.t {
            return Err(TrajectoryError::NonMonotonicTime {
                index: 1,
                prev: start.t,
                next: end.t,
            });
        }
        Ok(Segment { start, end })
    }

    /// The sample at which the segment begins.
    #[inline]
    pub const fn start(&self) -> SamplePoint {
        self.start
    }

    /// The sample at which the segment ends.
    #[inline]
    pub const fn end(&self) -> SamplePoint {
        self.end
    }

    /// The temporal extent `[start.t, end.t]`.
    #[inline]
    pub fn time(&self) -> TimeInterval {
        // invariant: Segment::new rejects end.t <= start.t and non-finite
        TimeInterval::new(self.start.t, self.end.t).expect("segment construction validated times")
    }

    /// Duration of the segment.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end.t - self.start.t
    }

    /// The (constant) velocity vector of the moving point.
    #[inline]
    pub fn velocity(&self) -> (f64, f64) {
        let dt = self.duration();
        (
            (self.end.x - self.start.x) / dt,
            (self.end.y - self.start.y) / dt,
        )
    }

    /// The (constant) speed of the moving point.
    #[inline]
    pub fn speed(&self) -> f64 {
        let (vx, vy) = self.velocity();
        (vx * vx + vy * vy).sqrt()
    }

    /// Spatial length travelled over the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.start.position().distance(&self.end.position())
    }

    /// Position of the moving point at time `t` (linear interpolation).
    ///
    /// Returns an error when `t` is outside the segment's temporal extent.
    pub fn position_at(&self, t: f64) -> Result<Point> {
        if t < self.start.t || t > self.end.t {
            return Err(TrajectoryError::OutOfRange {
                t,
                valid: (self.start.t, self.end.t),
            });
        }
        Ok(self.position_at_unchecked(t))
    }

    /// Position at time `t` without the range check; `t` outside the segment
    /// extrapolates linearly. Callers inside this workspace use it only after
    /// clipping.
    #[inline]
    pub fn position_at_unchecked(&self, t: f64) -> Point {
        let f = (t - self.start.t) / (self.end.t - self.start.t);
        Point::new(
            self.start.x + f * (self.end.x - self.start.x),
            self.start.y + f * (self.end.y - self.start.y),
        )
    }

    /// The sample point at time `t` (position + timestamp).
    pub fn sample_at(&self, t: f64) -> Result<SamplePoint> {
        let p = self.position_at(t)?;
        Ok(SamplePoint::new(t, p.x, p.y))
    }

    /// Restricts the segment to `interval`, interpolating new endpoints.
    ///
    /// Returns `None` when the overlap is empty *or* a single instant (a
    /// zero-duration segment is not a valid [`Segment`]).
    pub fn clip(&self, interval: &TimeInterval) -> Option<Segment> {
        let overlap = self.time().intersect(interval)?;
        if overlap.is_instant() {
            return None;
        }
        let s = if overlap.start() == self.start.t {
            self.start
        } else {
            let p = self.position_at_unchecked(overlap.start());
            SamplePoint::new(overlap.start(), p.x, p.y)
        };
        let e = if overlap.end() == self.end.t {
            self.end
        } else {
            let p = self.position_at_unchecked(overlap.end());
            SamplePoint::new(overlap.end(), p.x, p.y)
        };
        Some(Segment { start: s, end: e })
    }

    /// The 3D minimum bounding box of the segment.
    pub fn mbb(&self) -> Mbb {
        Mbb::new(
            self.start.x.min(self.end.x),
            self.start.y.min(self.end.y),
            self.start.t,
            self.start.x.max(self.end.x),
            self.start.y.max(self.end.y),
            self.end.t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, x0: f64, y0: f64, t1: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(SamplePoint::new(t0, x0, y0), SamplePoint::new(t1, x1, y1)).unwrap()
    }

    #[test]
    fn rejects_zero_or_negative_duration() {
        let p = SamplePoint::new(1.0, 0.0, 0.0);
        let q = SamplePoint::new(1.0, 1.0, 1.0);
        assert!(Segment::new(p, q).is_err());
        let r = SamplePoint::new(0.5, 1.0, 1.0);
        assert!(Segment::new(p, r).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        let p = SamplePoint::new(0.0, f64::NAN, 0.0);
        let q = SamplePoint::new(1.0, 1.0, 1.0);
        assert!(Segment::new(p, q).is_err());
    }

    #[test]
    fn interpolation_midpoint() {
        let s = seg(0.0, 0.0, 0.0, 2.0, 4.0, -2.0);
        let m = s.position_at(1.0).unwrap();
        assert_eq!(m, Point::new(2.0, -1.0));
        assert_eq!(s.position_at(0.0).unwrap(), Point::new(0.0, 0.0));
        assert_eq!(s.position_at(2.0).unwrap(), Point::new(4.0, -2.0));
        assert!(s.position_at(2.5).is_err());
    }

    #[test]
    fn velocity_speed_length() {
        let s = seg(0.0, 0.0, 0.0, 2.0, 6.0, 8.0);
        assert_eq!(s.velocity(), (3.0, 4.0));
        assert_eq!(s.speed(), 5.0);
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.duration(), 2.0);
    }

    #[test]
    fn clip_inside_and_outside() {
        let s = seg(0.0, 0.0, 0.0, 10.0, 10.0, 0.0);
        let c = s
            .clip(&TimeInterval::new(2.0, 4.0).unwrap())
            .expect("overlap exists");
        assert_eq!(c.start(), SamplePoint::new(2.0, 2.0, 0.0));
        assert_eq!(c.end(), SamplePoint::new(4.0, 4.0, 0.0));
        // Disjoint interval.
        assert!(s.clip(&TimeInterval::new(11.0, 12.0).unwrap()).is_none());
        // Instant overlap yields no segment.
        assert!(s.clip(&TimeInterval::new(10.0, 12.0).unwrap()).is_none());
        // Covering interval returns the segment unchanged.
        let full = s.clip(&TimeInterval::new(-5.0, 15.0).unwrap()).unwrap();
        assert_eq!(full, s);
    }

    #[test]
    fn clip_preserves_exact_endpoints() {
        // Clipping at existing endpoints must not perturb them (BFMST's
        // completeness check relies on pieces tiling exactly).
        let s = seg(0.0, 0.3, 0.7, 1.0, 0.9, 0.1);
        let c = s.clip(&TimeInterval::new(0.0, 1.0).unwrap()).unwrap();
        assert_eq!(c.start(), s.start());
        assert_eq!(c.end(), s.end());
    }

    #[test]
    fn mbb_covers_segment() {
        let s = seg(1.0, 5.0, -1.0, 3.0, 2.0, 4.0);
        let b = s.mbb();
        assert_eq!(b, Mbb::new(2.0, -1.0, 1.0, 5.0, 4.0, 3.0));
    }
}
