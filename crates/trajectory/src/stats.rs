use crate::{Point, Result, SamplePoint, Trajectory};

/// Descriptive statistics of a trajectory, used by the baselines (the
/// LCSS/EDR matching threshold `epsilon` is derived from coordinate standard
/// deviations, following Chen et al.) and by the data generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryStats {
    /// Number of sample points.
    pub num_points: usize,
    /// Mean of the x coordinates.
    pub mean_x: f64,
    /// Mean of the y coordinates.
    pub mean_y: f64,
    /// Population standard deviation of the x coordinates.
    pub std_x: f64,
    /// Population standard deviation of the y coordinates.
    pub std_y: f64,
    /// Total spatial length of the polyline.
    pub spatial_length: f64,
    /// Duration of the validity period.
    pub duration: f64,
    /// Maximum instantaneous speed.
    pub max_speed: f64,
    /// Mean sampling period (duration / number of segments).
    pub mean_sampling_period: f64,
}

impl TrajectoryStats {
    /// Computes statistics over a trajectory's samples.
    pub fn of(t: &Trajectory) -> Self {
        let n = t.num_points() as f64;
        let (mut sx, mut sy) = (0.0, 0.0);
        for p in t.points() {
            sx += p.x;
            sy += p.y;
        }
        let (mean_x, mean_y) = (sx / n, sy / n);
        let (mut vx, mut vy) = (0.0, 0.0);
        for p in t.points() {
            vx += (p.x - mean_x) * (p.x - mean_x);
            vy += (p.y - mean_y) * (p.y - mean_y);
        }
        TrajectoryStats {
            num_points: t.num_points(),
            mean_x,
            mean_y,
            std_x: (vx / n).sqrt(),
            std_y: (vy / n).sqrt(),
            spatial_length: t.spatial_length(),
            duration: t.duration(),
            max_speed: t.max_speed(),
            mean_sampling_period: t.duration() / t.num_segments() as f64,
        }
    }

    /// The larger of the two coordinate standard deviations.
    pub fn max_std(&self) -> f64 {
        self.std_x.max(self.std_y)
    }

    /// The spatial centroid of the samples.
    pub fn centroid(&self) -> Point {
        Point::new(self.mean_x, self.mean_y)
    }
}

/// Normalizes a trajectory to zero mean and unit variance per spatial
/// coordinate (timestamps unchanged), as prescribed for the LCSS/EDR quality
/// comparison in the paper (following Chen et al., SIGMOD'05).
///
/// Coordinates with zero variance are only translated.
pub fn normalize(t: &Trajectory) -> Result<Trajectory> {
    let s = TrajectoryStats::of(t);
    let kx = if s.std_x > 0.0 { 1.0 / s.std_x } else { 1.0 };
    let ky = if s.std_y > 0.0 { 1.0 / s.std_y } else { 1.0 };
    Trajectory::new(
        t.points()
            .iter()
            .map(|p| SamplePoint::new(p.t, (p.x - s.mean_x) * kx, (p.y - s.mean_y) * ky))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_square_path() {
        let t = Trajectory::from_txy(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 1.0, 1.0),
            (3.0, 0.0, 1.0),
        ])
        .unwrap();
        let s = TrajectoryStats::of(&t);
        assert_eq!(s.num_points, 4);
        assert_eq!(s.mean_x, 0.5);
        assert_eq!(s.mean_y, 0.5);
        assert_eq!(s.std_x, 0.5);
        assert_eq!(s.std_y, 0.5);
        assert_eq!(s.spatial_length, 3.0);
        assert_eq!(s.duration, 3.0);
        assert_eq!(s.max_speed, 1.0);
        assert_eq!(s.mean_sampling_period, 1.0);
        assert_eq!(s.max_std(), 0.5);
        assert_eq!(s.centroid(), Point::new(0.5, 0.5));
    }

    #[test]
    fn normalize_produces_zero_mean_unit_std() {
        let t = Trajectory::from_txy(&[
            (0.0, 10.0, -5.0),
            (1.0, 14.0, -5.0),
            (2.0, 18.0, -1.0),
            (3.0, 22.0, 3.0),
        ])
        .unwrap();
        let n = normalize(&t).unwrap();
        let s = TrajectoryStats::of(&n);
        assert!(s.mean_x.abs() < 1e-12);
        assert!(s.mean_y.abs() < 1e-12);
        assert!((s.std_x - 1.0).abs() < 1e-12);
        assert!((s.std_y - 1.0).abs() < 1e-12);
        // Timestamps are untouched.
        assert_eq!(n.points()[2].t, 2.0);
    }

    #[test]
    fn normalize_handles_degenerate_axis() {
        // Constant y: std_y = 0 must not produce NaN.
        let t = Trajectory::from_txy(&[(0.0, 0.0, 7.0), (1.0, 2.0, 7.0), (2.0, 4.0, 7.0)]).unwrap();
        let n = normalize(&t).unwrap();
        for p in n.points() {
            assert!(p.is_finite());
            assert_eq!(p.y, 0.0);
        }
    }
}
