use crate::{Point, SamplePoint, TimeInterval};

/// An axis-aligned 2D rectangle (the spatial footprint of an index node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum x.
    pub x_min: f64,
    /// Minimum y.
    pub y_min: f64,
    /// Maximum x.
    pub x_max: f64,
    /// Maximum y.
    pub y_max: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    pub fn new(x_min: f64, y_min: f64, x_max: f64, y_max: f64) -> Self {
        debug_assert!(x_min <= x_max && y_min <= y_max);
        Rect {
            x_min,
            y_min,
            x_max,
            y_max,
        }
    }

    /// The degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// True when the point lies inside the closed rectangle.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.x_min <= p.x && p.x <= self.x_max && self.y_min <= p.y && p.y <= self.y_max
    }

    /// Classic MINDIST between a static point and the rectangle: 0 when the
    /// point is inside, otherwise the distance to the nearest face.
    pub fn min_distance(&self, p: &Point) -> f64 {
        let dx = (self.x_min - p.x).max(0.0).max(p.x - self.x_max);
        let dy = (self.y_min - p.y).max(0.0).max(p.y - self.y_max);
        (dx * dx + dy * dy).sqrt()
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x_min: self.x_min.min(other.x_min),
            y_min: self.y_min.min(other.y_min),
            x_max: self.x_max.max(other.x_max),
            y_max: self.y_max.max(other.y_max),
        }
    }

    /// Rectangle width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }

    /// Rectangle height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y_max - self.y_min
    }
}

/// A 3D (x, y, t) minimum bounding box — the unit of space the R-tree-like
/// structures reason about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbb {
    /// Minimum x.
    pub x_min: f64,
    /// Minimum y.
    pub y_min: f64,
    /// Minimum t.
    pub t_min: f64,
    /// Maximum x.
    pub x_max: f64,
    /// Maximum y.
    pub y_max: f64,
    /// Maximum t.
    pub t_max: f64,
}

impl Mbb {
    /// Creates a box from min/max corners.
    pub fn new(x_min: f64, y_min: f64, t_min: f64, x_max: f64, y_max: f64, t_max: f64) -> Self {
        debug_assert!(x_min <= x_max && y_min <= y_max && t_min <= t_max);
        Mbb {
            x_min,
            y_min,
            t_min,
            x_max,
            y_max,
            t_max,
        }
    }

    /// The "empty" box that is the identity of [`Mbb::union`]: every
    /// coordinate range is reversed infinite, so the union with any real box
    /// yields that box.
    pub fn empty() -> Self {
        Mbb {
            x_min: f64::INFINITY,
            y_min: f64::INFINITY,
            t_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            y_max: f64::NEG_INFINITY,
            t_max: f64::NEG_INFINITY,
        }
    }

    /// True for the [`Mbb::empty`] sentinel.
    pub fn is_empty(&self) -> bool {
        self.x_min > self.x_max
    }

    /// The box covering a single spatiotemporal sample.
    pub fn from_sample(p: &SamplePoint) -> Self {
        Mbb::new(p.x, p.y, p.t, p.x, p.y, p.t)
    }

    /// Smallest box covering both inputs.
    pub fn union(&self, other: &Mbb) -> Mbb {
        Mbb {
            x_min: self.x_min.min(other.x_min),
            y_min: self.y_min.min(other.y_min),
            t_min: self.t_min.min(other.t_min),
            x_max: self.x_max.max(other.x_max),
            y_max: self.y_max.max(other.y_max),
            t_max: self.t_max.max(other.t_max),
        }
    }

    /// Volume of the box (x-extent × y-extent × t-extent).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.x_max - self.x_min) * (self.y_max - self.y_min) * (self.t_max - self.t_min)
        }
    }

    /// Half the surface "margin" of the box: sum of its extents. Used as a
    /// split tie-breaker.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.x_max - self.x_min) + (self.y_max - self.y_min) + (self.t_max - self.t_min)
        }
    }

    /// Volume increase needed to absorb `other`.
    pub fn enlargement(&self, other: &Mbb) -> f64 {
        if self.is_empty() {
            return other.volume();
        }
        self.union(other).volume() - self.volume()
    }

    /// Overlap volume of two boxes (0 when disjoint).
    pub fn overlap_volume(&self, other: &Mbb) -> f64 {
        let dx = (self.x_max.min(other.x_max) - self.x_min.max(other.x_min)).max(0.0);
        let dy = (self.y_max.min(other.y_max) - self.y_min.max(other.y_min)).max(0.0);
        let dt = (self.t_max.min(other.t_max) - self.t_min.max(other.t_min)).max(0.0);
        dx * dy * dt
    }

    /// True when the boxes intersect (closed boxes, faces touching counts).
    pub fn intersects(&self, other: &Mbb) -> bool {
        self.x_min <= other.x_max
            && other.x_min <= self.x_max
            && self.y_min <= other.y_max
            && other.y_min <= self.y_max
            && self.t_min <= other.t_max
            && other.t_min <= self.t_max
    }

    /// The spatial footprint of the box.
    pub fn rect(&self) -> Rect {
        Rect::new(self.x_min, self.y_min, self.x_max, self.y_max)
    }

    /// The temporal extent of the box.
    pub fn time(&self) -> TimeInterval {
        TimeInterval::new(self.t_min, self.t_max)
            // invariant: Mbb construction rejects t_min > t_max and NaN
            .expect("a non-empty Mbb always has a valid time interval")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_min_distance() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        // Inside.
        assert_eq!(r.min_distance(&Point::new(1.0, 1.0)), 0.0);
        // Beyond a face.
        assert_eq!(r.min_distance(&Point::new(3.0, 1.0)), 1.0);
        // Beyond a corner.
        assert!((r.min_distance(&Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
        // On the boundary.
        assert_eq!(r.min_distance(&Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn rect_union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn empty_mbb_is_union_identity() {
        let e = Mbb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let b = Mbb::new(0.0, 1.0, 2.0, 3.0, 4.0, 5.0);
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
    }

    #[test]
    fn volume_and_enlargement() {
        let a = Mbb::new(0.0, 0.0, 0.0, 2.0, 2.0, 2.0);
        assert_eq!(a.volume(), 8.0);
        let b = Mbb::new(0.0, 0.0, 0.0, 4.0, 2.0, 2.0);
        assert_eq!(a.enlargement(&b), 8.0);
        // Enlargement is zero for contained boxes.
        let inner = Mbb::new(0.5, 0.5, 0.5, 1.0, 1.0, 1.0);
        assert_eq!(a.enlargement(&inner), 0.0);
    }

    #[test]
    fn overlap_volume_cases() {
        let a = Mbb::new(0.0, 0.0, 0.0, 2.0, 2.0, 2.0);
        let b = Mbb::new(1.0, 1.0, 1.0, 3.0, 3.0, 3.0);
        assert_eq!(a.overlap_volume(&b), 1.0);
        let c = Mbb::new(5.0, 5.0, 5.0, 6.0, 6.0, 6.0);
        assert_eq!(a.overlap_volume(&c), 0.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = Mbb::new(0.0, 0.0, 0.0, 1.0, 1.0, 1.0);
        let b = Mbb::new(1.0, 0.0, 0.0, 2.0, 1.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_volume(&b), 0.0);
    }

    #[test]
    fn rect_and_time_projections() {
        let b = Mbb::new(0.0, 1.0, 2.0, 3.0, 4.0, 5.0);
        assert_eq!(b.rect(), Rect::new(0.0, 1.0, 3.0, 4.0));
        assert_eq!(b.time().start(), 2.0);
        assert_eq!(b.time().end(), 5.0);
    }
}
