/// A 2D spatial position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point (avoids the square root
    /// when only comparisons are needed).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// A timestamped 2D position: one sample of a moving object's trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Timestamp of the sample.
    pub t: f64,
    /// X coordinate at time `t`.
    pub x: f64,
    /// Y coordinate at time `t`.
    pub y: f64,
}

impl SamplePoint {
    /// Creates a sample point.
    #[inline]
    pub const fn new(t: f64, x: f64, y: f64) -> Self {
        SamplePoint { t, x, y }
    }

    /// The spatial part of the sample.
    #[inline]
    pub const fn position(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// True when timestamp and coordinates are all finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.t.is_finite() && self.x.is_finite() && self.y.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn sample_point_position_drops_time() {
        let s = SamplePoint::new(10.0, 1.0, 2.0);
        assert_eq!(s.position(), Point::new(1.0, 2.0));
    }

    #[test]
    fn finiteness_checks() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!SamplePoint::new(f64::INFINITY, 0.0, 0.0).is_finite());
        assert!(SamplePoint::new(0.0, 0.0, 0.0).is_finite());
    }
}
