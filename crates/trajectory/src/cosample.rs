//! Co-temporal alignment of two trajectories.
//!
//! DISSIM integrates the distance between two trajectories over a period
//! during which both are valid. Because the trajectories may be sampled at
//! *different* timestamps (the motivating example of the paper's Figure 1),
//! the integration domain is first split at the union of both sample sets;
//! inside each resulting piece both objects move linearly, so the distance
//! is a single trinomial `sqrt(a t^2 + b t + c)`.

use crate::{Result, Segment, TimeInterval, Trajectory, TrajectoryError};

/// A pair of co-temporal segments: both span exactly the same time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoSegment {
    /// Piece of the first trajectory.
    pub first: Segment,
    /// Piece of the second trajectory.
    pub second: Segment,
}

impl CoSegment {
    /// The shared temporal extent of the pair.
    pub fn time(&self) -> TimeInterval {
        self.first.time()
    }
}

/// Splits `period` at the union of the two trajectories' sample timestamps
/// and returns the aligned segment pairs.
///
/// Both trajectories must cover `period`; the period must have positive
/// duration.
pub fn co_segments(
    a: &Trajectory,
    b: &Trajectory,
    period: &TimeInterval,
) -> Result<Vec<CoSegment>> {
    let cuts = merged_timestamps(a, b, period)?;
    let mut out = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        let iv = TimeInterval::new(w[0], w[1])?;
        let sa = a
            .segment(a.segment_index_at(iv.start())?)
            .clip(&iv)
            // invariant: cuts are the merged sample timestamps, so no cut
            // interval straddles a sample of either trajectory
            .expect("cut interval lies inside one segment");
        let sb = b
            .segment(b.segment_index_at(iv.start())?)
            .clip(&iv)
            // invariant: same merged-timestamp argument as for `sa` above
            .expect("cut interval lies inside one segment");
        out.push(CoSegment {
            first: sa,
            second: sb,
        });
    }
    Ok(out)
}

/// The sorted, deduplicated union of both trajectories' sample timestamps
/// restricted to `period`, with the period endpoints always included.
///
/// The result has at least two entries and consecutive entries are strictly
/// increasing, so it directly defines the integration pieces.
pub fn merged_timestamps(
    a: &Trajectory,
    b: &Trajectory,
    period: &TimeInterval,
) -> Result<Vec<f64>> {
    for t in [a, b] {
        if !t.covers(period) {
            return Err(TrajectoryError::PeriodNotCovered {
                period: (period.start(), period.end()),
                valid: (t.start_time(), t.end_time()),
            });
        }
    }
    if period.is_instant() {
        return Err(TrajectoryError::InvalidInterval {
            start: period.start(),
            end: period.end(),
        });
    }
    let mut cuts = Vec::with_capacity(a.num_points() + b.num_points() + 2);
    cuts.push(period.start());
    let mut ia = a.points().iter().map(|p| p.t).peekable();
    let mut ib = b.points().iter().map(|p| p.t).peekable();
    // Merge the two sorted timestamp streams.
    loop {
        let next = match (ia.peek(), ib.peek()) {
            (Some(&ta), Some(&tb)) => {
                if ta <= tb {
                    ia.next();
                    if ta == tb {
                        ib.next();
                    }
                    ta
                } else {
                    ib.next();
                    tb
                }
            }
            (Some(&ta), None) => {
                ia.next();
                ta
            }
            (None, Some(&tb)) => {
                ib.next();
                tb
            }
            (None, None) => break,
        };
        if next > period.start() && next < period.end() {
            // invariant: `cuts` starts with `period.start()` pushed above
            if *cuts.last().expect("seeded with period start") != next {
                cuts.push(next);
            }
        } else if next >= period.end() {
            break;
        }
    }
    cuts.push(period.end());
    Ok(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(samples: &[(f64, f64)]) -> Trajectory {
        // 1D motion along x for readability.
        Trajectory::new(
            samples
                .iter()
                .map(|&(t, x)| crate::SamplePoint::new(t, x, 0.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn merges_distinct_sampling_rates() {
        // One trajectory sampled 4 times, the other 7 times (the paper's
        // Figure 1 situation, scaled down).
        let a = line(&[(0.0, 0.0), (3.0, 3.0), (6.0, 6.0), (9.0, 9.0)]);
        let b = line(&[
            (0.0, 1.0),
            (1.5, 2.0),
            (3.0, 3.5),
            (4.5, 5.0),
            (6.0, 6.5),
            (7.5, 8.0),
            (9.0, 9.5),
        ]);
        let period = TimeInterval::new(0.0, 9.0).unwrap();
        let cuts = merged_timestamps(&a, &b, &period).unwrap();
        assert_eq!(cuts, vec![0.0, 1.5, 3.0, 4.5, 6.0, 7.5, 9.0]);
        let pairs = co_segments(&a, &b, &period).unwrap();
        assert_eq!(pairs.len(), 6);
        // Pieces tile the period exactly and pairs are aligned.
        let mut t = period.start();
        for p in &pairs {
            assert_eq!(p.first.time().start(), t);
            assert_eq!(p.first.time(), p.second.time());
            t = p.first.time().end();
        }
        assert_eq!(t, period.end());
    }

    #[test]
    fn restricts_to_subperiod() {
        let a = line(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = line(&[(0.0, 5.0), (2.0, 4.0), (8.0, 1.0), (10.0, 0.0)]);
        let period = TimeInterval::new(1.0, 9.0).unwrap();
        let cuts = merged_timestamps(&a, &b, &period).unwrap();
        assert_eq!(cuts, vec![1.0, 2.0, 8.0, 9.0]);
        let pairs = co_segments(&a, &b, &period).unwrap();
        assert_eq!(pairs.len(), 3);
        // Interpolated positions at the cut points are consistent with the
        // source trajectories.
        let first = pairs[0];
        assert_eq!(first.first.start().x, 1.0);
        assert!((first.second.start().x - 4.5).abs() < 1e-12);
    }

    #[test]
    fn identical_timestamps_do_not_duplicate_cuts() {
        let a = line(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let b = line(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        let period = TimeInterval::new(0.0, 2.0).unwrap();
        let cuts = merged_timestamps(&a, &b, &period).unwrap();
        assert_eq!(cuts, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn errors_when_period_not_covered() {
        let a = line(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = line(&[(1.0, 0.0), (5.0, 5.0)]);
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        assert!(matches!(
            co_segments(&a, &b, &period),
            Err(TrajectoryError::PeriodNotCovered { .. })
        ));
    }

    #[test]
    fn errors_on_instant_period() {
        let a = line(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = line(&[(0.0, 1.0), (5.0, 6.0)]);
        let period = TimeInterval::new(2.0, 2.0).unwrap();
        assert!(co_segments(&a, &b, &period).is_err());
    }
}
