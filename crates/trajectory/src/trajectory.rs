use crate::{Mbb, Point, Result, SamplePoint, Segment, TimeInterval, TrajectoryError};

/// A validated moving-object trajectory: at least two samples with strictly
/// increasing, finite timestamps and finite coordinates.
///
/// Between consecutive samples the object is assumed to move linearly
/// (see [`Segment`]). A trajectory is *valid* over `[first.t, last.t]`; its
/// position is undefined outside that period.
///
/// ```
/// use mst_trajectory::{Trajectory, TimeInterval, Point};
///
/// let t = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)])?;
/// assert_eq!(t.position_at(2.5)?, Point::new(2.5, 0.0));
/// let clipped = t.clip(&TimeInterval::new(2.0, 6.0)?)?;
/// assert_eq!(clipped.duration(), 4.0);
/// # Ok::<(), mst_trajectory::TrajectoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    points: Vec<SamplePoint>,
}

impl Trajectory {
    /// Builds a trajectory from samples, validating ordering and finiteness.
    pub fn new(points: Vec<SamplePoint>) -> Result<Self> {
        if points.len() < 2 {
            return Err(TrajectoryError::TooFewPoints { got: points.len() });
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(TrajectoryError::NonFinite { index: i });
            }
            if i > 0 && points[i - 1].t >= p.t {
                return Err(TrajectoryError::NonMonotonicTime {
                    index: i,
                    prev: points[i - 1].t,
                    next: p.t,
                });
            }
        }
        Ok(Trajectory { points })
    }

    /// Convenience constructor from `(t, x, y)` triples.
    pub fn from_txy(samples: &[(f64, f64, f64)]) -> Result<Self> {
        Trajectory::new(
            samples
                .iter()
                .map(|&(t, x, y)| SamplePoint::new(t, x, y))
                .collect(),
        )
    }

    /// The samples of the trajectory, in temporal order.
    #[inline]
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Number of samples.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of line segments (`num_points - 1`).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.points.len() - 1
    }

    /// First timestamp.
    #[inline]
    pub fn start_time(&self) -> f64 {
        self.points[0].t
    }

    /// Last timestamp.
    #[inline]
    pub fn end_time(&self) -> f64 {
        self.points[self.points.len() - 1].t
    }

    /// The validity period `[first.t, last.t]`.
    pub fn time(&self) -> TimeInterval {
        TimeInterval::new(self.start_time(), self.end_time())
            // invariant: Trajectory::new enforces strictly increasing times
            .expect("construction validated ordering")
    }

    /// True when the trajectory is valid over the whole of `period`.
    pub fn covers(&self, period: &TimeInterval) -> bool {
        self.time().contains_interval(period)
    }

    /// The `i`-th line segment.
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(self.points[i], self.points[i + 1])
            // invariant: Trajectory::new enforces ordered, finite samples
            .expect("construction validated ordering and finiteness")
    }

    /// Iterator over the trajectory's line segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points
            .windows(2)
            // invariant: Trajectory::new enforces ordered, finite samples
            .map(|w| Segment::new(w[0], w[1]).expect("validated at construction"))
    }

    /// Index of the segment whose temporal extent contains `t`
    /// (the last segment for `t == end_time()`).
    ///
    /// Returns an error when `t` is outside the validity period.
    pub fn segment_index_at(&self, t: f64) -> Result<usize> {
        if t < self.start_time() || t > self.end_time() {
            return Err(TrajectoryError::OutOfRange {
                t,
                valid: (self.start_time(), self.end_time()),
            });
        }
        // partition_point returns the first index whose timestamp is > t,
        // i.e. the end sample of the containing segment (clamped).
        let upper = self.points.partition_point(|p| p.t <= t);
        Ok(if upper >= self.points.len() {
            self.points.len() - 2
        } else {
            upper - 1
        })
    }

    /// Position at time `t` via linear interpolation.
    pub fn position_at(&self, t: f64) -> Result<Point> {
        let i = self.segment_index_at(t)?;
        Ok(self.segment(i).position_at_unchecked(t))
    }

    /// Sample (position + timestamp) at time `t`.
    pub fn sample_at(&self, t: f64) -> Result<SamplePoint> {
        let p = self.position_at(t)?;
        Ok(SamplePoint::new(t, p.x, p.y))
    }

    /// Restricts the trajectory to `period`, interpolating boundary samples.
    ///
    /// The trajectory must cover the period, and the period must have
    /// positive duration (a single instant cannot form a trajectory).
    pub fn clip(&self, period: &TimeInterval) -> Result<Trajectory> {
        if !self.covers(period) {
            return Err(TrajectoryError::PeriodNotCovered {
                period: (period.start(), period.end()),
                valid: (self.start_time(), self.end_time()),
            });
        }
        if period.is_instant() {
            return Err(TrajectoryError::InvalidInterval {
                start: period.start(),
                end: period.end(),
            });
        }
        let mut out = Vec::new();
        out.push(self.sample_at(period.start())?);
        for p in &self.points {
            if p.t > period.start() && p.t < period.end() {
                out.push(*p);
            }
        }
        out.push(self.sample_at(period.end())?);
        Trajectory::new(out)
    }

    /// Re-samples the trajectory at the given strictly increasing timestamps
    /// (all inside the validity period), interpolating positions linearly.
    pub fn resample(&self, timestamps: &[f64]) -> Result<Trajectory> {
        let mut out = Vec::with_capacity(timestamps.len());
        for &t in timestamps {
            out.push(self.sample_at(t)?);
        }
        Trajectory::new(out)
    }

    /// Total spatial length of the polyline.
    pub fn spatial_length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Duration of the validity period.
    pub fn duration(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// Maximum instantaneous speed over all segments.
    pub fn max_speed(&self) -> f64 {
        self.segments().map(|s| s.speed()).fold(0.0, f64::max)
    }

    /// The 3D bounding box of the whole trajectory.
    pub fn mbb(&self) -> Mbb {
        self.points
            .iter()
            .fold(Mbb::empty(), |acc, p| acc.union(&Mbb::from_sample(p)))
    }

    /// The same movement started `dt` time units later (negative `dt`
    /// shifts into the past). Used by time-relaxed similarity queries.
    pub fn shift_time(&self, dt: f64) -> Result<Trajectory> {
        Trajectory::new(
            self.points
                .iter()
                .map(|p| SamplePoint::new(p.t + dt, p.x, p.y))
                .collect(),
        )
    }
}

/// Incremental constructor for [`Trajectory`], validating as samples arrive.
///
/// Useful for generators and file readers that produce samples one at a time
/// and want early, indexed errors.
#[derive(Debug, Default)]
pub struct TrajectoryBuilder {
    points: Vec<SamplePoint>,
}

impl TrajectoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TrajectoryBuilder { points: Vec::new() }
    }

    /// Creates a builder with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        TrajectoryBuilder {
            points: Vec::with_capacity(n),
        }
    }

    /// Appends a sample, validating finiteness and temporal ordering.
    pub fn push(&mut self, p: SamplePoint) -> Result<&mut Self> {
        if !p.is_finite() {
            return Err(TrajectoryError::NonFinite {
                index: self.points.len(),
            });
        }
        if let Some(last) = self.points.last() {
            if last.t >= p.t {
                return Err(TrajectoryError::NonMonotonicTime {
                    index: self.points.len(),
                    prev: last.t,
                    next: p.t,
                });
            }
        }
        self.points.push(p);
        Ok(self)
    }

    /// Number of samples accumulated so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Finishes the trajectory (needs at least two samples).
    pub fn build(self) -> Result<Trajectory> {
        Trajectory::new(self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag() -> Trajectory {
        Trajectory::from_txy(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 1.0),
            (2.0, 2.0, 0.0),
            (4.0, 0.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            Trajectory::from_txy(&[(0.0, 0.0, 0.0)]),
            Err(TrajectoryError::TooFewPoints { got: 1 })
        ));
        assert!(matches!(
            Trajectory::from_txy(&[(0.0, 0.0, 0.0), (0.0, 1.0, 1.0)]),
            Err(TrajectoryError::NonMonotonicTime { index: 1, .. })
        ));
        assert!(matches!(
            Trajectory::from_txy(&[(0.0, 0.0, 0.0), (1.0, f64::NAN, 1.0)]),
            Err(TrajectoryError::NonFinite { index: 1 })
        ));
    }

    #[test]
    fn segment_lookup_covers_boundaries() {
        let t = zigzag();
        assert_eq!(t.segment_index_at(0.0).unwrap(), 0);
        assert_eq!(t.segment_index_at(0.5).unwrap(), 0);
        assert_eq!(t.segment_index_at(1.0).unwrap(), 1);
        assert_eq!(t.segment_index_at(3.9).unwrap(), 2);
        assert_eq!(t.segment_index_at(4.0).unwrap(), 2);
        assert!(t.segment_index_at(4.1).is_err());
        assert!(t.segment_index_at(-0.1).is_err());
    }

    #[test]
    fn interpolation_matches_samples_and_midpoints() {
        let t = zigzag();
        assert_eq!(t.position_at(1.0).unwrap(), Point::new(1.0, 1.0));
        assert_eq!(t.position_at(3.0).unwrap(), Point::new(1.0, 0.0));
        assert_eq!(t.position_at(0.5).unwrap(), Point::new(0.5, 0.5));
    }

    #[test]
    fn clip_produces_subtrajectory() {
        let t = zigzag();
        let c = t.clip(&TimeInterval::new(0.5, 3.0).unwrap()).unwrap();
        assert_eq!(c.num_points(), 4);
        assert_eq!(c.start_time(), 0.5);
        assert_eq!(c.end_time(), 3.0);
        assert_eq!(c.points()[1], SamplePoint::new(1.0, 1.0, 1.0));
        // Clipping to the full period is the identity.
        let full = t.clip(&t.time()).unwrap();
        assert_eq!(full, t);
    }

    #[test]
    fn clip_rejects_uncovered_and_instant_periods() {
        let t = zigzag();
        assert!(t.clip(&TimeInterval::new(-1.0, 2.0).unwrap()).is_err());
        assert!(t.clip(&TimeInterval::new(1.0, 1.0).unwrap()).is_err());
    }

    #[test]
    fn resample_interpolates() {
        let t = zigzag();
        let r = t.resample(&[0.0, 2.0, 4.0]).unwrap();
        assert_eq!(r.num_points(), 3);
        assert_eq!(r.points()[1], SamplePoint::new(2.0, 2.0, 0.0));
        assert!(t.resample(&[0.0, 5.0]).is_err());
    }

    #[test]
    fn length_duration_speed() {
        let t = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (1.0, 3.0, 4.0), (3.0, 3.0, 4.0)]).unwrap();
        assert_eq!(t.spatial_length(), 5.0);
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.max_speed(), 5.0);
    }

    #[test]
    fn mbb_covers_all_samples() {
        let t = zigzag();
        let b = t.mbb();
        assert_eq!(b, Mbb::new(0.0, 0.0, 0.0, 2.0, 1.0, 4.0));
    }

    #[test]
    fn builder_validates_incrementally() {
        let mut b = TrajectoryBuilder::new();
        b.push(SamplePoint::new(0.0, 0.0, 0.0)).unwrap();
        assert!(b.push(SamplePoint::new(0.0, 1.0, 1.0)).is_err());
        b.push(SamplePoint::new(1.0, 1.0, 1.0)).unwrap();
        assert_eq!(b.len(), 2);
        let t = b.build().unwrap();
        assert_eq!(t.num_points(), 2);
    }

    #[test]
    fn builder_needs_two_points() {
        let mut b = TrajectoryBuilder::new();
        b.push(SamplePoint::new(0.0, 0.0, 0.0)).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn covers_checks_containment() {
        let t = zigzag();
        assert!(t.covers(&TimeInterval::new(0.0, 4.0).unwrap()));
        assert!(t.covers(&TimeInterval::new(1.0, 2.0).unwrap()));
        assert!(!t.covers(&TimeInterval::new(0.0, 4.5).unwrap()));
    }
}
