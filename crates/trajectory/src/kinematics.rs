//! Kinematics of two linearly moving points.
//!
//! Over a common time interval where both objects move with constant
//! velocities, their Euclidean distance is `D(t) = sqrt(a t^2 + b t + c)`
//! with `a >= 0` and a non-negative discriminant condition `4ac - b^2 >= 0`
//! (distances are real). The ICDE'07 paper integrates `D(t)` per co-sampled
//! interval to obtain DISSIM (Definition 1), approximates the integral with
//! the trapezoid rule (Lemma 1), and bounds the approximation error via the
//! second derivative of `D`.
//!
//! All evaluations here use a *relative* time variable `tau = t - origin`
//! (with `origin` the interval start) to keep the trinomial coefficients
//! well-conditioned even when absolute timestamps are large.

use crate::{float, Result, Segment, TrajectoryError};

/// Relative tolerance used to decide degenerate cases (`a == 0`,
/// discriminant `== 0`).
const EPS: f64 = 1e-12;

/// The squared-distance trinomial between two linearly moving points:
/// `D(origin + tau) = sqrt(a*tau^2 + b*tau + c)`.
///
/// ```
/// use mst_trajectory::{Segment, SamplePoint};
/// use mst_trajectory::kinematics::DistanceTrinomial;
///
/// // Two objects crossing head-on: distance dips to zero at t = 1.
/// let p = Segment::new(SamplePoint::new(0.0, 0.0, 0.0), SamplePoint::new(2.0, 2.0, 0.0))?;
/// let q = Segment::new(SamplePoint::new(0.0, 2.0, 0.0), SamplePoint::new(2.0, 0.0, 0.0))?;
/// let d = DistanceTrinomial::between(&p, &q)?;
/// assert!((d.eval(0.0) - 2.0).abs() < 1e-12);
/// assert!(d.eval(1.0) < 1e-9);
/// // Exact integral (two unit triangles of height 2) vs the trapezoid rule:
/// assert!((d.integral_exact(0.0, 2.0) - 2.0).abs() < 1e-9);
/// let trap = d.integral_trapezoid(0.0, 2.0);
/// let err = d.trapezoid_error_bound(0.0, 2.0);
/// assert!(trap - err <= 2.0 && 2.0 <= trap);
/// # Ok::<(), mst_trajectory::TrajectoryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceTrinomial {
    /// Quadratic coefficient: squared norm of the relative velocity.
    a: f64,
    /// Linear coefficient: `2 * (relative position . relative velocity)`.
    b: f64,
    /// Constant coefficient: squared distance at `tau = 0`.
    c: f64,
    /// Absolute time corresponding to `tau = 0`.
    origin: f64,
}

impl DistanceTrinomial {
    /// Builds the trinomial for two segments that span the *same* time
    /// interval (co-sampled pieces produced by [`crate::cosample`]).
    pub fn between(p: &Segment, q: &Segment) -> Result<Self> {
        let pt = p.time();
        let qt = q.time();
        if pt.start() != qt.start() || pt.end() != qt.end() {
            return Err(TrajectoryError::MisalignedSegments {
                first: (pt.start(), pt.end()),
                second: (qt.start(), qt.end()),
            });
        }
        let origin = pt.start();
        let dx = p.start().x - q.start().x;
        let dy = p.start().y - q.start().y;
        let (pvx, pvy) = p.velocity();
        let (qvx, qvy) = q.velocity();
        let dvx = pvx - qvx;
        let dvy = pvy - qvy;
        let a = dvx * dvx + dvy * dvy;
        let b = 2.0 * (dx * dvx + dy * dvy);
        let c = dx * dx + dy * dy;
        Ok(DistanceTrinomial { a, b, c, origin })
    }

    /// Builds a trinomial directly from coefficients (relative to `origin`).
    /// Intended for tests and synthetic scenarios; coefficients must describe
    /// a real distance (`a >= 0`, `a*tau^2 + b*tau + c >= 0` on the domain of
    /// interest).
    pub fn from_coefficients(a: f64, b: f64, c: f64, origin: f64) -> Self {
        DistanceTrinomial { a, b, c, origin }
    }

    /// Quadratic coefficient `a` (squared relative speed).
    #[inline]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Linear coefficient `b`.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Constant coefficient `c` (squared distance at the origin).
    #[inline]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The discriminant-like quantity `4ac - b^2` (non-negative for real
    /// distance functions, clamped at zero against floating-point noise).
    #[inline]
    pub fn disc(&self) -> f64 {
        (4.0 * self.a * self.c - self.b * self.b).max(0.0)
    }

    /// Distance at absolute time `t`.
    #[inline]
    pub fn eval(&self, t: f64) -> f64 {
        let tau = t - self.origin;
        ((self.a * tau + self.b) * tau + self.c).max(0.0).sqrt()
    }

    /// Absolute time at which the distance is minimal (`-b / 2a`), or `None`
    /// when the relative velocity is (numerically) zero and the distance is
    /// constant.
    pub fn vertex_time(&self) -> Option<f64> {
        if self.is_constant() {
            None
        } else {
            Some(self.origin - self.b / (2.0 * self.a))
        }
    }

    /// True when the distance function is (numerically) constant: the paper
    /// notes `a = 0` implies `b = 0` — a zero relative velocity freezes the
    /// distance.
    #[inline]
    pub fn is_constant(&self) -> bool {
        // Scale-aware test: `a` has units of speed^2; compare against the
        // magnitude of the other coefficients to stay unit-safe.
        self.a <= EPS * (self.a + self.b.abs() + self.c + 1.0)
    }

    /// Exact definite integral of `D(t)` over `[u, v]` (absolute times),
    /// using the closed form of Meratnia & By quoted in the paper:
    ///
    /// `∫ D = (2at+b)/(4a) * D(t) + (4ac-b^2)/(8a^{3/2}) * asinh((2at+b)/sqrt(4ac-b^2))`
    ///
    /// with the two degenerate branches handled exactly:
    /// * `a = 0` (constant distance `sqrt(c)`);
    /// * `4ac - b^2 = 0` (the objects' paths cross: `D` is a piecewise-linear
    ///   "V", integrated in closed form around the vertex).
    pub fn integral_exact(&self, u: f64, v: f64) -> f64 {
        debug_assert!(u <= v);
        if u == v {
            return 0.0;
        }
        if self.is_constant() {
            return self.c.max(0.0).sqrt() * (v - u);
        }
        let a = self.a;
        let disc = 4.0 * a * self.c - self.b * self.b;
        let tu = u - self.origin;
        let tv = v - self.origin;
        // Relative discriminant threshold: disc has units of a*c, so compare
        // against that scale.
        let scale = (4.0 * a * self.c.abs()).max(self.b * self.b);
        if disc <= EPS * (scale + 1.0) {
            // D(tau) = sqrt(a) * |tau + b/(2a)|: integrate the absolute
            // linear function analytically.
            let h = self.b / (2.0 * a);
            let sa = a.sqrt();
            let anti = |tau: f64| {
                let s = tau + h;
                0.5 * sa * s * s.abs()
            };
            return anti(tv) - anti(tu);
        }
        let sd = disc.sqrt();
        let anti = |tau: f64| {
            let d = ((a * tau + self.b) * tau + self.c).max(0.0).sqrt();
            let w = 2.0 * a * tau + self.b;
            w / (4.0 * a) * d + disc / (8.0 * a * a.sqrt()) * (w / sd).asinh()
        };
        anti(tv) - anti(tu)
    }

    /// Trapezoid-rule approximation of the integral over `[u, v]`
    /// (Lemma 1): `(D(u) + D(v)) * (v - u) / 2`.
    #[inline]
    pub fn integral_trapezoid(&self, u: f64, v: f64) -> f64 {
        debug_assert!(u <= v);
        0.5 * (self.eval(u) + self.eval(v)) * (v - u)
    }

    /// Second derivative of `D` at absolute time `t`:
    /// `D''(t) = (4ac - b^2) / (4 (a t^2 + b t + c)^{3/2})`.
    ///
    /// `D` is convex (`D'' >= 0`) wherever it is defined, which is why the
    /// trapezoid rule *over*-estimates the integral.
    pub fn second_derivative(&self, t: f64) -> f64 {
        let tau = t - self.origin;
        let q = ((self.a * tau + self.b) * tau + self.c).max(0.0);
        if float::exactly_zero(q) {
            return f64::INFINITY;
        }
        self.disc() / (4.0 * q * q.sqrt())
    }

    /// Lemma 1 bound on the trapezoid error over `[u, v]`:
    /// `E <= (v-u)^3 / 12 * max D''`, where the maximum of `D''` is attained
    /// at the vertex `-b/2a` when it lies inside the interval, and at the
    /// interval endpoint closest to the vertex otherwise (the paper's three
    /// cases).
    ///
    /// When the Lemma 1 bound degenerates (the vertex distance approaches
    /// zero and `D''` blows up), the implementation falls back to the
    /// always-sound convexity bound `trapezoid - midpoint_rule`, which
    /// sandwiches the exact integral of any convex integrand.
    pub fn trapezoid_error_bound(&self, u: f64, v: f64) -> f64 {
        debug_assert!(u <= v);
        if u == v || self.is_constant() {
            return 0.0;
        }
        let h = v - u;
        let d2 = match self.vertex_time() {
            Some(tv) if tv >= u && tv <= v => self.second_derivative(tv),
            Some(tv) if tv > v => self.second_derivative(v),
            Some(_) => self.second_derivative(u),
            None => 0.0,
        };
        let lemma1 = h * h * h / 12.0 * d2;
        if lemma1.is_finite() {
            // The convexity sandwich is often tighter near the vertex; both
            // bounds are sound, so take the smaller.
            lemma1.min(self.convexity_error_bound(u, v))
        } else {
            self.convexity_error_bound(u, v)
        }
    }

    /// Minimum of `D` over the absolute-time interval `[u, v]`, together
    /// with the time at which it is attained: the trinomial's vertex when it
    /// falls inside the interval, otherwise the nearer endpoint. Used by
    /// nearest-neighbour queries (closest approach of two moving points).
    pub fn min_on(&self, u: f64, v: f64) -> (f64, f64) {
        debug_assert!(u <= v);
        let at = |t: f64| (self.eval(t), t);
        let (du, dv) = (at(u), at(v));
        let mut best = if du.0 <= dv.0 { du } else { dv };
        if let Some(tv) = self.vertex_time() {
            if tv > u && tv < v {
                let dm = at(tv);
                if dm.0 < best.0 {
                    best = dm;
                }
            }
        }
        best
    }

    /// The convexity sandwich bound: for convex `D`,
    /// `midpoint_rule <= exact <= trapezoid`, hence the trapezoid error is at
    /// most `trapezoid - midpoint_rule`. Always finite and sound.
    pub fn convexity_error_bound(&self, u: f64, v: f64) -> f64 {
        let trap = self.integral_trapezoid(u, v);
        let mid = self.eval(0.5 * (u + v)) * (v - u);
        (trap - mid).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplePoint;

    fn seg(t0: f64, x0: f64, y0: f64, t1: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(SamplePoint::new(t0, x0, y0), SamplePoint::new(t1, x1, y1)).unwrap()
    }

    /// Adaptive Simpson quadrature as an independent oracle for integrals.
    fn simpson<F: Fn(f64) -> f64 + Copy>(f: F, u: f64, v: f64, depth: u32) -> f64 {
        let m = 0.5 * (u + v);
        let s = |a: f64, b: f64| (b - a) / 6.0 * (f(a) + 4.0 * f(0.5 * (a + b)) + f(b));
        let whole = s(u, v);
        let halves = s(u, m) + s(m, v);
        if depth == 0 || (whole - halves).abs() < 1e-13 {
            halves
        } else {
            simpson(f, u, m, depth - 1) + simpson(f, m, v, depth - 1)
        }
    }

    #[test]
    fn rejects_misaligned_segments() {
        let p = seg(0.0, 0.0, 0.0, 1.0, 1.0, 0.0);
        let q = seg(0.0, 0.0, 1.0, 2.0, 1.0, 1.0);
        assert!(DistanceTrinomial::between(&p, &q).is_err());
    }

    #[test]
    fn constant_distance_parallel_motion() {
        // Two objects moving identically, offset by 3 vertically.
        let p = seg(5.0, 0.0, 0.0, 7.0, 2.0, 2.0);
        let q = seg(5.0, 0.0, 3.0, 7.0, 2.0, 5.0);
        let d = DistanceTrinomial::between(&p, &q).unwrap();
        assert!(d.is_constant());
        assert!((d.eval(5.0) - 3.0).abs() < 1e-12);
        assert!((d.eval(6.3) - 3.0).abs() < 1e-12);
        assert!((d.integral_exact(5.0, 7.0) - 6.0).abs() < 1e-12);
        assert_eq!(d.trapezoid_error_bound(5.0, 7.0), 0.0);
        assert!(d.vertex_time().is_none());
    }

    #[test]
    fn head_on_crossing_has_v_shaped_distance() {
        // P walks right, Q walks left along the same line; they meet at t=1.
        let p = seg(0.0, 0.0, 0.0, 2.0, 2.0, 0.0);
        let q = seg(0.0, 2.0, 0.0, 2.0, 0.0, 0.0);
        let d = DistanceTrinomial::between(&p, &q).unwrap();
        assert!((d.eval(0.0) - 2.0).abs() < 1e-12);
        assert!(d.eval(1.0).abs() < 1e-9);
        assert!((d.eval(2.0) - 2.0).abs() < 1e-12);
        assert_eq!(d.vertex_time(), Some(1.0));
        // Two triangles of base 1, height 2 -> area 2.
        assert!((d.integral_exact(0.0, 2.0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn exact_integral_matches_simpson_oracle() {
        let cases = [
            // Generic skew passing motion.
            (
                seg(0.0, 0.0, 0.0, 4.0, 4.0, 1.0),
                seg(0.0, 3.0, -2.0, 4.0, -1.0, 2.0),
            ),
            // Diverging motion.
            (
                seg(10.0, 1.0, 1.0, 12.0, 5.0, 1.0),
                seg(10.0, 1.0, 1.5, 12.0, -3.0, 2.0),
            ),
            // One object parked.
            (
                seg(-2.0, 0.0, 0.0, 3.0, 0.0, 0.0),
                seg(-2.0, 4.0, 4.0, 3.0, -4.0, -4.0),
            ),
        ];
        for (p, q) in cases {
            let d = DistanceTrinomial::between(&p, &q).unwrap();
            let (u, v) = (p.time().start(), p.time().end());
            let oracle = simpson(|t| d.eval(t), u, v, 30);
            let exact = d.integral_exact(u, v);
            assert!(
                (exact - oracle).abs() < 1e-8 * (1.0 + oracle.abs()),
                "exact={exact} oracle={oracle}"
            );
        }
    }

    #[test]
    fn trapezoid_overestimates_convex_distance() {
        let p = seg(0.0, 0.0, 0.0, 4.0, 4.0, 1.0);
        let q = seg(0.0, 3.0, -2.0, 4.0, -1.0, 2.0);
        let d = DistanceTrinomial::between(&p, &q).unwrap();
        let exact = d.integral_exact(0.0, 4.0);
        let trap = d.integral_trapezoid(0.0, 4.0);
        assert!(trap >= exact);
    }

    #[test]
    fn lemma1_bound_dominates_true_error() {
        // Sweep a family of motions; the bound must always cover the true
        // trapezoid error, in all three vertex-position cases of Lemma 1.
        let motions = [
            // Vertex inside the interval.
            (
                seg(0.0, 0.0, 0.0, 2.0, 2.0, 0.0),
                seg(0.0, 1.5, 1.0, 2.0, 0.5, 1.0),
            ),
            // Vertex to the right of the interval (approaching only).
            (
                seg(0.0, 0.0, 0.0, 1.0, 0.4, 0.0),
                seg(0.0, 5.0, 0.0, 1.0, 4.0, 0.0),
            ),
            // Vertex to the left of the interval (diverging only).
            (
                seg(0.0, 0.0, 0.0, 1.0, 1.0, 0.0),
                seg(0.0, -3.0, 0.0, 1.0, -5.0, 0.0),
            ),
        ];
        for (p, q) in motions {
            let d = DistanceTrinomial::between(&p, &q).unwrap();
            let (u, v) = (p.time().start(), p.time().end());
            let exact = d.integral_exact(u, v);
            let trap = d.integral_trapezoid(u, v);
            let bound = d.trapezoid_error_bound(u, v);
            let err = (trap - exact).abs();
            assert!(
                err <= bound + 1e-12,
                "err={err} bound={bound} for {:?}",
                (p, q)
            );
        }
    }

    #[test]
    fn error_bound_finite_even_at_touching_paths() {
        // Paths that touch (distance reaches exactly 0): the Lemma 1 bound
        // diverges, the convexity fallback must keep the bound finite & sound.
        let p = seg(0.0, 0.0, 0.0, 2.0, 2.0, 0.0);
        let q = seg(0.0, 2.0, 0.0, 2.0, 0.0, 0.0);
        let d = DistanceTrinomial::between(&p, &q).unwrap();
        let bound = d.trapezoid_error_bound(0.0, 2.0);
        assert!(bound.is_finite());
        let err = d.integral_trapezoid(0.0, 2.0) - d.integral_exact(0.0, 2.0);
        assert!(err.abs() <= bound + 1e-12);
    }

    #[test]
    fn integral_is_additive() {
        let p = seg(0.0, 0.0, 0.0, 4.0, 4.0, 1.0);
        let q = seg(0.0, 3.0, -2.0, 4.0, -1.0, 2.0);
        let d = DistanceTrinomial::between(&p, &q).unwrap();
        let whole = d.integral_exact(0.0, 4.0);
        let parts = d.integral_exact(0.0, 1.3) + d.integral_exact(1.3, 4.0);
        assert!((whole - parts).abs() < 1e-10);
    }

    #[test]
    fn large_absolute_timestamps_stay_well_conditioned() {
        // Same geometry as `exact_integral_matches_simpson_oracle` case 1 but
        // shifted 1e9 seconds into the future: the relative-time origin must
        // keep results identical.
        let shift = 1.0e9;
        let p1 = seg(0.0, 0.0, 0.0, 4.0, 4.0, 1.0);
        let q1 = seg(0.0, 3.0, -2.0, 4.0, -1.0, 2.0);
        let p2 = seg(shift, 0.0, 0.0, shift + 4.0, 4.0, 1.0);
        let q2 = seg(shift, 3.0, -2.0, shift + 4.0, -1.0, 2.0);
        let d1 = DistanceTrinomial::between(&p1, &q1).unwrap();
        let d2 = DistanceTrinomial::between(&p2, &q2).unwrap();
        let i1 = d1.integral_exact(0.0, 4.0);
        let i2 = d2.integral_exact(shift, shift + 4.0);
        assert!((i1 - i2).abs() < 1e-9 * (1.0 + i1.abs()));
    }
}
