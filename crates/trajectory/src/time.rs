use crate::{Result, TrajectoryError};

/// A closed time interval `[start, end]` with `start <= end`.
///
/// Intervals are the temporal currency of MST search: query periods, node
/// temporal extents, covered/uncovered portions of candidate trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeInterval {
    start: f64,
    end: f64,
}

impl TimeInterval {
    /// Creates an interval, validating `start <= end` and finiteness.
    pub fn new(start: f64, end: f64) -> Result<Self> {
        if !start.is_finite() || !end.is_finite() || start > end {
            return Err(TrajectoryError::InvalidInterval { start, end });
        }
        Ok(TimeInterval { start, end })
    }

    /// Interval start.
    #[inline]
    pub const fn start(&self) -> f64 {
        self.start
    }

    /// Interval end.
    #[inline]
    pub const fn end(&self) -> f64 {
        self.end
    }

    /// Interval length `end - start`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// True when the interval has zero duration.
    #[inline]
    pub fn is_instant(&self) -> bool {
        self.start == self.end
    }

    /// True when `t` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        self.start <= t && t <= self.end
    }

    /// True when `other` is entirely inside this interval.
    #[inline]
    pub fn contains_interval(&self, other: &TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// The overlap of two closed intervals, or `None` when they are disjoint.
    ///
    /// Touching intervals (`a.end == b.start`) overlap in a single instant;
    /// callers that need a positive-duration overlap should additionally
    /// check [`TimeInterval::is_instant`].
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }

    /// True when the two closed intervals share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Clamps `t` into the interval.
    #[inline]
    pub fn clamp(&self, t: f64) -> f64 {
        t.clamp(self.start, self.end)
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        self.start + 0.5 * (self.end - self.start)
    }
}

impl std::fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn rejects_reversed_and_non_finite() {
        assert!(TimeInterval::new(2.0, 1.0).is_err());
        assert!(TimeInterval::new(f64::NAN, 1.0).is_err());
        assert!(TimeInterval::new(0.0, f64::INFINITY).is_err());
        assert!(TimeInterval::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn duration_and_contains() {
        let i = iv(2.0, 5.0);
        assert_eq!(i.duration(), 3.0);
        assert!(i.contains(2.0));
        assert!(i.contains(5.0));
        assert!(!i.contains(5.0001));
        assert!(i.contains_interval(&iv(3.0, 4.0)));
        assert!(!i.contains_interval(&iv(3.0, 6.0)));
    }

    #[test]
    fn intersect_cases() {
        assert_eq!(iv(0.0, 2.0).intersect(&iv(1.0, 3.0)), Some(iv(1.0, 2.0)));
        // Touching intervals overlap at exactly one instant.
        let touch = iv(0.0, 2.0).intersect(&iv(2.0, 3.0)).unwrap();
        assert!(touch.is_instant());
        assert_eq!(touch.start(), 2.0);
        assert_eq!(iv(0.0, 1.0).intersect(&iv(2.0, 3.0)), None);
        // Containment.
        assert_eq!(iv(0.0, 10.0).intersect(&iv(2.0, 3.0)), Some(iv(2.0, 3.0)));
    }

    #[test]
    fn overlaps_is_symmetric() {
        assert!(iv(0.0, 2.0).overlaps(&iv(1.0, 3.0)));
        assert!(iv(1.0, 3.0).overlaps(&iv(0.0, 2.0)));
        assert!(iv(0.0, 2.0).overlaps(&iv(2.0, 3.0)));
        assert!(!iv(0.0, 2.0).overlaps(&iv(2.5, 3.0)));
    }

    #[test]
    fn clamp_and_midpoint() {
        let i = iv(1.0, 3.0);
        assert_eq!(i.clamp(0.0), 1.0);
        assert_eq!(i.clamp(10.0), 3.0);
        assert_eq!(i.clamp(2.5), 2.5);
        assert_eq!(i.midpoint(), 2.0);
    }
}
