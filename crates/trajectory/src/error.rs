use std::fmt;

/// Errors produced when constructing or manipulating trajectories.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryError {
    /// A trajectory needs at least two sample points to define movement.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
    },
    /// Timestamps must be strictly increasing.
    NonMonotonicTime {
        /// Index of the offending sample (its timestamp is `<=` the previous one).
        index: usize,
        /// Timestamp of the previous sample.
        prev: f64,
        /// Timestamp of the offending sample.
        next: f64,
    },
    /// A coordinate or timestamp was NaN or infinite.
    NonFinite {
        /// Index of the offending sample.
        index: usize,
    },
    /// A query time fell outside the trajectory's validity period.
    OutOfRange {
        /// The requested time.
        t: f64,
        /// The trajectory's validity period, as `(start, end)`.
        valid: (f64, f64),
    },
    /// An interval with `start > end` (or non-finite endpoints) was supplied.
    InvalidInterval {
        /// Interval start.
        start: f64,
        /// Interval end.
        end: f64,
    },
    /// Two segments were expected to span the same time interval but did not.
    MisalignedSegments {
        /// Interval of the first segment.
        first: (f64, f64),
        /// Interval of the second segment.
        second: (f64, f64),
    },
    /// An operation required both trajectories to cover a time period and one
    /// did not.
    PeriodNotCovered {
        /// The period that had to be covered.
        period: (f64, f64),
        /// The validity of the trajectory that failed to cover it.
        valid: (f64, f64),
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::TooFewPoints { got } => {
                write!(f, "trajectory needs at least 2 sample points, got {got}")
            }
            TrajectoryError::NonMonotonicTime { index, prev, next } => write!(
                f,
                "timestamps must be strictly increasing: point {index} has t={next} after t={prev}"
            ),
            TrajectoryError::NonFinite { index } => {
                write!(f, "sample point {index} has a NaN or infinite component")
            }
            TrajectoryError::OutOfRange { t, valid } => write!(
                f,
                "time {t} outside trajectory validity [{}, {}]",
                valid.0, valid.1
            ),
            TrajectoryError::InvalidInterval { start, end } => {
                write!(f, "invalid time interval [{start}, {end}]")
            }
            TrajectoryError::MisalignedSegments { first, second } => write!(
                f,
                "segments span different periods: [{}, {}] vs [{}, {}]",
                first.0, first.1, second.0, second.1
            ),
            TrajectoryError::PeriodNotCovered { period, valid } => write!(
                f,
                "trajectory valid on [{}, {}] does not cover the period [{}, {}]",
                valid.0, valid.1, period.0, period.1
            ),
        }
    }
}

impl std::error::Error for TrajectoryError {}
