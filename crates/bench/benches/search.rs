//! End-to-end query benchmarks: BFMST on both index structures vs the
//! linear scan, across k and query length — the criterion-level companions
//! of Figure 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mst_bench::datasets::{build_rtree, build_tbtree, DatasetSpec};
use mst_bench::workload::sample_queries;
use mst_search::{bfmst_search, scan_kmst, Integration, MstConfig};

fn bench_search(c: &mut Criterion) {
    let store = DatasetSpec::Synthetic {
        objects: 50,
        samples: 400,
        seed: 17,
    }
    .build_store();
    let mut rtree = build_rtree(&store);
    let mut tbtree = build_tbtree(&store);
    let queries = sample_queries(&store, 8, 0.05, 3);

    let mut g = c.benchmark_group("kmst_query");
    g.sample_size(20);
    for k in [1usize, 10] {
        g.bench_with_input(BenchmarkId::new("bfmst_rtree", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(
                    bfmst_search(&mut rtree, &store, &q.query, &q.period, &MstConfig::k(k))
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("bfmst_tbtree", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(
                    bfmst_search(&mut tbtree, &store, &q.query, &q.period, &MstConfig::k(k))
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("scan", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(scan_kmst(&store, &q.query, &q.period, k, Integration::Exact).unwrap())
            })
        });
    }
    g.finish();

    // Query-length scaling (the Q2 effect) on the R-tree.
    let mut g = c.benchmark_group("kmst_query_length");
    g.sample_size(10);
    for length in [0.05f64, 0.25, 1.0] {
        let qs = sample_queries(&store, 4, length, 11);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", length * 100.0)),
            &qs,
            |b, qs| {
                let mut i = 0;
                b.iter(|| {
                    let q = &qs[i % qs.len()];
                    i += 1;
                    black_box(
                        bfmst_search(&mut rtree, &store, &q.query, &q.period, &MstConfig::k(1))
                            .unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
