//! Pairwise similarity-measure cost: DISSIM (exact and trapezoid) vs the
//! quadratic-DP baselines (LCSS, EDR, DTW) and their interpolation-improved
//! variants, on Trucks-like trajectories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mst_baselines::{epsilon_for, Dtw, Edr, Lcss};
use mst_datagen::{td_tr_fraction, TrucksConfig};
use mst_search::dissim::{dissim_between, Integration};

fn bench_measures(c: &mut Criterion) {
    let fleet = TrucksConfig::small(4, 21).generate();
    let data = &fleet[0];
    let other = &fleet[1];
    let query = td_tr_fraction(data, 0.01);
    let eps = epsilon_for(fleet.iter());
    let period = data.time();

    let lcss = Lcss::new(eps);
    let edr = Edr::new(eps);
    let dtw = Dtw::new();

    let mut g = c.benchmark_group("pairwise_measure");
    g.sample_size(20);
    let n = query.num_points().min(other.num_points());
    g.bench_with_input(BenchmarkId::new("dissim_exact", n), &n, |b, _| {
        b.iter(|| black_box(dissim_between(&query, other, &period, Integration::Exact).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("dissim_trapezoid", n), &n, |b, _| {
        b.iter(|| {
            black_box(dissim_between(&query, other, &period, Integration::Trapezoid).unwrap())
        })
    });
    g.bench_with_input(BenchmarkId::new("lcss", n), &n, |b, _| {
        b.iter(|| black_box(lcss.distance(&query, other)))
    });
    g.bench_with_input(BenchmarkId::new("lcss_improved", n), &n, |b, _| {
        b.iter(|| black_box(lcss.distance_improved(&query, other)))
    });
    g.bench_with_input(BenchmarkId::new("edr", n), &n, |b, _| {
        b.iter(|| black_box(edr.distance(&query, other)))
    });
    g.bench_with_input(BenchmarkId::new("edr_improved", n), &n, |b, _| {
        b.iter(|| black_box(edr.distance_improved(&query, other)))
    });
    g.bench_with_input(BenchmarkId::new("dtw", n), &n, |b, _| {
        b.iter(|| black_box(dtw.distance(&query, other)))
    });
    g.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
