//! Index construction throughput: 3D R-tree (choose-subtree + quadratic
//! split) vs TB-tree (tip append + right-most path), under the MOD arrival
//! order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mst_bench::datasets::{temporal_entries, DatasetSpec};
use mst_index::{LeafEntry, Rtree3D, TbTree, TrajectoryIndex};

fn entries_for(objects: usize) -> Vec<LeafEntry> {
    let store = DatasetSpec::Synthetic {
        objects,
        samples: 200,
        seed: 17,
    }
    .build_store();
    temporal_entries(&store)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    for objects in [20usize, 60] {
        let entries = entries_for(objects);
        g.throughput(Throughput::Elements(entries.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("rtree3d", entries.len()),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let mut idx = Rtree3D::new();
                    for e in entries {
                        idx.insert(*e).unwrap();
                    }
                    black_box(idx.num_pages())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("tbtree", entries.len()),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let mut idx = TbTree::new();
                    for e in entries {
                        idx.insert(*e).unwrap();
                    }
                    black_box(idx.num_pages())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
