//! Microbenchmarks of the MINDIST kernels: moving point vs rectangle, and
//! query trajectory vs node MBB — the per-node cost of the best-first
//! traversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mst_index::mindist::{segment_rect_mindist, trajectory_mbb_mindist};
use mst_trajectory::{Mbb, Rect, SamplePoint, Segment, TimeInterval, Trajectory};

fn bench_segment_rect(c: &mut Criterion) {
    let seg = Segment::new(
        SamplePoint::new(0.0, -4.0, 6.0),
        SamplePoint::new(3.0, 7.0, -5.0),
    )
    .unwrap();
    let rect = Rect::new(0.0, 0.0, 2.0, 2.0);
    c.bench_function("segment_rect_mindist", |b| {
        b.iter(|| black_box(segment_rect_mindist(black_box(&seg), black_box(&rect))))
    });
}

fn bench_trajectory_mbb(c: &mut Criterion) {
    let mut g = c.benchmark_group("trajectory_mbb_mindist");
    for n in [100usize, 1000] {
        let q = Trajectory::new(
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    SamplePoint::new(t, (t * 0.1).sin() * 5.0, (t * 0.05).cos() * 5.0)
                })
                .collect(),
        )
        .unwrap();
        let period = TimeInterval::new(0.0, (n - 1) as f64).unwrap();
        // A node box overlapping 10% of the period: the common case during
        // traversal.
        let mid = (n - 1) as f64 / 2.0;
        let mbb = Mbb::new(1.0, 1.0, mid, 3.0, 3.0, mid + (n as f64) * 0.1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(trajectory_mbb_mindist(&q, &mbb, &period)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_segment_rect, bench_trajectory_mbb
);
criterion_main!(benches);
