//! Microbenchmarks of the DISSIM kernels: the closed-form integral vs the
//! trapezoid approximation (the cost gap that motivates Lemma 1), the error
//! bound, and full-trajectory DISSIM at several sampling densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mst_search::dissim::{dissim_between, Integration};
use mst_search::scan_kmst;
use mst_search::TrajectoryStore;
use mst_trajectory::kinematics::DistanceTrinomial;
use mst_trajectory::{SamplePoint, Segment, TimeInterval, Trajectory};

fn seg(t0: f64, x0: f64, y0: f64, t1: f64, x1: f64, y1: f64) -> Segment {
    Segment::new(SamplePoint::new(t0, x0, y0), SamplePoint::new(t1, x1, y1)).unwrap()
}

fn zigzag(n: usize, phase: f64) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| {
                let t = i as f64;
                SamplePoint::new(t, t * 0.3 + phase, ((t + phase) * 0.7).sin() * 3.0)
            })
            .collect(),
    )
    .unwrap()
}

fn bench_trinomial(c: &mut Criterion) {
    let p = seg(0.0, 0.0, 0.0, 4.0, 4.0, 1.0);
    let q = seg(0.0, 3.0, -2.0, 4.0, -1.0, 2.0);
    let tri = DistanceTrinomial::between(&p, &q).unwrap();

    let mut g = c.benchmark_group("trinomial");
    g.bench_function("integral_exact", |b| {
        b.iter(|| black_box(tri.integral_exact(black_box(0.0), black_box(4.0))))
    });
    g.bench_function("integral_trapezoid", |b| {
        b.iter(|| black_box(tri.integral_trapezoid(black_box(0.0), black_box(4.0))))
    });
    g.bench_function("trapezoid_error_bound", |b| {
        b.iter(|| black_box(tri.trapezoid_error_bound(black_box(0.0), black_box(4.0))))
    });
    g.bench_function("construct_from_segments", |b| {
        b.iter(|| black_box(DistanceTrinomial::between(black_box(&p), black_box(&q)).unwrap()))
    });
    g.finish();
}

fn bench_trajectory_dissim(c: &mut Criterion) {
    let mut g = c.benchmark_group("dissim_full_trajectory");
    for n in [50usize, 200, 1000] {
        let a = zigzag(n, 0.0);
        let b = zigzag(n, 1.3);
        let period = TimeInterval::new(0.0, (n - 1) as f64).unwrap();
        g.bench_with_input(BenchmarkId::new("exact", n), &n, |bench, _| {
            bench.iter(|| black_box(dissim_between(&a, &b, &period, Integration::Exact).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("trapezoid", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(dissim_between(&a, &b, &period, Integration::Trapezoid).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    // Linear scan over a modest store: the no-index baseline cost.
    let store = TrajectoryStore::from_trajectories(
        (0..50).map(|i| zigzag(200, f64::from(i) * 0.37)).collect(),
    );
    let q = zigzag(200, 0.11);
    let period = TimeInterval::new(0.0, 199.0).unwrap();
    c.bench_function("scan_kmst_50x200", |b| {
        b.iter(|| black_box(scan_kmst(&store, &q, &period, 5, Integration::Trapezoid).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trinomial, bench_trajectory_dissim, bench_scan
);
criterion_main!(benches);
