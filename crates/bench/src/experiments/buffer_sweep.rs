//! Buffer-size ablation: how much of the BFMST query cost is buffer
//! behaviour. The paper fixes the buffer at 10% of the index (max 1000
//! pages); this sweep varies the fraction and reports physical I/O per
//! query — the quantity a disk-resident deployment pays for.

use mst_index::TrajectoryIndex;
use mst_search::{bfmst_search, MstConfig, NoShare, NoopSink};

use crate::datasets::{build_rtree, DatasetSpec};
use crate::metrics::{time_ms, Summary, Table};
use crate::workload::sample_queries;

/// Configuration of the buffer sweep.
#[derive(Debug, Clone)]
pub struct BufferSweepConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Queries per buffer setting.
    pub queries: usize,
    /// Query length fraction.
    pub length: f64,
    /// Buffer capacities as fractions of the index page count (0 rows pin
    /// the minimum buffer of 1 page).
    pub fractions: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BufferSweepConfig {
    fn default() -> Self {
        BufferSweepConfig {
            objects: 250,
            samples: 2000,
            queries: 50,
            length: 0.25,
            fractions: vec![0.0, 0.01, 0.05, 0.10, 0.25, 0.50],
            seed: 7,
        }
    }
}

/// Runs the same query set under each buffer capacity and reports physical
/// misses and wall-clock per query (3D R-tree).
pub fn buffer_sweep(cfg: &BufferSweepConfig) -> Table {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let mut rtree = build_rtree(&store);
    let queries = sample_queries(&store, cfg.queries, cfg.length, cfg.seed ^ 0xB0);
    let total_pages = rtree.num_pages();

    let mut table = Table::new(
        "Buffer sweep: physical I/O vs buffer capacity (3D R-tree)",
        &[
            "Buffer (pages)",
            "Buffer (% of index)",
            "Time (ms)",
            "Misses / query",
            "Hit rate",
        ],
    );
    for &fraction in &cfg.fractions {
        let capacity = ((total_pages as f64 * fraction) as usize).max(1);
        rtree
            .set_buffer_capacity(Some(capacity))
            .expect("capacity change");
        // Warm-up pass so every setting starts from its own steady state.
        rtree.clear_buffer().expect("buffer clear");
        for q in queries.iter().take(3) {
            bfmst_search(
                &mut rtree,
                &store,
                &q.query,
                &q.period,
                &MstConfig::k(1),
                &NoShare,
                &mut NoopSink,
            )
            .expect("warm-up query");
        }
        rtree.reset_stats();
        let mut times = Vec::with_capacity(queries.len());
        for q in &queries {
            let (ms, _) = time_ms(|| {
                bfmst_search(
                    &mut rtree,
                    &store,
                    &q.query,
                    &q.period,
                    &MstConfig::k(1),
                    &NoShare,
                    &mut NoopSink,
                )
                .expect("sweep query")
            });
            times.push(ms);
        }
        let stats = rtree.stats();
        let touches = stats.buffer.hits + stats.buffer.misses;
        table.push_row(vec![
            capacity.to_string(),
            format!("{:.1}", 100.0 * capacity as f64 / total_pages as f64),
            format!("{:.2}", Summary::of(&times).mean),
            format!("{:.1}", stats.buffer.misses as f64 / queries.len() as f64),
            format!("{:.3}", stats.buffer.hits as f64 / touches.max(1) as f64),
        ]);
    }
    // Restore the paper's auto rule.
    rtree.set_buffer_capacity(None).expect("capacity restore");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_buffers_never_miss_more() {
        let cfg = BufferSweepConfig {
            objects: 20,
            samples: 300,
            queries: 10,
            length: 0.3,
            fractions: vec![0.0, 0.1, 1.0],
            seed: 5,
        };
        let t = buffer_sweep(&cfg);
        assert_eq!(t.len(), 3);
        let misses: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(
            misses.windows(2).all(|w| w[0] >= w[1] - 1e-9),
            "misses not monotone: {misses:?}"
        );
        // A buffer covering the whole index should approach zero misses in
        // steady state.
        assert!(misses[2] < misses[0]);
    }
}
