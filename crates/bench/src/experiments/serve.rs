//! Loopback serving throughput: start an in-process `mst-serve` instance,
//! hammer it from concurrent client threads over real TCP, and measure
//! end-to-end queries/second and latency percentiles — then deliberately
//! saturate a one-slot admission queue to prove backpressure is typed,
//! counted, and non-blocking.
//!
//! Emits `BENCH_serve.json`. [`ServeReport::validate`] is the CI tripwire
//! with four teeth:
//!
//! * **cross-client determinism** — every client issues the same query
//!   stream and must read byte-identical answers;
//! * **accounting** — the server's own counters must agree with what the
//!   clients observed (completions, zero degradation, zero malformed
//!   frames) and the merged work profile must show real index work;
//! * **typed backpressure** — the overload probe must surface
//!   `Overloaded` responses, and exactly as many as the server says it
//!   rejected;
//! * **no hangs** — every probe request must come back as either an
//!   answer or a rejection; admitted + rejected must equal issued.

use std::net::SocketAddr;
use std::sync::Arc;

use mst_exec::ShardedDatabase;
use mst_search::{MstMatch, QueryOptions};
use mst_serve::{Response, ServeClient, Server, ServerConfig, StatsReport};
use mst_trajectory::{TimeInterval, Trajectory};

use crate::datasets::DatasetSpec;
use crate::metrics::time_ms;
use crate::workload::sample_queries;

/// Configuration of the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Database shards behind the server.
    pub shards: usize,
    /// Executor worker threads of the steady-phase server.
    pub workers: usize,
    /// Admission-queue bound of the steady-phase server.
    pub queue: usize,
    /// Concurrent client connections in the steady phase.
    pub clients: usize,
    /// Requests each steady-phase client issues.
    pub requests_per_client: usize,
    /// Requests each overload-probe client fires at the one-slot server.
    pub probe_requests: usize,
    /// Results per query.
    pub k: usize,
    /// Query length fraction.
    pub length: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            objects: 200,
            samples: 600,
            shards: 4,
            workers: 4,
            queue: 16,
            clients: 8,
            requests_per_client: 24,
            probe_requests: 40,
            k: 4,
            length: 0.15,
            seed: 11,
        }
    }
}

impl ServeConfig {
    /// The CI configuration: small fleet, 4 clients — enough to prove
    /// liveness of every moving part in a release build within seconds.
    pub fn smoke() -> Self {
        ServeConfig {
            objects: 48,
            samples: 180,
            shards: 2,
            workers: 2,
            queue: 8,
            clients: 4,
            requests_per_client: 8,
            probe_requests: 25,
            k: 3,
            length: 0.2,
            seed: 11,
        }
    }
}

/// The steady-phase measurement.
#[derive(Debug, Clone)]
pub struct SteadyPhase {
    /// Requests issued across all clients (excluding overload retries).
    pub requests: usize,
    /// Whole-phase wall time, milliseconds (connect to last response).
    pub wall_ms: f64,
    /// End-to-end queries per second over the phase.
    pub qps: f64,
    /// Median end-to-end latency, milliseconds (client-observed).
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// `Overloaded` responses absorbed by client retry.
    pub overloaded_retries: u64,
    /// The server's own account of the phase, read over the wire.
    pub stats: StatsReport,
    /// Per-client answer fingerprints, for cross-client determinism.
    fingerprints: Vec<Vec<u64>>,
}

/// The overload-probe measurement: a one-worker, one-slot server under
/// deliberate saturation, with no client retry.
#[derive(Debug, Clone)]
pub struct OverloadPhase {
    /// Requests fired across all probe clients.
    pub requests: usize,
    /// Requests answered with a k-MST result.
    pub completed: u64,
    /// Requests answered with a typed `Overloaded` rejection.
    pub overloaded: u64,
    /// The server's own rejection counter, read over the wire.
    pub server_rejections: u64,
}

/// The whole benchmark: steady throughput plus the overload probe.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The configuration that produced the report.
    pub config: ServeConfig,
    /// Available hardware parallelism at run time (1 when unknown).
    pub host_parallelism: usize,
    /// The steady phase.
    pub steady: SteadyPhase,
    /// The overload probe.
    pub overload: OverloadPhase,
}

/// FNV-1a over an answer's ids and dissimilarity bits, matching the
/// executor benchmark's fingerprint so "equal answers" means the same
/// thing in both reports.
fn fingerprint(matches: &[MstMatch]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for m in matches {
        eat(m.traj.0);
        eat(m.dissim.to_bits());
    }
    h
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    sorted_ms[(sorted_ms.len() - 1) * pct / 100]
}

/// One steady-phase client: the full query stream, in order, retrying
/// (and counting) `Overloaded` rejections so every query completes.
fn steady_client(
    addr: SocketAddr,
    queries: &[(Trajectory, TimeInterval)],
    k: usize,
) -> (Vec<f64>, Vec<u64>, u64) {
    let mut client = match ServeClient::connect(addr) {
        Ok(client) => client,
        Err(e) => panic!("steady client failed to connect: {e}"),
    };
    let mut latencies = Vec::with_capacity(queries.len());
    let mut fingerprints = Vec::with_capacity(queries.len());
    let mut overloaded = 0u64;
    for (query, period) in queries {
        let options = QueryOptions::new().k(k).during(period);
        loop {
            let (ms, response) = time_ms(|| client.kmst(query, options));
            match response {
                Ok(Response::Overloaded { .. }) => overloaded += 1,
                Ok(Response::Kmst { degraded, matches }) => {
                    assert!(!degraded, "no deadline is configured, nothing may degrade");
                    latencies.push(ms);
                    fingerprints.push(fingerprint(&matches));
                    break;
                }
                Ok(other) => panic!("unexpected response to a k-MST request: {other:?}"),
                Err(e) => panic!("steady client transport failure: {e}"),
            }
        }
    }
    (latencies, fingerprints, overloaded)
}

/// One overload-probe client: fire-and-record, no retry.
fn probe_client(
    addr: SocketAddr,
    query: &Trajectory,
    period: &TimeInterval,
    shots: usize,
) -> (u64, u64) {
    let mut client = match ServeClient::connect(addr) {
        Ok(client) => client,
        Err(e) => panic!("probe client failed to connect: {e}"),
    };
    let options = QueryOptions::new().k(8).during(period);
    let (mut completed, mut overloaded) = (0u64, 0u64);
    for _ in 0..shots {
        match client.kmst(query, options) {
            Ok(Response::Kmst { .. }) => completed += 1,
            Ok(Response::Overloaded { .. }) => overloaded += 1,
            Ok(other) => panic!("unexpected response to a probe request: {other:?}"),
            Err(e) => panic!("probe client transport failure: {e}"),
        }
    }
    (completed, overloaded)
}

/// Runs both phases against in-process servers on ephemeral loopback
/// ports.
pub fn serve_bench(cfg: &ServeConfig) -> ServeReport {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let specs = sample_queries(&store, cfg.requests_per_client, cfg.length, cfg.seed ^ 0xB5);
    let queries: Vec<(Trajectory, TimeInterval)> =
        specs.into_iter().map(|s| (s.query, s.period)).collect();
    let fleet: Vec<_> = store.iter().map(|(id, t)| (id, t.clone())).collect();
    let db = Arc::new(ShardedDatabase::with_rtree(cfg.shards, fleet).expect("shard build"));

    // Steady phase: a well-provisioned server, N clients, same stream each.
    let server = Server::start(
        ServerConfig::new()
            .workers(cfg.workers)
            .queue_capacity(cfg.queue),
        Arc::clone(&db),
    )
    .expect("steady server start");
    let addr = server.local_addr();
    let (wall_ms, outcomes) = time_ms(|| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let queries = queries.clone();
                let k = cfg.k;
                std::thread::spawn(move || steady_client(addr, &queries, k))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("steady client panicked"))
            .collect::<Vec<_>>()
    });
    let mut latencies: Vec<f64> = Vec::new();
    let mut fingerprints = Vec::new();
    let mut overloaded_retries = 0u64;
    for (lat, fps, over) in outcomes {
        latencies.extend(lat);
        fingerprints.push(fps);
        overloaded_retries += over;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let stats = match ServeClient::connect(addr) {
        Ok(mut client) => {
            let stats = client.stats().expect("stats request");
            assert!(client.shutdown().expect("shutdown request"));
            stats
        }
        Err(e) => panic!("stats client failed to connect: {e}"),
    };
    server.join();
    let requests = cfg.clients * cfg.requests_per_client;
    let steady = SteadyPhase {
        requests,
        wall_ms,
        qps: if wall_ms > 0.0 {
            requests as f64 / (wall_ms / 1000.0)
        } else {
            f64::INFINITY
        },
        p50_ms: percentile(&latencies, 50),
        p99_ms: percentile(&latencies, 99),
        overloaded_retries,
        stats,
        fingerprints,
    };
    eprintln!(
        "[serve] steady: {} clients x {} requests: {:.1} ms, {:.0} qps, p50 {:.2} ms, p99 {:.2} ms, {} overload retries",
        cfg.clients, cfg.requests_per_client, steady.wall_ms, steady.qps, steady.p50_ms,
        steady.p99_ms, steady.overloaded_retries,
    );

    // Overload probe: one worker, a one-slot queue, no retry — saturation
    // must surface as typed rejections, never as hangs.
    let probe_server = Server::start(
        ServerConfig::new().workers(1).queue_capacity(1),
        Arc::clone(&db),
    )
    .expect("probe server start");
    let probe_addr = probe_server.local_addr();
    let probe_query = queries[0].clone();
    let probe_outcomes: Vec<(u64, u64)> = {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let (query, period) = probe_query.clone();
                let shots = cfg.probe_requests;
                std::thread::spawn(move || probe_client(probe_addr, &query, &period, shots))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe client panicked"))
            .collect()
    };
    let server_rejections = match ServeClient::connect(probe_addr) {
        Ok(mut client) => {
            let stats = client.stats().expect("probe stats request");
            assert!(client.shutdown().expect("probe shutdown request"));
            stats.counters.overload_rejections
        }
        Err(e) => panic!("probe stats client failed to connect: {e}"),
    };
    probe_server.join();
    let overload = OverloadPhase {
        requests: cfg.clients * cfg.probe_requests,
        completed: probe_outcomes.iter().map(|o| o.0).sum(),
        overloaded: probe_outcomes.iter().map(|o| o.1).sum(),
        server_rejections,
    };
    eprintln!(
        "[serve] overload probe: {} fired, {} answered, {} rejected (server counted {})",
        overload.requests, overload.completed, overload.overloaded, overload.server_rejections,
    );

    ServeReport {
        config: cfg.clone(),
        host_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        steady,
        overload,
    }
}

impl ServeReport {
    /// Renders the report as a JSON document (`BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let s = &self.steady;
        let o = &self.overload;
        let sc = &s.stats.counters;
        let sp = &s.stats.profile;
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"serve\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"objects\":{},\"samples\":{},\"shards\":{},\"workers\":{},\
             \"queue\":{},\"clients\":{},\"requests_per_client\":{},\"probe_requests\":{},\
             \"k\":{},\"length\":{},\"seed\":{}}},\n",
            c.objects,
            c.samples,
            c.shards,
            c.workers,
            c.queue,
            c.clients,
            c.requests_per_client,
            c.probe_requests,
            c.k,
            c.length,
            c.seed,
        ));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "  \"steady\": {{\"requests\":{},\"wall_ms\":{:.3},\"qps\":{:.1},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"overloaded_retries\":{},\
             \"counters\":{{\"connections_accepted\":{},\"queries_admitted\":{},\
             \"queries_completed\":{},\"queries_degraded\":{},\"overload_rejections\":{},\
             \"malformed_frames\":{},\"invalid_queries\":{}}},\
             \"profile\":{{\"nodes_accessed\":{},\"piece_evals\":{}}}}},\n",
            s.requests,
            s.wall_ms,
            s.qps,
            s.p50_ms,
            s.p99_ms,
            s.overloaded_retries,
            sc.connections_accepted,
            sc.queries_admitted,
            sc.queries_completed,
            sc.queries_degraded,
            sc.overload_rejections,
            sc.malformed_frames,
            sc.invalid_queries,
            sp.nodes_accessed,
            sp.piece_evals,
        ));
        out.push_str(&format!(
            "  \"overload\": {{\"requests\":{},\"completed\":{},\"overloaded\":{},\
             \"server_rejections\":{}}}\n",
            o.requests, o.completed, o.overloaded, o.server_rejections,
        ));
        out.push_str("}\n");
        out
    }

    /// The CI tripwire (see the module docs). Returns the list of failures
    /// (empty = healthy).
    pub fn validate(&self) -> Vec<String> {
        let mut failures = Vec::new();
        let s = &self.steady;
        let c = &s.stats.counters;

        // Cross-client determinism: every client read identical answers.
        if let Some(reference) = s.fingerprints.first() {
            for (i, fps) in s.fingerprints.iter().enumerate().skip(1) {
                if fps != reference {
                    failures.push(format!(
                        "client {i}: answers differ from client 0 on the same \
                         query stream — serving nondeterminism"
                    ));
                }
            }
        } else {
            failures.push("steady phase measured no clients".to_string());
        }

        // Accounting: the server's view must match the clients' view.
        let expected = s.requests as u64 + s.overloaded_retries;
        if c.queries_admitted < s.requests as u64 {
            failures.push(format!(
                "server admitted {} queries but clients completed {} — \
                 admission undercount",
                c.queries_admitted, s.requests
            ));
        }
        if c.queries_completed + c.overload_rejections < expected {
            failures.push(format!(
                "server accounted {} completions + {} rejections for {expected} \
                 client requests — lost queries",
                c.queries_completed, c.overload_rejections
            ));
        }
        if c.queries_degraded != 0 {
            failures.push(format!(
                "{} queries degraded with no deadline configured",
                c.queries_degraded
            ));
        }
        if c.malformed_frames != 0 || c.invalid_queries != 0 {
            failures.push(format!(
                "well-formed workload produced {} malformed frames and {} \
                 invalid queries",
                c.malformed_frames, c.invalid_queries
            ));
        }
        if s.stats.profile.nodes_accessed == 0 {
            failures.push(
                "the merged work profile shows zero index nodes accessed — \
                 profiling is disconnected"
                    .to_string(),
            );
        }

        // Typed backpressure under saturation, with exact accounting and
        // no hangs.
        let o = &self.overload;
        if o.overloaded == 0 {
            failures.push(
                "the one-slot overload probe never saw an Overloaded response — \
                 admission control is not engaging"
                    .to_string(),
            );
        }
        if o.overloaded != o.server_rejections {
            failures.push(format!(
                "clients saw {} Overloaded responses but the server counted {} \
                 rejections",
                o.overloaded, o.server_rejections
            ));
        }
        if o.completed + o.overloaded != o.requests as u64 {
            failures.push(format!(
                "probe fired {} requests but only {} + {} came back — a request \
                 hung or vanished",
                o.requests, o.completed, o.overloaded
            ));
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeConfig {
        ServeConfig {
            objects: 24,
            samples: 120,
            shards: 2,
            workers: 2,
            queue: 4,
            clients: 3,
            requests_per_client: 4,
            probe_requests: 15,
            k: 2,
            length: 0.25,
            seed: 11,
        }
    }

    #[test]
    fn smoke_report_is_healthy_and_serializes() {
        let report = serve_bench(&tiny());
        let failures = report.validate();
        assert!(failures.is_empty(), "{failures:#?}");
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve\""));
        assert!(json.contains("\"overload_rejections\""));
        assert!(json.contains("\"server_rejections\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_catches_nondeterminism_and_silent_drops() {
        let mut report = serve_bench(&tiny());
        report.steady.fingerprints[1][0] ^= 1;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("nondeterminism")),
            "{failures:#?}"
        );

        let mut report = serve_bench(&tiny());
        report.overload.overloaded = 0;
        report.overload.server_rejections = 0;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("not engaging")),
            "{failures:#?}"
        );

        let mut report = serve_bench(&tiny());
        report.overload.completed = 0;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("hung or vanished")),
            "{failures:#?}"
        );
    }
}
