//! Loopback serving throughput over wire protocol v2: start an
//! in-process `mst-serve` instance, hammer it from concurrent *pipelined*
//! client connections over real TCP, and measure end-to-end
//! queries/second and latency percentiles — then deliberately saturate a
//! one-slot admission queue to prove backpressure is typed, counted, and
//! non-blocking, and finally probe the answer cache with a repeated
//! query.
//!
//! Emits `BENCH_serve.json`. [`ServeReport::validate`] is the CI tripwire
//! with five teeth:
//!
//! * **pass determinism** — the steady phase runs its distinct per-client
//!   query streams twice against one server; each client must read
//!   byte-identical answers in both passes;
//! * **accounting** — the server's own counters must agree with what the
//!   clients observed (completions, retries vs rejections, zero
//!   degradation, zero malformed frames) and the merged work profile must
//!   show real index work;
//! * **typed backpressure** — the overload probe must surface
//!   `Overloaded` responses, and exactly as many as the server says it
//!   rejected;
//! * **no hangs** — every probe request must come back as either an
//!   answer or a rejection; admitted + rejected must equal issued;
//! * **cache discipline** — the cache probe's repeats must all hit, and
//!   its counters must say so.
//!
//! Steady-phase latency excludes overload retries: a retried request's
//! rejected attempts are recorded under `retry` (count + percentiles),
//! and only the attempt that completed contributes to the steady
//! p50/p99. Mixing the two would let fast typed rejections flatter the
//! service latency.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use mst_exec::ShardedDatabase;
use mst_search::{MstMatch, QueryOptions};
use mst_serve::{Request, RequestId, Response, ServeClient, Server, ServerConfig, StatsReport};
use mst_trajectory::{TimeInterval, Trajectory};

use crate::datasets::DatasetSpec;
use crate::metrics::time_ms;
use crate::workload::sample_queries;

/// Configuration of the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Database shards behind the server.
    pub shards: usize,
    /// Executor worker threads of the steady-phase server.
    pub workers: usize,
    /// Admission-queue bound of the steady-phase server. The steady
    /// server is provisioned at `max(queue, clients x depth)` so the
    /// pipelined burst measures throughput, not retry churn.
    pub queue: usize,
    /// Concurrent client connections in the steady phase.
    pub clients: usize,
    /// Requests each steady-phase client issues per pass.
    pub requests_per_client: usize,
    /// Pipeline depth each steady-phase client negotiates.
    pub depth: u16,
    /// Requests each overload-probe client fires at the one-slot server.
    pub probe_requests: usize,
    /// Times the cache probe repeats its one query.
    pub cache_repeats: usize,
    /// Results per query.
    pub k: usize,
    /// Query length fraction.
    pub length: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            objects: 200,
            samples: 600,
            shards: 4,
            workers: 4,
            queue: 16,
            clients: 8,
            requests_per_client: 24,
            depth: 8,
            probe_requests: 40,
            cache_repeats: 40,
            k: 4,
            length: 0.15,
            seed: 11,
        }
    }
}

impl ServeConfig {
    /// The CI configuration: small fleet, 4 clients — enough to prove
    /// liveness of every moving part in a release build within seconds.
    pub fn smoke() -> Self {
        ServeConfig {
            objects: 48,
            samples: 180,
            shards: 2,
            workers: 2,
            queue: 8,
            clients: 4,
            requests_per_client: 8,
            depth: 4,
            probe_requests: 25,
            cache_repeats: 15,
            k: 3,
            length: 0.2,
            seed: 11,
        }
    }
}

/// Latency of overload retries, kept apart from the steady percentiles.
#[derive(Debug, Clone, Default)]
pub struct RetryStats {
    /// `Overloaded` responses absorbed by client retry (both passes).
    pub count: u64,
    /// Median send-to-rejection latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile send-to-rejection latency, milliseconds.
    pub p99_ms: f64,
}

/// The steady-phase measurement.
#[derive(Debug, Clone)]
pub struct SteadyPhase {
    /// Requests issued across all clients in one pass (completions only;
    /// retries are under [`SteadyPhase::retry`]).
    pub requests: usize,
    /// Second-pass wall time, milliseconds (connect to last response).
    pub wall_ms: f64,
    /// End-to-end queries per second over the second (warm) pass.
    pub qps: f64,
    /// Median end-to-end completion latency, milliseconds (second pass).
    pub p50_ms: f64,
    /// 99th-percentile completion latency, milliseconds (second pass).
    pub p99_ms: f64,
    /// Overload-retry accounting, separate from the percentiles above.
    pub retry: RetryStats,
    /// The server's own account of both passes, read over the wire.
    pub stats: StatsReport,
    /// Per-pass, per-client answer fingerprints: both passes of one
    /// client must match bit for bit.
    fingerprints: [Vec<Vec<u64>>; 2],
}

/// The overload-probe measurement: a one-worker, one-slot server under
/// deliberate saturation — every client running a *distinct* query so
/// the coalescer cannot dedup the burst away — with no client retry.
#[derive(Debug, Clone)]
pub struct OverloadPhase {
    /// Requests fired across all probe clients.
    pub requests: usize,
    /// Requests answered with a k-MST result.
    pub completed: u64,
    /// Requests answered with a typed `Overloaded` rejection.
    pub overloaded: u64,
    /// The server's own rejection counter, read over the wire.
    pub server_rejections: u64,
}

/// The cache-probe measurement: one client repeating one query against a
/// cache-enabled server.
#[derive(Debug, Clone)]
pub struct CachePhase {
    /// Times the query was issued.
    pub requests: usize,
    /// Server-counted answer-cache hits (must be `requests - 1`).
    pub hits: u64,
    /// Server-counted answer-cache misses (must be 1: the first).
    pub misses: u64,
    /// First (uncached) request latency, milliseconds.
    pub first_ms: f64,
    /// Median repeat (cached) latency, milliseconds.
    pub hit_p50_ms: f64,
}

/// The whole benchmark: steady throughput, the overload probe, and the
/// cache probe.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The configuration that produced the report.
    pub config: ServeConfig,
    /// Available hardware parallelism at run time (1 when unknown).
    pub host_parallelism: usize,
    /// The steady phase.
    pub steady: SteadyPhase,
    /// The overload probe.
    pub overload: OverloadPhase,
    /// The cache probe.
    pub cache: CachePhase,
}

/// FNV-1a over an answer's ids and dissimilarity bits, matching the
/// executor benchmark's fingerprint so "equal answers" means the same
/// thing in both reports.
fn fingerprint(matches: &[MstMatch]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for m in matches {
        eat(m.traj.0);
        eat(m.dissim.to_bits());
    }
    h
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    sorted_ms[(sorted_ms.len() - 1) * pct / 100]
}

/// One pipelined steady-phase client: keeps up to `depth` requests in
/// flight, claims responses as they land (any order), retries overload
/// rejections, and keeps retry latency apart from completion latency.
struct ClientRun {
    latencies: Vec<f64>,
    fingerprints: Vec<u64>,
    retry_ms: Vec<f64>,
}

fn steady_client(
    addr: SocketAddr,
    queries: &[(Trajectory, TimeInterval)],
    k: usize,
    depth: u16,
) -> ClientRun {
    let mut client = match ServeClient::connect_with_depth(addr, depth) {
        Ok(client) => client,
        Err(e) => panic!("steady client failed to connect: {e}"),
    };
    let window = usize::from(client.depth());
    let n = queries.len();
    let mut latencies = vec![0.0f64; n];
    let mut fingerprints = vec![0u64; n];
    let mut retry_ms = Vec::new();
    let mut inflight: HashMap<RequestId, (usize, Instant)> = HashMap::new();
    let mut todo: VecDeque<usize> = (0..n).collect();
    let mut done = 0usize;
    while done < n {
        while inflight.len() < window {
            let Some(qi) = todo.pop_front() else { break };
            let (query, period) = &queries[qi];
            let request = Request::Kmst {
                points: query.points().to_vec(),
                options: QueryOptions::new().k(k).during(period),
            };
            let sent = Instant::now();
            match client.send(&request) {
                Ok(id) => {
                    inflight.insert(id, (qi, sent));
                }
                Err(e) => panic!("steady client send failure: {e}"),
            }
        }
        let (id, response) = match client.recv_any() {
            Ok(pair) => pair,
            Err(e) => panic!("steady client transport failure: {e}"),
        };
        let Some((qi, sent)) = inflight.remove(&id) else {
            panic!("server answered an id this client never sent");
        };
        let ms = sent.elapsed().as_secs_f64() * 1000.0;
        match response {
            Response::Overloaded { .. } => {
                retry_ms.push(ms);
                todo.push_back(qi);
            }
            Response::Kmst { degraded, matches } => {
                assert!(!degraded, "no deadline is configured, nothing may degrade");
                latencies[qi] = ms;
                fingerprints[qi] = fingerprint(&matches);
                done += 1;
            }
            other => panic!("unexpected response to a k-MST request: {other:?}"),
        }
    }
    ClientRun {
        latencies,
        fingerprints,
        retry_ms,
    }
}

/// One steady pass: every client runs its own stream concurrently.
fn steady_pass(
    addr: SocketAddr,
    streams: &[Vec<(Trajectory, TimeInterval)>],
    k: usize,
    depth: u16,
) -> (f64, Vec<ClientRun>) {
    time_ms(|| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let stream = stream.clone();
                std::thread::spawn(move || steady_client(addr, &stream, k, depth))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("steady client panicked"))
            .collect::<Vec<_>>()
    })
}

/// One overload-probe client: fire-and-record, no retry.
fn probe_client(
    addr: SocketAddr,
    query: &Trajectory,
    period: &TimeInterval,
    shots: usize,
) -> (u64, u64) {
    let mut client = match ServeClient::connect(addr) {
        Ok(client) => client,
        Err(e) => panic!("probe client failed to connect: {e}"),
    };
    let options = QueryOptions::new().k(8).during(period);
    let (mut completed, mut overloaded) = (0u64, 0u64);
    for _ in 0..shots {
        match client.kmst(query, options) {
            Ok(Response::Kmst { .. }) => completed += 1,
            Ok(Response::Overloaded { .. }) => overloaded += 1,
            Ok(other) => panic!("unexpected response to a probe request: {other:?}"),
            Err(e) => panic!("probe client transport failure: {e}"),
        }
    }
    (completed, overloaded)
}

/// Runs all three phases against in-process servers on ephemeral
/// loopback ports.
pub fn serve_bench(cfg: &ServeConfig) -> ServeReport {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    // Distinct per-client streams: with the coalescer deduping identical
    // concurrent queries, a shared stream would measure dedup, not
    // serving. Each client derives its stream from its own seed.
    let streams: Vec<Vec<(Trajectory, TimeInterval)>> = (0..cfg.clients)
        .map(|client| {
            let seed = cfg.seed ^ 0xB5 ^ (client as u64).wrapping_mul(0x9E37_79B9);
            sample_queries(&store, cfg.requests_per_client, cfg.length, seed)
                .into_iter()
                .map(|s| (s.query, s.period))
                .collect()
        })
        .collect();
    let fleet: Vec<_> = store.iter().map(|(id, t)| (id, t.clone())).collect();
    let db = Arc::new(ShardedDatabase::with_rtree(cfg.shards, fleet).expect("shard build"));

    // Steady phase: a provisioned server, N pipelined clients, each
    // running its own stream — twice, to prove pass determinism.
    let steady_queue = cfg.queue.max(cfg.clients * usize::from(cfg.depth.max(1)));
    let server = Server::start(
        ServerConfig::new()
            .workers(cfg.workers)
            .queue_capacity(steady_queue)
            .max_depth(cfg.depth.max(1)),
        Arc::clone(&db),
    )
    .expect("steady server start");
    let addr = server.local_addr();
    let (_, pass1) = steady_pass(addr, &streams, cfg.k, cfg.depth);
    let (wall_ms, pass2) = steady_pass(addr, &streams, cfg.k, cfg.depth);

    let mut latencies: Vec<f64> = Vec::new();
    let mut retry_ms: Vec<f64> = Vec::new();
    for run in &pass2 {
        latencies.extend_from_slice(&run.latencies);
    }
    for run in pass1.iter().chain(&pass2) {
        retry_ms.extend_from_slice(&run.retry_ms);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    retry_ms.sort_by(|a, b| a.total_cmp(b));
    let fingerprints = [
        pass1.iter().map(|r| r.fingerprints.clone()).collect(),
        pass2.iter().map(|r| r.fingerprints.clone()).collect(),
    ];

    let stats = match ServeClient::connect(addr) {
        Ok(mut client) => {
            let stats = client.stats().expect("stats request");
            assert!(client.shutdown().expect("shutdown request"));
            stats
        }
        Err(e) => panic!("stats client failed to connect: {e}"),
    };
    server.join();
    let requests = cfg.clients * cfg.requests_per_client;
    let steady = SteadyPhase {
        requests,
        wall_ms,
        qps: if wall_ms > 0.0 {
            requests as f64 / (wall_ms / 1000.0)
        } else {
            f64::INFINITY
        },
        p50_ms: percentile(&latencies, 50),
        p99_ms: percentile(&latencies, 99),
        retry: RetryStats {
            count: retry_ms.len() as u64,
            p50_ms: percentile(&retry_ms, 50),
            p99_ms: percentile(&retry_ms, 99),
        },
        stats,
        fingerprints,
    };
    eprintln!(
        "[serve] steady: {} clients x {} requests at depth {}: {:.1} ms, {:.0} qps, \
         p50 {:.2} ms, p99 {:.2} ms, {} overload retries",
        cfg.clients,
        cfg.requests_per_client,
        cfg.depth,
        steady.wall_ms,
        steady.qps,
        steady.p50_ms,
        steady.p99_ms,
        steady.retry.count,
    );

    // Overload probe: one worker, a one-slot queue, no retry — saturation
    // must surface as typed rejections, never as hangs. Distinct queries
    // per client keep the coalescer's dedup out of the measurement.
    let probe_server = Server::start(
        ServerConfig::new().workers(1).queue_capacity(1),
        Arc::clone(&db),
    )
    .expect("probe server start");
    let probe_addr = probe_server.local_addr();
    let probe_queries: Vec<(Trajectory, TimeInterval)> =
        sample_queries(&store, cfg.clients, cfg.length, cfg.seed ^ 0x0DD)
            .into_iter()
            .map(|s| (s.query, s.period))
            .collect();
    let probe_outcomes: Vec<(u64, u64)> = {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let (query, period) = probe_queries[i % probe_queries.len()].clone();
                let shots = cfg.probe_requests;
                std::thread::spawn(move || probe_client(probe_addr, &query, &period, shots))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe client panicked"))
            .collect()
    };
    let server_rejections = match ServeClient::connect(probe_addr) {
        Ok(mut client) => {
            let stats = client.stats().expect("probe stats request");
            assert!(client.shutdown().expect("probe shutdown request"));
            stats.counters.overload_rejections
        }
        Err(e) => panic!("probe stats client failed to connect: {e}"),
    };
    probe_server.join();
    let overload = OverloadPhase {
        requests: cfg.clients * cfg.probe_requests,
        completed: probe_outcomes.iter().map(|o| o.0).sum(),
        overloaded: probe_outcomes.iter().map(|o| o.1).sum(),
        server_rejections,
    };
    eprintln!(
        "[serve] overload probe: {} fired, {} answered, {} rejected (server counted {})",
        overload.requests, overload.completed, overload.overloaded, overload.server_rejections,
    );

    // Cache probe: one client repeating one query against a
    // cache-enabled server; every repeat must hit.
    let cache_server = Server::start(
        ServerConfig::new().workers(1).cache_capacity(32),
        Arc::clone(&db),
    )
    .expect("cache server start");
    let cache_addr = cache_server.local_addr();
    let repeats = cfg.cache_repeats.max(2);
    let (query, period) = streams[0][0].clone();
    let options = QueryOptions::new().k(cfg.k).during(&period);
    let mut client = match ServeClient::connect(cache_addr) {
        Ok(client) => client,
        Err(e) => panic!("cache client failed to connect: {e}"),
    };
    let mut first_ms = 0.0;
    let mut hit_ms: Vec<f64> = Vec::with_capacity(repeats - 1);
    let mut reference: Option<u64> = None;
    for i in 0..repeats {
        let (ms, response) = time_ms(|| client.kmst(&query, options));
        match response {
            Ok(Response::Kmst { degraded, matches }) => {
                assert!(!degraded, "cache probe queries carry no deadline");
                let fp = fingerprint(&matches);
                match reference {
                    None => reference = Some(fp),
                    Some(expected) => assert_eq!(
                        fp, expected,
                        "a cached answer diverged from the executed one"
                    ),
                }
                if i == 0 {
                    first_ms = ms;
                } else {
                    hit_ms.push(ms);
                }
            }
            Ok(other) => panic!("unexpected response to a cache probe: {other:?}"),
            Err(e) => panic!("cache probe transport failure: {e}"),
        }
    }
    let (hits, misses) = {
        let stats = client.stats().expect("cache stats request");
        assert!(client.shutdown().expect("cache shutdown request"));
        (stats.counters.cache_hits, stats.counters.cache_misses)
    };
    cache_server.join();
    hit_ms.sort_by(|a, b| a.total_cmp(b));
    let cache = CachePhase {
        requests: repeats,
        hits,
        misses,
        first_ms,
        hit_p50_ms: percentile(&hit_ms, 50),
    };
    eprintln!(
        "[serve] cache probe: {} repeats, {} hits / {} misses, first {:.2} ms, hit p50 {:.3} ms",
        cache.requests, cache.hits, cache.misses, cache.first_ms, cache.hit_p50_ms,
    );

    ServeReport {
        config: cfg.clone(),
        host_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        steady,
        overload,
        cache,
    }
}

impl ServeReport {
    /// Renders the report as a JSON document (`BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let s = &self.steady;
        let o = &self.overload;
        let k = &self.cache;
        let sc = &s.stats.counters;
        let sp = &s.stats.profile;
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"serve\",\n  \"protocol_version\": 2,\n");
        out.push_str(&format!(
            "  \"config\": {{\"objects\":{},\"samples\":{},\"shards\":{},\"workers\":{},\
             \"queue\":{},\"clients\":{},\"requests_per_client\":{},\"depth\":{},\
             \"probe_requests\":{},\"cache_repeats\":{},\"k\":{},\"length\":{},\"seed\":{}}},\n",
            c.objects,
            c.samples,
            c.shards,
            c.workers,
            c.queue,
            c.clients,
            c.requests_per_client,
            c.depth,
            c.probe_requests,
            c.cache_repeats,
            c.k,
            c.length,
            c.seed,
        ));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "  \"steady\": {{\"requests\":{},\"wall_ms\":{:.3},\"qps\":{:.1},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\
             \"retry\":{{\"count\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3}}},\
             \"counters\":{{\"connections_accepted\":{},\"queries_admitted\":{},\
             \"queries_completed\":{},\"queries_degraded\":{},\"overload_rejections\":{},\
             \"malformed_frames\":{},\"invalid_queries\":{},\"cache_hits\":{},\
             \"cache_misses\":{}}},\
             \"profile\":{{\"nodes_accessed\":{},\"piece_evals\":{}}}}},\n",
            s.requests,
            s.wall_ms,
            s.qps,
            s.p50_ms,
            s.p99_ms,
            s.retry.count,
            s.retry.p50_ms,
            s.retry.p99_ms,
            sc.connections_accepted,
            sc.queries_admitted,
            sc.queries_completed,
            sc.queries_degraded,
            sc.overload_rejections,
            sc.malformed_frames,
            sc.invalid_queries,
            sc.cache_hits,
            sc.cache_misses,
            sp.nodes_accessed,
            sp.piece_evals,
        ));
        out.push_str(&format!(
            "  \"overload\": {{\"requests\":{},\"completed\":{},\"overloaded\":{},\
             \"server_rejections\":{}}},\n",
            o.requests, o.completed, o.overloaded, o.server_rejections,
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"requests\":{},\"hits\":{},\"misses\":{},\"first_ms\":{:.3},\
             \"hit_p50_ms\":{:.3}}}\n",
            k.requests, k.hits, k.misses, k.first_ms, k.hit_p50_ms,
        ));
        out.push_str("}\n");
        out
    }

    /// The CI tripwire (see the module docs). Returns the list of failures
    /// (empty = healthy).
    pub fn validate(&self) -> Vec<String> {
        let mut failures = Vec::new();
        let s = &self.steady;
        let c = &s.stats.counters;

        // Pass determinism: each client read identical answers in both
        // steady passes.
        let [pass1, pass2] = &s.fingerprints;
        if pass1.is_empty() || pass2.is_empty() {
            failures.push("steady phase measured no clients".to_string());
        }
        for (i, (a, b)) in pass1.iter().zip(pass2).enumerate() {
            if a != b {
                failures.push(format!(
                    "client {i}: answers differ between steady passes on the same \
                     query stream — serving nondeterminism"
                ));
            }
        }

        // Accounting: the server's view must match the clients' view.
        // Both passes completed every request; dedup may legitimately
        // shrink admissions below completions, never past zero.
        let expected = 2 * s.requests as u64;
        if c.queries_completed != expected {
            failures.push(format!(
                "server completed {} query requests for {expected} client \
                 completions — lost or phantom queries",
                c.queries_completed
            ));
        }
        if c.queries_admitted == 0 || c.queries_admitted > expected {
            failures.push(format!(
                "server admitted {} executions for {expected} completions — \
                 admission accounting is broken",
                c.queries_admitted
            ));
        }
        if c.overload_rejections != s.retry.count {
            failures.push(format!(
                "clients retried {} overload rejections but the server counted {} — \
                 rejection accounting drift",
                s.retry.count, c.overload_rejections
            ));
        }
        if c.queries_degraded != 0 {
            failures.push(format!(
                "{} queries degraded with no deadline configured",
                c.queries_degraded
            ));
        }
        if c.malformed_frames != 0 || c.invalid_queries != 0 {
            failures.push(format!(
                "well-formed workload produced {} malformed frames and {} \
                 invalid queries",
                c.malformed_frames, c.invalid_queries
            ));
        }
        if s.stats.profile.nodes_accessed == 0 {
            failures.push(
                "the merged work profile shows zero index nodes accessed — \
                 profiling is disconnected"
                    .to_string(),
            );
        }

        // Typed backpressure under saturation, with exact accounting and
        // no hangs.
        let o = &self.overload;
        if o.overloaded == 0 {
            failures.push(
                "the one-slot overload probe never saw an Overloaded response — \
                 admission control is not engaging"
                    .to_string(),
            );
        }
        if o.overloaded != o.server_rejections {
            failures.push(format!(
                "clients saw {} Overloaded responses but the server counted {} \
                 rejections",
                o.overloaded, o.server_rejections
            ));
        }
        if o.completed + o.overloaded != o.requests as u64 {
            failures.push(format!(
                "probe fired {} requests but only {} + {} came back — a request \
                 hung or vanished",
                o.requests, o.completed, o.overloaded
            ));
        }

        // Cache discipline: the first request executes, every repeat hits.
        let k = &self.cache;
        if k.hits != (k.requests as u64).saturating_sub(1) || k.misses != 1 {
            failures.push(format!(
                "cache probe expected {} hits / 1 miss for {} repeats, server \
                 counted {} / {} — the answer cache is not serving repeats",
                k.requests - 1,
                k.requests,
                k.hits,
                k.misses
            ));
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeConfig {
        ServeConfig {
            objects: 24,
            samples: 120,
            shards: 2,
            workers: 2,
            queue: 4,
            clients: 3,
            requests_per_client: 4,
            depth: 4,
            probe_requests: 15,
            cache_repeats: 6,
            k: 2,
            length: 0.25,
            seed: 11,
        }
    }

    #[test]
    fn smoke_report_is_healthy_and_serializes() {
        let report = serve_bench(&tiny());
        let failures = report.validate();
        assert!(failures.is_empty(), "{failures:#?}");
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve\""));
        assert!(json.contains("\"protocol_version\": 2"));
        assert!(json.contains("\"depth\":4"));
        assert!(json.contains("\"retry\""));
        assert!(json.contains("\"overload_rejections\""));
        assert!(json.contains("\"server_rejections\""));
        assert!(json.contains("\"cache\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_catches_nondeterminism_and_silent_drops() {
        let mut report = serve_bench(&tiny());
        report.steady.fingerprints[1][0][0] ^= 1;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("nondeterminism")),
            "{failures:#?}"
        );

        let mut report = serve_bench(&tiny());
        report.overload.overloaded = 0;
        report.overload.server_rejections = 0;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("not engaging")),
            "{failures:#?}"
        );

        let mut report = serve_bench(&tiny());
        report.overload.completed = 0;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("hung or vanished")),
            "{failures:#?}"
        );

        let mut report = serve_bench(&tiny());
        report.cache.hits = 0;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("answer cache")),
            "{failures:#?}"
        );
    }
}
