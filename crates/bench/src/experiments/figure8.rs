//! Figure 8: the effect of TD-TR compression on a single trajectory — the
//! vertex count shrinks as the tolerance parameter `p` grows while the
//! general sketch survives (the paper shows 168 → 65 → 29 → 22 vertices for
//! p = 0, 0.1%, 1%, 2%).

use mst_datagen::{td_tr_fraction, TrucksConfig};
use mst_trajectory::TrajectoryStats;

use crate::metrics::Table;

/// Compresses one Trucks-like trajectory at the paper's four settings and
/// reports the vertex counts plus shape-preservation statistics.
pub fn figure8(num_trucks: usize, trajectory_index: usize, seed: u64) -> Table {
    let fleet = TrucksConfig {
        num_trucks,
        ..TrucksConfig::paper_like(seed)
    }
    .generate();
    let original = &fleet[trajectory_index % fleet.len()];

    let mut table = Table::new(
        "Figure 8: degrees of TD-TR compression on one trajectory",
        &[
            "p (% of length)",
            "Vertices",
            "Kept (%)",
            "Length ratio",
            "Max SED / tolerance",
        ],
    );
    for p in [0.0, 0.001, 0.01, 0.02] {
        let compressed = td_tr_fraction(original, p);
        let tolerance = p * original.spatial_length();
        // Largest synchronized deviation of any dropped original sample.
        let max_dev = original
            .points()
            .iter()
            .map(|pt| {
                let pos = compressed.position_at(pt.t).expect("same validity");
                ((pt.x - pos.x).powi(2) + (pt.y - pos.y).powi(2)).sqrt()
            })
            .fold(0.0, f64::max);
        table.push_row(vec![
            format!("{:.1}", p * 100.0),
            compressed.num_points().to_string(),
            format!(
                "{:.1}",
                100.0 * compressed.num_points() as f64 / original.num_points() as f64
            ),
            format!(
                "{:.3}",
                TrajectoryStats::of(&compressed).spatial_length
                    / TrajectoryStats::of(original).spatial_length
            ),
            if tolerance > 0.0 {
                format!("{:.2}", max_dev / tolerance)
            } else {
                format!("{max_dev:.2} m")
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_counts_decrease_with_p() {
        let t = figure8(6, 0, 3);
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        let counts: Vec<usize> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
        assert!(counts[0] > counts[3], "compression must bite");
    }
}
