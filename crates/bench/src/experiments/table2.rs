//! Table 2: summary of the datasets and the sizes of the indexes built over
//! them.

use mst_index::TrajectoryIndex;

use crate::datasets::{build_rtree, build_tbtree, DatasetSpec};
use crate::metrics::Table;

/// Configuration of the Table 2 run.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Scale factor on the paper's dataset sizes (1.0 = full Table 2).
    pub scale: f64,
    /// Include the Trucks-like dataset row.
    pub include_trucks: bool,
    /// RNG seed shared by the generators.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            scale: 1.0,
            include_trucks: true,
            seed: 7,
        }
    }
}

/// Builds every dataset and both indexes, reporting the paper's Table 2
/// columns.
pub fn table2(cfg: &Table2Config) -> Table {
    let mut specs: Vec<(DatasetSpec, &str)> = Vec::new();
    if cfg.include_trucks {
        specs.push((
            DatasetSpec::Trucks {
                num_trucks: ((273.0 * cfg.scale).round() as usize).max(4),
                seed: cfg.seed,
            },
            "Fleet sim",
        ));
    }
    for spec in DatasetSpec::paper_ladder(cfg.scale, cfg.seed) {
        specs.push((spec, "Lognormal (sigma 0.6)"));
    }

    let mut table = Table::new(
        "Table 2: dataset and index summary",
        &[
            "Dataset",
            "Objects",
            "Entries (x1K)",
            "Speed model",
            "3D R-tree (MB)",
            "TB-tree (MB)",
        ],
    );
    for (spec, speed_label) in specs {
        let store = spec.build_store();
        let rtree = build_rtree(&store);
        let tbtree = build_tbtree(&store);
        table.push_row(vec![
            spec.name(),
            store.len().to_string(),
            format!("{:.0}", store.total_segments() as f64 / 1000.0),
            speed_label.to_string(),
            format!("{:.1}", rtree.stats().size_bytes as f64 / (1024.0 * 1024.0)),
            format!(
                "{:.1}",
                tbtree.stats().size_bytes as f64 / (1024.0 * 1024.0)
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_produces_all_rows() {
        let t = table2(&Table2Config {
            scale: 0.02,
            include_trucks: true,
            seed: 1,
        });
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        assert!(csv.contains("Trucks"));
        assert!(csv.contains("S0005")); // 250 * 0.02
    }
}
