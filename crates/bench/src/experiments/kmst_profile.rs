//! Per-query observability profiles of the k-MST search — the benchmark
//! face of the `QueryProfile` subsystem.
//!
//! Runs a seeded GSTD k-MST workload against all three index substrates
//! (each through its own [`mst_search::KmstSubstrate::kmst_search`]) with
//! a [`QueryProfile`] attached to every query, and emits the result as
//! `BENCH_kmst.json`: per-query wall time plus every counter the metrics
//! layer collects (heap traffic, node accesses by level, buffer hits and
//! misses, bytes decoded, exact vs trapezoid piece evaluations, and the
//! per-heuristic pruning ledger — including the metric tree's
//! triangle-inequality bound). [`KmstProfileReport::validate`] is the
//! CI tripwire: an all-zero counter means an instrumentation hook fell off.
//! The liveness set is per substrate — the MBB substrates must show the
//! paper's MINDIST-family heuristics firing, the metric tree its
//! triangle-inequality bound.

use mst_search::{KmstSubstrate, MstConfig, NoShare, QueryProfile};

use crate::datasets::{build_metric, build_rtree, build_tbtree, DatasetSpec, IndexKind};
use crate::metrics::time_ms;
use crate::workload::{sample_queries, QuerySpec};

/// Configuration of the profiling run.
#[derive(Debug, Clone)]
pub struct KmstProfileConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Number of profiled queries per substrate.
    pub queries: usize,
    /// Query length fraction.
    pub length: f64,
    /// Results per query.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KmstProfileConfig {
    fn default() -> Self {
        KmstProfileConfig {
            objects: 250,
            samples: 2000,
            queries: 50,
            length: 0.25,
            k: 2,
            seed: 7,
        }
    }
}

impl KmstProfileConfig {
    /// The CI configuration: small enough for a debug-build smoke run,
    /// large enough that every pruning heuristic demonstrably fires.
    pub fn smoke() -> Self {
        KmstProfileConfig {
            objects: 80,
            samples: 400,
            queries: 12,
            length: 0.25,
            k: 2,
            seed: 7,
        }
    }
}

/// One profiled query.
#[derive(Debug, Clone)]
pub struct ProfiledQuery {
    /// Index of the query within the workload.
    pub query: usize,
    /// Wall-clock time of the search, milliseconds.
    pub time_ms: f64,
    /// Number of matches returned.
    pub matches: usize,
    /// Whether heuristic 2 terminated the traversal early.
    pub terminated_early: bool,
    /// The full observability profile.
    pub profile: QueryProfile,
}

/// All profiled queries of one index substrate.
#[derive(Debug, Clone)]
pub struct SubstrateProfile {
    /// Which substrate.
    pub kind: IndexKind,
    /// Index pages the substrate occupied.
    pub pages: usize,
    /// The per-query rows, in workload order.
    pub rows: Vec<ProfiledQuery>,
}

/// The whole report: every substrate over the same workload.
#[derive(Debug, Clone)]
pub struct KmstProfileReport {
    /// The configuration that produced the report.
    pub config: KmstProfileConfig,
    /// One entry per substrate, in [`IndexKind::all`] order.
    pub substrates: Vec<SubstrateProfile>,
}

/// Runs the profiled workload on every substrate.
pub fn kmst_profile(cfg: &KmstProfileConfig) -> KmstProfileReport {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let queries = sample_queries(&store, cfg.queries, cfg.length, cfg.seed ^ 0xC0);

    let mut substrates = Vec::new();
    for kind in IndexKind::all() {
        let rows = match kind {
            IndexKind::Rtree3D => {
                let mut idx = build_rtree(&store);
                profile_workload(&mut idx, &store, &queries, cfg.k)
            }
            IndexKind::TbTree => {
                let mut idx = build_tbtree(&store);
                profile_workload(&mut idx, &store, &queries, cfg.k)
            }
            IndexKind::Metric => {
                let mut idx = build_metric(&store);
                profile_workload(&mut idx, &store, &queries, cfg.k)
            }
        };
        substrates.push(SubstrateProfile {
            kind,
            pages: rows.1,
            rows: rows.0,
        });
    }
    KmstProfileReport {
        config: cfg.clone(),
        substrates,
    }
}

/// Runs the query set against one substrate, one fresh profile per query.
/// The buffer is cleared first, so query 0 faults every page in (misses)
/// while later queries re-read the upper tree levels from the buffer
/// (hits).
fn profile_workload<I: KmstSubstrate>(
    index: &mut I,
    store: &mst_search::TrajectoryStore,
    queries: &[QuerySpec],
    k: usize,
) -> (Vec<ProfiledQuery>, usize) {
    index.clear_buffer().expect("buffer clear");
    index.reset_stats();
    let mut rows = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let mut profile = QueryProfile::new();
        let (ms, report) = time_ms(|| {
            index
                .kmst_search(
                    store,
                    &q.query,
                    &q.period,
                    &MstConfig::k(k),
                    &NoShare,
                    &mut profile,
                )
                .expect("profiled query")
        });
        rows.push(ProfiledQuery {
            query: i,
            time_ms: ms,
            matches: report.matches.len(),
            terminated_early: report.terminated_early,
            profile,
        });
    }
    (rows, index.num_pages())
}

// ---------------------------------------------------------------------------
// JSON emission (hand-rolled: the workspace is dependency-free)
// ---------------------------------------------------------------------------

fn profile_json(p: &QueryProfile) -> String {
    let levels: Vec<String> = p.node_accesses.iter().map(u64::to_string).collect();
    format!(
        concat!(
            "{{\"heap_pushes\":{},\"heap_pops\":{},\"node_accesses_by_level\":[{}],",
            "\"buffer_hits\":{},\"buffer_misses\":{},\"bytes_decoded\":{},",
            "\"exact_piece_evals\":{},\"trapezoid_piece_evals\":{},",
            "\"exact_recomputations\":{},",
            "\"candidates\":{{\"seen\":{},\"refined\":{},\"pruned\":{},\"pending\":{}}},",
            "\"pruning\":{{\"ldd_evals\":{},\"opt_dissim_evals\":{},\"opt_dissim_prunes\":{},",
            "\"pes_dissim_evals\":{},\"pes_dissim_tightenings\":{},",
            "\"opt_dissim_inc_evals\":{},\"opt_dissim_inc_prunes\":{},",
            "\"min_dissim_inc_evals\":{},\"min_dissim_inc_prunes\":{},",
            "\"triangle_ineq_evals\":{},\"triangle_ineq_prunes\":{}}},",
            "\"early_terminations\":{}}}"
        ),
        p.heap_pushes,
        p.heap_pops,
        levels.join(","),
        p.buffer_hits,
        p.buffer_misses,
        p.bytes_decoded,
        p.exact_piece_evals,
        p.trapezoid_piece_evals,
        p.exact_recomputations,
        p.candidates.seen,
        p.candidates.refined,
        p.candidates.pruned,
        p.candidates.pending,
        p.pruning.ldd_evals,
        p.pruning.opt_dissim_evals,
        p.pruning.opt_dissim_prunes,
        p.pruning.pes_dissim_evals,
        p.pruning.pes_dissim_tightenings,
        p.pruning.opt_dissim_inc_evals,
        p.pruning.opt_dissim_inc_prunes,
        p.pruning.min_dissim_inc_evals,
        p.pruning.min_dissim_inc_prunes,
        p.pruning.triangle_ineq_evals,
        p.pruning.triangle_ineq_prunes,
        p.early_terminations,
    )
}

impl KmstProfileReport {
    /// Renders the report as a JSON document (`BENCH_kmst.json`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"kmst_profile\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"objects\":{},\"samples\":{},\"queries\":{},\
             \"length\":{},\"k\":{},\"seed\":{}}},\n",
            c.objects, c.samples, c.queries, c.length, c.k, c.seed
        ));
        out.push_str("  \"substrates\": [\n");
        for (si, s) in self.substrates.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"index\":{:?},\"pages\":{},\"queries\":[\n",
                s.kind.label(),
                s.pages
            ));
            for (qi, row) in s.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"query\":{},\"time_ms\":{:.3},\"matches\":{},\
                     \"terminated_early\":{},\"profile\":{}}}{}\n",
                    row.query,
                    row.time_ms,
                    row.matches,
                    row.terminated_early,
                    profile_json(&row.profile),
                    if qi + 1 < s.rows.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if si + 1 < self.substrates.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The CI tripwire: per substrate, every counter class the workload is
    /// designed to exercise must be non-zero when summed over the query
    /// set, and every per-query candidate ledger must balance. Returns the
    /// list of failures (empty = healthy).
    pub fn validate(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for s in &self.substrates {
            let label = s.kind.label();
            let mut total = QueryProfile::new();
            for row in &s.rows {
                if !row.profile.is_consistent() {
                    failures.push(format!(
                        "{label} query {}: candidate ledger does not balance \
                         (seen {} != pruned {} + refined {} + pending {})",
                        row.query,
                        row.profile.candidates.seen,
                        row.profile.candidates.pruned,
                        row.profile.candidates.refined,
                        row.profile.candidates.pending,
                    ));
                }
                total.merge(&row.profile);
            }
            // Liveness is per substrate: each one must exercise exactly
            // the counter classes its search is built from.
            let checks: Vec<(&str, u64)> = match s.kind {
                IndexKind::Rtree3D | IndexKind::TbTree => vec![
                    ("heap_pushes", total.heap_pushes),
                    ("heap_pops", total.heap_pops),
                    ("node_accesses", total.nodes_accessed()),
                    ("buffer_hits", total.buffer_hits),
                    ("buffer_misses", total.buffer_misses),
                    ("bytes_decoded", total.bytes_decoded),
                    ("piece_evals", total.piece_evals()),
                    ("ldd_evals", total.pruning.ldd_evals),
                    ("opt_dissim_evals", total.pruning.opt_dissim_evals),
                    ("pes_dissim_evals", total.pruning.pes_dissim_evals),
                    ("opt_dissim_inc_evals", total.pruning.opt_dissim_inc_evals),
                    ("min_dissim_inc_evals", total.pruning.min_dissim_inc_evals),
                ],
                // The metric substrate never computes MBB bounds; its
                // ledger lives in the triangle-inequality counters, its
                // refinements are always exact, and its I/O shows up as
                // leaf-chain reads (misses + bytes decoded).
                IndexKind::Metric => vec![
                    ("heap_pushes", total.heap_pushes),
                    ("heap_pops", total.heap_pops),
                    ("node_accesses", total.nodes_accessed()),
                    ("buffer_misses", total.buffer_misses),
                    ("bytes_decoded", total.bytes_decoded),
                    ("exact_piece_evals", total.exact_piece_evals),
                    ("triangle_ineq_evals", total.pruning.triangle_ineq_evals),
                    ("candidates_refined", total.candidates.refined),
                ],
            };
            for (name, value) in checks {
                if value == 0 {
                    failures.push(format!(
                        "{label}: counter `{name}` is zero over the whole \
                         workload — an instrumentation hook is disconnected"
                    ));
                }
            }
            let prunes = match s.kind {
                IndexKind::Rtree3D | IndexKind::TbTree => {
                    total.candidates.pruned
                        + total.pruning.opt_dissim_prunes
                        + total.pruning.opt_dissim_inc_prunes
                        + total.pruning.min_dissim_inc_prunes
                }
                IndexKind::Metric => total.pruning.triangle_ineq_prunes,
            };
            if prunes == 0 {
                failures.push(format!(
                    "{label}: no candidate or node was ever pruned — the \
                     heuristics are not engaging on this workload"
                ));
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_healthy_and_serializes() {
        let report = kmst_profile(&KmstProfileConfig::smoke());
        let failures = report.validate();
        assert!(failures.is_empty(), "{failures:#?}");
        assert_eq!(report.substrates.len(), 3);
        for s in &report.substrates {
            assert_eq!(s.rows.len(), report.config.queries);
        }
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"kmst_profile\""));
        assert!(json.contains("\"3D R-tree\""));
        assert!(json.contains("\"TB-tree\""));
        assert!(json.contains("\"Metric tree\""));
        assert!(json.contains("\"min_dissim_inc_evals\""));
        assert!(json.contains("\"triangle_ineq_evals\""));
        // Crude structural sanity: balanced braces and brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_catches_a_dead_counter() {
        let mut report = kmst_profile(&KmstProfileConfig {
            objects: 15,
            samples: 120,
            queries: 4,
            ..KmstProfileConfig::smoke()
        });
        for s in &mut report.substrates {
            for row in &mut s.rows {
                row.profile.heap_pushes = 0;
            }
        }
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("heap_pushes")),
            "{failures:#?}"
        );
    }
}
