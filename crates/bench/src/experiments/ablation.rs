//! Ablations beyond the paper's figures: how much each ingredient of the
//! BFMST algorithm contributes, and what the trapezoid approximation buys.
//!
//! Variants compared (all verified against the exact linear scan):
//!
//! * `full` — both heuristics, trapezoid + error management (the paper's
//!   algorithm);
//! * `no-h1` — heuristic 1 (candidate rejection) disabled;
//! * `no-h2` — heuristic 2 (termination) disabled;
//! * `no-heuristics` — neither, i.e. plain best-first assembly;
//! * `exact-integration` — both heuristics but closed-form integrals
//!   everywhere (no error management needed);
//! * `scan` — the linear scan over the store (no index at all).

use mst_index::TrajectoryIndex;
use mst_search::{bfmst_search, scan_kmst, Integration, MstConfig, NoShare, NoopSink};

use crate::datasets::{build_rtree, DatasetSpec};
use crate::metrics::{pruning_power, time_ms, Summary, Table};
use crate::workload::sample_queries;

/// Configuration of the ablation run.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Number of moving objects in the synthetic dataset (paper scale: 250).
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Queries per variant.
    pub queries: usize,
    /// Query length fraction.
    pub length: f64,
    /// k of the k-MST queries.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            objects: 250,
            samples: 2000,
            queries: 25,
            length: 0.05,
            k: 1,
            seed: 7,
        }
    }
}

struct Variant {
    name: &'static str,
    config: Option<MstConfig>, // None = linear scan
}

/// Runs every variant over the same query set, checking answers against the
/// exact scan and reporting time / pruning / node counts.
pub fn ablation(cfg: &AblationConfig) -> Table {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let mut rtree = build_rtree(&store);
    let queries = sample_queries(&store, cfg.queries, cfg.length, cfg.seed ^ 0xAB);
    let total_pages = rtree.num_pages();

    let base = MstConfig::k(cfg.k);
    let variants = [
        Variant {
            name: "full",
            config: Some(base),
        },
        Variant {
            name: "no-h1",
            config: Some(MstConfig {
                use_heuristic1: false,
                ..base
            }),
        },
        Variant {
            name: "no-h2",
            config: Some(MstConfig {
                use_heuristic2: false,
                ..base
            }),
        },
        Variant {
            name: "no-heuristics",
            config: Some(MstConfig {
                use_heuristic1: false,
                use_heuristic2: false,
                ..base
            }),
        },
        Variant {
            name: "exact-integration",
            config: Some(MstConfig {
                integration: Integration::Exact,
                error_management: false,
                ..base
            }),
        },
        Variant {
            name: "scan",
            config: None,
        },
    ];

    // Ground truth per query (exact scan).
    let truth: Vec<Vec<mst_trajectory::TrajectoryId>> = queries
        .iter()
        .map(|q| {
            scan_kmst(&store, &q.query, &q.period, cfg.k, Integration::Exact)
                .expect("scan succeeds")
                .into_iter()
                .map(|m| m.traj)
                .collect()
        })
        .collect();

    let mut table = Table::new(
        "Ablation: BFMST ingredients on the 3D R-tree",
        &[
            "Variant",
            "Time (ms)",
            "Time stderr",
            "Pruning power",
            "Nodes visited",
            "Agrees with exact scan",
        ],
    );
    for v in variants {
        let mut times = Vec::new();
        let mut prunings = Vec::new();
        let mut nodes = Vec::new();
        let mut agree = true;
        for (q, expected) in queries.iter().zip(&truth) {
            match &v.config {
                Some(mc) => {
                    rtree.reset_stats();
                    let (ms, report) = time_ms(|| {
                        bfmst_search(
                            &mut rtree,
                            &store,
                            &q.query,
                            &q.period,
                            mc,
                            &NoShare,
                            &mut NoopSink,
                        )
                        .expect("valid query")
                    });
                    let got: Vec<_> = report.matches.iter().map(|m| m.traj).collect();
                    agree &= got == *expected;
                    times.push(ms);
                    prunings.push(pruning_power(rtree.stats().node_reads, total_pages));
                    nodes.push(report.nodes_visited as f64);
                }
                None => {
                    let (ms, got) = time_ms(|| {
                        scan_kmst(&store, &q.query, &q.period, cfg.k, Integration::Exact)
                            .expect("scan succeeds")
                    });
                    let got: Vec<_> = got.into_iter().map(|m| m.traj).collect();
                    agree &= got == *expected;
                    times.push(ms);
                    prunings.push(0.0);
                    nodes.push(0.0);
                }
            }
        }
        let t = Summary::of(&times);
        table.push_row(vec![
            v.name.to_string(),
            format!("{:.2}", t.mean),
            format!("{:.2}", t.std_err),
            format!("{:.3}", Summary::of(&prunings).mean),
            format!("{:.0}", Summary::of(&nodes).mean),
            agree.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_agree_with_ground_truth_at_small_scale() {
        let cfg = AblationConfig {
            objects: 15,
            samples: 120,
            queries: 6,
            length: 0.2,
            k: 2,
            seed: 11,
        };
        let t = ablation(&cfg);
        assert_eq!(t.len(), 6);
        for line in t.to_csv().lines().skip(1) {
            let agrees = line.split(',').nth(5).unwrap();
            assert_eq!(agrees, "true", "variant disagreed: {line}");
        }
    }
}
