//! Three-way index comparison (extension): the paper evaluates the 3D
//! R-tree and the TB-tree; its reference [13] defines a third structure,
//! the STR-tree, sitting between them. This experiment builds all three
//! over the same insertion stream and runs the same k-MST workload,
//! reporting build cost, size, query time, pruning, and physical I/O.

use mst_index::{Rtree3D, StrTree, TbTree, TrajectoryIndexWrite};
use mst_search::{bfmst_search, MstConfig, TrajectoryStore};

use crate::datasets::{temporal_entries, DatasetSpec};
use crate::metrics::{pruning_power, time_ms, Summary, Table};
use crate::workload::sample_queries;

/// Configuration of the three-way comparison.
#[derive(Debug, Clone)]
pub struct IndexComparisonConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Queries per index.
    pub queries: usize,
    /// Query length fraction.
    pub length: f64,
    /// k of the k-MST queries.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IndexComparisonConfig {
    fn default() -> Self {
        IndexComparisonConfig {
            objects: 250,
            samples: 2000,
            queries: 50,
            length: 0.25,
            k: 1,
            seed: 7,
        }
    }
}

fn measure<I: TrajectoryIndexWrite>(
    index: I,
    label: &str,
    entries: &[mst_index::LeafEntry],
    store: &TrajectoryStore,
    cfg: &IndexComparisonConfig,
    table: &mut Table,
    expected: &[Vec<mst_trajectory::TrajectoryId>],
) {
    let mut index = index;
    let (build_ms, ()) = time_ms(|| {
        for e in entries {
            index.insert_entry(*e).expect("valid insert");
        }
    });
    measure_queries(index, label, build_ms, store, cfg, table, expected);
}

fn measure_queries<I: TrajectoryIndexWrite>(
    mut index: I,
    label: &str,
    build_ms: f64,
    store: &TrajectoryStore,
    cfg: &IndexComparisonConfig,
    table: &mut Table,
    expected: &[Vec<mst_trajectory::TrajectoryId>],
) {
    let queries = sample_queries(store, cfg.queries, cfg.length, cfg.seed ^ 0xC0);
    let total_pages = index.num_pages();
    let mut times = Vec::new();
    let mut prunings = Vec::new();
    let mut misses = Vec::new();
    let mut agree = true;
    for (q, want) in queries.iter().zip(expected) {
        index.reset_stats();
        let (ms, report) = time_ms(|| {
            bfmst_search(&mut index, store, &q.query, &q.period, &MstConfig::k(cfg.k))
                .expect("valid query")
        });
        let got: Vec<_> = report.matches.iter().map(|m| m.traj).collect();
        agree &= got == *want;
        times.push(ms);
        let stats = index.stats();
        prunings.push(pruning_power(stats.node_reads, total_pages));
        misses.push(stats.buffer.misses as f64);
    }
    table.push_row(vec![
        label.to_string(),
        format!("{:.0}", build_ms),
        format!("{:.1}", index.stats().size_bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.2}", Summary::of(&times).mean),
        format!("{:.3}", Summary::of(&prunings).mean),
        format!("{:.1}", Summary::of(&misses).mean),
        agree.to_string(),
    ]);
}

/// Runs the comparison and returns the result table.
pub fn index_comparison(cfg: &IndexComparisonConfig) -> Table {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let entries = temporal_entries(&store);
    let queries = sample_queries(&store, cfg.queries, cfg.length, cfg.seed ^ 0xC0);

    // Ground truth once (exact scan).
    let expected: Vec<Vec<mst_trajectory::TrajectoryId>> = queries
        .iter()
        .map(|q| {
            mst_search::scan_kmst(
                &store,
                &q.query,
                &q.period,
                cfg.k,
                mst_search::Integration::Exact,
            )
            .expect("scan succeeds")
            .into_iter()
            .map(|m| m.traj)
            .collect()
        })
        .collect();

    let mut table = Table::new(
        "Index comparison: 3D R-tree vs STR-tree vs TB-tree",
        &[
            "Index",
            "Build (ms)",
            "Size (MB)",
            "Query (ms)",
            "Pruning power",
            "Page misses",
            "Agrees with exact scan",
        ],
    );
    measure(
        Rtree3D::new(),
        "3D R-tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    // Bulk-loaded variant of the same R-tree.
    let (bulk_ms, bulk) = time_ms(|| Rtree3D::bulk_load(entries.clone()).expect("bulk load"));
    measure_queries(
        bulk,
        "3D R-tree (bulk)",
        bulk_ms,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    measure(
        StrTree::new(),
        "STR-tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    measure(
        TbTree::new(),
        "TB-tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_agree_with_the_scan() {
        let cfg = IndexComparisonConfig {
            objects: 12,
            samples: 150,
            queries: 5,
            length: 0.3,
            k: 2,
            seed: 3,
        };
        let t = index_comparison(&cfg);
        assert_eq!(t.len(), 4);
        for line in t.to_csv().lines().skip(1) {
            assert_eq!(line.split(',').nth(6).unwrap(), "true", "{line}");
        }
    }
}
