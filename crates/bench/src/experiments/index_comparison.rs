//! Index shootout (extension): the paper evaluates the 3D R-tree and the
//! TB-tree; its reference [13] defines a third structure, the STR-tree,
//! sitting between them; and this reproduction adds a fourth — the
//! whole-trajectory metric tree with triangle-inequality pruning. This
//! experiment builds all of them over the same insertion stream and runs
//! the same k-MST workload through each substrate's own search
//! ([`mst_search::KmstSubstrate::kmst_search`]), reporting build cost,
//! size, query time, pruning, and physical I/O.
//!
//! The metric tree's ball directory is built lazily on its first query,
//! so that query's wall time carries the directory build; pruning power
//! and page misses are unaffected (the directory is distance bookkeeping
//! over cached trajectories, not page I/O).
//!
//! Two pruning columns, deliberately distinct:
//!
//! - **Pruning power** is physical — the fraction of the substrate's own
//!   pages a query did *not* read. The MBB trees win here by
//!   construction: their refinement decodes individual segment pages,
//!   while the metric tree's refinement reads a candidate's whole chain.
//! - **Filter prunes** is logical — candidates the substrate's filter
//!   bound eliminated per query *without* exact refinement
//!   (`candidates.pruned` in the [`mst_search::QueryProfile`] ledger,
//!   identical semantics on every substrate). This is where the metric
//!   tree's triangle-inequality bound does its work: the R-tree's MBB
//!   filter rarely rejects a surfaced candidate outright (its strength
//!   is descent ordering), whereas the ball bound discards candidates
//!   wholesale before any page of theirs is read.

use mst_index::{MetricTree, Rtree3D, StrTree, TbTree, TrajectoryIndexWrite};
use mst_search::{KmstSubstrate, MstConfig, NoShare, QueryProfile, TrajectoryStore};

use crate::datasets::{temporal_entries, DatasetSpec};
use crate::metrics::{pruning_power, time_ms, Summary, Table};
use crate::workload::sample_queries;

/// Configuration of the three-way comparison.
#[derive(Debug, Clone)]
pub struct IndexComparisonConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Queries per index.
    pub queries: usize,
    /// Query length fraction.
    pub length: f64,
    /// k of the k-MST queries.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IndexComparisonConfig {
    fn default() -> Self {
        IndexComparisonConfig {
            objects: 250,
            samples: 2000,
            queries: 50,
            length: 0.25,
            k: 1,
            seed: 7,
        }
    }
}

fn measure<I: TrajectoryIndexWrite + KmstSubstrate>(
    index: I,
    label: &str,
    entries: &[mst_index::LeafEntry],
    store: &TrajectoryStore,
    cfg: &IndexComparisonConfig,
    table: &mut Table,
    expected: &[Vec<mst_trajectory::TrajectoryId>],
) {
    let mut index = index;
    let (build_ms, ()) = time_ms(|| {
        for e in entries {
            index.insert_entry(*e).expect("valid insert");
        }
    });
    measure_queries(index, label, build_ms, store, cfg, table, expected);
}

fn measure_queries<I: TrajectoryIndexWrite + KmstSubstrate>(
    mut index: I,
    label: &str,
    build_ms: f64,
    store: &TrajectoryStore,
    cfg: &IndexComparisonConfig,
    table: &mut Table,
    expected: &[Vec<mst_trajectory::TrajectoryId>],
) {
    let queries = sample_queries(store, cfg.queries, cfg.length, cfg.seed ^ 0xC0);
    let total_pages = index.num_pages();
    let mut times = Vec::new();
    let mut prunings = Vec::new();
    let mut filter_prunes = Vec::new();
    let mut misses = Vec::new();
    let mut agree = true;
    for (q, want) in queries.iter().zip(expected) {
        index.reset_stats();
        let mut profile = QueryProfile::new();
        let (ms, report) = time_ms(|| {
            index
                .kmst_search(
                    store,
                    &q.query,
                    &q.period,
                    &MstConfig::k(cfg.k),
                    &NoShare,
                    &mut profile,
                )
                .expect("valid query")
        });
        let got: Vec<_> = report.matches.iter().map(|m| m.traj).collect();
        agree &= got == *want;
        times.push(ms);
        let stats = index.stats();
        prunings.push(pruning_power(stats.node_reads, total_pages));
        filter_prunes.push(profile.candidates.pruned as f64);
        misses.push(stats.buffer.misses as f64);
    }
    table.push_row(vec![
        label.to_string(),
        format!("{:.0}", build_ms),
        format!("{:.1}", index.stats().size_bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.2}", Summary::of(&times).mean),
        format!("{:.3}", Summary::of(&prunings).mean),
        format!("{:.2}", Summary::of(&filter_prunes).mean),
        format!("{:.1}", Summary::of(&misses).mean),
        agree.to_string(),
    ]);
}

/// Runs the comparison and returns the result table.
pub fn index_comparison(cfg: &IndexComparisonConfig) -> Table {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let entries = temporal_entries(&store);
    let queries = sample_queries(&store, cfg.queries, cfg.length, cfg.seed ^ 0xC0);

    // Ground truth once (exact scan).
    let expected: Vec<Vec<mst_trajectory::TrajectoryId>> = queries
        .iter()
        .map(|q| {
            mst_search::scan_kmst(
                &store,
                &q.query,
                &q.period,
                cfg.k,
                mst_search::Integration::Exact,
            )
            .expect("scan succeeds")
            .into_iter()
            .map(|m| m.traj)
            .collect()
        })
        .collect();

    let mut table = Table::new(
        "Index comparison: 3D R-tree vs STR-tree vs TB-tree vs Metric tree",
        &[
            "Index",
            "Build (ms)",
            "Size (MB)",
            "Query (ms)",
            "Pruning power",
            "Filter prunes",
            "Page misses",
            "Agrees with exact scan",
        ],
    );
    measure(
        Rtree3D::new(),
        "3D R-tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    // Bulk-loaded variant of the same R-tree.
    let (bulk_ms, bulk) = time_ms(|| Rtree3D::bulk_load(entries.clone()).expect("bulk load"));
    measure_queries(
        bulk,
        "3D R-tree (bulk)",
        bulk_ms,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    measure(
        StrTree::new(),
        "STR-tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    measure(
        TbTree::new(),
        "TB-tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    measure(
        MetricTree::new(),
        "Metric tree",
        &entries,
        &store,
        cfg,
        &mut table,
        &expected,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_substrate_agrees_with_the_scan() {
        let cfg = IndexComparisonConfig {
            objects: 12,
            samples: 150,
            queries: 5,
            length: 0.3,
            k: 2,
            seed: 3,
        };
        let t = index_comparison(&cfg);
        assert_eq!(t.len(), 5);
        for line in t.to_csv().lines().skip(1) {
            assert_eq!(line.split(',').nth(7).unwrap(), "true", "{line}");
        }
    }

    #[test]
    fn metric_tree_prunes_at_least_as_hard_as_the_rtree_filter() {
        let cfg = IndexComparisonConfig {
            objects: 16,
            samples: 200,
            queries: 6,
            length: 0.3,
            k: 2,
            seed: 11,
        };
        let t = index_comparison(&cfg);
        let filter_prunes = |label: &str| -> f64 {
            t.to_csv()
                .lines()
                .skip(1)
                .find(|l| l.starts_with(label))
                .and_then(|l| l.split(',').nth(5))
                .and_then(|v| v.parse().ok())
                .expect("filter-prunes cell")
        };
        // Same ledger counter on both rows: candidates the filter bound
        // eliminated per query without exact refinement. The R-tree's
        // MBB filter almost never rejects a surfaced candidate outright
        // (its strength is descent ordering); the triangle-inequality
        // bound must discard at least as many.
        assert!(filter_prunes("Metric tree") >= filter_prunes("3D R-tree"));
    }
}
