//! Replication under load: a real primary/replica pair over loopback
//! TCP and real files, measuring the three numbers an operator of the
//! HA deployment cares about — steady-state replication lag, catch-up
//! throughput after an outage, and client failover time when the
//! primary dies.
//!
//! Emits `BENCH_repl.json`. [`ReplReport::validate`] is the CI
//! tripwire:
//!
//! * **the replica keeps up** — every ingest burst must become visible
//!   on the replica (its `repl_applied_lsn` gauge reaches the acked
//!   LSN), and the p99 ack-to-visible lag must stay under
//!   [`MAX_LAG_P99_MS`] — the ci.sh max-replication-lag gate;
//! * **catch-up replays the backlog** — a replica restarted behind a
//!   write backlog must resume from its recovered LSN and converge to
//!   the primary's head, at a nonzero records/second;
//! * **convergence is bit-identical** — after catch-up, a probe query
//!   answered by the replica must fingerprint-match the primary's
//!   answer;
//! * **failover works and stays honest** — a [`ClientPool`] read must
//!   survive the primary's death by rotating to the replica within
//!   [`MAX_FAILOVER_MS`], and a write without a primary must surface an
//!   error, never silently land on the replica.
//!
//! The stores are real [`mst_wal::FileStore`]s in a scratch directory
//! (fsyncs included) and the wire is real TCP, so absolute numbers
//! reflect the host; the gates are deliberately loose enough for a
//! loaded CI machine.
//!
//! [`ClientPool`]: mst_serve::ClientPool

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Instant;

use mst_exec::IngestOp;
use mst_index::Rtree3D;
use mst_search::MstMatch;
use mst_serve::{
    ClientPool, Request, Response, RetryPolicy, ServeClient, Server, ServerConfig, ServerHandle,
};
use mst_trajectory::{Trajectory, TrajectoryId};
use mst_wal::{DurableDatabase, FileStore, WalConfig};

use crate::datasets::DatasetSpec;
use crate::metrics::time_ms;
use crate::workload::sample_queries;

/// The ci.sh max-replication-lag gate: p99 ack-to-visible lag must stay
/// under this many milliseconds. The replica polls every few
/// milliseconds, so healthy runs land two orders of magnitude below.
pub const MAX_LAG_P99_MS: f64 = 2_500.0;

/// Failover budget: a pool read across the primary's death must answer
/// within this many milliseconds (one dead-socket error plus one
/// replica connect — healthy runs are single-digit).
pub const MAX_FAILOVER_MS: f64 = 5_000.0;

/// Configuration of the replication benchmark.
#[derive(Debug, Clone)]
pub struct ReplBenchConfig {
    /// Seed objects in the primary's store before the replica attaches.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Shards of both durable databases.
    pub shards: usize,
    /// Ingest bursts in the lag phase (each burst's lag is one sample).
    pub bursts: usize,
    /// Insert operations per burst.
    pub burst_size: usize,
    /// Records written while the replica is down (the catch-up backlog).
    pub backlog: usize,
    /// WAL segment rotation threshold, KiB.
    pub rotate_kib: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReplBenchConfig {
    fn default() -> Self {
        ReplBenchConfig {
            objects: 150,
            samples: 200,
            shards: 4,
            bursts: 30,
            burst_size: 8,
            backlog: 400,
            rotate_kib: 256,
            seed: 29,
        }
    }
}

impl ReplBenchConfig {
    /// The small CI configuration.
    pub fn smoke() -> Self {
        ReplBenchConfig {
            objects: 40,
            samples: 60,
            shards: 2,
            bursts: 8,
            burst_size: 4,
            backlog: 80,
            rotate_kib: 64,
            seed: 29,
        }
    }
}

/// The steady-state lag phase's measurements.
#[derive(Debug, Clone)]
pub struct LagPhase {
    /// Ingest bursts applied (each contributes one lag sample).
    pub bursts: u64,
    /// Records acked by the primary across all bursts.
    pub records: u64,
    /// The primary's committed LSN after the last burst.
    pub final_lsn: u64,
    /// Median ack-to-visible lag, milliseconds.
    pub lag_p50_ms: f64,
    /// 99th-percentile ack-to-visible lag, milliseconds.
    pub lag_p99_ms: f64,
    /// Worst observed lag, milliseconds.
    pub lag_max_ms: f64,
    /// Empty replication rounds the primary served (liveness signal).
    pub heartbeats: u64,
    /// The highest LSN the primary saw acked by the replica.
    pub acked_lsn: u64,
    /// Every burst became visible on the replica within the poll budget.
    pub converged: bool,
}

/// The catch-up phase's measurements: a replica restarted behind a
/// write backlog.
#[derive(Debug, Clone)]
pub struct CatchUpPhase {
    /// Records in the backlog the restarted replica had to replay.
    pub backlog_records: u64,
    /// The LSN the replica's recovered store resumed from.
    pub resumed_from_lsn: u64,
    /// The primary's head LSN the replica had to reach.
    pub head_lsn: u64,
    /// Wall-clock from replica start to convergence, milliseconds
    /// (includes the replica's own store recovery).
    pub wall_ms: f64,
    /// Backlog records applied per second.
    pub records_per_sec: f64,
    /// The replica reached the head within the poll budget.
    pub converged: bool,
    /// A probe query answered identically on primary and replica.
    pub answer_identical: bool,
}

/// The failover phase's measurements: the primary dies under a
/// [`ClientPool`](mst_serve::ClientPool).
#[derive(Debug, Clone)]
pub struct FailoverPhase {
    /// Wall-clock of the first pool read after the primary died,
    /// milliseconds — the client-observed failover time.
    pub failover_ms: f64,
    /// The pool ended the read connected to the replica endpoint.
    pub failed_over_to_replica: bool,
    /// The failed-over answer fingerprint-matched the pre-death answer.
    pub answer_identical: bool,
    /// A write with no primary surfaced an error (never landed on the
    /// replica).
    pub write_refused_without_primary: bool,
}

/// The full replication report (`BENCH_repl.json`).
#[derive(Debug, Clone)]
pub struct ReplReport {
    /// The configuration that produced this report.
    pub config: ReplBenchConfig,
    /// Milliseconds to seed the primary's store through the WAL.
    pub seed_ms: f64,
    /// The steady-state lag phase.
    pub lag: LagPhase,
    /// The catch-up phase.
    pub catch_up: CatchUpPhase,
    /// The failover phase.
    pub failover: FailoverPhase,
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    sorted_ms[(sorted_ms.len() - 1) * pct / 100]
}

/// FNV-1a over an answer's ids and dissimilarity bits — the same
/// fingerprint as the serving benchmark, so "identical answers" means
/// the same thing in both reports.
fn fingerprint(matches: &[MstMatch]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for m in matches {
        eat(m.traj.0);
        eat(m.dissim.to_bits());
    }
    h
}

/// Pipelined inserts on one connection: keeps the window full so the
/// primary group-commits the burst, returns the highest acked LSN.
fn pipelined_inserts(client: &mut ServeClient, batch: &[(TrajectoryId, Trajectory)]) -> u64 {
    let window = usize::from(client.depth());
    let mut acked_lsn = 0u64;
    let mut inflight = 0usize;
    let mut next = 0usize;
    let claim = |client: &mut ServeClient, inflight: &mut usize, acked: &mut u64| {
        let (_, response) = client.recv_any().expect("ingest ack");
        *inflight -= 1;
        match response {
            Response::Ingested { lsn, applied } => {
                assert!(applied, "fresh ids always apply");
                *acked = (*acked).max(lsn);
            }
            other => panic!("unexpected response to an insert: {other:?}"),
        }
    };
    while next < batch.len() || inflight > 0 {
        while next < batch.len() && inflight < window {
            let (id, t) = &batch[next];
            client
                .send(&Request::Insert {
                    id: *id,
                    points: t.points().to_vec(),
                })
                .expect("insert send");
            inflight += 1;
            next += 1;
        }
        if inflight > 0 {
            claim(client, &mut inflight, &mut acked_lsn);
        }
    }
    acked_lsn
}

/// Polls a stats connection until the replica's applied-LSN gauge
/// reaches `target`. Returns the elapsed milliseconds, or `None` when
/// the poll budget is exhausted (the replica stalled).
fn await_applied(stats_client: &mut ServeClient, target: u64) -> Option<f64> {
    let start = Instant::now();
    // ~30 s at 1 ms per round: generous for a loaded CI machine, finite
    // so a wedged stream fails the report instead of hanging the bench.
    for _ in 0..30_000 {
        let stats = stats_client.stats().expect("replica stats");
        if stats.counters.repl_applied_lsn >= target {
            return Some(start.elapsed().as_secs_f64() * 1000.0);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    None
}

fn probe_fingerprint(addr: SocketAddr, query: &Trajectory, k: usize) -> u64 {
    let mut client = ServeClient::connect(addr).expect("probe connect");
    match client
        .kmst(query, mst_search::QueryOptions::new().k(k))
        .expect("probe answer")
    {
        Response::Kmst { matches, .. } => fingerprint(&matches),
        other => panic!("unexpected probe response: {other:?}"),
    }
}

/// Runs the replication benchmark: primary and replica in-process on
/// ephemeral loopback ports, stores in a scratch directory.
pub fn repl_bench(cfg: &ReplBenchConfig) -> ReplReport {
    let scratch: PathBuf = std::env::temp_dir().join(format!(
        "mst-bench-repl-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    let primary_dir = scratch.join("primary");
    let replica_dir = scratch.join("replica");
    let wal_config = WalConfig {
        rotate_bytes: cfg.rotate_kib * 1024,
    };
    let retry = RetryPolicy {
        attempts: 4,
        base_us: 2_000,
        max_us: 100_000,
        seed: cfg.seed,
    };

    // Seed fleet + disjoint pools for the lag bursts and the backlog.
    let total = cfg.objects + cfg.bursts * cfg.burst_size + cfg.backlog;
    let store = DatasetSpec::Synthetic {
        objects: total,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let mut all: Vec<(TrajectoryId, Trajectory)> =
        store.iter().map(|(id, t)| (id, t.clone())).collect();
    all.sort_by_key(|(id, _)| id.0);
    let (seed_fleet, rest) = all.split_at(cfg.objects);
    let (lag_pool, backlog_pool) = rest.split_at(cfg.bursts * cfg.burst_size);
    let probe_query = sample_queries(&store, 1, 0.2, cfg.seed ^ 0xFA11)
        .remove(0)
        .query;

    // Primary: seed through the WAL, checkpoint, serve durably.
    let file_store = FileStore::open(&primary_dir).expect("open primary store");
    let mut durable =
        DurableDatabase::<Rtree3D, FileStore>::create(file_store, wal_config.clone(), cfg.shards)
            .expect("create primary store");
    let seed_ops: Vec<IngestOp> = seed_fleet
        .iter()
        .map(|(id, t)| IngestOp::Insert {
            id: *id,
            trajectory: t.clone(),
        })
        .collect();
    let (seed_ms, _) = time_ms(|| {
        durable.apply(&seed_ops).expect("seed primary");
        durable.checkpoint().expect("seed checkpoint");
    });
    let primary =
        Server::start_durable(ServerConfig::new().workers(2), durable).expect("primary start");
    let primary_addr = primary.local_addr();

    // Replica: empty store, bootstraps from the primary's snapshot.
    let replica = start_replica(&replica_dir, primary_addr, wal_config.clone(), retry);
    let replica_addr = replica.local_addr();

    // Lag phase: burst inserts on the primary, then time how long each
    // acked burst takes to become visible on the replica.
    let mut writer = ServeClient::connect_with_depth(primary_addr, 32).expect("writer connect");
    let mut replica_stats = ServeClient::connect(replica_addr).expect("replica stats connect");
    let mut lags: Vec<f64> = Vec::with_capacity(cfg.bursts);
    let mut converged = true;
    let mut final_lsn = 0u64;
    for burst in lag_pool.chunks(cfg.burst_size) {
        let lsn = pipelined_inserts(&mut writer, burst);
        final_lsn = final_lsn.max(lsn);
        match await_applied(&mut replica_stats, lsn) {
            Some(ms) => lags.push(ms),
            None => {
                converged = false;
                break;
            }
        }
    }
    lags.sort_by(|a, b| a.total_cmp(b));
    // The replica acks what it applied on its next poll; give the
    // primary's gauge the same bounded window to observe it.
    let mut acked_lsn = 0u64;
    let mut heartbeats = 0u64;
    for _ in 0..30_000 {
        let counters = writer.stats().expect("primary stats").counters;
        acked_lsn = counters.repl_acked_lsn;
        heartbeats = counters.repl_heartbeats;
        if acked_lsn >= final_lsn {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let lag = LagPhase {
        bursts: lags.len() as u64,
        records: (cfg.bursts * cfg.burst_size) as u64,
        final_lsn,
        lag_p50_ms: percentile(&lags, 50),
        lag_p99_ms: percentile(&lags, 99),
        lag_max_ms: lags.last().copied().unwrap_or(0.0),
        heartbeats,
        acked_lsn,
        converged,
    };
    eprintln!(
        "[repl] lag: {} bursts, p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms, \
         {} heartbeats, acked LSN {}",
        lag.bursts, lag.lag_p50_ms, lag.lag_p99_ms, lag.lag_max_ms, lag.heartbeats, lag.acked_lsn,
    );

    // Catch-up phase: stop the replica, write the backlog, restart the
    // replica over its recovered store, and time the replay to head.
    let resumed_from_lsn = replica_stats
        .stats()
        .expect("pre-restart stats")
        .counters
        .repl_applied_lsn;
    drop(replica_stats);
    replica.shutdown();
    let head_lsn = pipelined_inserts(&mut writer, backlog_pool);
    let (wall_ms, replica) =
        time_ms(|| start_replica(&replica_dir, primary_addr, wal_config.clone(), retry));
    let replica_addr = replica.local_addr();
    let mut replica_stats = ServeClient::connect(replica_addr).expect("replica reconnect");
    let catch_up_converged;
    let wall_ms = match await_applied(&mut replica_stats, head_lsn) {
        Some(extra_ms) => {
            catch_up_converged = true;
            wall_ms + extra_ms
        }
        None => {
            catch_up_converged = false;
            wall_ms
        }
    };
    drop(replica_stats);
    let answer_identical = catch_up_converged
        && probe_fingerprint(primary_addr, &probe_query, 4)
            == probe_fingerprint(replica_addr, &probe_query, 4);
    let catch_up = CatchUpPhase {
        backlog_records: cfg.backlog as u64,
        resumed_from_lsn,
        head_lsn,
        wall_ms,
        records_per_sec: cfg.backlog as f64 / (wall_ms / 1e3).max(1e-9),
        converged: catch_up_converged,
        answer_identical,
    };
    eprintln!(
        "[repl] catch-up: {} records in {:.1} ms ({:.0} records/s), resumed from \
         LSN {}, head {}",
        catch_up.backlog_records,
        catch_up.wall_ms,
        catch_up.records_per_sec,
        catch_up.resumed_from_lsn,
        catch_up.head_lsn,
    );

    // Failover phase: a pool over [primary, replica] loses the primary
    // mid-session; the next read must rotate to the replica.
    drop(writer);
    let mut pool = ClientPool::new(vec![primary_addr, replica_addr], retry).expect("pool build");
    let probe_request = Request::Kmst {
        points: probe_query.points().to_vec(),
        options: mst_search::QueryOptions::new().k(4),
    };
    let truth = match pool.read(&probe_request).expect("pre-death read") {
        Response::Kmst { matches, .. } => fingerprint(&matches),
        other => panic!("unexpected pool response: {other:?}"),
    };
    assert_eq!(
        pool.active_endpoint(),
        Some(0),
        "reads start on the primary"
    );
    primary.shutdown();
    let (failover_ms, failed_over) = time_ms(|| pool.read(&probe_request));
    let failover_fp = match failed_over.expect("failover read") {
        Response::Kmst { matches, .. } => fingerprint(&matches),
        other => panic!("unexpected failover response: {other:?}"),
    };
    let failover = FailoverPhase {
        failover_ms,
        failed_over_to_replica: pool.active_endpoint() == Some(1),
        answer_identical: failover_fp == truth,
        write_refused_without_primary: pool
            .write(&Request::Insert {
                id: TrajectoryId(u64::MAX),
                points: probe_query.points().to_vec(),
            })
            .is_err(),
    };
    eprintln!(
        "[repl] failover: {:.2} ms to the replica (endpoint {:?})",
        failover.failover_ms,
        pool.active_endpoint(),
    );

    drop(pool);
    replica.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    ReplReport {
        config: cfg.clone(),
        seed_ms,
        lag,
        catch_up,
        failover,
    }
}

fn start_replica(
    dir: &std::path::Path,
    primary: SocketAddr,
    wal_config: WalConfig,
    retry: RetryPolicy,
) -> ServerHandle<Rtree3D> {
    let store = FileStore::open(dir).expect("open replica store");
    Server::start_replica(
        ServerConfig::new().workers(2),
        store,
        wal_config,
        primary,
        retry,
    )
    .expect("replica start")
}

impl ReplReport {
    /// Renders the report as a JSON document (`BENCH_repl.json`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let l = &self.lag;
        let u = &self.catch_up;
        let f = &self.failover;
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"repl\",\n  \"protocol_version\": 2,\n");
        out.push_str(&format!(
            "  \"config\": {{\"objects\":{},\"samples\":{},\"shards\":{},\"bursts\":{},\
             \"burst_size\":{},\"backlog\":{},\"rotate_kib\":{},\"seed\":{}}},\n",
            c.objects, c.samples, c.shards, c.bursts, c.burst_size, c.backlog, c.rotate_kib, c.seed,
        ));
        out.push_str(&format!("  \"seed_ms\": {:.3},\n", self.seed_ms));
        out.push_str(&format!(
            "  \"lag\": {{\"bursts\":{},\"records\":{},\"final_lsn\":{},\
             \"lag_p50_ms\":{:.3},\"lag_p99_ms\":{:.3},\"lag_max_ms\":{:.3},\
             \"heartbeats\":{},\"acked_lsn\":{},\"converged\":{}}},\n",
            l.bursts,
            l.records,
            l.final_lsn,
            l.lag_p50_ms,
            l.lag_p99_ms,
            l.lag_max_ms,
            l.heartbeats,
            l.acked_lsn,
            l.converged,
        ));
        out.push_str(&format!(
            "  \"catch_up\": {{\"backlog_records\":{},\"resumed_from_lsn\":{},\
             \"head_lsn\":{},\"wall_ms\":{:.3},\"records_per_sec\":{:.1},\
             \"converged\":{},\"answer_identical\":{}}},\n",
            u.backlog_records,
            u.resumed_from_lsn,
            u.head_lsn,
            u.wall_ms,
            u.records_per_sec,
            u.converged,
            u.answer_identical,
        ));
        out.push_str(&format!(
            "  \"failover\": {{\"failover_ms\":{:.3},\"failed_over_to_replica\":{},\
             \"answer_identical\":{},\"write_refused_without_primary\":{}}}\n",
            f.failover_ms,
            f.failed_over_to_replica,
            f.answer_identical,
            f.write_refused_without_primary,
        ));
        out.push_str("}\n");
        out
    }

    /// The CI tripwire (see the module docs). Returns the list of
    /// failures (empty = healthy).
    pub fn validate(&self) -> Vec<String> {
        let mut failures = Vec::new();
        let l = &self.lag;
        let u = &self.catch_up;
        let f = &self.failover;
        if !l.converged {
            failures.push(format!(
                "a lag burst never became visible on the replica ({} of {} measured)",
                l.bursts, self.config.bursts,
            ));
        }
        if l.lag_p99_ms > MAX_LAG_P99_MS {
            failures.push(format!(
                "replication lag p99 {:.1} ms exceeds the {MAX_LAG_P99_MS:.0} ms gate",
                l.lag_p99_ms,
            ));
        }
        if l.acked_lsn < l.final_lsn {
            failures.push(format!(
                "the primary never saw the replica ack LSN {} (stuck at {})",
                l.final_lsn, l.acked_lsn,
            ));
        }
        if l.heartbeats == 0 {
            failures.push(
                "the primary served zero heartbeats — the replica never idled at \
                 the head"
                    .into(),
            );
        }
        if !u.converged {
            failures.push(format!(
                "catch-up never reached the head LSN {} from {}",
                u.head_lsn, u.resumed_from_lsn,
            ));
        }
        if u.head_lsn <= u.resumed_from_lsn {
            failures.push(format!(
                "the backlog left no work: head {} vs resume point {}",
                u.head_lsn, u.resumed_from_lsn,
            ));
        }
        if u.records_per_sec <= 0.0 {
            failures.push("catch-up throughput is not positive".into());
        }
        if !u.answer_identical {
            failures.push(
                "the caught-up replica answered the probe query differently from \
                 the primary"
                    .into(),
            );
        }
        if !f.failed_over_to_replica {
            failures.push("the pool read did not fail over to the replica".into());
        }
        if f.failover_ms > MAX_FAILOVER_MS {
            failures.push(format!(
                "failover took {:.1} ms, over the {MAX_FAILOVER_MS:.0} ms gate",
                f.failover_ms,
            ));
        }
        if !f.answer_identical {
            failures.push("the failed-over answer diverged from the pre-death answer".into());
        }
        if !f.write_refused_without_primary {
            failures.push("a write with no primary did not surface an error".into());
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_healthy_and_serialises() {
        let report = repl_bench(&ReplBenchConfig {
            objects: 16,
            samples: 40,
            shards: 2,
            bursts: 4,
            burst_size: 3,
            backlog: 20,
            rotate_kib: 16,
            seed: 29,
        });
        let failures = report.validate();
        assert!(failures.is_empty(), "{failures:#?}");
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"repl\""));
        assert!(json.contains("\"lag_p99_ms\""));
        assert!(json.contains("\"records_per_sec\""));
        assert!(json.contains("\"failover_ms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
