//! Figure 9: quality of the similarity measures under TD-TR compression.
//!
//! Every query is a TD-TR-compressed copy of a dataset trajectory; a
//! measure answers correctly when it ranks the original as the most similar
//! trajectory (k = 1). The paper sweeps the TD-TR parameter `p` from 0.1%
//! to 10% and reports the percentage of false results for DISSIM, LCSS,
//! LCSS-I, EDR, and EDR-I.

use mst_prng::Rng;

use mst_baselines::{epsilon_for, normalize_all, Edr, Lcss};
use mst_datagen::{td_tr_fraction, TrucksConfig};
use mst_search::{bfmst_search, MstConfig, NoShare, NoopSink, TrajectoryStore};
use mst_trajectory::{normalize, TimeInterval, Trajectory, TrajectoryId};

use crate::datasets::build_rtree;
use crate::metrics::Table;

/// Configuration of the quality experiment.
#[derive(Debug, Clone)]
pub struct Figure9Config {
    /// Fleet size (paper: 273).
    pub num_trucks: usize,
    /// Number of query trajectories drawn from the fleet (paper: all).
    pub num_queries: usize,
    /// TD-TR parameters to sweep (fractions of trajectory length).
    pub ps: Vec<f64>,
    /// Normalize trajectories for LCSS/EDR (the paper does; DISSIM never
    /// normalizes).
    pub normalize: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Figure9Config {
    fn default() -> Self {
        Figure9Config {
            num_trucks: 273,
            num_queries: 100,
            ps: vec![0.001, 0.01, 0.02, 0.05, 0.10],
            normalize: true,
            seed: 7,
        }
    }
}

/// Per-measure false-result counters for one `p` setting.
#[derive(Debug, Default, Clone, Copy)]
struct FalseCounts {
    dissim: usize,
    lcss: usize,
    lcss_i: usize,
    edr: usize,
    edr_i: usize,
}

/// Runs the quality experiment and reports % false results per measure and
/// `p`.
pub fn figure9(cfg: &Figure9Config) -> Table {
    let fleet = TrucksConfig {
        num_trucks: cfg.num_trucks,
        ..TrucksConfig::paper_like(cfg.seed)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(fleet.clone());
    let mut rtree = build_rtree(&store);
    let duration = fleet[0].time();

    // LCSS/EDR pipeline: per-trajectory normalization plus the epsilon rule
    // (a quarter of the max coordinate standard deviation).
    let prepared: Vec<Trajectory> = if cfg.normalize {
        normalize_all(&fleet)
    } else {
        fleet.clone()
    };
    let epsilon = epsilon_for(prepared.iter());
    let lcss = Lcss::new(epsilon);
    let edr = Edr::new(epsilon);

    // Query sample: a deterministic subset of the fleet.
    let mut ids: Vec<usize> = (0..fleet.len()).collect();
    let mut rng = Rng::seed_from(cfg.seed ^ 0xF19);
    rng.shuffle(&mut ids);
    ids.truncate(cfg.num_queries.min(fleet.len()));

    let mut table = Table::new(
        "Figure 9: false results (%) vs TD-TR parameter p",
        &["p (%)", "DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I"],
    );
    for &p in &cfg.ps {
        let mut counts = FalseCounts::default();
        for &qi in &ids {
            let original_id = TrajectoryId(qi as u64);
            let compressed = td_tr_fraction(&fleet[qi], p);

            // DISSIM: index-based 1-MST over the common period.
            let winner = dissim_winner(&mut rtree, &store, &compressed, &duration);
            if winner != Some(original_id) {
                counts.dissim += 1;
            }

            // The sequence measures see the (optionally normalized)
            // compressed query.
            let prepared_query = if cfg.normalize {
                normalize(&compressed).expect("compressed trajectories are valid")
            } else {
                compressed.clone()
            };
            let best = |score: &dyn Fn(&Trajectory) -> f64| -> usize { argmin(&prepared, score) };

            if best(&|t| lcss.distance(&prepared_query, t)) != qi {
                counts.lcss += 1;
            }
            if best(&|t| lcss.distance_improved(&prepared_query, t)) != qi {
                counts.lcss_i += 1;
            }
            if best(&|t| edr.distance(&prepared_query, t) as f64) != qi {
                counts.edr += 1;
            }
            if best(&|t| edr.distance_improved(&prepared_query, t) as f64) != qi {
                counts.edr_i += 1;
            }
        }
        let pct = |c: usize| format!("{:.1}", 100.0 * c as f64 / ids.len() as f64);
        table.push_row(vec![
            format!("{:.1}", p * 100.0),
            pct(counts.dissim),
            pct(counts.lcss),
            pct(counts.lcss_i),
            pct(counts.edr),
            pct(counts.edr_i),
        ]);
    }
    table
}

fn dissim_winner(
    rtree: &mut mst_index::Rtree3D,
    store: &TrajectoryStore,
    query: &Trajectory,
    period: &TimeInterval,
) -> Option<TrajectoryId> {
    let report = bfmst_search(
        rtree,
        store,
        query,
        period,
        &MstConfig::k(1),
        &NoShare,
        &mut NoopSink,
    )
    .expect("well-formed quality query");
    report.matches.first().map(|m| m.traj)
}

/// Index of the minimizing trajectory (ties broken towards the lower
/// index, deterministically).
fn argmin(data: &[Trajectory], score: &dyn Fn(&Trajectory) -> f64) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::INFINITY;
    for (i, t) in data.iter().enumerate() {
        let s = score(t);
        if s < best_score {
            best = i;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_has_expected_shape_and_dissim_wins() {
        let cfg = Figure9Config {
            num_trucks: 12,
            num_queries: 6,
            ps: vec![0.001, 0.05],
            normalize: true,
            seed: 5,
        };
        let t = figure9(&cfg);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // DISSIM at mild compression must be perfect on well-separated
        // trucks.
        assert_eq!(rows[0][1], 0.0, "DISSIM false rate at p = 0.1%: {csv}");
        // No measure can exceed 100%.
        for row in &rows {
            for &v in &row[1..] {
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }
}
