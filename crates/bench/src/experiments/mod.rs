//! The experiment implementations, one per paper table/figure.

mod ablation;
mod buffer_sweep;
mod figure10;
mod figure8;
mod figure9;
mod index_comparison;
mod kmst_profile;
mod repl;
mod serve;
mod table2;
mod throughput;
mod wal;

pub use ablation::{ablation, AblationConfig};
pub use buffer_sweep::{buffer_sweep, BufferSweepConfig};
pub use figure10::{figure10, Figure10Config};
pub use figure8::figure8;
pub use figure9::{figure9, Figure9Config};
pub use index_comparison::{index_comparison, IndexComparisonConfig};
pub use kmst_profile::{kmst_profile, KmstProfileConfig, KmstProfileReport};
pub use repl::{
    repl_bench, CatchUpPhase, FailoverPhase, LagPhase, ReplBenchConfig, ReplReport,
    MAX_FAILOVER_MS, MAX_LAG_P99_MS,
};
pub use serve::{serve_bench, OverloadPhase, ServeConfig, ServeReport, SteadyPhase};
pub use table2::{table2, Table2Config};
pub use throughput::{throughput, ThroughputConfig, ThroughputPoint, ThroughputReport};
pub use wal::{wal_bench, IngestPhase, RecoveryPhase, WalBenchConfig, WalReport};
