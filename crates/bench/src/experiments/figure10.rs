//! Figure 10: performance of the BFMST algorithm — execution time and
//! pruning power while scaling dataset cardinality (Q1), query length (Q2),
//! and k (Q3), on both the 3D R-tree and the TB-tree.

use mst_index::{Rtree3D, TbTree, TrajectoryIndex};
use mst_search::{bfmst_search, MstConfig, NoShare, NoopSink, TrajectoryStore};

use crate::datasets::{build_rtree, build_tbtree, DatasetSpec, IndexKind};
use crate::metrics::{pruning_power, time_ms, Summary, Table};
use crate::workload::{sample_queries, QuerySet, QuerySpec};

/// Configuration of the performance experiments.
#[derive(Debug, Clone)]
pub struct Figure10Config {
    /// Which Table 3 query set to run.
    pub set: QuerySet,
    /// Scale on the paper's dataset sizes (1.0 = S0100..S1000 with 2000
    /// samples per object).
    pub scale: f64,
    /// Queries per experimental setting (paper: 500).
    pub queries: usize,
    /// Clear the buffer before every query (cold runs); default warm, as in
    /// the paper's buffered setup.
    pub cold: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Figure10Config {
    fn default() -> Self {
        Figure10Config {
            set: QuerySet::Q1,
            scale: 1.0,
            queries: 500,
            cold: false,
            seed: 7,
        }
    }
}

/// Aggregate outcome of one (setting, index) cell.
#[derive(Debug, Clone, Copy)]
struct Cell {
    time: Summary,
    pruning: Summary,
    nodes: Summary,
    misses: Summary,
}

fn run_cell<I: TrajectoryIndex>(
    index: &mut I,
    store: &TrajectoryStore,
    queries: &[QuerySpec],
    k: usize,
    cold: bool,
) -> Cell {
    let total_pages = index.num_pages();
    let mut times = Vec::with_capacity(queries.len());
    let mut prunings = Vec::with_capacity(queries.len());
    let mut nodes = Vec::with_capacity(queries.len());
    let mut misses = Vec::with_capacity(queries.len());
    for q in queries {
        if cold {
            index.clear_buffer().expect("buffer clear");
        }
        index.reset_stats();
        let (ms, report) = time_ms(|| {
            bfmst_search(
                index,
                store,
                &q.query,
                &q.period,
                &MstConfig::k(k),
                &NoShare,
                &mut NoopSink,
            )
            .expect("well-formed performance query")
        });
        let stats = index.stats();
        times.push(ms);
        prunings.push(pruning_power(stats.node_reads, total_pages));
        nodes.push(report.nodes_visited as f64);
        misses.push(stats.buffer.misses as f64);
    }
    Cell {
        time: Summary::of(&times),
        pruning: Summary::of(&prunings),
        nodes: Summary::of(&nodes),
        misses: Summary::of(&misses),
    }
}

/// One sweep point: dataset plus per-index measurements.
fn push_rows(
    table: &mut Table,
    setting: &str,
    dataset: &str,
    k: usize,
    length: f64,
    rtree_cell: Cell,
    tbtree_cell: Cell,
) {
    for (kind, cell) in [
        (IndexKind::Rtree3D, rtree_cell),
        (IndexKind::TbTree, tbtree_cell),
    ] {
        table.push_row(vec![
            setting.to_string(),
            dataset.to_string(),
            format!("{:.0}", length * 100.0),
            k.to_string(),
            kind.label().to_string(),
            format!("{:.2}", cell.time.mean),
            format!("{:.2}", cell.time.std_err),
            format!("{:.3}", cell.pruning.mean),
            format!("{:.0}", cell.nodes.mean),
            format!("{:.1}", cell.misses.mean),
        ]);
    }
}

/// Runs the selected query set and reports execution time (ms/query) and
/// pruning power for both index structures.
pub fn figure10(cfg: &Figure10Config) -> Table {
    let mut table = Table::new(
        &format!("Figure 10 ({:?}): BFMST performance", cfg.set),
        &[
            "Setting",
            "Dataset",
            "Query length (%)",
            "k",
            "Index",
            "Time (ms)",
            "Time stderr",
            "Pruning power",
            "Nodes visited",
            "Page misses",
        ],
    );

    match cfg.set {
        QuerySet::Q1 => {
            for spec in DatasetSpec::paper_ladder(cfg.scale, cfg.seed) {
                let store = spec.build_store();
                let mut rtree = build_rtree(&store);
                let mut tbtree = build_tbtree(&store);
                let queries = sample_queries(&store, cfg.queries, 0.05, cfg.seed ^ 0xA1);
                let rc = run_cell(&mut rtree, &store, &queries, 1, cfg.cold);
                let tc = run_cell(&mut tbtree, &store, &queries, 1, cfg.cold);
                push_rows(&mut table, "Q1", &spec.name(), 1, 0.05, rc, tc);
            }
        }
        QuerySet::Q2 | QuerySet::Q3 => {
            let spec = DatasetSpec::Synthetic {
                objects: ((500.0 * cfg.scale).round() as usize).max(4),
                samples: 2000,
                seed: cfg.seed,
            };
            let store = spec.build_store();
            let mut rtree: Rtree3D = build_rtree(&store);
            let mut tbtree: TbTree = build_tbtree(&store);
            match cfg.set {
                QuerySet::Q2 => {
                    for length in cfg.set.lengths() {
                        let queries = sample_queries(&store, cfg.queries, length, cfg.seed ^ 0xA2);
                        let rc = run_cell(&mut rtree, &store, &queries, 1, cfg.cold);
                        let tc = run_cell(&mut tbtree, &store, &queries, 1, cfg.cold);
                        push_rows(&mut table, "Q2", &spec.name(), 1, length, rc, tc);
                    }
                }
                QuerySet::Q3 => {
                    let queries = sample_queries(&store, cfg.queries, 0.05, cfg.seed ^ 0xA3);
                    for k in cfg.set.ks() {
                        let rc = run_cell(&mut rtree, &store, &queries, k, cfg.cold);
                        let tc = run_cell(&mut tbtree, &store, &queries, k, cfg.cold);
                        push_rows(&mut table, "Q3", &spec.name(), k, 0.05, rc, tc);
                    }
                }
                QuerySet::Q1 => unreachable!(),
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_small_scale_runs_and_prunes() {
        let cfg = Figure10Config {
            set: QuerySet::Q1,
            scale: 0.05, // S0005..S0050
            queries: 4,
            cold: false,
            seed: 3,
        };
        let t = figure10(&cfg);
        assert_eq!(t.len(), 8); // 4 datasets x 2 indexes
                                // Pruning power should be substantial even at toy scale.
        for line in t.to_csv().lines().skip(1) {
            let pruning: f64 = line.split(',').nth(7).unwrap().parse().unwrap();
            assert!(pruning > 0.3, "pruning power {pruning} too weak: {line}");
        }
    }

    #[test]
    fn q3_k_sweep_produces_all_rows() {
        let cfg = Figure10Config {
            set: QuerySet::Q3,
            scale: 0.02, // 10 objects
            queries: 3,
            cold: false,
            seed: 5,
        };
        let t = figure10(&cfg);
        assert_eq!(t.len(), 12); // 6 k values x 2 indexes
    }
}
