//! Batch-execution throughput: queries/second and latency percentiles of
//! the sharded executor across worker and shard counts, on both index
//! substrates — the benchmark face of the `mst-exec` subsystem.
//!
//! Emits `BENCH_throughput.json`. [`ThroughputReport::validate`] is the CI
//! tripwire with three teeth:
//!
//! * **determinism** — every (substrate, shards, threads) point must
//!   return the same answers as every other point of that substrate;
//! * **cooperative pruning liveness** — on multi-shard points, the shared
//!   kth bound must actually prune (`shared_kth_prunes > 0`), and no query
//!   may degrade (no deadlines are configured);
//! * **scaling** — when (and only when) the host has ≥ 4 cores, 4 workers
//!   must beat 1 worker by at least 1.5x on the largest shard count. On
//!   smaller hosts the check is skipped with a loud warning instead of
//!   measuring noise.

use mst_exec::{BatchExecutor, BatchQuery, QueryAnswer, ShardedDatabase};
use mst_search::Query;

use crate::datasets::{DatasetSpec, IndexKind};
use crate::metrics::time_ms;
use crate::workload::{sample_queries, QuerySpec};

/// Configuration of the throughput sweep.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Moving objects in the synthetic dataset.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Queries per batch.
    pub queries: usize,
    /// Query length fraction.
    pub length: f64,
    /// Results per query.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker counts to sweep.
    pub threads: Vec<usize>,
    /// Shard counts to sweep.
    pub shards: Vec<usize>,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            objects: 250,
            samples: 1000,
            queries: 48,
            length: 0.15,
            k: 4,
            seed: 11,
            threads: vec![1, 2, 4, 8],
            shards: vec![1, 2, 4],
        }
    }
}

impl ThroughputConfig {
    /// The CI configuration: 2 threads x 2 shards, small dataset — enough
    /// to prove liveness of every moving part in a debug build.
    pub fn smoke() -> Self {
        ThroughputConfig {
            objects: 60,
            samples: 240,
            queries: 24,
            length: 0.2,
            k: 3,
            seed: 11,
            threads: vec![1, 2],
            shards: vec![1, 2],
        }
    }
}

/// One measured (substrate, shards, threads) point of the sweep.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Which substrate.
    pub kind: IndexKind,
    /// Shard count of the database.
    pub shards: usize,
    /// Worker threads of the executor.
    pub threads: usize,
    /// Whole-batch wall time, milliseconds.
    pub wall_ms: f64,
    /// Queries per second over the batch.
    pub qps: f64,
    /// Median per-query latency, milliseconds (first shard-job start to
    /// last shard-job end).
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Queries whose deadline fired (must be 0: none is configured).
    pub degraded: usize,
    /// Shared-bound threshold evaluations summed over the batch.
    pub shared_kth_evals: u64,
    /// Prunes attributable to the cross-shard bound alone.
    pub shared_kth_prunes: u64,
    /// Per-query answer fingerprints, for cross-point determinism checks.
    fingerprints: Vec<u64>,
}

/// The whole sweep, plus what the host could actually parallelize.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The configuration that produced the report.
    pub config: ThroughputConfig,
    /// Available hardware parallelism at run time (1 when unknown).
    pub host_parallelism: usize,
    /// All measured points, substrate-major, then shards, then threads.
    pub points: Vec<ThroughputPoint>,
}

/// FNV-1a over the answer's ids and value bits: equal answers, equal
/// fingerprints — cheap to compare across dozens of sweep points.
fn fingerprint(answer: &QueryAnswer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match answer {
        QueryAnswer::Kmst(matches) => {
            for m in matches {
                eat(m.traj.0);
                eat(m.dissim.to_bits());
            }
        }
        QueryAnswer::Knn(matches) => {
            for m in matches {
                eat(m.traj.0);
                eat(m.distance.to_bits());
            }
        }
        QueryAnswer::Segments(matches) => {
            for m in matches {
                eat(m.entry.traj.0);
                eat(u64::from(m.entry.seq));
                eat(m.distance.to_bits());
            }
        }
        QueryAnswer::Range(entries) => {
            for e in entries {
                eat(e.traj.0);
                eat(u64::from(e.seq));
            }
        }
    }
    h
}

/// Builds the mixed batch: mostly k-MST, every fourth query kNN, all from
/// the standard Table-3-style workload sampler.
fn build_batch(queries: &[QuerySpec], k: usize) -> Vec<BatchQuery> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 4 == 3 {
                BatchQuery::knn(Query::knn(&q.query).k(k).during(&q.period))
            } else {
                BatchQuery::kmst(Query::kmst(&q.query).k(k).during(&q.period))
            }
            .expect("workload queries cover their periods")
        })
        .collect()
}

fn percentile_ms(sorted_us: &[u64], pct: usize) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = (sorted_us.len() - 1) * pct / 100;
    sorted_us[idx] as f64 / 1000.0
}

/// Runs the full sweep on both substrates.
pub fn throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let queries = sample_queries(&store, cfg.queries, cfg.length, cfg.seed ^ 0xB5);
    let fleet: Vec<_> = store.iter().map(|(id, t)| (id, t.clone())).collect();

    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut points = Vec::new();
    for kind in IndexKind::all() {
        for &shards in &cfg.shards {
            match kind {
                IndexKind::Rtree3D => {
                    let db = ShardedDatabase::with_rtree(shards, fleet.iter().cloned())
                        .expect("shard build");
                    sweep_threads(cfg, kind, shards, &db, &queries, &mut points);
                }
                IndexKind::TbTree => {
                    let db = ShardedDatabase::with_tbtree(shards, fleet.iter().cloned())
                        .expect("shard build");
                    sweep_threads(cfg, kind, shards, &db, &queries, &mut points);
                }
                IndexKind::Metric => {
                    let db = ShardedDatabase::with_metric(shards, fleet.iter().cloned())
                        .expect("shard build");
                    sweep_threads(cfg, kind, shards, &db, &queries, &mut points);
                }
            }
        }
    }
    ThroughputReport {
        config: cfg.clone(),
        host_parallelism,
        points,
    }
}

fn sweep_threads<I: mst_index::TrajectoryIndexWrite + mst_search::KmstSubstrate + Send>(
    cfg: &ThroughputConfig,
    kind: IndexKind,
    shards: usize,
    db: &ShardedDatabase<I>,
    queries: &[QuerySpec],
    points: &mut Vec<ThroughputPoint>,
) {
    for &threads in &cfg.threads {
        // Cold buffers per point so thread counts compete fairly.
        db.set_buffer_capacity(None).expect("buffer reset");
        let batch = build_batch(queries, cfg.k);
        let executor = BatchExecutor::new().workers(threads);
        let (wall_ms, outcome) = time_ms(|| executor.run(db, batch));

        let mut latencies_us = Vec::with_capacity(outcome.outcomes.len());
        let mut fingerprints = Vec::with_capacity(outcome.outcomes.len());
        let mut degraded = 0usize;
        for result in &outcome.outcomes {
            let q = result.as_ref().expect("batch query failed");
            latencies_us.push(q.latency_us);
            fingerprints.push(fingerprint(&q.answer));
            if q.degraded {
                degraded += 1;
            }
        }
        latencies_us.sort_unstable();
        let total = outcome.merged_profile();
        points.push(ThroughputPoint {
            kind,
            shards,
            threads,
            wall_ms,
            qps: if wall_ms > 0.0 {
                outcome.outcomes.len() as f64 / (wall_ms / 1000.0)
            } else {
                f64::INFINITY
            },
            p50_ms: percentile_ms(&latencies_us, 50),
            p99_ms: percentile_ms(&latencies_us, 99),
            degraded,
            shared_kth_evals: total.pruning.shared_kth_evals,
            shared_kth_prunes: total.pruning.shared_kth_prunes,
            fingerprints,
        });
        eprintln!(
            "[throughput] {} shards={} threads={}: {:.1} ms, {:.0} qps, p50 {:.2} ms, p99 {:.2} ms",
            kind.label(),
            shards,
            threads,
            wall_ms,
            points.last().map_or(0.0, |p| p.qps),
            points.last().map_or(0.0, |p| p.p50_ms),
            points.last().map_or(0.0, |p| p.p99_ms),
        );
    }
}

impl ThroughputReport {
    /// Renders the report as a JSON document (`BENCH_throughput.json`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let list = |v: &[usize]| v.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"throughput\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"objects\":{},\"samples\":{},\"queries\":{},\
             \"length\":{},\"k\":{},\"seed\":{},\"threads\":[{}],\"shards\":[{}]}},\n",
            c.objects,
            c.samples,
            c.queries,
            c.length,
            c.k,
            c.seed,
            list(&c.threads),
            list(&c.shards),
        ));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n  \"points\": [\n",
            self.host_parallelism
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"index\":{:?},\"shards\":{},\"threads\":{},\"wall_ms\":{:.3},\
                 \"qps\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"degraded\":{},\
                 \"shared_kth_evals\":{},\"shared_kth_prunes\":{}}}{}\n",
                p.kind.label(),
                p.shards,
                p.threads,
                p.wall_ms,
                p.qps,
                p.p50_ms,
                p.p99_ms,
                p.degraded,
                p.shared_kth_evals,
                p.shared_kth_prunes,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The CI tripwire (see the module docs). Returns the list of failures
    /// (empty = healthy); speedup on under-provisioned hosts is reported on
    /// stderr, never failed.
    pub fn validate(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for kind in IndexKind::all() {
            let of_kind: Vec<&ThroughputPoint> =
                self.points.iter().filter(|p| p.kind == kind).collect();
            let label = kind.label();
            if of_kind.is_empty() {
                failures.push(format!("{label}: no sweep points measured"));
                continue;
            }

            // Determinism: every point of the substrate answered identically.
            let reference = &of_kind[0].fingerprints;
            for p in &of_kind {
                if &p.fingerprints != reference {
                    failures.push(format!(
                        "{label} shards={} threads={}: answers differ from the \
                         shards={} threads={} baseline — executor nondeterminism",
                        p.shards, p.threads, of_kind[0].shards, of_kind[0].threads
                    ));
                }
                if p.degraded != 0 {
                    failures.push(format!(
                        "{label} shards={} threads={}: {} queries degraded with \
                         no deadline configured",
                        p.shards, p.threads, p.degraded
                    ));
                }
            }

            // Cooperative pruning must be alive on multi-shard points.
            let multi: Vec<&&ThroughputPoint> = of_kind.iter().filter(|p| p.shards >= 2).collect();
            if !multi.is_empty() {
                if multi.iter().map(|p| p.shared_kth_evals).sum::<u64>() == 0 {
                    failures.push(format!(
                        "{label}: the shared kth bound was never even consulted \
                         on multi-shard points — bound sharing is disconnected"
                    ));
                }
                if multi.iter().map(|p| p.shared_kth_prunes).sum::<u64>() == 0 {
                    failures.push(format!(
                        "{label}: the cross-shard bound never pruned anything \
                         on multi-shard points — cooperative pruning is dead"
                    ));
                }
            }

            // Scaling: only meaningful when the host can actually run 4
            // workers in parallel.
            let max_shards = of_kind.iter().map(|p| p.shards).max().unwrap_or(1);
            let wall_at = |threads: usize| {
                of_kind
                    .iter()
                    .find(|p| p.shards == max_shards && p.threads == threads)
                    .map(|p| p.wall_ms)
            };
            if let (Some(t1), Some(t4)) = (wall_at(1), wall_at(4)) {
                let speedup = if t4 > 0.0 { t1 / t4 } else { f64::INFINITY };
                if self.host_parallelism >= 4 {
                    if speedup < 1.5 {
                        failures.push(format!(
                            "{label}: 4 workers are only {speedup:.2}x faster than 1 \
                             on shards={max_shards} (need >= 1.5x on this \
                             {}-core host)",
                            self.host_parallelism
                        ));
                    }
                } else {
                    eprintln!(
                        "[throughput] WARNING: host exposes only {} core(s); \
                         skipping the >=1.5x speedup-at-4-threads check for \
                         {label} (measured {speedup:.2}x)",
                        self.host_parallelism
                    );
                }
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ThroughputConfig {
        ThroughputConfig {
            objects: 24,
            samples: 120,
            queries: 8,
            length: 0.25,
            k: 2,
            seed: 11,
            threads: vec![1, 2],
            shards: vec![1, 2],
        }
    }

    #[test]
    fn smoke_report_is_healthy_and_serializes() {
        let report = throughput(&tiny());
        let failures = report.validate();
        assert!(failures.is_empty(), "{failures:#?}");
        // 3 substrates x 2 shard counts x 2 thread counts.
        assert_eq!(report.points.len(), 12);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"throughput\""));
        assert!(json.contains("\"shared_kth_prunes\""));
        assert!(json.contains("\"host_parallelism\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_catches_nondeterminism_and_dead_pruning() {
        let mut report = throughput(&tiny());
        // Corrupt one point's fingerprints: determinism must trip.
        report.points[1].fingerprints[0] ^= 1;
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("nondeterminism")),
            "{failures:#?}"
        );

        // Zero out the shared-bound counters: liveness must trip.
        let mut report = throughput(&tiny());
        for p in &mut report.points {
            p.shared_kth_prunes = 0;
        }
        let failures = report.validate();
        assert!(
            failures.iter().any(|f| f.contains("cooperative pruning")),
            "{failures:#?}"
        );
    }

    #[test]
    fn percentiles_take_the_right_ranks() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!((percentile_ms(&us, 50) - 50.0).abs() < 1e-9);
        assert!((percentile_ms(&us, 99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile_ms(&[], 50), 0.0);
    }
}
