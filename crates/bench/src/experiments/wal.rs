//! Durability cost of the always-on store: group-commit ingest
//! throughput through [`mst_wal::DurableDatabase`] over real files, and
//! recovery time as a function of log length.
//!
//! Emits `BENCH_wal.json`. [`WalReport::validate`] is the CI tripwire:
//!
//! * **group commit amortises** — the ingest phase must issue far fewer
//!   fsyncs than appends (a per-record-fsync regression multiplies the
//!   fsync count by the burst size and trips immediately);
//! * **recovery is exact** — reopening the store must replay exactly
//!   the records written after the last checkpoint, rebuild exactly the
//!   ingested object count, and reproduce a spot-checked trajectory
//!   byte-for-byte;
//! * **checkpoints pay off** — a reopen right after a checkpoint must
//!   replay zero records.
//!
//! The phases run in a scratch directory under the system temp dir,
//! removed afterwards; the store is the real [`mst_wal::FileStore`]
//! (fsyncs included), so absolute numbers reflect the host's disk.

use std::path::PathBuf;

use mst_exec::IngestOp;
use mst_index::Rtree3D;
use mst_trajectory::TrajectoryId;
use mst_wal::{DurableDatabase, FileStore, WalConfig as WalWriterConfig};

use crate::datasets::DatasetSpec;
use crate::metrics::time_ms;

/// Configuration of the durability benchmark.
#[derive(Debug, Clone)]
pub struct WalBenchConfig {
    /// Seed objects in the store before the ingest phase.
    pub objects: usize,
    /// Samples per object.
    pub samples: usize,
    /// Shards of the durable database.
    pub shards: usize,
    /// Ingest bursts (each is one group commit).
    pub bursts: usize,
    /// Insert operations per burst.
    pub burst_size: usize,
    /// WAL segment rotation threshold, KiB.
    pub rotate_kib: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalBenchConfig {
    fn default() -> Self {
        WalBenchConfig {
            objects: 200,
            samples: 200,
            shards: 4,
            bursts: 40,
            burst_size: 16,
            rotate_kib: 512,
            seed: 23,
        }
    }
}

impl WalBenchConfig {
    /// The small CI configuration.
    pub fn smoke() -> Self {
        WalBenchConfig {
            objects: 40,
            samples: 60,
            shards: 2,
            bursts: 8,
            burst_size: 8,
            rotate_kib: 64,
            seed: 23,
        }
    }
}

/// The ingest phase's measurements.
#[derive(Debug, Clone)]
pub struct IngestPhase {
    /// Operations applied (all bursts).
    pub ops: u64,
    /// Wall-clock of the whole phase, milliseconds.
    pub wall_ms: f64,
    /// Operations per second, fsyncs included.
    pub ops_per_sec: f64,
    /// Median burst latency (one group commit), milliseconds.
    pub burst_p50_ms: f64,
    /// 99th-percentile burst latency, milliseconds.
    pub burst_p99_ms: f64,
    /// WAL records appended during the phase.
    pub wal_appends: u64,
    /// Commit fsyncs issued during the phase.
    pub wal_fsyncs: u64,
    /// Segment rotations during the phase.
    pub wal_rotations: u64,
    /// Appends amortised per fsync.
    pub appends_per_fsync: f64,
}

/// The recovery phase's measurements.
#[derive(Debug, Clone)]
pub struct RecoveryPhase {
    /// Records replayed by the long recovery (full post-checkpoint log).
    pub replayed_records: u64,
    /// Wall-clock of the long recovery, milliseconds.
    pub full_ms: f64,
    /// Records replayed right after a checkpoint (must be 0).
    pub replayed_after_checkpoint: u64,
    /// Wall-clock of the post-checkpoint recovery, milliseconds.
    pub after_checkpoint_ms: f64,
    /// Objects in the recovered database.
    pub recovered_objects: u64,
    /// The spot-checked trajectory survived byte-for-byte.
    pub spot_check_identical: bool,
}

/// The full durability report (`BENCH_wal.json`).
#[derive(Debug, Clone)]
pub struct WalReport {
    /// The configuration that produced this report.
    pub config: WalBenchConfig,
    /// Milliseconds to seed the store through the WAL.
    pub seed_ms: f64,
    /// The online-ingest phase.
    pub ingest: IngestPhase,
    /// The recovery sweep.
    pub recovery: RecoveryPhase,
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    sorted_ms[(sorted_ms.len() - 1) * pct / 100]
}

/// Runs the durability benchmark in a scratch directory.
pub fn wal_bench(cfg: &WalBenchConfig) -> WalReport {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("mst-bench-wal-{}-{}", std::process::id(), cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_config = WalWriterConfig {
        rotate_bytes: cfg.rotate_kib * 1024,
    };

    // Seed fleet + a disjoint pool of trajectories to ingest online.
    let store = DatasetSpec::Synthetic {
        objects: cfg.objects + cfg.bursts * cfg.burst_size,
        samples: cfg.samples,
        seed: cfg.seed,
    }
    .build_store();
    let mut all: Vec<(TrajectoryId, mst_trajectory::Trajectory)> =
        store.iter().map(|(id, t)| (id, t.clone())).collect();
    all.sort_by_key(|(id, _)| id.0);
    let (seed_fleet, pool) = all.split_at(cfg.objects);

    let file_store = FileStore::open(&dir).expect("open scratch store");
    let mut db =
        DurableDatabase::<Rtree3D, FileStore>::create(file_store, wal_config.clone(), cfg.shards)
            .expect("create durable store");
    let seed_ops: Vec<IngestOp> = seed_fleet
        .iter()
        .map(|(id, t)| IngestOp::Insert {
            id: *id,
            trajectory: t.clone(),
        })
        .collect();
    let (seed_ms, _) = time_ms(|| {
        db.apply(&seed_ops).expect("seed store");
        db.checkpoint().expect("seed checkpoint");
    });

    // Ingest phase: each burst is one apply_independent call — one
    // validation sweep, one group-commit fsync.
    let before = db.stats();
    let mut burst_ms = Vec::with_capacity(cfg.bursts);
    let (wall_ms, _) = time_ms(|| {
        for burst in pool.chunks(cfg.burst_size) {
            let ops: Vec<IngestOp> = burst
                .iter()
                .map(|(id, t)| IngestOp::Insert {
                    id: *id,
                    trajectory: t.clone(),
                })
                .collect();
            let (ms, results) = time_ms(|| db.apply_independent(&ops).expect("ingest burst"));
            assert!(
                results.iter().all(|r| matches!(r, Ok((_, true)))),
                "fresh ids always apply"
            );
            burst_ms.push(ms);
        }
    });
    let after = db.stats();
    burst_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let ops = (cfg.bursts * cfg.burst_size) as u64;
    let fsyncs = after.wal_fsyncs - before.wal_fsyncs;
    let ingest = IngestPhase {
        ops,
        wall_ms,
        ops_per_sec: ops as f64 / (wall_ms / 1e3).max(1e-9),
        burst_p50_ms: percentile(&burst_ms, 50),
        burst_p99_ms: percentile(&burst_ms, 99),
        wal_appends: after.wal_appends - before.wal_appends,
        wal_fsyncs: fsyncs,
        wal_rotations: after.wal_rotations - before.wal_rotations,
        appends_per_fsync: (after.wal_appends - before.wal_appends) as f64 / (fsyncs.max(1)) as f64,
    };

    // Recovery sweep: reopen with the whole ingest phase in the log,
    // then checkpoint and reopen again (nothing left to replay).
    let spot_id = pool[pool.len() / 2].0;
    let spot_points = pool[pool.len() / 2].1.points().to_vec();
    drop(db);
    let (full_ms, mut recovered) = time_ms(|| {
        DurableDatabase::<Rtree3D, FileStore>::open(
            FileStore::open(&dir).expect("reopen store"),
            wal_config.clone(),
        )
        .expect("recover")
    });
    let replayed_records = recovered.stats().replayed_records;
    let recovered_objects = recovered.database().num_objects() as u64;
    let spot_check_identical = recovered
        .database()
        .trajectory(spot_id)
        .is_some_and(|t| t.points() == spot_points.as_slice());
    recovered.checkpoint().expect("post-ingest checkpoint");
    drop(recovered);
    let (after_checkpoint_ms, reopened) = time_ms(|| {
        DurableDatabase::<Rtree3D, FileStore>::open(
            FileStore::open(&dir).expect("reopen store"),
            wal_config.clone(),
        )
        .expect("recover from checkpoint")
    });
    let replayed_after_checkpoint = reopened.stats().replayed_records;
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    WalReport {
        config: cfg.clone(),
        seed_ms,
        ingest,
        recovery: RecoveryPhase {
            replayed_records,
            full_ms,
            replayed_after_checkpoint,
            after_checkpoint_ms,
            recovered_objects,
            spot_check_identical,
        },
    }
}

impl WalReport {
    /// Renders the report as a JSON document (`BENCH_wal.json`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let i = &self.ingest;
        let r = &self.recovery;
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"wal\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"objects\":{},\"samples\":{},\"shards\":{},\"bursts\":{},\
             \"burst_size\":{},\"rotate_kib\":{},\"seed\":{}}},\n",
            c.objects, c.samples, c.shards, c.bursts, c.burst_size, c.rotate_kib, c.seed,
        ));
        out.push_str(&format!("  \"seed_ms\": {:.3},\n", self.seed_ms));
        out.push_str(&format!(
            "  \"ingest\": {{\"ops\":{},\"wall_ms\":{:.3},\"ops_per_sec\":{:.1},\
             \"burst_p50_ms\":{:.3},\"burst_p99_ms\":{:.3},\"wal_appends\":{},\
             \"wal_fsyncs\":{},\"wal_rotations\":{},\"appends_per_fsync\":{:.2}}},\n",
            i.ops,
            i.wall_ms,
            i.ops_per_sec,
            i.burst_p50_ms,
            i.burst_p99_ms,
            i.wal_appends,
            i.wal_fsyncs,
            i.wal_rotations,
            i.appends_per_fsync,
        ));
        out.push_str(&format!(
            "  \"recovery\": {{\"replayed_records\":{},\"full_ms\":{:.3},\
             \"replayed_after_checkpoint\":{},\"after_checkpoint_ms\":{:.3},\
             \"recovered_objects\":{},\"spot_check_identical\":{}}}\n",
            r.replayed_records,
            r.full_ms,
            r.replayed_after_checkpoint,
            r.after_checkpoint_ms,
            r.recovered_objects,
            r.spot_check_identical,
        ));
        out.push_str("}\n");
        out
    }

    /// The CI tripwire (see the module docs). Returns the list of
    /// failures (empty = healthy).
    pub fn validate(&self) -> Vec<String> {
        let mut failures = Vec::new();
        let c = &self.config;
        let i = &self.ingest;
        let r = &self.recovery;
        let expected_ops = (c.bursts * c.burst_size) as u64;
        if i.ops != expected_ops || i.wal_appends != expected_ops {
            failures.push(format!(
                "ingest accounting: {} ops / {} appends, expected {expected_ops} of both",
                i.ops, i.wal_appends,
            ));
        }
        // One group commit per burst, plus at most one extra fsync per
        // rotation. A per-record-fsync regression lands far outside this.
        let fsync_budget = (c.bursts as u64) + i.wal_rotations + 1;
        if i.wal_fsyncs > fsync_budget {
            failures.push(format!(
                "group commit broke down: {} fsyncs for {} bursts (budget {fsync_budget})",
                i.wal_fsyncs, c.bursts,
            ));
        }
        if r.replayed_records != expected_ops {
            failures.push(format!(
                "recovery replayed {} records, expected exactly the {expected_ops} \
                 post-checkpoint writes",
                r.replayed_records,
            ));
        }
        if r.replayed_after_checkpoint != 0 {
            failures.push(format!(
                "a reopen right after a checkpoint replayed {} records, expected 0",
                r.replayed_after_checkpoint,
            ));
        }
        let expected_objects = (c.objects + c.bursts * c.burst_size) as u64;
        if r.recovered_objects != expected_objects {
            failures.push(format!(
                "recovery rebuilt {} objects, expected {expected_objects}",
                r.recovered_objects,
            ));
        }
        if !r.spot_check_identical {
            failures.push("the spot-checked trajectory did not survive byte-for-byte".into());
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_healthy_and_serialises() {
        let report = wal_bench(&WalBenchConfig {
            objects: 10,
            samples: 30,
            shards: 2,
            bursts: 3,
            burst_size: 4,
            rotate_kib: 16,
            seed: 5,
        });
        assert_eq!(report.validate(), Vec::<String>::new());
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"wal\""));
        assert!(json.contains("\"replayed_records\":12"));
        assert!(json.contains("\"recovered_objects\":22"));
    }
}
