//! Named datasets of the evaluation (Table 2) and index construction.
//!
//! Segments are inserted in global temporal order — the arrival order a
//! moving-object database sees — which is also what the TB-tree's
//! append-at-the-tip design assumes.

use mst_datagen::{GstdConfig, TrucksConfig};
use mst_index::{LeafEntry, MetricTree, Rtree3D, TbTree};
use mst_search::TrajectoryStore;
use mst_trajectory::Trajectory;

/// The index structures under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// The 3D (x, y, t) R-tree.
    Rtree3D,
    /// The trajectory-bundle tree.
    TbTree,
    /// The whole-trajectory metric (ball) tree.
    Metric,
}

impl IndexKind {
    /// Display label used in tables ("3D R-tree" / "TB-tree" /
    /// "Metric tree").
    pub fn label(&self) -> &'static str {
        match self {
            IndexKind::Rtree3D => "3D R-tree",
            IndexKind::TbTree => "TB-tree",
            IndexKind::Metric => "Metric tree",
        }
    }

    /// Every kind, in reporting order (the paper's two MBB substrates
    /// first, then the metric tree extension).
    pub fn all() -> [IndexKind; 3] {
        [IndexKind::Rtree3D, IndexKind::TbTree, IndexKind::Metric]
    }
}

/// A named dataset specification.
#[derive(Debug, Clone)]
pub enum DatasetSpec {
    /// The Trucks-like fleet dataset (quality experiments).
    Trucks {
        /// Number of trucks (paper: 273).
        num_trucks: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A GSTD synthetic dataset `S{objects}` (performance experiments).
    Synthetic {
        /// Number of moving objects.
        objects: usize,
        /// Samples per object (paper: 2000).
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl DatasetSpec {
    /// The paper's synthetic scale ladder S0100..S1000, scaled by `scale`
    /// (1.0 = paper size).
    pub fn paper_ladder(scale: f64, seed: u64) -> Vec<DatasetSpec> {
        [100usize, 250, 500, 1000]
            .into_iter()
            .map(|objects| DatasetSpec::Synthetic {
                objects: ((objects as f64 * scale).round() as usize).max(4),
                samples: 2000,
                seed,
            })
            .collect()
    }

    /// The dataset's display name (`Trucks`, `S0100`, ...).
    pub fn name(&self) -> String {
        match self {
            DatasetSpec::Trucks { .. } => "Trucks".into(),
            DatasetSpec::Synthetic { objects, .. } => format!("S{objects:04}"),
        }
    }

    /// Generates the trajectories.
    pub fn generate(&self) -> Vec<Trajectory> {
        match *self {
            DatasetSpec::Trucks { num_trucks, seed } => TrucksConfig {
                num_trucks,
                ..TrucksConfig::paper_like(seed)
            }
            .generate(),
            DatasetSpec::Synthetic {
                objects,
                samples,
                seed,
            } => GstdConfig {
                num_objects: objects,
                samples_per_object: samples,
                ..GstdConfig::paper_dataset(objects, seed)
            }
            .generate(),
        }
    }

    /// Generates the trajectories into a store with dense ids.
    pub fn build_store(&self) -> TrajectoryStore {
        TrajectoryStore::from_trajectories(self.generate())
    }
}

/// All segments of a store, sorted by start time (the MOD arrival order).
pub fn temporal_entries(store: &TrajectoryStore) -> Vec<LeafEntry> {
    let mut entries: Vec<LeafEntry> = Vec::with_capacity(store.total_segments() as usize);
    for (id, t) in store.iter() {
        for (seq, segment) in t.segments().enumerate() {
            entries.push(LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            });
        }
    }
    entries.sort_by(|a, b| {
        a.segment
            .start()
            .t
            .total_cmp(&b.segment.start().t)
            .then(a.traj.cmp(&b.traj))
    });
    entries
}

/// Builds a 3D R-tree over the store (temporal insertion order).
pub fn build_rtree(store: &TrajectoryStore) -> Rtree3D {
    let mut idx = Rtree3D::new();
    for e in temporal_entries(store) {
        idx.insert(e).expect("valid segments insert cleanly");
    }
    idx
}

/// Builds a TB-tree over the store (temporal insertion order).
pub fn build_tbtree(store: &TrajectoryStore) -> TbTree {
    let mut idx = TbTree::new();
    for e in temporal_entries(store) {
        idx.insert(e).expect("temporal order satisfies the TB-tree");
    }
    idx
}

/// Builds a metric tree over the store (temporal insertion order; the
/// ball directory itself is built lazily on the first k-MST query).
pub fn build_metric(store: &TrajectoryStore) -> MetricTree {
    let mut idx = MetricTree::new();
    for e in temporal_entries(store) {
        idx.insert(e)
            .expect("temporal order satisfies the metric tree");
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_index::TrajectoryIndex;

    #[test]
    fn ladder_scales_names_and_sizes() {
        let specs = DatasetSpec::paper_ladder(0.1, 1);
        let names: Vec<String> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["S0010", "S0025", "S0050", "S0100"]);
    }

    #[test]
    fn temporal_entries_are_sorted() {
        let store = DatasetSpec::Synthetic {
            objects: 5,
            samples: 40,
            seed: 3,
        }
        .build_store();
        let entries = temporal_entries(&store);
        assert_eq!(entries.len(), 5 * 39);
        for w in entries.windows(2) {
            assert!(w[0].segment.start().t <= w[1].segment.start().t);
        }
    }

    #[test]
    fn both_indexes_hold_all_entries() {
        let store = DatasetSpec::Synthetic {
            objects: 6,
            samples: 60,
            seed: 9,
        }
        .build_store();
        let rt = build_rtree(&store);
        let tb = build_tbtree(&store);
        assert_eq!(rt.num_entries(), store.total_segments());
        assert_eq!(tb.num_entries(), store.total_segments());
    }
}
