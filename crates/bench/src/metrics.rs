//! Measurement helpers: wall-clock timing, mean/standard-error aggregation,
//! pruning power, and plain-text/CSV emission of result tables.

use std::fmt::Write as _;
use std::time::Instant;

/// Times a closure, returning `(elapsed milliseconds, result)`.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64() * 1e3, r)
}

/// Mean and standard error of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean (0 for n < 2).
    pub std_err: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                mean: f64::NAN,
                std_err: f64::NAN,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std_err = if n > 1 {
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            (var / n as f64).sqrt()
        } else {
            0.0
        };
        Summary { mean, std_err, n }
    }
}

/// Pruning power: the fraction of the index *not* touched by a query —
/// the paper's "pruned space".
pub fn pruning_power(nodes_read: u64, total_pages: usize) -> f64 {
    if total_pages == 0 {
        return 0.0;
    }
    (1.0 - nodes_read as f64 / total_pages as f64).max(0.0)
}

/// A rectangular result table, printed aligned and optionally saved as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table to stdout and, when `csv_dir` is set, also writes
    /// `<csv_dir>/<slug>.csv`.
    pub fn emit(&self, csv_dir: Option<&std::path::Path>) {
        print!("{}", self.render());
        println!();
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create results directory");
            let slug: String = self
                .title
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = dir.join(format!("{slug}.csv"));
            std::fs::write(&path, self.to_csv()).expect("write CSV");
            println!("[saved {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_std_err() {
        let s = Summary::of(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 4);
        // Sample variance 20/3; std err = sqrt(20/3/4).
        assert!((s.std_err - (20.0 / 3.0 / 4.0f64).sqrt()).abs() < 1e-12);
        let single = Summary::of(&[3.0]);
        assert_eq!(single.std_err, 0.0);
        assert!(Summary::of(&[]).mean.is_nan());
    }

    #[test]
    fn pruning_power_basics() {
        assert_eq!(pruning_power(10, 100), 0.9);
        assert_eq!(pruning_power(0, 100), 1.0);
        assert_eq!(pruning_power(200, 100), 0.0); // clamped
        assert_eq!(pruning_power(5, 0), 0.0);
    }

    #[test]
    fn table_renders_and_csv_escapes() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "x,y".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("a"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn time_ms_measures_something() {
        let (ms, v) = time_ms(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(ms >= 0.0);
        assert!(v > 0);
    }
}
