//! Query workloads (the paper's Table 3).
//!
//! Every performance query is "part of a random data trajectory": pick a
//! trajectory, pick a random window of the requested fraction of the time
//! domain, clip. The query is then guaranteed to cover its period, and —
//! being real data — exercises realistic pruning behaviour.

use mst_prng::Rng;
use mst_search::TrajectoryStore;
use mst_trajectory::{TimeInterval, Trajectory};

/// One MST query: the query trajectory plus its period.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The query trajectory (already clipped to the period).
    pub query: Trajectory,
    /// The query period.
    pub period: TimeInterval,
}

/// Draws `count` queries, each a clip of a random store trajectory with
/// duration `length_fraction` of that trajectory's validity
/// (`length_fraction = 1.0` uses whole trajectories — the paper's "100%
/// query length").
pub fn sample_queries(
    store: &TrajectoryStore,
    count: usize,
    length_fraction: f64,
    seed: u64,
) -> Vec<QuerySpec> {
    assert!(
        length_fraction > 0.0 && length_fraction <= 1.0,
        "length fraction must be in (0, 1]"
    );
    assert!(
        !store.is_empty(),
        "cannot sample queries from an empty store"
    );
    let mut rng = Rng::seed_from(seed);
    let trajs: Vec<&Trajectory> = store.iter().map(|(_, t)| t).collect();
    (0..count)
        .map(|_| {
            let t = trajs[rng.usize_below(trajs.len())];
            let span = t.duration() * length_fraction;
            let latest_start = t.end_time() - span;
            let start = if latest_start > t.start_time() {
                rng.f64_range(t.start_time(), latest_start)
            } else {
                t.start_time()
            };
            let period = TimeInterval::new(start, start + span)
                .expect("window inside the trajectory's validity");
            let query = t.clip(&period).expect("trajectory covers its own window");
            QuerySpec { query, period }
        })
        .collect()
}

/// The paper's Table 3 query-set definitions, parameterized by scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySet {
    /// Q1: scale dataset cardinality; query length 5%, k = 1.
    Q1,
    /// Q2: scale query length 1%..100% on S0500; k = 1.
    Q2,
    /// Q3: scale k 1..10 on S0500; query length 5%.
    Q3,
}

impl QuerySet {
    /// The query-length fractions the set sweeps (singleton except Q2).
    pub fn lengths(&self) -> Vec<f64> {
        match self {
            QuerySet::Q2 => vec![0.01, 0.05, 0.10, 0.25, 0.50, 1.00],
            _ => vec![0.05],
        }
    }

    /// The k values the set sweeps (singleton except Q3).
    pub fn ks(&self) -> Vec<usize> {
        match self {
            QuerySet::Q3 => vec![1, 2, 4, 6, 8, 10],
            _ => vec![1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TrajectoryStore {
        let trajs = (0..5)
            .map(|i| {
                let y = f64::from(i);
                Trajectory::from_txy(
                    &(0..=100)
                        .map(|s| (f64::from(s), f64::from(s) * 0.1, y))
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            })
            .collect();
        TrajectoryStore::from_trajectories(trajs)
    }

    #[test]
    fn queries_cover_their_periods() {
        let s = store();
        for q in sample_queries(&s, 20, 0.25, 7) {
            assert!(q.query.covers(&q.period));
            assert!((q.period.duration() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn full_length_queries_use_whole_trajectories() {
        let s = store();
        for q in sample_queries(&s, 5, 1.0, 3) {
            assert_eq!(q.period.start(), 0.0);
            assert_eq!(q.period.end(), 100.0);
            assert_eq!(q.query.num_points(), 101);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = store();
        let a = sample_queries(&s, 10, 0.1, 42);
        let b = sample_queries(&s, 10, 0.1, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.period, y.period);
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn table3_sweeps() {
        assert_eq!(QuerySet::Q1.lengths(), vec![0.05]);
        assert_eq!(QuerySet::Q2.lengths().len(), 6);
        assert_eq!(QuerySet::Q3.ks(), vec![1, 2, 4, 6, 8, 10]);
        assert_eq!(QuerySet::Q1.ks(), vec![1]);
    }
}
