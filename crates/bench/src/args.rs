//! A deliberately tiny `--flag value` parser so the experiment binaries
//! need no CLI dependency.

use std::collections::HashMap;

/// Parsed command line: positional words plus `--key value` pairs
/// (`--key` alone is a boolean flag).
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses the given tokens (usually `std::env::args().skip(1)`).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => String::from("true"),
                };
                out.flags.insert(key.to_string(), value);
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// Parses the process's own command line.
    pub fn from_env() -> Self {
        Args::parse(std::env::args().skip(1))
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A flag parsed into `T`, or `default` when absent. Panics with a
    /// usage-style message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|e| panic!("--{key} {raw}: {e}")),
        }
    }

    /// True when `--key` was passed (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = parse("q1 --queries 50 --scale 0.5 --cold");
        assert_eq!(a.positional(), ["q1"]);
        assert_eq!(a.get("queries", 10usize), 50);
        assert_eq!(a.get("scale", 1.0f64), 0.5);
        assert!(a.has("cold"));
        assert!(!a.has("warm"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn boolean_flag_before_another_flag() {
        let a = parse("--cold --queries 5");
        assert!(a.has("cold"));
        assert_eq!(a.get("queries", 0usize), 5);
    }
}
