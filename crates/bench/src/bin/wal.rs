//! Emits `BENCH_wal.json`: group-commit ingest throughput of the
//! durable store over real files, and recovery time against log length.
//!
//! Usage: `cargo run -p mst-bench --release --bin wal --
//! [--smoke] [--objects 200] [--samples 200] [--shards 4] [--bursts 40]
//! [--burst-size 16] [--rotate-kib 512] [--seed 23]
//! [--out BENCH_wal.json]`
//!
//! `--smoke` selects the small CI configuration. The process exits
//! non-zero when [`WalReport::validate`] detects a group-commit
//! breakdown (fsyncs tracking records instead of bursts), an inexact
//! replay, a recovery that lost or mangled objects, or a checkpoint
//! that failed to truncate the replay work.
//!
//! [`WalReport::validate`]: mst_bench::experiments::WalReport::validate

use mst_bench::args::Args;
use mst_bench::experiments::{wal_bench, WalBenchConfig};

fn main() {
    let args = Args::from_env();
    let base = if args.has("smoke") {
        WalBenchConfig::smoke()
    } else {
        WalBenchConfig::default()
    };
    let cfg = WalBenchConfig {
        objects: args.get("objects", base.objects),
        samples: args.get("samples", base.samples),
        shards: args.get("shards", base.shards),
        bursts: args.get("bursts", base.bursts),
        burst_size: args.get("burst-size", base.burst_size),
        rotate_kib: args.get("rotate-kib", base.rotate_kib),
        seed: args.get("seed", base.seed),
    };
    eprintln!(
        "[wal] {} seed objects x {} samples in {} shards, then {} bursts x {} inserts \
         (rotate at {} KiB)...",
        cfg.objects, cfg.samples, cfg.shards, cfg.bursts, cfg.burst_size, cfg.rotate_kib,
    );
    let report = wal_bench(&cfg);
    let out = args.get("out", String::from("BENCH_wal.json"));
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("[wal] wrote {out}");
    let failures = report.validate();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[wal] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "[wal] {:.0} ops/s at {:.1} appends/fsync; full recovery {:.1} ms for {} records, \
         {:.1} ms after a checkpoint",
        report.ingest.ops_per_sec,
        report.ingest.appends_per_fsync,
        report.recovery.full_ms,
        report.recovery.replayed_records,
        report.recovery.after_checkpoint_ms,
    );
}
