//! Regenerates the paper's Table 2 (dataset and index summary).
//!
//! Usage: `cargo run -p mst-bench --release --bin table2 -- [--scale 1.0]
//! [--seed 7] [--no-trucks] [--csv results]`

use mst_bench::args::Args;
use mst_bench::experiments::{table2, Table2Config};

fn main() {
    let args = Args::from_env();
    let cfg = Table2Config {
        scale: args.get("scale", 1.0),
        include_trucks: !args.has("no-trucks"),
        seed: args.get("seed", 7),
    };
    eprintln!(
        "[table2] building datasets and indexes (scale {})...",
        cfg.scale
    );
    let table = table2(&cfg);
    table.emit(csv_dir(&args).as_deref());
}

fn csv_dir(args: &Args) -> Option<std::path::PathBuf> {
    args.has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))))
}
