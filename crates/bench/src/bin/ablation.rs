//! Runs the ablation study (BFMST ingredients vs the exact scan).
//!
//! Usage: `cargo run -p mst-bench --release --bin ablation -- [--objects 250]
//! [--samples 2000] [--queries 25] [--length 0.05] [--k 1] [--seed 7]
//! [--csv results]`

use mst_bench::args::Args;
use mst_bench::experiments::{ablation, AblationConfig};

fn main() {
    let args = Args::from_env();
    let cfg = AblationConfig {
        objects: args.get("objects", 250),
        samples: args.get("samples", 2000),
        queries: args.get("queries", 25),
        length: args.get("length", 0.05),
        k: args.get("k", 1),
        seed: args.get("seed", 7),
    };
    eprintln!(
        "[ablation] {} objects, {} queries...",
        cfg.objects, cfg.queries
    );
    let table = ablation(&cfg);
    let dir = args
        .has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))));
    table.emit(dir.as_deref());
}
