//! Emits `BENCH_repl.json`: steady-state replication lag, catch-up
//! throughput after a replica outage, and client failover time, over a
//! real primary/replica pair on loopback TCP with file-backed stores.
//!
//! Usage: `cargo run -p mst-bench --release --bin repl --
//! [--smoke] [--objects 150] [--samples 200] [--shards 4] [--bursts 30]
//! [--burst-size 8] [--backlog 400] [--rotate-kib 256] [--seed 29]
//! [--out BENCH_repl.json]`
//!
//! `--smoke` selects the small CI configuration. The process exits
//! non-zero when [`ReplReport::validate`] trips: a burst that never
//! became visible on the replica, a p99 lag over the gate, a catch-up
//! that failed to converge bit-identically, a failover that missed the
//! replica or exceeded its budget, or a write that landed with no
//! primary alive.
//!
//! [`ReplReport::validate`]: mst_bench::experiments::ReplReport::validate

use mst_bench::args::Args;
use mst_bench::experiments::{repl_bench, ReplBenchConfig};

fn main() {
    let args = Args::from_env();
    let base = if args.has("smoke") {
        ReplBenchConfig::smoke()
    } else {
        ReplBenchConfig::default()
    };
    let cfg = ReplBenchConfig {
        objects: args.get("objects", base.objects),
        samples: args.get("samples", base.samples),
        shards: args.get("shards", base.shards),
        bursts: args.get("bursts", base.bursts),
        burst_size: args.get("burst-size", base.burst_size),
        backlog: args.get("backlog", base.backlog),
        rotate_kib: args.get("rotate-kib", base.rotate_kib),
        seed: args.get("seed", base.seed),
    };
    eprintln!(
        "[repl] {} seed objects x {} samples in {} shards; {} bursts x {} inserts \
         under a live replica, a {}-record backlog, then a failover...",
        cfg.objects, cfg.samples, cfg.shards, cfg.bursts, cfg.burst_size, cfg.backlog,
    );
    let report = repl_bench(&cfg);
    let out = args.get("out", String::from("BENCH_repl.json"));
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("[repl] wrote {out}");
    let failures = report.validate();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[repl] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "[repl] lag p50 {:.2} ms / p99 {:.2} ms; catch-up {:.0} records/s over {} \
         records; failover {:.2} ms",
        report.lag.lag_p50_ms,
        report.lag.lag_p99_ms,
        report.catch_up.records_per_sec,
        report.catch_up.backlog_records,
        report.failover.failover_ms,
    );
}
