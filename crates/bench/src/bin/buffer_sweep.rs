//! Runs the buffer-size ablation (physical I/O vs buffer capacity).
//!
//! Usage: `cargo run -p mst-bench --release --bin buffer_sweep --
//! [--objects 250] [--samples 2000] [--queries 50] [--length 0.25]
//! [--seed 7] [--csv results]`

use mst_bench::args::Args;
use mst_bench::experiments::{buffer_sweep, BufferSweepConfig};

fn main() {
    let args = Args::from_env();
    let cfg = BufferSweepConfig {
        objects: args.get("objects", 250),
        samples: args.get("samples", 2000),
        queries: args.get("queries", 50),
        length: args.get("length", 0.25),
        seed: args.get("seed", 7),
        ..BufferSweepConfig::default()
    };
    eprintln!(
        "[buffer_sweep] {} objects, {} queries, fractions {:?}...",
        cfg.objects, cfg.queries, cfg.fractions
    );
    let table = buffer_sweep(&cfg);
    let dir = args
        .has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))));
    table.emit(dir.as_deref());
}
