//! Regenerates the paper's Figure 8 (TD-TR compression degrees).
//!
//! Usage: `cargo run -p mst-bench --release --bin figure8 -- [--trucks 273]
//! [--trajectory 0] [--seed 7] [--csv results]`

use mst_bench::args::Args;
use mst_bench::experiments::figure8;

fn main() {
    let args = Args::from_env();
    let table = figure8(
        args.get("trucks", 273),
        args.get("trajectory", 0),
        args.get("seed", 7),
    );
    let dir = args
        .has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))));
    table.emit(dir.as_deref());
}
