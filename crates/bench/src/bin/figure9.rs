//! Regenerates the paper's Figure 9 (quality: false results vs TD-TR p).
//!
//! Usage: `cargo run -p mst-bench --release --bin figure9 -- [--trucks 273]
//! [--queries 100] [--seed 7] [--no-normalize] [--csv results]`

use mst_bench::args::Args;
use mst_bench::experiments::{figure9, Figure9Config};

fn main() {
    let args = Args::from_env();
    let cfg = Figure9Config {
        num_trucks: args.get("trucks", 273),
        num_queries: args.get("queries", 100),
        normalize: !args.has("no-normalize"),
        seed: args.get("seed", 7),
        ..Figure9Config::default()
    };
    eprintln!(
        "[figure9] {} trucks, {} queries, p sweep {:?}...",
        cfg.num_trucks, cfg.num_queries, cfg.ps
    );
    let table = figure9(&cfg);
    let dir = args
        .has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))));
    table.emit(dir.as_deref());
}
