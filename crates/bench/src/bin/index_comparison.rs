//! Index shootout (3D R-tree / bulk R-tree / STR-tree / TB-tree /
//! Metric tree) over the same insertion stream and k-MST workload.
//!
//! Usage: `cargo run -p mst-bench --release --bin index_comparison --
//! [--objects 250] [--samples 2000] [--queries 50] [--length 0.25]
//! [--k 1] [--seed 7] [--csv results]`
//!
//! Exits non-zero when any substrate's answers disagree with the exact
//! linear scan, so CI can use a small configuration as a cross-substrate
//! correctness smoke.

use mst_bench::args::Args;
use mst_bench::experiments::{index_comparison, IndexComparisonConfig};

fn main() {
    let args = Args::from_env();
    let cfg = IndexComparisonConfig {
        objects: args.get("objects", 250),
        samples: args.get("samples", 2000),
        queries: args.get("queries", 50),
        length: args.get("length", 0.25),
        k: args.get("k", 1),
        seed: args.get("seed", 7),
    };
    eprintln!(
        "[index_comparison] {} objects, {} queries...",
        cfg.objects, cfg.queries
    );
    let table = index_comparison(&cfg);
    let dir = args
        .has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))));
    table.emit(dir.as_deref());
    let disagreeing: Vec<String> = table
        .to_csv()
        .lines()
        .skip(1)
        .filter(|line| line.rsplit(',').next() != Some("true"))
        .map(|line| line.split(',').next().unwrap_or(line).to_string())
        .collect();
    if !disagreeing.is_empty() {
        eprintln!("[index_comparison] FAILED: {disagreeing:?} disagree with the exact scan");
        std::process::exit(1);
    }
    eprintln!("[index_comparison] every substrate agrees with the exact scan");
}
