//! Emits `BENCH_serve.json`: end-to-end loopback throughput of the
//! `mst-serve` TCP layer under concurrent pipelined clients, plus a
//! deliberate saturation probe of its admission control and a repeat
//! probe of its answer cache.
//!
//! Usage: `cargo run -p mst-bench --release --bin serve --
//! [--smoke] [--objects 200] [--samples 600] [--clients 8]
//! [--requests 24] [--depth 8] [--cache-repeats 40] [--k 4] [--seed 11]
//! [--min-qps 0] [--out BENCH_serve.json]`
//!
//! `--smoke` selects the small CI configuration. The process exits
//! non-zero when [`ServeReport::validate`] detects serving
//! nondeterminism, counter/client disagreement, silent query loss, an
//! overload probe that never saw typed backpressure, or a cold answer
//! cache — or when `--min-qps` is set and the steady phase fell short.
//!
//! [`ServeReport::validate`]: mst_bench::experiments::ServeReport::validate

use mst_bench::args::Args;
use mst_bench::experiments::{serve_bench, ServeConfig};

fn main() {
    let args = Args::from_env();
    let base = if args.has("smoke") {
        ServeConfig::smoke()
    } else {
        ServeConfig::default()
    };
    let cfg = ServeConfig {
        objects: args.get("objects", base.objects),
        samples: args.get("samples", base.samples),
        shards: args.get("shards", base.shards),
        workers: args.get("workers", base.workers),
        queue: args.get("queue", base.queue),
        clients: args.get("clients", base.clients),
        requests_per_client: args.get("requests", base.requests_per_client),
        depth: args.get("depth", base.depth),
        probe_requests: args.get("probe-requests", base.probe_requests),
        cache_repeats: args.get("cache-repeats", base.cache_repeats),
        k: args.get("k", base.k),
        length: args.get("length", base.length),
        seed: args.get("seed", base.seed),
    };
    let min_qps: f64 = args.get("min-qps", 0.0);
    eprintln!(
        "[serve] {} objects x {} samples behind {} shards, {} workers, queue {}, \
         {} clients x {} requests at depth {}...",
        cfg.objects,
        cfg.samples,
        cfg.shards,
        cfg.workers,
        cfg.queue,
        cfg.clients,
        cfg.requests_per_client,
        cfg.depth,
    );
    let report = serve_bench(&cfg);
    let out = args.get("out", String::from("BENCH_serve.json"));
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("[serve] wrote {out}");
    let mut failures = report.validate();
    if min_qps > 0.0 && report.steady.qps < min_qps {
        failures.push(format!(
            "steady throughput {:.0} qps fell below the --min-qps gate of {min_qps:.0}",
            report.steady.qps
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[serve] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "[serve] deterministic pipelined answers, honest counters, live typed \
         backpressure, warm answer cache ({} host cores)",
        report.host_parallelism
    );
}
