//! Emits `BENCH_serve.json`: end-to-end loopback throughput of the
//! `mst-serve` TCP layer under concurrent clients, plus a deliberate
//! saturation probe of its admission control.
//!
//! Usage: `cargo run -p mst-bench --release --bin serve --
//! [--smoke] [--objects 200] [--samples 600] [--clients 8]
//! [--requests 24] [--k 4] [--seed 11] [--out BENCH_serve.json]`
//!
//! `--smoke` selects the small CI configuration. The process exits
//! non-zero when [`ServeReport::validate`] detects serving
//! nondeterminism, counter/client disagreement, silent query loss, or an
//! overload probe that never saw typed backpressure.
//!
//! [`ServeReport::validate`]: mst_bench::experiments::ServeReport::validate

use mst_bench::args::Args;
use mst_bench::experiments::{serve_bench, ServeConfig};

fn main() {
    let args = Args::from_env();
    let base = if args.has("smoke") {
        ServeConfig::smoke()
    } else {
        ServeConfig::default()
    };
    let cfg = ServeConfig {
        objects: args.get("objects", base.objects),
        samples: args.get("samples", base.samples),
        shards: args.get("shards", base.shards),
        workers: args.get("workers", base.workers),
        queue: args.get("queue", base.queue),
        clients: args.get("clients", base.clients),
        requests_per_client: args.get("requests", base.requests_per_client),
        probe_requests: args.get("probe-requests", base.probe_requests),
        k: args.get("k", base.k),
        length: args.get("length", base.length),
        seed: args.get("seed", base.seed),
    };
    eprintln!(
        "[serve] {} objects x {} samples behind {} shards, {} workers, queue {}, \
         {} clients x {} requests...",
        cfg.objects,
        cfg.samples,
        cfg.shards,
        cfg.workers,
        cfg.queue,
        cfg.clients,
        cfg.requests_per_client,
    );
    let report = serve_bench(&cfg);
    let out = args.get("out", String::from("BENCH_serve.json"));
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("[serve] wrote {out}");
    let failures = report.validate();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[serve] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "[serve] deterministic answers across clients, honest counters, live typed \
         backpressure ({} host cores)",
        report.host_parallelism
    );
}
