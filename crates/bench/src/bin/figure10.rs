//! Regenerates the paper's Figure 10 (BFMST performance: Q1/Q2/Q3).
//!
//! Usage: `cargo run -p mst-bench --release --bin figure10 -- [q1|q2|q3|all]
//! [--scale 1.0] [--queries 500] [--cold] [--seed 7] [--csv results]`

use mst_bench::args::Args;
use mst_bench::experiments::{figure10, Figure10Config};
use mst_bench::workload::QuerySet;

fn main() {
    let args = Args::from_env();
    let which = args
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_ascii_lowercase();
    let sets: Vec<QuerySet> = match which.as_str() {
        "q1" => vec![QuerySet::Q1],
        "q2" => vec![QuerySet::Q2],
        "q3" => vec![QuerySet::Q3],
        "all" => vec![QuerySet::Q1, QuerySet::Q2, QuerySet::Q3],
        other => panic!("unknown query set {other:?}; expected q1, q2, q3, or all"),
    };
    let dir = args
        .has("csv")
        .then(|| std::path::PathBuf::from(args.get("csv", String::from("results"))));
    for set in sets {
        let cfg = Figure10Config {
            set,
            scale: args.get("scale", 1.0),
            queries: args.get("queries", 500),
            cold: args.has("cold"),
            seed: args.get("seed", 7),
        };
        eprintln!(
            "[figure10] {:?}: scale {}, {} queries per setting...",
            cfg.set, cfg.scale, cfg.queries
        );
        figure10(&cfg).emit(dir.as_deref());
    }
}
