//! Emits `BENCH_throughput.json`: batch-execution throughput and latency
//! percentiles of the sharded `mst-exec` executor across worker and shard
//! counts, on both substrates.
//!
//! Usage: `cargo run -p mst-bench --release --bin throughput --
//! [--smoke] [--objects 250] [--samples 1000] [--queries 48]
//! [--length 0.15] [--k 4] [--seed 11] [--out BENCH_throughput.json]`
//!
//! `--smoke` selects the small CI configuration (2 threads x 2 shards).
//! The process exits non-zero when [`ThroughputReport::validate`] detects
//! executor nondeterminism, dead cross-shard pruning, spurious
//! degradation, or (on hosts with >= 4 cores) sub-1.5x scaling at 4
//! workers.

use mst_bench::args::Args;
use mst_bench::experiments::{throughput, ThroughputConfig};

fn main() {
    let args = Args::from_env();
    let base = if args.has("smoke") {
        ThroughputConfig::smoke()
    } else {
        ThroughputConfig::default()
    };
    let cfg = ThroughputConfig {
        objects: args.get("objects", base.objects),
        samples: args.get("samples", base.samples),
        queries: args.get("queries", base.queries),
        length: args.get("length", base.length),
        k: args.get("k", base.k),
        seed: args.get("seed", base.seed),
        threads: base.threads,
        shards: base.shards,
    };
    eprintln!(
        "[throughput] {} objects x {} samples, {}-query batches, k={}, threads {:?}, shards {:?}...",
        cfg.objects, cfg.samples, cfg.queries, cfg.k, cfg.threads, cfg.shards
    );
    let report = throughput(&cfg);
    let out = args.get("out", String::from("BENCH_throughput.json"));
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("[throughput] wrote {out}");
    let failures = report.validate();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[throughput] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "[throughput] deterministic answers, live cross-shard pruning, no degradation \
         ({} host cores)",
        report.host_parallelism
    );
}
