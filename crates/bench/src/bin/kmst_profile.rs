//! Emits `BENCH_kmst.json`: per-query k-MST observability profiles
//! (pruning, I/O, evaluation counters + wall time) on all three
//! substrates (3D R-tree, TB-tree, metric tree).
//!
//! Usage: `cargo run -p mst-bench --release --bin kmst_profile --
//! [--smoke] [--objects 250] [--samples 2000] [--queries 50]
//! [--length 0.25] [--k 2] [--seed 7] [--out BENCH_kmst.json]`
//!
//! `--smoke` selects the small CI configuration. The process exits
//! non-zero when [`KmstProfileReport::validate`] finds a dead counter,
//! so CI trips the moment an instrumentation hook falls off.

use mst_bench::args::Args;
use mst_bench::experiments::{kmst_profile, KmstProfileConfig};

fn main() {
    let args = Args::from_env();
    let base = if args.has("smoke") {
        KmstProfileConfig::smoke()
    } else {
        KmstProfileConfig::default()
    };
    let cfg = KmstProfileConfig {
        objects: args.get("objects", base.objects),
        samples: args.get("samples", base.samples),
        queries: args.get("queries", base.queries),
        length: args.get("length", base.length),
        k: args.get("k", base.k),
        seed: args.get("seed", base.seed),
    };
    eprintln!(
        "[kmst_profile] {} objects x {} samples, {} queries, k={}...",
        cfg.objects, cfg.samples, cfg.queries, cfg.k
    );
    let report = kmst_profile(&cfg);
    let out = args.get("out", String::from("BENCH_kmst.json"));
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("[kmst_profile] wrote {out}");
    let failures = report.validate();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[kmst_profile] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[kmst_profile] all counters live on every substrate");
}
