//! Experiment harness reproducing every table and figure of the ICDE 2007
//! evaluation (Section 5), plus the ablations DESIGN.md calls out.
//!
//! Each experiment is a library function (so integration tests can run it
//! at reduced scale) with a thin binary wrapper:
//!
//! | paper item | binary | library entry |
//! |---|---|---|
//! | Table 2 | `table2` | [`experiments::table2`] |
//! | Figure 8 | `figure8` | [`experiments::figure8`] |
//! | Figure 9 | `figure9` | [`experiments::figure9`] |
//! | Figure 10 (Q1/Q2/Q3) | `figure10` | [`experiments::figure10`] |
//! | ablations | `ablation` | [`experiments::ablation`] |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod args;
pub mod datasets;
pub mod experiments;
pub mod metrics;
pub mod workload;
