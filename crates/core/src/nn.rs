//! Historical nearest-neighbour search for a *moving* query point — the
//! query type of Frentzos, Gratsias, Pelekis & Theodoridis (the paper's
//! reference [6]) whose MINDIST machinery the MST algorithm reuses.
//!
//! Given a query trajectory and a period, find the k trajectories whose
//! *closest approach* to the query during the period is smallest (together
//! with the approach distance and the instant it happens). Unlike DISSIM
//! this is a min-, not an integral-aggregate, so candidates never need to
//! be fully assembled: the best-first traversal terminates as soon as the
//! next group's lower bound exceeds the current k-th best approach
//! distance.
//!
//! Like [`crate::bfmst`], the search consumes any
//! [`CandidateSource`] and has a single generic entry point; pass
//! [`NoShare`](crate::share::NoShare) / [`NoopSink`](crate::metrics::NoopSink)
//! for a plain isolated, untraced query.

use mst_index::TrajectoryIndex;
use mst_trajectory::kinematics::DistanceTrinomial;
use mst_trajectory::{TimeInterval, Trajectory, TrajectoryId};

use std::collections::HashMap;

use crate::descent::{CandidateSource, MbbDescent};
use crate::metrics::{PruningBound, QueryMetrics};
use crate::share::BoundShare;
use crate::{Result, SearchError};

/// One nearest-neighbour answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnMatch {
    /// The matched trajectory.
    pub traj: TrajectoryId,
    /// Its minimum distance from the query during the period.
    pub distance: f64,
    /// The instant of closest approach.
    pub time: f64,
}

/// Outcome of a nearest-neighbour search.
#[derive(Debug, Clone, Default)]
pub struct NnOutcome {
    /// Up to k nearest trajectories, ascending approach distance.
    pub matches: Vec<NnMatch>,
    /// True when [`BoundShare::poll_stop`] abandoned the traversal (e.g. a
    /// deadline): `matches` is best-so-far and may be incomplete.
    pub deadline_hit: bool,
}

/// Finds the k trajectories with the smallest closest-approach distance to
/// `query` during `period`, in ascending distance order.
///
/// The single generic entry point: `share` injects an external upper bound
/// on the global kth approach distance into the termination test, receives
/// every local kth improvement, and can stop the traversal (deadlines);
/// `metrics` receives heap traffic, node and buffer accesses, and candidate
/// discoveries. The closest-approach distance is a min-aggregate, so the
/// same soundness argument as the DISSIM bound applies: another shard's
/// kth best distance upper-bounds the global kth, and every node farther
/// than it is irrelevant on this shard too.
pub fn nearest_trajectories<I: TrajectoryIndex, M: QueryMetrics, B: BoundShare>(
    index: &mut I,
    query: &Trajectory,
    period: &TimeInterval,
    k: usize,
    share: &B,
    metrics: &mut M,
) -> Result<NnOutcome> {
    if k == 0 {
        return Ok(NnOutcome::default());
    }
    if !query.covers(period) {
        return Err(SearchError::QueryOutsidePeriod {
            period: (period.start(), period.end()),
            valid: (query.start_time(), query.end_time()),
        });
    }
    let q = query.clip(period)?;
    let mut source = MbbDescent::new(index, &q, period, metrics);
    nearest_trajectories_source(&mut source, &q, period, k, share, metrics)
}

/// The substrate-agnostic core of [`nearest_trajectories`]: consumes any
/// [`CandidateSource`] whose groups arrive in non-decreasing lower-bound
/// order. `q` must already be clipped to `period`.
pub fn nearest_trajectories_source<S: CandidateSource, M: QueryMetrics, B: BoundShare>(
    source: &mut S,
    q: &Trajectory,
    period: &TimeInterval,
    k: usize,
    share: &B,
    metrics: &mut M,
) -> Result<NnOutcome> {
    let mut outcome = NnOutcome::default();
    // Best approach found so far, per trajectory.
    let mut best: HashMap<TrajectoryId, (f64, f64)> = HashMap::new();

    while let Some(mindist) = source.pop(metrics) {
        // Cooperative cancellation (per-query deadlines).
        if share.poll_stop() {
            outcome.deadline_hit = true;
            break;
        }
        // Termination: the k-th best candidate distance cannot improve once
        // every remaining node is farther away. The local kth feeds the
        // shared bound, and the shared bound (the global kth, possibly
        // discovered on another shard) terminates this shard even before k
        // local candidates exist.
        let local_kth = if best.len() >= k {
            let mut dists: Vec<f64> = best.values().map(|&(d, _)| d).collect();
            let (_, kth, _) = dists.select_nth_unstable_by(k - 1, f64::total_cmp);
            let kth = *kth;
            if kth.is_finite() {
                share.publish_kth(kth);
            }
            kth
        } else {
            f64::INFINITY
        };
        let hint = share.kth_hint();
        if hint < local_kth {
            metrics.bound_evals(PruningBound::SharedKth, 1);
        }
        let tau = local_kth.min(hint);
        if mindist > tau {
            if mindist <= local_kth {
                // Only the shared bound justified stopping here: the whole
                // remaining queue is another shard's kill.
                metrics.pruned_by(PruningBound::SharedKth, source.pending() + 1);
            }
            break;
        }
        let Some(group) = source.expand(metrics)? else {
            continue;
        };
        for e in group.entries {
            let Some(window) = e.segment.time().intersect(period) else {
                continue;
            };
            let approach = if window.is_instant() {
                let qp = q.position_at(window.start())?;
                let tp = e.segment.position_at(window.start())?;
                (qp.distance(&tp), window.start())
            } else {
                segment_closest_approach(q, &e.segment, &window)?
            };
            let slot = match best.entry(e.traj) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    metrics.candidate_seen();
                    v.insert((f64::INFINITY, 0.0))
                }
            };
            if approach.0 < slot.0 {
                *slot = approach;
            }
        }
    }
    metrics.candidates_pending(best.len() as u64);

    let mut out: Vec<NnMatch> = best
        .into_iter()
        .map(|(traj, (distance, time))| NnMatch {
            traj,
            distance,
            time,
        })
        .collect();
    out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.traj.cmp(&b.traj)));
    out.truncate(k);
    outcome.matches = out;
    Ok(outcome)
}

/// Closest approach between the query and one data segment over `window`:
/// minimum over the co-temporal pieces of the distance trinomial.
fn segment_closest_approach(
    q: &Trajectory,
    segment: &mst_trajectory::Segment,
    window: &TimeInterval,
) -> Result<(f64, f64)> {
    let mut best = (f64::INFINITY, window.start());
    let first = q
        .segment_index_at(window.start())
        .map_err(SearchError::Trajectory)?;
    for i in first..q.num_segments() {
        let q_seg = q.segment(i);
        if q_seg.time().start() >= window.end() {
            break;
        }
        let Some(sub) = q_seg.time().intersect(window) else {
            continue;
        };
        if sub.is_instant() {
            continue;
        }
        // `sub` has positive duration and lies inside both segments'
        // spans, so both clips succeed; a failed clip means the caller
        // handed us an inconsistent window, and skipping the piece keeps
        // the accumulated distance a sound lower bound.
        let (Some(qs), Some(ds)) = (q_seg.clip(&sub), segment.clip(&sub)) else {
            debug_assert!(false, "window {sub:?} escaped the overlapping segments");
            continue;
        };
        let tri = DistanceTrinomial::between(&qs, &ds)?;
        let m = tri.min_on(sub.start(), sub.end());
        if m.0 < best.0 {
            best = m;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NoopSink;
    use crate::share::NoShare;
    use crate::TrajectoryStore;
    use mst_index::Rtree3D;

    fn nn(
        idx: &mut Rtree3D,
        q: &Trajectory,
        period: &TimeInterval,
        k: usize,
    ) -> Result<Vec<NnMatch>> {
        Ok(nearest_trajectories(idx, q, period, k, &NoShare, &mut NoopSink)?.matches)
    }

    fn build(store: &TrajectoryStore) -> Rtree3D {
        let mut idx = Rtree3D::new();
        for (id, t) in store.iter() {
            idx.insert_trajectory(id, t).unwrap();
        }
        idx
    }

    /// Brute-force oracle: dense time sampling of pairwise distances.
    fn oracle(
        store: &TrajectoryStore,
        q: &Trajectory,
        period: &TimeInterval,
        k: usize,
    ) -> Vec<(TrajectoryId, f64)> {
        let mut out: Vec<(TrajectoryId, f64)> = store
            .iter()
            .filter_map(|(id, t)| {
                let window = period.intersect(&t.time())?;
                if window.is_instant() {
                    return None;
                }
                let mut best = f64::INFINITY;
                for i in 0..=20_000 {
                    let tt =
                        window.start() + (window.end() - window.start()) * f64::from(i) / 20_000.0;
                    let d = q.position_at(tt).ok()?.distance(&t.position_at(tt).ok()?);
                    best = best.min(d);
                }
                Some((id, best))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    fn zoo() -> TrajectoryStore {
        // Crossers, parallels, and a diverging walker.
        let trajs = vec![
            Trajectory::from_txy(&[(0.0, 0.0, 5.0), (10.0, 10.0, 5.0)]).unwrap(),
            Trajectory::from_txy(&[(0.0, 10.0, 0.0), (10.0, 0.0, 0.3)]).unwrap(),
            Trajectory::from_txy(&[(0.0, 3.0, -8.0), (5.0, 5.0, -1.0), (10.0, 9.0, -9.0)]).unwrap(),
            Trajectory::from_txy(&[(0.0, -5.0, 20.0), (10.0, 15.0, 22.0)]).unwrap(),
        ];
        TrajectoryStore::from_trajectories(trajs)
    }

    #[test]
    fn matches_dense_sampling_oracle() {
        let store = zoo();
        let mut idx = build(&store);
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let got = nn(&mut idx, &q, &period, 4).unwrap();
        let want = oracle(&store, &q, &period, 4);
        assert_eq!(got.len(), want.len());
        for (g, (wid, wd)) in got.iter().zip(&want) {
            assert_eq!(g.traj, *wid);
            // The analytic result must be <= the sampled one (it is exact).
            assert!(g.distance <= wd + 1e-6, "{} vs {wd}", g.distance);
            assert!((g.distance - wd).abs() < 1e-3);
        }
    }

    #[test]
    fn reports_the_instant_of_closest_approach() {
        let store = zoo();
        let mut idx = build(&store);
        // Trajectory 1 crosses the diagonal query near t = 5.
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let got = nn(&mut idx, &q, &period, 1).unwrap();
        assert_eq!(got[0].traj, TrajectoryId(1));
        assert!((got[0].time - 5.0).abs() < 0.2, "time {}", got[0].time);
        // Verify the reported distance is realized at the reported time.
        let t1 = store.get(TrajectoryId(1)).unwrap();
        let realized = q
            .position_at(got[0].time)
            .unwrap()
            .distance(&t1.position_at(got[0].time).unwrap());
        assert!((realized - got[0].distance).abs() < 1e-9);
    }

    #[test]
    fn k_and_period_edge_cases() {
        let store = zoo();
        let mut idx = build(&store);
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        assert!(nn(&mut idx, &q, &period, 0).unwrap().is_empty());
        let all = nn(&mut idx, &q, &period, 100).unwrap();
        assert_eq!(all.len(), 4);
        // Query not covering the period errors.
        let bad = TimeInterval::new(0.0, 20.0).unwrap();
        assert!(nn(&mut idx, &q, &bad, 1).is_err());
    }

    #[test]
    fn nn_prunes_far_subtrees() {
        // A larger dataset: NN should touch a fraction of the index.
        let trajs: Vec<Trajectory> = (0..60)
            .map(|i| {
                let y = f64::from(i) * 10.0;
                Trajectory::from_txy(
                    &(0..=50)
                        .map(|s| (f64::from(s), f64::from(s), y))
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            })
            .collect();
        let store = TrajectoryStore::from_trajectories(trajs);
        let mut idx = build(&store);
        let q = store.get(TrajectoryId(30)).unwrap().clone();
        let period = TimeInterval::new(0.0, 50.0).unwrap();
        idx.reset_stats();
        let got = nn(&mut idx, &q, &period, 1).unwrap();
        assert_eq!(got[0].traj, TrajectoryId(30));
        assert_eq!(got[0].distance, 0.0);
        let reads = idx.stats().node_reads as usize;
        assert!(
            reads < idx.num_pages() / 2,
            "NN read {reads} of {} pages",
            idx.num_pages()
        );
    }
}
