//! BFMSTSearch: the best-first k-Most-Similar-Trajectory algorithm
//! (Section 4, Figure 7 of the paper).
//!
//! The algorithm consumes any [`CandidateSource`] — a priority stream of
//! candidate segment groups in increasing lower-bound order (for the MBB
//! substrates, `MINDIST(Q, N)`: the distance-browsing strategy of Hjaltason
//! & Samet) — incrementally assembling candidate trajectories from the
//! segment entries it encounters:
//!
//! * each candidate keeps the DISSIM enclosure of its retrieved pieces plus
//!   its OPTDISSIM / PESDISSIM speed-dependent bounds ([`crate::bounds`]);
//! * **heuristic 1** rejects a candidate whose OPTDISSIM exceeds the current
//!   k-th best upper key — it provably cannot enter the answer;
//! * **heuristic 2** terminates the whole search when the popped group's
//!   MINDISSIMINC exceeds that threshold — every unseen segment is at least
//!   the group bound away, so no remaining or future candidate can qualify;
//! * with trapezoid integration, the **error management** of Section 4.4
//!   keeps the answer exact: bound comparisons use the enclosure's safe
//!   side, and a post-processing step recomputes the closed-form DISSIM for
//!   every candidate whose enclosure straddles the decision boundary.
//!
//! There is a single entry point, [`bfmst_search`], generic over the
//! metrics sink and the cross-shard bound share; pass [`NoopSink`] /
//! [`NoShare`](crate::share::NoShare) for a plain untraced search — the
//! hooks monomorphize away, so the observed and unobserved paths are the
//! same code and tracing can never change an answer.

use std::collections::{HashMap, HashSet};

use mst_index::TrajectoryIndex;
use mst_trajectory::{Segment, TimeInterval, Trajectory, TrajectoryId};

use crate::bounds::Candidate;
use crate::descent::{CandidateSource, MbbDescent};
use crate::dissim::{dissim_between_traced, piece, Dissim, Integration};
use crate::metrics::{PruningBound, QueryMetrics};
use crate::share::BoundShare;
use crate::topk::UpperKeys;
use crate::{MstMatch, Result, SearchError, TrajectoryStore};

/// Configuration of a BFMST search.
#[derive(Debug, Clone, Copy)]
pub struct MstConfig {
    /// Number of most similar trajectories to return.
    pub k: usize,
    /// Integration scheme for per-piece DISSIM contributions.
    pub integration: Integration,
    /// Apply Section 4.4: error-aware comparisons plus exact post-processing
    /// (only meaningful with [`Integration::Trapezoid`]).
    pub error_management: bool,
    /// Enable heuristic 1 (candidate rejection by OPTDISSIM). Disabling it
    /// is only useful for ablation studies.
    pub use_heuristic1: bool,
    /// Enable heuristic 2 (termination by MINDISSIMINC). Disabling it is
    /// only useful for ablation studies.
    pub use_heuristic2: bool,
    /// Optional dissimilarity ceiling: trajectories with DISSIM above it are
    /// excluded even when fewer than `k` results remain (a *range-MST*
    /// query: "everything within DISSIM theta, up to k results"). The
    /// ceiling also feeds the pruning threshold, so a tight theta makes
    /// queries cheaper from the first node on.
    pub max_dissim: Option<f64>,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            k: 1,
            integration: Integration::Trapezoid,
            error_management: true,
            use_heuristic1: true,
            use_heuristic2: true,
            max_dissim: None,
        }
    }
}

impl MstConfig {
    /// Convenience constructor for a k-MST query with the paper's defaults.
    pub fn k(k: usize) -> Self {
        MstConfig {
            k,
            ..MstConfig::default()
        }
    }

    /// Convenience constructor for a range-MST query: up to `k` results
    /// with DISSIM at most `theta`.
    pub fn within(k: usize, theta: f64) -> Self {
        MstConfig {
            k,
            max_dissim: Some(theta),
            ..MstConfig::default()
        }
    }
}

/// Outcome of a BFMST search: the matches plus traversal accounting.
#[derive(Debug, Clone, Default)]
pub struct SearchReport {
    /// The k most similar trajectories, ascending dissimilarity.
    pub matches: Vec<MstMatch>,
    /// Nodes popped and processed.
    pub nodes_visited: u64,
    /// Leaf nodes among them.
    pub leaves_visited: u64,
    /// Leaf entries matched against the query.
    pub entries_matched: u64,
    /// Distinct candidate trajectories touched.
    pub candidates_seen: usize,
    /// Candidates rejected by heuristic 1.
    pub candidates_rejected: usize,
    /// Candidates fully assembled.
    pub candidates_completed: usize,
    /// True when heuristic 2 cut the traversal short.
    pub terminated_early: bool,
    /// Exact integrals recomputed by the post-processing step.
    pub exact_recomputations: usize,
    /// True when an external stop signal ([`BoundShare::poll_stop`], e.g. a
    /// per-query deadline) abandoned the traversal: `matches` holds the
    /// best-so-far answer, which may be incomplete.
    pub deadline_hit: bool,
}

/// Runs the best-first k-MST search of `query` over `period` against
/// `index`, with `store` supplying full trajectories for the exact
/// post-processing step.
///
/// Returns the k most similar trajectories in ascending DISSIM order. With
/// `error_management` (or exact integration) the result is *exact*: it
/// matches the linear scan with closed-form integration.
///
/// This is the single generic entry point: `share` injects an external
/// upper bound on the global kth DISSIM into both heuristics (pass
/// [`NoShare`](crate::share::NoShare) for an isolated query) and `metrics`
/// receives every traversal, buffer, bound, and candidate event (pass
/// [`&mut NoopSink`](crate::metrics::NoopSink) to trace nothing; a
/// [`crate::QueryProfile`] collects everything). Prunes that only the
/// shared bound justifies are attributed to [`PruningBound::SharedKth`],
/// keeping cross-shard pruning observable in the profile.
pub fn bfmst_search<I: TrajectoryIndex, M: QueryMetrics, B: BoundShare>(
    index: &mut I,
    store: &TrajectoryStore,
    query: &Trajectory,
    period: &TimeInterval,
    config: &MstConfig,
    share: &B,
    metrics: &mut M,
) -> Result<SearchReport> {
    if config.k == 0 {
        return Ok(SearchReport::default());
    }
    if !query.covers(period) {
        return Err(SearchError::QueryOutsidePeriod {
            period: (period.start(), period.end()),
            valid: (query.start_time(), query.end_time()),
        });
    }
    if period.is_instant() {
        return Ok(SearchReport::default());
    }
    let q = query.clip(period)?;
    let vmax = index.max_speed() + q.max_speed();
    let mut source = MbbDescent::new(index, &q, period, metrics);
    bfmst_search_source(&mut source, store, &q, period, config, vmax, share, metrics)
}

/// The substrate-agnostic core of [`bfmst_search`]: consumes any
/// [`CandidateSource`] whose groups arrive in non-decreasing lower-bound
/// order. `q` must already be clipped to `period`, and `vmax` is the sum of
/// the query's and the substrate's maximum speeds (the envelope slope both
/// speed-dependent bounds use).
#[allow(clippy::too_many_arguments)]
pub fn bfmst_search_source<S: CandidateSource, M: QueryMetrics, B: BoundShare>(
    source: &mut S,
    store: &TrajectoryStore,
    q: &Trajectory,
    period: &TimeInterval,
    config: &MstConfig,
    vmax: f64,
    share: &B,
    metrics: &mut M,
) -> Result<SearchReport> {
    let mut report = SearchReport::default();
    let span = period.duration();
    let merge_eps = span.max(1.0) * 1e-9;

    let mut valid: HashMap<TrajectoryId, Candidate> = HashMap::new();
    let mut completed: HashMap<TrajectoryId, Dissim> = HashMap::new();
    let mut rejected: HashSet<TrajectoryId> = HashSet::new();
    let mut upper = UpperKeys::new(config.k);
    let ceiling = config.max_dissim.unwrap_or(f64::INFINITY);

    while let Some(mindist) = source.pop(metrics) {
        // Cooperative cancellation (per-query deadlines): abandon the
        // traversal and fall through to best-so-far finalization.
        if share.poll_stop() {
            report.deadline_hit = true;
            break;
        }
        // Heuristic 2: groups arrive in increasing lower bound, so once the
        // group-level MINDISSIMINC exceeds the k-th best upper key nothing
        // later can qualify either — stop the whole search. The threshold
        // folds in the cross-shard hint: another shard's kth upper key
        // bounds the global kth DISSIM just as well as a local one.
        let hint = share.kth_hint();
        if config.use_heuristic2
            && (!completed.is_empty() || ceiling.is_finite() || hint.is_finite())
        {
            let local_tau = upper.kth().min(ceiling);
            let tau = local_tau.min(hint);
            if hint < local_tau {
                metrics.bound_evals(PruningBound::SharedKth, 1);
            }
            // Cheap test first (the paper's optimization): only evaluate the
            // per-candidate OPTDISSIMINC values when the blanket bound
            // MINDIST * span already clears the threshold.
            if tau.is_finite() {
                metrics.bound_evals(PruningBound::MinDissimInc, 1);
                if mindist * span > tau {
                    metrics.bound_evals(PruningBound::OptDissimInc, valid.len() as u64);
                    let min_inc = valid
                        .values()
                        .map(|c| c.opt_dissim_inc(period, mindist))
                        .fold(f64::INFINITY, f64::min);
                    if min_inc > tau {
                        // The popped head plus everything still queued is
                        // discarded unvisited; the pending candidates are
                        // each certified out by their OPTDISSIMINC.
                        metrics.early_termination();
                        let local_fires = local_tau.is_finite()
                            && mindist * span > local_tau
                            && min_inc > local_tau;
                        if hint < local_tau && !local_fires {
                            // Only the shared bound justified stopping:
                            // all discarded work is another shard's kill.
                            metrics.pruned_by(
                                PruningBound::SharedKth,
                                source.pending() + 1 + valid.len() as u64,
                            );
                        } else {
                            metrics.pruned_by(PruningBound::MinDissimInc, source.pending() + 1);
                            metrics.pruned_by(PruningBound::OptDissimInc, valid.len() as u64);
                        }
                        report.terminated_early = true;
                        break;
                    }
                }
            }
        }

        let Some(group) = source.expand(metrics)? else {
            continue;
        };
        let mut entries = group.entries;
        // Plane sweep over the group in temporal order (the TB-tree stores
        // leaves temporally sorted already; the R-tree needs the sort —
        // Figure 7, line 10).
        entries.sort_by(|a, b| {
            a.segment
                .start()
                .t
                .total_cmp(&b.segment.start().t)
                .then(a.traj.cmp(&b.traj))
        });
        for e in entries {
            if rejected.contains(&e.traj) {
                continue;
            }
            let Some(window) = e.segment.time().intersect(period) else {
                continue;
            };
            if window.is_instant() {
                continue;
            }
            report.entries_matched += 1;
            let cand = match valid.entry(e.traj) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    metrics.candidate_seen();
                    v.insert(Candidate::new(e.traj, merge_eps))
                }
            };
            match_entry(q, &e.segment, &window, config.integration, cand, metrics)?;

            if cand.is_complete(period) {
                let value = cand.value();
                valid.remove(&e.traj);
                completed.insert(e.traj, value);
                report.candidates_completed += 1;
                metrics.candidate_refined();
                if upper.update(e.traj, value.upper()) {
                    let kth = upper.kth();
                    if kth.is_finite() {
                        share.publish_kth(kth);
                    }
                }
            } else {
                metrics.bound_evals(PruningBound::Ldd, cand.num_gaps(period) as u64);
                metrics.bound_evals(PruningBound::PesDissim, 1);
                let pes = cand.pes_dissim(period, vmax);
                if upper.update(e.traj, pes) {
                    metrics.pruned_by(PruningBound::PesDissim, 1);
                    let kth = upper.kth();
                    if kth.is_finite() {
                        share.publish_kth(kth);
                    }
                }
                if config.use_heuristic1 {
                    let local_tau = upper.kth().min(ceiling);
                    let hint = share.kth_hint();
                    let tau = local_tau.min(hint);
                    if hint < local_tau {
                        metrics.bound_evals(PruningBound::SharedKth, 1);
                    }
                    metrics.bound_evals(PruningBound::Ldd, cand.num_gaps(period) as u64);
                    metrics.bound_evals(PruningBound::OptDissim, 1);
                    // The enclosure's safe side: OPTDISSIM already folds the
                    // approximation error in (Section 4.4's "PESDISSIM -
                    // ERR" discipline on the lower side).
                    let opt = cand.opt_dissim(period, vmax);
                    if opt > tau {
                        valid.remove(&e.traj);
                        rejected.insert(e.traj);
                        report.candidates_rejected += 1;
                        metrics.candidate_pruned();
                        if opt > local_tau {
                            metrics.pruned_by(PruningBound::OptDissim, 1);
                        } else {
                            // The local threshold alone would have kept
                            // this candidate alive: the prune is another
                            // shard's discovery at work.
                            metrics.pruned_by(PruningBound::SharedKth, 1);
                        }
                    }
                }
            }
        }
    }

    report.nodes_visited = source.nodes_visited();
    report.leaves_visited = source.leaves_visited();
    report.candidates_seen = completed.len() + valid.len() + rejected.len();
    metrics.candidates_pending(valid.len() as u64);
    report.matches = finalize(
        store,
        q,
        period,
        config,
        completed,
        &mut report.exact_recomputations,
        metrics,
    )?;
    Ok(report)
}

/// Matches one indexed segment against the query over `window`, feeding
/// every co-temporal piece into the candidate.
fn match_entry<M: QueryMetrics>(
    q: &Trajectory,
    data_segment: &Segment,
    window: &TimeInterval,
    integration: Integration,
    cand: &mut Candidate,
    metrics: &mut M,
) -> Result<()> {
    let first = q
        .segment_index_at(window.start())
        .map_err(SearchError::Trajectory)?;
    for i in first..q.num_segments() {
        let q_seg = q.segment(i);
        if q_seg.time().start() >= window.end() {
            break;
        }
        let Some(sub) = q_seg.time().intersect(window) else {
            continue;
        };
        if sub.is_instant() {
            continue;
        }
        // `sub` has positive duration and lies inside both segments'
        // spans, so both clips succeed; a failed clip means the caller
        // handed us an inconsistent window, and skipping the piece keeps
        // the accumulated distance a sound lower bound.
        let (Some(qs), Some(ds)) = (q_seg.clip(&sub), data_segment.clip(&sub)) else {
            debug_assert!(false, "window {sub:?} escaped the overlapping segments");
            continue;
        };
        let p = piece(&qs, &ds, integration)?;
        metrics.piece_eval(integration);
        cand.add_piece(&p);
    }
    Ok(())
}

/// Sorts the completed candidates, applies the exact post-processing of
/// Section 4.4 when requested, and truncates to k.
fn finalize<M: QueryMetrics>(
    store: &TrajectoryStore,
    q: &Trajectory,
    period: &TimeInterval,
    config: &MstConfig,
    completed: HashMap<TrajectoryId, Dissim>,
    exact_recomputations: &mut usize,
    metrics: &mut M,
) -> Result<Vec<MstMatch>> {
    let mut all: Vec<(TrajectoryId, Dissim)> = completed.into_iter().collect();
    all.sort_by(|a, b| a.1.approx.total_cmp(&b.1.approx).then(a.0.cmp(&b.0)));
    let ceiling = config.max_dissim.unwrap_or(f64::INFINITY);

    let needs_exact =
        config.error_management && config.integration == Integration::Trapezoid && !all.is_empty();
    if !needs_exact {
        return Ok(all
            .into_iter()
            .filter(|(_, d)| d.approx <= ceiling)
            .take(config.k)
            .map(|(traj, d)| MstMatch {
                traj,
                dissim: d.approx,
            })
            .collect());
    }

    // K upper-bounds the k-th smallest exact DISSIM; every candidate whose
    // enclosure dips below K could still belong to the answer and gets the
    // closed-form treatment.
    let kth_idx = config.k.min(all.len()) - 1;
    let cutoff = all[kth_idx].1.approx.min(ceiling);
    let mut finalists: Vec<MstMatch> = Vec::new();
    for (traj, d) in all {
        if d.lower() <= cutoff {
            let t = store
                .get(traj)
                .ok_or(SearchError::MissingTrajectory(traj))?;
            let exact = dissim_between_traced(q, t, period, Integration::Exact, metrics)?.approx;
            *exact_recomputations += 1;
            metrics.exact_recomputation();
            finalists.push(MstMatch {
                traj,
                dissim: exact,
            });
        }
    }
    finalists.retain(|m| m.dissim <= ceiling);
    finalists.sort_by(|a, b| a.dissim.total_cmp(&b.dissim).then(a.traj.cmp(&b.traj)));
    finalists.truncate(config.k);
    Ok(finalists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NoopSink;
    use crate::scan::scan_kmst;
    use crate::share::NoShare;
    use mst_index::{LeafEntry, Rtree3D, TbTree};

    /// The collapsed entry point with the no-op defaults spelled out once.
    fn search<I: TrajectoryIndex>(
        index: &mut I,
        store: &TrajectoryStore,
        query: &Trajectory,
        period: &TimeInterval,
        config: &MstConfig,
    ) -> Result<SearchReport> {
        bfmst_search(index, store, query, period, config, &NoShare, &mut NoopSink)
    }

    /// Builds a small deterministic dataset of horizontal movers at distinct
    /// heights plus one weaving trajectory.
    fn dataset() -> TrajectoryStore {
        let mut trajs = Vec::new();
        for i in 0..12 {
            let y = f64::from(i) * 2.0;
            let pts: Vec<(f64, f64, f64)> = (0..=20)
                .map(|s| {
                    let t = f64::from(s);
                    (t, t * 0.8 + f64::from(i % 3) * 0.1, y)
                })
                .collect();
            trajs.push(Trajectory::from_txy(&pts).unwrap());
        }
        // A weaving trajectory crossing several lanes.
        let pts: Vec<(f64, f64, f64)> = (0..=20)
            .map(|s| {
                let t = f64::from(s);
                (t, t * 0.8, (t * 0.9).sin() * 6.0 + 6.0)
            })
            .collect();
        trajs.push(Trajectory::from_txy(&pts).unwrap());
        TrajectoryStore::from_trajectories(trajs)
    }

    fn build_rtree(store: &TrajectoryStore) -> Rtree3D {
        let mut idx = Rtree3D::new();
        // Insert interleaved in temporal order, as a MOD would.
        let mut entries: Vec<LeafEntry> = Vec::new();
        for (id, t) in store.iter() {
            for (seq, segment) in t.segments().enumerate() {
                entries.push(LeafEntry {
                    traj: id,
                    seq: seq as u32,
                    segment,
                });
            }
        }
        entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));
        for e in entries {
            idx.insert(e).unwrap();
        }
        idx
    }

    fn build_tbtree(store: &TrajectoryStore) -> TbTree {
        let mut idx = TbTree::new();
        let mut entries: Vec<LeafEntry> = Vec::new();
        for (id, t) in store.iter() {
            for (seq, segment) in t.segments().enumerate() {
                entries.push(LeafEntry {
                    traj: id,
                    seq: seq as u32,
                    segment,
                });
            }
        }
        entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));
        for e in entries {
            idx.insert(e).unwrap();
        }
        idx
    }

    fn query() -> Trajectory {
        // Close to trajectory 2 (y = 4).
        let pts: Vec<(f64, f64, f64)> = (0..=10)
            .map(|s| {
                let t = f64::from(s) * 2.0;
                (t, t * 0.8 + 0.05, 4.3)
            })
            .collect();
        Trajectory::from_txy(&pts).unwrap()
    }

    #[test]
    fn matches_linear_scan_on_rtree() {
        let store = dataset();
        let mut idx = build_rtree(&store);
        let period = TimeInterval::new(0.0, 20.0).unwrap();
        let q = query();
        for k in [1usize, 3, 5] {
            let expected = scan_kmst(&store, &q, &period, k, Integration::Exact).unwrap();
            let got = search(&mut idx, &store, &q, &period, &MstConfig::k(k)).unwrap();
            let e_ids: Vec<_> = expected.iter().map(|m| m.traj).collect();
            let g_ids: Vec<_> = got.matches.iter().map(|m| m.traj).collect();
            assert_eq!(e_ids, g_ids, "k={k}");
            for (e, g) in expected.iter().zip(&got.matches) {
                assert!((e.dissim - g.dissim).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_linear_scan_on_tbtree() {
        let store = dataset();
        let mut idx = build_tbtree(&store);
        let period = TimeInterval::new(0.0, 20.0).unwrap();
        let q = query();
        let expected = scan_kmst(&store, &q, &period, 4, Integration::Exact).unwrap();
        let got = search(&mut idx, &store, &q, &period, &MstConfig::k(4)).unwrap();
        let e_ids: Vec<_> = expected.iter().map(|m| m.traj).collect();
        let g_ids: Vec<_> = got.matches.iter().map(|m| m.traj).collect();
        assert_eq!(e_ids, g_ids);
    }

    #[test]
    fn exact_mode_matches_scan_too() {
        let store = dataset();
        let mut idx = build_rtree(&store);
        let period = TimeInterval::new(0.0, 20.0).unwrap();
        let q = query();
        let cfg = MstConfig {
            k: 2,
            integration: Integration::Exact,
            error_management: false,
            ..MstConfig::default()
        };
        let got = search(&mut idx, &store, &q, &period, &cfg).unwrap();
        let expected = scan_kmst(&store, &q, &period, 2, Integration::Exact).unwrap();
        assert_eq!(
            got.matches.iter().map(|m| m.traj).collect::<Vec<_>>(),
            expected.iter().map(|m| m.traj).collect::<Vec<_>>()
        );
        assert_eq!(got.exact_recomputations, 0);
    }

    #[test]
    fn subperiod_queries_agree_with_scan() {
        let store = dataset();
        let mut idx = build_rtree(&store);
        let q = query();
        for (a, b) in [(0.0, 5.0), (3.0, 11.0), (14.5, 20.0)] {
            let period = TimeInterval::new(a, b).unwrap();
            let expected = scan_kmst(&store, &q, &period, 3, Integration::Exact).unwrap();
            let got = search(&mut idx, &store, &q, &period, &MstConfig::k(3)).unwrap();
            assert_eq!(
                got.matches.iter().map(|m| m.traj).collect::<Vec<_>>(),
                expected.iter().map(|m| m.traj).collect::<Vec<_>>(),
                "period [{a}, {b}]"
            );
        }
    }

    #[test]
    fn query_must_cover_period() {
        let store = dataset();
        let mut idx = build_rtree(&store);
        let q = query();
        let period = TimeInterval::new(0.0, 30.0).unwrap();
        assert!(matches!(
            search(&mut idx, &store, &q, &period, &MstConfig::default()),
            Err(SearchError::QueryOutsidePeriod { .. })
        ));
    }

    #[test]
    fn k_zero_and_empty_index() {
        let store = dataset();
        let mut idx = build_rtree(&store);
        let q = query();
        let period = TimeInterval::new(0.0, 20.0).unwrap();
        let got = search(&mut idx, &store, &q, &period, &MstConfig::k(0)).unwrap();
        assert!(got.matches.is_empty());

        let mut empty = Rtree3D::new();
        let got = search(&mut empty, &store, &q, &period, &MstConfig::k(2)).unwrap();
        assert!(got.matches.is_empty());
        assert_eq!(got.nodes_visited, 0);
    }

    #[test]
    fn heuristics_prune_without_changing_the_answer() {
        let store = dataset();
        let period = TimeInterval::new(0.0, 20.0).unwrap();
        let q = query();

        let mut idx_full = build_rtree(&store);
        let no_heuristics = MstConfig {
            use_heuristic1: false,
            use_heuristic2: false,
            ..MstConfig::k(2)
        };
        let baseline = search(&mut idx_full, &store, &q, &period, &no_heuristics).unwrap();

        let mut idx = build_rtree(&store);
        let pruned = search(&mut idx, &store, &q, &period, &MstConfig::k(2)).unwrap();

        assert_eq!(
            baseline.matches.iter().map(|m| m.traj).collect::<Vec<_>>(),
            pruned.matches.iter().map(|m| m.traj).collect::<Vec<_>>()
        );
        assert!(pruned.nodes_visited <= baseline.nodes_visited);
    }

    #[test]
    fn self_query_returns_itself_with_zero_dissim() {
        let store = dataset();
        let mut idx = build_rtree(&store);
        let period = TimeInterval::new(0.0, 20.0).unwrap();
        let q = store.get(TrajectoryId(5)).unwrap().clone();
        let got = search(&mut idx, &store, &q, &period, &MstConfig::k(1)).unwrap();
        assert_eq!(got.matches[0].traj, TrajectoryId(5));
        assert!(got.matches[0].dissim.abs() < 1e-9);
    }
}
