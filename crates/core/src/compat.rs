//! Deprecated pre-builder query entry points.
//!
//! One parallel method per query flavour was the database's original
//! surface. The [`Query`](crate::query::Query) builder replaced them; these
//! shims keep old callers compiling for one release, each one a thin
//! delegation to the builder. New code (and everything inside this
//! workspace — enforced by the xtask R6 check) must use the builder.

#![allow(deprecated)] // the shim tests below exercise the shims

use mst_index::{KnnMatch, LeafEntry, TrajectoryIndexWrite};
use mst_trajectory::{Mbb, Point, TimeInterval, Trajectory};

use crate::bfmst::MstConfig;
use crate::nn::NnMatch;
use crate::query::Query;
use crate::time_relaxed::{TimeRelaxedConfig, TimeRelaxedMatch};
use crate::{MovingObjectDatabase, MstMatch, Result};

impl<I: TrajectoryIndexWrite> MovingObjectDatabase<I> {
    /// k-MST query with the paper's default configuration.
    #[deprecated(note = "use `Query::kmst(query).k(k).during(period).run(&mut db)`")]
    pub fn most_similar(
        &mut self,
        query: &Trajectory,
        period: &TimeInterval,
        k: usize,
    ) -> Result<Vec<MstMatch>> {
        Query::kmst(query).k(k).during(period).run(self)
    }

    /// k-MST query with full configuration control.
    #[deprecated(note = "use `Query::kmst(query).config(config).during(period).run(&mut db)`")]
    pub fn most_similar_with(
        &mut self,
        query: &Trajectory,
        period: &TimeInterval,
        config: &MstConfig,
    ) -> Result<Vec<MstMatch>> {
        Query::kmst(query).config(*config).during(period).run(self)
    }

    /// Range-MST query: up to `limit` trajectories with DISSIM at most
    /// `theta`.
    #[deprecated(
        note = "use `Query::kmst(query).k(limit).within(theta).during(period).run(&mut db)`"
    )]
    pub fn within_dissim(
        &mut self,
        query: &Trajectory,
        period: &TimeInterval,
        theta: f64,
        limit: usize,
    ) -> Result<Vec<MstMatch>> {
        Query::kmst(query)
            .k(limit)
            .within(theta)
            .during(period)
            .run(self)
    }

    /// Time-relaxed k-MST query (shift-minimized DISSIM).
    #[deprecated(note = "use `Query::kmst(query).time_relaxed().run(&mut db)`")]
    pub fn most_similar_time_relaxed(
        &mut self,
        query: &Trajectory,
        config: &TimeRelaxedConfig,
    ) -> Result<Vec<TimeRelaxedMatch>> {
        Query::kmst(query)
            .time_relaxed()
            .k(config.k)
            .grid_steps(config.grid_steps)
            .refine_iters(config.refine_iters)
            .run(self)
    }

    /// Point k-nearest-neighbour query: the k segments that came closest to
    /// `location` during `window`.
    #[deprecated(note = "use `Query::knn_segments(location).k(k).during(window).run(&mut db)`")]
    pub fn nearest_segments(
        &mut self,
        location: Point,
        window: &TimeInterval,
        k: usize,
    ) -> Result<Vec<KnnMatch>> {
        Query::knn_segments(location).k(k).during(window).run(self)
    }

    /// Moving-query nearest neighbours: the k trajectories whose closest
    /// approach to `query` during `period` is smallest.
    #[deprecated(note = "use `Query::knn(query).k(k).during(period).run(&mut db)`")]
    pub fn nearest_trajectories(
        &mut self,
        query: &Trajectory,
        period: &TimeInterval,
        k: usize,
    ) -> Result<Vec<NnMatch>> {
        Query::knn(query).k(k).during(period).run(self)
    }

    /// Classic 3D range query: all segments intersecting the window.
    #[deprecated(note = "use `Query::range(window).run(&mut db)`")]
    pub fn range(&mut self, window: &Mbb) -> Result<Vec<LeafEntry>> {
        Query::range(window).run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::{SamplePoint, TrajectoryId};

    fn seeded_db() -> MovingObjectDatabase<mst_index::Rtree3D> {
        let mut db = MovingObjectDatabase::with_rtree();
        for id in 0..4u64 {
            for i in 0..20 {
                let t = i as f64;
                db.append(TrajectoryId(id), SamplePoint::new(t, t * 0.7, id as f64))
                    .unwrap();
            }
        }
        db
    }

    #[test]
    fn shims_agree_with_the_builder() {
        let mut db = seeded_db();
        let q = db.trajectory(TrajectoryId(0)).unwrap();
        let period = TimeInterval::new(0.0, 19.0).unwrap();

        let old = db.most_similar(&q, &period, 3).unwrap();
        let new = Query::kmst(&q).k(3).during(&period).run(&mut db).unwrap();
        assert_eq!(old, new);

        let old = db.within_dissim(&q, &period, 25.0, 4).unwrap();
        let new = Query::kmst(&q)
            .k(4)
            .within(25.0)
            .during(&period)
            .run(&mut db)
            .unwrap();
        assert_eq!(old, new);

        let old = db.nearest_trajectories(&q, &period, 2).unwrap();
        let new = Query::knn(&q).k(2).during(&period).run(&mut db).unwrap();
        assert_eq!(old, new);

        let old = db
            .nearest_segments(Point::new(3.0, 2.0), &period, 2)
            .unwrap();
        let new = Query::knn_segments(Point::new(3.0, 2.0))
            .k(2)
            .during(&period)
            .run(&mut db)
            .unwrap();
        assert_eq!(old, new);

        let old = db
            .most_similar_time_relaxed(&q, &TimeRelaxedConfig::k(2))
            .unwrap();
        let new = Query::kmst(&q).k(2).time_relaxed().run(&mut db).unwrap();
        assert_eq!(old, new);
    }
}
