//! A small moving-object-database facade tying the pieces together: raw
//! position streams in, every query flavour out of one structure.
//!
//! The paper's point is that a MOD should *not* need a dedicated similarity
//! index — the R-tree-like structure it already keeps for range and
//! nearest-neighbour queries also serves k-MST search. The
//! [`MovingObjectDatabase`] makes that concrete: it ingests timestamped
//! positions (or whole trajectories), maintains the segment index and the
//! trajectory store in lockstep, and answers every query flavour — range,
//! point-kNN, trajectory-kNN, k-MST, range-MST, time-relaxed MST — through
//! the unified [`Query`](crate::query::Query) builder.
//!
//! The trajectory snapshot is materialized lazily behind [`RefCell`]s, so
//! read-only accessors like [`MovingObjectDatabase::trajectory`] take
//! `&self` even though they may refresh stale snapshots under the hood.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use mst_index::{
    knn_segments_traced, KnnMatch, LeafEntry, MetricTree, Rtree3D, TbTree, TrajectoryIndexWrite,
};
use mst_trajectory::{Mbb, Point, SamplePoint, Segment, TimeInterval, Trajectory, TrajectoryId};

use crate::bfmst::MstConfig;
use crate::metrics::QueryMetrics;
use crate::nn::{nearest_trajectories, NnMatch};
use crate::options::Substrate;
use crate::share::NoShare;
use crate::substrate::KmstSubstrate;
use crate::time_relaxed::{time_relaxed_kmst_traced, TimeRelaxedConfig, TimeRelaxedMatch};
use crate::{MstMatch, Result, SearchError, TrajectoryStore};

/// A moving-object database: trajectory storage plus one general-purpose
/// segment index answering every query type.
///
/// ```
/// use mst_search::{MovingObjectDatabase, Query};
/// use mst_trajectory::{SamplePoint, TimeInterval, TrajectoryId};
///
/// let mut db = MovingObjectDatabase::with_rtree();
/// // Stream position reports for two vehicles.
/// for i in 0..20 {
///     let t = f64::from(i);
///     db.append(TrajectoryId(0), SamplePoint::new(t, t, 0.0))?;
///     db.append(TrajectoryId(1), SamplePoint::new(t, t, 5.0))?;
/// }
/// let query = db.trajectory(TrajectoryId(0)).unwrap();
/// let top = Query::kmst(&query).k(2).run(&mut db)?;
/// assert_eq!(top[0].traj, TrajectoryId(0)); // itself, DISSIM 0
/// assert_eq!(top[1].traj, TrajectoryId(1)); // the parallel vehicle
/// # Ok::<(), mst_search::SearchError>(())
/// ```
pub struct MovingObjectDatabase<I: TrajectoryIndexWrite> {
    index: I,
    /// Raw sample streams, per object.
    samples: HashMap<TrajectoryId, Vec<SamplePoint>>,
    /// Materialized trajectory snapshot used by queries; refreshed lazily,
    /// hence the interior mutability.
    store: RefCell<TrajectoryStore>,
    /// Objects whose snapshot is stale.
    dirty: RefCell<HashSet<TrajectoryId>>,
}

impl MovingObjectDatabase<Rtree3D> {
    /// A MOD backed by a 3D R-tree.
    pub fn with_rtree() -> Self {
        MovingObjectDatabase::new(Rtree3D::new())
    }
}

impl MovingObjectDatabase<TbTree> {
    /// A MOD backed by a TB-tree. Positions of each object must arrive in
    /// temporal order (they do in a live feed).
    pub fn with_tbtree() -> Self {
        MovingObjectDatabase::new(TbTree::new())
    }
}

impl MovingObjectDatabase<MetricTree> {
    /// A MOD backed by a metric tree: k-MST queries run the
    /// triangle-inequality ball search with exact DISSIM refinement
    /// instead of BFMST. Positions of each object must arrive in temporal
    /// order, and each object's stream must be gap-free (the streaming
    /// [`MovingObjectDatabase::append`] path guarantees both).
    pub fn with_metric() -> Self {
        MovingObjectDatabase::new(MetricTree::new())
    }
}

impl<I: TrajectoryIndexWrite> MovingObjectDatabase<I> {
    /// Wraps an existing (possibly pre-loaded) index.
    pub fn new(index: I) -> Self {
        MovingObjectDatabase {
            index,
            samples: HashMap::new(),
            store: RefCell::new(TrajectoryStore::new()),
            dirty: RefCell::new(HashSet::new()),
        }
    }

    /// Ingests one position report. The second and every later report of an
    /// object adds a segment to the index immediately.
    pub fn append(&mut self, id: TrajectoryId, sample: SamplePoint) -> Result<()> {
        if !sample.is_finite() {
            return Err(SearchError::Trajectory(
                mst_trajectory::TrajectoryError::NonFinite { index: 0 },
            ));
        }
        let stream = self.samples.entry(id).or_default();
        if let Some(last) = stream.last() {
            if last.t >= sample.t {
                return Err(SearchError::Trajectory(
                    mst_trajectory::TrajectoryError::NonMonotonicTime {
                        index: stream.len(),
                        prev: last.t,
                        next: sample.t,
                    },
                ));
            }
            let segment = Segment::new(*last, sample)?;
            self.index.insert_entry(LeafEntry {
                traj: id,
                seq: (stream.len() - 1) as u32,
                segment,
            })?;
        }
        stream.push(sample);
        self.dirty.get_mut().insert(id);
        Ok(())
    }

    /// Ingests a whole trajectory at once.
    pub fn insert_trajectory(&mut self, id: TrajectoryId, trajectory: &Trajectory) -> Result<()> {
        for p in trajectory.points() {
            self.append(id, *p)?;
        }
        Ok(())
    }

    /// Number of tracked objects.
    pub fn num_objects(&self) -> usize {
        self.samples.len()
    }

    /// Number of indexed segments.
    pub fn num_segments(&self) -> u64 {
        self.index.num_entries()
    }

    /// Read access to the underlying index (statistics, persistence, ...).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Mutable access to the underlying index.
    pub fn index_mut(&mut self) -> &mut I {
        &mut self.index
    }

    /// Refreshes the trajectory snapshot for every dirty object. Objects
    /// with fewer than two samples are not yet query-visible.
    fn materialize(&self) {
        let mut store = self.store.borrow_mut();
        for id in self.dirty.borrow_mut().drain() {
            let stream = &self.samples[&id];
            if stream.len() >= 2 {
                let t = Trajectory::new(stream.clone())
                    // invariant: append() rejects out-of-order and non-finite
                    // samples, so the stream always forms a valid trajectory.
                    .expect("append() maintains the trajectory invariants");
                store.insert(id, t);
            }
        }
    }

    /// The current trajectory of an object (`None` until it has two
    /// samples). Returns an owned snapshot so the database stays borrowable
    /// for the query that typically follows.
    pub fn trajectory(&self, id: TrajectoryId) -> Option<Trajectory> {
        self.materialize();
        self.store.borrow().get(id).cloned()
    }

    /// Runs a function against the materialized trajectory snapshot without
    /// cloning it.
    pub fn with_store<R>(&self, f: impl FnOnce(&TrajectoryStore) -> R) -> R {
        self.materialize();
        f(&self.store.borrow())
    }

    /// The [`Substrate`] this database is backed by (what queries pinning
    /// a substrate are validated against).
    pub fn substrate(&self) -> Substrate
    where
        I: KmstSubstrate,
    {
        I::KIND
    }

    /// k-MST / range-MST runner behind [`Query::kmst`](crate::query::Query):
    /// dispatches to the substrate's own search (BFMST on the MBB trees,
    /// the ball search on the metric tree).
    pub(crate) fn run_kmst<M: QueryMetrics>(
        &mut self,
        query: &Trajectory,
        period: &TimeInterval,
        config: &MstConfig,
        metrics: &mut M,
    ) -> Result<Vec<MstMatch>>
    where
        I: KmstSubstrate,
    {
        self.materialize();
        let store = self.store.get_mut();
        let report = self
            .index
            .kmst_search(store, query, period, config, &NoShare, metrics)?;
        Ok(report.matches)
    }

    /// Time-relaxed runner behind
    /// [`KmstQuery::time_relaxed`](crate::query::KmstQuery::time_relaxed).
    pub(crate) fn run_time_relaxed<M: QueryMetrics>(
        &mut self,
        query: &Trajectory,
        config: &TimeRelaxedConfig,
        metrics: &mut M,
    ) -> Result<Vec<TimeRelaxedMatch>> {
        self.materialize();
        time_relaxed_kmst_traced(self.store.get_mut(), query, config, metrics)
    }

    /// Trajectory-kNN runner behind [`Query::knn`](crate::query::Query).
    pub(crate) fn run_knn<M: QueryMetrics>(
        &mut self,
        query: &Trajectory,
        period: &TimeInterval,
        k: usize,
        metrics: &mut M,
    ) -> Result<Vec<NnMatch>> {
        self.materialize();
        let outcome = nearest_trajectories(&mut self.index, query, period, k, &NoShare, metrics)?;
        Ok(outcome.matches)
    }

    /// Point-kNN runner behind
    /// [`Query::knn_segments`](crate::query::Query).
    pub(crate) fn run_knn_segments<M: QueryMetrics>(
        &mut self,
        location: Point,
        window: &TimeInterval,
        k: usize,
        metrics: &mut M,
    ) -> Result<Vec<KnnMatch>> {
        Ok(knn_segments_traced(
            &mut self.index,
            location,
            window,
            k,
            metrics,
        )?)
    }

    /// Range runner behind [`Query::range`](crate::query::Query).
    pub(crate) fn run_range<M: QueryMetrics>(
        &mut self,
        window: &Mbb,
        metrics: &mut M,
    ) -> Result<Vec<LeafEntry>> {
        Ok(self.index.range_query_traced(window, metrics)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn feed<I: TrajectoryIndexWrite>(db: &mut MovingObjectDatabase<I>, id: u64, y: f64, n: usize) {
        for i in 0..n {
            let t = i as f64;
            db.append(TrajectoryId(id), SamplePoint::new(t, t * 0.5, y))
                .unwrap();
        }
    }

    #[test]
    fn streaming_ingest_builds_queryable_state() {
        let mut db = MovingObjectDatabase::with_rtree();
        for id in 0..6u64 {
            feed(&mut db, id, id as f64, 50);
        }
        assert_eq!(db.num_objects(), 6);
        assert_eq!(db.num_segments(), 6 * 49);
        let period = TimeInterval::new(0.0, 49.0).unwrap();
        let q = db.trajectory(TrajectoryId(2)).unwrap();
        let top = Query::kmst(&q).k(3).during(&period).run(&mut db).unwrap();
        assert_eq!(top[0].traj, TrajectoryId(2));
        assert!(top[0].dissim.abs() < 1e-9);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn all_query_flavours_work_on_one_database() {
        let mut db = MovingObjectDatabase::with_tbtree();
        for id in 0..5u64 {
            feed(&mut db, id, id as f64 * 2.0, 40);
        }
        // Range.
        let hits = Query::range(&Mbb::new(0.0, -0.5, 0.0, 5.0, 0.5, 40.0))
            .run(&mut db)
            .unwrap();
        assert!(hits.iter().all(|e| e.traj == TrajectoryId(0)));
        assert!(!hits.is_empty());
        // Point kNN.
        let window = TimeInterval::new(0.0, 39.0).unwrap();
        let nn = Query::knn_segments(Point::new(5.0, 4.1))
            .k(2)
            .during(&window)
            .run(&mut db)
            .unwrap();
        assert_eq!(nn[0].entry.traj, TrajectoryId(2)); // y = 4
                                                       // Range-MST.
        let q = db.trajectory(TrajectoryId(1)).unwrap();
        let within = Query::kmst(&q)
            .k(10)
            .during(&window)
            .within(39.0 * 2.0 + 1.0)
            .run(&mut db)
            .unwrap();
        // Itself (0), plus the neighbours at distance 2 (dissim 78 <= 79).
        let ids: Vec<_> = within.iter().map(|m| m.traj).collect();
        assert!(ids.contains(&TrajectoryId(1)));
        assert!(ids.contains(&TrajectoryId(0)));
        assert!(ids.contains(&TrajectoryId(2)));
        assert_eq!(within.len(), 3);
        // Time-relaxed.
        let relaxed = Query::kmst(&q).k(1).time_relaxed().run(&mut db).unwrap();
        assert_eq!(relaxed[0].traj, TrajectoryId(1));
    }

    #[test]
    fn rejects_out_of_order_and_non_finite_samples() {
        let mut db = MovingObjectDatabase::with_rtree();
        db.append(TrajectoryId(0), SamplePoint::new(5.0, 0.0, 0.0))
            .unwrap();
        assert!(db
            .append(TrajectoryId(0), SamplePoint::new(5.0, 1.0, 0.0))
            .is_err());
        assert!(db
            .append(TrajectoryId(0), SamplePoint::new(6.0, f64::NAN, 0.0))
            .is_err());
        // A different object is unaffected.
        db.append(TrajectoryId(1), SamplePoint::new(0.0, 0.0, 0.0))
            .unwrap();
    }

    #[test]
    fn single_sample_objects_are_not_query_visible() {
        let mut db = MovingObjectDatabase::with_rtree();
        db.append(TrajectoryId(0), SamplePoint::new(0.0, 0.0, 0.0))
            .unwrap();
        assert!(db.trajectory(TrajectoryId(0)).is_none());
        assert_eq!(db.num_segments(), 0);
        feed(&mut db, 1, 1.0, 30);
        let period = TimeInterval::new(0.0, 29.0).unwrap();
        let q = db.trajectory(TrajectoryId(1)).unwrap();
        let top = Query::kmst(&q).k(5).during(&period).run(&mut db).unwrap();
        // Only object 1 qualifies.
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn incremental_appends_extend_existing_objects() {
        let mut db = MovingObjectDatabase::with_rtree();
        feed(&mut db, 0, 0.0, 10);
        let before = db.trajectory(TrajectoryId(0)).unwrap().num_points();
        db.append(TrajectoryId(0), SamplePoint::new(100.0, 50.0, 0.0))
            .unwrap();
        let after = db.trajectory(TrajectoryId(0)).unwrap().num_points();
        assert_eq!(after, before + 1);
        assert_eq!(db.num_segments(), 10);
    }

    #[test]
    fn trajectory_takes_a_shared_reference() {
        // The satellite fix this test pins down: snapshot reads no longer
        // demand `&mut`, so a query can borrow the database mutably right
        // after fetching its own query trajectory.
        let mut db = MovingObjectDatabase::with_rtree();
        feed(&mut db, 0, 0.0, 12);
        let shared: &MovingObjectDatabase<_> = &db;
        let a = shared.trajectory(TrajectoryId(0)).unwrap();
        let b = shared.trajectory(TrajectoryId(0)).unwrap();
        assert_eq!(a.num_points(), b.num_points());
    }
}
