//! Linear-scan k-MST: the ground truth the index-based search is verified
//! against, and the "no pruning" baseline of the pruning-power metric.

use mst_trajectory::{TimeInterval, Trajectory};

use crate::dissim::{dissim_between_traced, Integration};
use crate::metrics::{NoopSink, QueryMetrics};
use crate::{MstMatch, Result, TrajectoryStore};

/// Computes the k most similar trajectories to `query` over `period` by
/// evaluating DISSIM against every trajectory in the store that covers the
/// period. Results are sorted by ascending dissimilarity (ties by id for
/// determinism).
pub fn scan_kmst(
    store: &TrajectoryStore,
    query: &Trajectory,
    period: &TimeInterval,
    k: usize,
    integration: Integration,
) -> Result<Vec<MstMatch>> {
    scan_kmst_traced(store, query, period, k, integration, &mut NoopSink)
}

/// [`scan_kmst`] with observability: every candidate and per-piece integral
/// evaluation is reported to `metrics`. The scan never prunes, so its
/// candidate ledger reads "everything seen was refined" — the denominator of
/// the pruning-power metric.
pub fn scan_kmst_traced<M: QueryMetrics>(
    store: &TrajectoryStore,
    query: &Trajectory,
    period: &TimeInterval,
    k: usize,
    integration: Integration,
    metrics: &mut M,
) -> Result<Vec<MstMatch>> {
    let mut all: Vec<MstMatch> = Vec::new();
    for (id, t) in store.covering(period) {
        metrics.candidate_seen();
        let d = dissim_between_traced(query, t, period, integration, metrics)?;
        metrics.candidate_refined();
        all.push(MstMatch {
            traj: id,
            dissim: d.approx,
        });
    }
    all.sort_by(|a, b| a.dissim.total_cmp(&b.dissim).then(a.traj.cmp(&b.traj)));
    all.truncate(k);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::TrajectoryId;

    fn horizontal(y: f64) -> Trajectory {
        Trajectory::from_txy(&[(0.0, 0.0, y), (5.0, 5.0, y), (10.0, 10.0, y)]).unwrap()
    }

    fn store() -> TrajectoryStore {
        TrajectoryStore::from_trajectories(vec![
            horizontal(0.0),
            horizontal(1.0),
            horizontal(-2.0),
            horizontal(5.0),
        ])
    }

    #[test]
    fn returns_nearest_first() {
        let s = store();
        let q = horizontal(0.1);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let res = scan_kmst(&s, &q, &period, 2, Integration::Exact).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].traj, TrajectoryId(0));
        assert_eq!(res[1].traj, TrajectoryId(1));
        assert!(res[0].dissim < res[1].dissim);
        // DISSIM of the nearest: |0.1| x 10 = 1.
        assert!((res[0].dissim - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let s = store();
        let q = horizontal(0.0);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let res = scan_kmst(&s, &q, &period, 100, Integration::Exact).unwrap();
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn skips_trajectories_not_covering_the_period() {
        let mut s = store();
        s.insert(
            TrajectoryId(99),
            Trajectory::from_txy(&[(3.0, 0.0, 0.0), (6.0, 3.0, 0.0)]).unwrap(),
        );
        let q = horizontal(0.0);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let res = scan_kmst(&s, &q, &period, 100, Integration::Exact).unwrap();
        assert!(res.iter().all(|m| m.traj != TrajectoryId(99)));
    }

    #[test]
    fn trapezoid_scan_ranks_like_exact_on_separated_data() {
        let s = store();
        let q = horizontal(0.6);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let exact = scan_kmst(&s, &q, &period, 4, Integration::Exact).unwrap();
        let approx = scan_kmst(&s, &q, &period, 4, Integration::Trapezoid).unwrap();
        let ids_e: Vec<_> = exact.iter().map(|m| m.traj).collect();
        let ids_a: Vec<_> = approx.iter().map(|m| m.traj).collect();
        assert_eq!(ids_e, ids_a);
    }
}
