//! Cooperative pruning hooks for partitioned search.
//!
//! When a k-MST or kNN query is split across shards, each shard runs the
//! ordinary best-first search over its own index — but the pruning
//! threshold need not stay shard-local. The kth smallest *upper key* any
//! shard has seen upper-bounds that shard's kth best DISSIM, and the global
//! kth best is at most the best shard's kth best; so the minimum of the
//! shard-local kth upper keys is a sound upper bound on the **global** kth
//! DISSIM, and any candidate whose lower bound exceeds it can be discarded
//! on *every* shard. [`BoundShare`] is the seam through which the search
//! loops exchange that bound (and through which an executor injects a
//! deadline), without the core crate knowing anything about threads:
//!
//! * [`BoundShare::kth_hint`] — the tightest externally known upper bound
//!   on the global kth dissimilarity; folded into the pruning threshold
//!   before every refinement decision.
//! * [`BoundShare::publish_kth`] — called whenever the local search
//!   tightens its own kth upper key, so other shards learn of it mid-flight.
//! * [`BoundShare::poll_stop`] — cooperative cancellation (deadlines): when
//!   it returns true the search abandons traversal and reports best-so-far
//!   with the deadline flagged.
//!
//! [`NoShare`] is the no-op instantiation used by all single-shard entry
//! points; like the metrics sinks, the hooks compile away entirely, so the
//! shared and unshared code paths are the same code.
//!
//! Soundness is direction-sensitive: hints only ever *shrink* the
//! threshold, and a published value is only ever an upper bound certified
//! by [`crate::UpperKeys`]. A stale or missing hint costs pruning power,
//! never correctness — which is why relaxed atomics are enough on the
//! executor side.

/// External bound exchange and cancellation for a best-first search.
///
/// Methods take `&self`: one share handle is read concurrently by every
/// shard working the same query, so implementations use atomics (or are
/// stateless, like [`NoShare`]).
pub trait BoundShare {
    /// The tightest known upper bound on the global kth dissimilarity, or
    /// `f64::INFINITY` when nothing is known yet. Must never return a value
    /// below an actually achievable kth dissimilarity — the search prunes
    /// strictly above it.
    fn kth_hint(&self) -> f64 {
        f64::INFINITY
    }

    /// Reports that this search's local kth upper key tightened to `kth`.
    /// Implementations fold it into the shared bound monotonically (only
    /// ever downward).
    fn publish_kth(&self, kth: f64) {
        let _ = kth;
    }

    /// True when the search should abandon traversal (deadline exceeded,
    /// batch cancelled) and return best-so-far. Polled once per popped
    /// node, so responsiveness is one node fetch.
    fn poll_stop(&self) -> bool {
        false
    }
}

/// The no-op share: infinite hint, discarded publications, never stops.
/// Single-shard searches instantiate the loops with this, compiling every
/// hook away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoShare;

impl BoundShare for NoShare {}

impl<B: BoundShare + ?Sized> BoundShare for &B {
    fn kth_hint(&self) -> f64 {
        (**self).kth_hint()
    }
    fn publish_kth(&self, kth: f64) {
        (**self).publish_kth(kth);
    }
    fn poll_stop(&self) -> bool {
        (**self).poll_stop()
    }
}

/// Compile-time `Send`/`Sync` audit of the query state a concurrent
/// executor moves across threads. A new non-`Send` field in any of these
/// types breaks this module, not the executor at a distance.
#[allow(dead_code)]
fn assert_query_state_is_thread_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<crate::MstConfig>();
    assert_send_sync::<crate::MstMatch>();
    assert_send_sync::<crate::NnMatch>();
    assert_send_sync::<crate::QueryProfile>();
    assert_send_sync::<crate::SearchReport>();
    assert_send_sync::<crate::TrajectoryStore>();
    assert_send_sync::<crate::SearchError>();
    assert_send_sync::<mst_trajectory::Trajectory>();
    assert_send_sync::<mst_trajectory::TimeInterval>();
    assert_send_sync::<NoShare>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_share_is_inert() {
        let share = NoShare;
        assert_eq!(share.kth_hint(), f64::INFINITY);
        share.publish_kth(1.0);
        assert_eq!(share.kth_hint(), f64::INFINITY);
        assert!(!share.poll_stop());
    }

    #[test]
    fn references_forward_to_the_share() {
        struct Fixed(f64);
        impl BoundShare for Fixed {
            fn kth_hint(&self) -> f64 {
                self.0
            }
            fn poll_stop(&self) -> bool {
                true
            }
        }
        let share = Fixed(2.5);
        let by_ref: &Fixed = &share;
        assert_eq!(by_ref.kth_hint(), 2.5);
        assert!(by_ref.poll_stop());
    }
}
