//! Deterministic top-k merge of per-shard answers.
//!
//! A sharded executor runs the same query independently on every shard and
//! gets back each shard's local top-k. The global answer is the k best
//! across all lists — computed here with the same [`UpperKeys`] threshold
//! machinery the search itself prunes with, and with the search's exact
//! tie-break (value by `total_cmp`, then [`TrajectoryId`]), so a merged
//! result is bit-identical to what a single search over the union would
//! report.
//!
//! The merge is pure data-flow: given identical input lists it produces
//! identical output regardless of how many threads produced those lists or
//! in which order they finished. Shards partition trajectories, so a
//! trajectory can appear in at most one list; the merge still deduplicates
//! defensively (keeping the smallest value) so a misconfigured overlap
//! degrades to a correct answer instead of a duplicated one.

use mst_index::{KnnMatch, LeafEntry};
use mst_trajectory::TrajectoryId;

use crate::nn::NnMatch;
use crate::topk::UpperKeys;
use crate::MstMatch;

/// Merges per-shard k-MST answers into the global top-k, ascending DISSIM
/// with the search's trajectory-id tie-break.
pub fn merge_shard_matches(k: usize, shard_lists: &[Vec<MstMatch>]) -> Vec<MstMatch> {
    merge_by(k, shard_lists, |m| (m.traj, m.dissim))
}

/// Merges per-shard kNN answers into the global top-k, ascending approach
/// distance with the search's trajectory-id tie-break.
pub fn merge_shard_nn(k: usize, shard_lists: &[Vec<NnMatch>]) -> Vec<NnMatch> {
    merge_by(k, shard_lists, |m| (m.traj, m.distance))
}

/// Merges per-shard point-kNN answers into the global k nearest segments,
/// ascending distance with a (trajectory, sequence) tie-break. Unlike the
/// trajectory merges there is no per-object dedup: distinct segments of
/// one trajectory are distinct answers, and shards partition segments so
/// no segment can appear twice.
pub fn merge_shard_segments(k: usize, shard_lists: &[Vec<KnnMatch>]) -> Vec<KnnMatch> {
    let mut all: Vec<KnnMatch> = shard_lists.iter().flatten().copied().collect();
    all.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.entry.traj.cmp(&b.entry.traj))
            .then(a.entry.seq.cmp(&b.entry.seq))
    });
    all.truncate(k);
    all
}

/// Merges per-shard range-query answers into one canonically ordered
/// list: by trajectory, then segment sequence. A single-index range query
/// emits leaf entries in traversal order, which depends on the tree
/// shape; the canonical order makes sharded and unsharded answers
/// comparable as sets.
pub fn merge_shard_range(shard_lists: &[Vec<LeafEntry>]) -> Vec<LeafEntry> {
    let mut all: Vec<LeafEntry> = shard_lists.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.traj.cmp(&b.traj).then(a.seq.cmp(&b.seq)));
    all
}

fn merge_by<T: Clone>(
    k: usize,
    shard_lists: &[Vec<T>],
    key: impl Fn(&T) -> (TrajectoryId, f64),
) -> Vec<T> {
    if k == 0 {
        return Vec::new();
    }
    // Pass 1: establish the global kth upper bound with the search's own
    // threshold tracker (every shard value is an exact answer, hence its
    // own upper bound).
    let mut upper = UpperKeys::new(k);
    for list in shard_lists {
        for m in list {
            let (traj, value) = key(m);
            upper.update(traj, value);
        }
    }
    let tau = upper.kth();
    // Pass 2: keep only candidates at or under the threshold (everything
    // strictly above it cannot be in the global top-k; ties survive for
    // the id tie-break to settle), then order exactly like the search.
    let mut survivors: Vec<T> = shard_lists
        .iter()
        .flatten()
        .filter(|m| key(m).1 <= tau)
        .cloned()
        .collect();
    survivors.sort_by(|a, b| {
        let (at, av) = key(a);
        let (bt, bv) = key(b);
        av.total_cmp(&bv).then(at.cmp(&bt))
    });
    survivors.dedup_by(|next, kept| key(next).0 == key(kept).0);
    survivors.truncate(k);
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(traj: u64, dissim: f64) -> MstMatch {
        MstMatch {
            traj: TrajectoryId(traj),
            dissim,
        }
    }

    #[test]
    fn merges_across_shards_in_value_order() {
        let shards = vec![
            vec![m(0, 3.0), m(2, 7.0)],
            vec![m(1, 1.0), m(3, 9.0)],
            vec![m(4, 5.0)],
        ];
        let merged = merge_shard_matches(3, &shards);
        let ids: Vec<u64> = merged.iter().map(|x| x.traj.0).collect();
        assert_eq!(ids, vec![1, 0, 4]);
    }

    #[test]
    fn ties_break_by_trajectory_id() {
        let shards = vec![vec![m(7, 2.0)], vec![m(3, 2.0)], vec![m(5, 2.0)]];
        let merged = merge_shard_matches(2, &shards);
        let ids: Vec<u64> = merged.iter().map(|x| x.traj.0).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn shorter_lists_and_small_k() {
        let shards = vec![vec![m(0, 1.0)], Vec::new()];
        assert_eq!(merge_shard_matches(5, &shards).len(), 1);
        assert!(merge_shard_matches(0, &shards).is_empty());
    }

    #[test]
    fn duplicate_trajectories_keep_the_smallest_value() {
        // Shards should partition trajectories; if they don't, the merge
        // must not report the same trajectory twice.
        let shards = vec![vec![m(1, 4.0), m(2, 6.0)], vec![m(1, 2.0)]];
        let merged = merge_shard_matches(2, &shards);
        let ids: Vec<u64> = merged.iter().map(|x| x.traj.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!((merged[0].dissim - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nn_merge_orders_by_distance() {
        let nn = |traj: u64, d: f64| NnMatch {
            traj: TrajectoryId(traj),
            distance: d,
            time: d * 2.0,
        };
        let shards = vec![vec![nn(0, 0.5), nn(1, 3.0)], vec![nn(2, 1.5)]];
        let merged = merge_shard_nn(2, &shards);
        let ids: Vec<u64> = merged.iter().map(|x| x.traj.0).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn segments_merge_orders_by_distance_then_identity() {
        use mst_index::LeafEntry;
        use mst_trajectory::{SamplePoint, Segment};
        let seg = |traj: u64, seq: u32, d: f64| KnnMatch {
            entry: LeafEntry {
                traj: TrajectoryId(traj),
                seq,
                segment: Segment::new(
                    SamplePoint::new(0.0, 0.0, 0.0),
                    SamplePoint::new(1.0, 1.0, 1.0),
                )
                .unwrap(),
            },
            distance: d,
        };
        let shards = vec![
            vec![seg(0, 1, 2.0), seg(0, 2, 2.0)],
            vec![seg(1, 0, 1.0), seg(0, 0, 2.0)],
        ];
        let merged = merge_shard_segments(3, &shards);
        let keys: Vec<(u64, u32)> = merged
            .iter()
            .map(|m| (m.entry.traj.0, m.entry.seq))
            .collect();
        assert_eq!(keys, vec![(1, 0), (0, 0), (0, 1)]);
        assert!(merge_shard_segments(0, &shards).is_empty());
    }

    #[test]
    fn range_merge_is_canonically_ordered() {
        use mst_index::LeafEntry;
        use mst_trajectory::{SamplePoint, Segment};
        let entry = |traj: u64, seq: u32| LeafEntry {
            traj: TrajectoryId(traj),
            seq,
            segment: Segment::new(
                SamplePoint::new(0.0, 0.0, 0.0),
                SamplePoint::new(1.0, 1.0, 1.0),
            )
            .unwrap(),
        };
        let shards = vec![vec![entry(3, 1), entry(3, 0)], vec![entry(1, 2)]];
        let merged = merge_shard_range(&shards);
        let keys: Vec<(u64, u32)> = merged.iter().map(|e| (e.traj.0, e.seq)).collect();
        assert_eq!(keys, vec![(1, 2), (3, 0), (3, 1)]);
    }

    #[test]
    fn merge_is_order_independent() {
        let a = vec![vec![m(0, 3.0)], vec![m(1, 1.0)], vec![m(2, 2.0)]];
        let mut b = a.clone();
        b.reverse();
        // Same multiset of shard answers, different arrival order: the
        // per-shard lists are keyed by content, not position.
        assert_eq!(merge_shard_matches(2, &a), merge_shard_matches(2, &b));
    }
}
