//! Substrate dispatch: which search algorithm answers a k-MST query on
//! which index structure.
//!
//! The MBB substrates (R-tree, TB-tree, STR-tree) all answer k-MST through
//! the generic BFMST loop over their MINDIST descent
//! ([`crate::descent::MbbDescent`]). The metric tree cannot: its pruning
//! information — pivot trajectories, covering radii, stored pivot
//! distances — lives at whole-trajectory granularity, which the
//! node-at-a-time [`TrajectoryIndex`] surface does not carry. So the
//! substrate itself picks its search: [`KmstSubstrate::kmst_search`]
//! defaults to BFMST and the metric tree overrides it with
//! [`metric_kmst_search`], a best-first traversal of the ball directory
//! whose candidate pruning rests on the triangle inequality instead of the
//! speed envelopes.
//!
//! **Why the triangle bound is sound here.** Build-time distances are exact
//! DISSIM over the two trajectories' validity overlap; the query-time pivot
//! distance `d(Q,P)` is exact DISSIM over `W ∩ V_P` (query window ∩ pivot
//! validity). For any answer-eligible trajectory `T` (it covers `W`), on
//! the common window `I = W ∩ V_P` the pointwise triangle inequality
//! integrates to `DISSIM_I(Q,T) ≥ d(Q,P) − DISSIM_I(P,T)`; DISSIM only
//! grows with the window, so `DISSIM_W(Q,T) ≥ d(Q,P) − dist(P,T) ≥ d(Q,P) −
//! r` for every `T` inside a ball of radius `r`. Only this one-sided bound
//! is used — the reverse side would need the *build* distance restricted to
//! `I`, which the directory does not store.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use mst_index::{IndexReader, MetricTree, Rtree3D, StrTree, TbTree, TrajectoryIndex};
use mst_trajectory::{TimeInterval, Trajectory, TrajectoryId};

use crate::bfmst::{bfmst_search, MstConfig, SearchReport};
use crate::dissim::{dissim_between, dissim_between_traced, Integration};
use crate::metrics::{PruningBound, QueryMetrics};
use crate::options::Substrate;
use crate::share::BoundShare;
use crate::topk::UpperKeys;
use crate::{MstMatch, Result, SearchError, TrajectoryStore};

/// An index substrate that can answer k-MST queries.
///
/// The default implementation runs the generic BFMST loop, which any
/// [`TrajectoryIndex`] supports through its MBB descent; substrates with a
/// richer pruning structure (the metric tree) override
/// [`KmstSubstrate::kmst_search`] wholesale.
pub trait KmstSubstrate: TrajectoryIndex + Sized {
    /// Which [`Substrate`] selector this index satisfies — what
    /// [`crate::QueryOptions::substrate`] is validated against, and what
    /// answer caches key on.
    const KIND: Substrate;

    /// True when the substrate's search needs exclusive access to the
    /// concrete index (it reads state beyond the [`TrajectoryIndex`]
    /// surface). Shared readers then run the whole per-shard search under
    /// the shard lock instead of locking per node fetch.
    const EXCLUSIVE_SEARCH: bool = false;

    /// Answers a k-MST query on this substrate. Contract: identical
    /// answers to the linear scan with exact integration (for exact
    /// configurations), identical answer *sets* across substrates.
    fn kmst_search<M: QueryMetrics, B: BoundShare>(
        &mut self,
        store: &TrajectoryStore,
        query: &Trajectory,
        period: &TimeInterval,
        config: &MstConfig,
        share: &B,
        metrics: &mut M,
    ) -> Result<SearchReport> {
        bfmst_search(self, store, query, period, config, share, metrics)
    }
}

impl KmstSubstrate for Rtree3D {
    const KIND: Substrate = Substrate::Rtree;
}

impl KmstSubstrate for TbTree {
    const KIND: Substrate = Substrate::TbTree;
}

impl KmstSubstrate for StrTree {
    const KIND: Substrate = Substrate::StrTree;
}

impl KmstSubstrate for MetricTree {
    const KIND: Substrate = Substrate::Metric;
    const EXCLUSIVE_SEARCH: bool = true;

    fn kmst_search<M: QueryMetrics, B: BoundShare>(
        &mut self,
        store: &TrajectoryStore,
        query: &Trajectory,
        period: &TimeInterval,
        config: &MstConfig,
        share: &B,
        metrics: &mut M,
    ) -> Result<SearchReport> {
        metric_kmst_search(self, store, query, period, config, share, metrics)
    }
}

/// Shared readers dispatch to the wrapped substrate's search. MBB
/// substrates keep the per-node-fetch locking (jobs on one shard
/// interleave); exclusive-search substrates take the shard lock for the
/// whole query via [`IndexReader::with_exclusive`].
impl<I: KmstSubstrate> KmstSubstrate for IndexReader<'_, I> {
    const KIND: Substrate = I::KIND;
    const EXCLUSIVE_SEARCH: bool = I::EXCLUSIVE_SEARCH;

    fn kmst_search<M: QueryMetrics, B: BoundShare>(
        &mut self,
        store: &TrajectoryStore,
        query: &Trajectory,
        period: &TimeInterval,
        config: &MstConfig,
        share: &B,
        metrics: &mut M,
    ) -> Result<SearchReport> {
        if I::EXCLUSIVE_SEARCH {
            self.with_exclusive(|inner| {
                inner.kmst_search(store, query, period, config, share, metrics)
            })
            .map_err(SearchError::Index)?
        } else {
            bfmst_search(self, store, query, period, config, share, metrics)
        }
    }
}

/// The ball-directory build oracle: exact DISSIM over the two
/// trajectories' validity overlap (zero for a missing or instant overlap —
/// those pairs share no motion to compare).
fn build_distance(a: &Trajectory, b: &Trajectory) -> Result<f64> {
    match a.time().intersect(&b.time()) {
        Some(w) if !w.is_instant() => Ok(dissim_between(a, b, &w, Integration::Exact)?.approx),
        _ => Ok(0.0),
    }
}

/// A ball-heap element: directory node keyed by its triangle-inequality
/// lower bound on any answer inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BallQueueEntry {
    lb: f64,
    ball: usize,
}

impl Eq for BallQueueEntry {}

impl Ord for BallQueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lb
            .total_cmp(&other.lb)
            .then(self.ball.cmp(&other.ball))
    }
}

impl PartialOrd for BallQueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-MST over a [`MetricTree`]: best-first traversal of the ball
/// directory with triangle-inequality pruning.
///
/// The loop mirrors BFMST's shape — pop the smallest lower bound, check
/// heuristic 2 (stop the whole search when even the best remaining bound
/// exceeds the k-th upper key), expand, filter members with heuristic 1 —
/// but every bound is `max(0, d(Q,P) − r)` instead of a speed envelope,
/// and refinement is a whole-trajectory exact DISSIM (chain pages read
/// through the buffer pool, so the I/O cost of not pruning is real).
/// Answers are exact regardless of `config.integration`; there is no
/// trapezoid phase to post-process, so `exact_recomputations` stays 0.
/// Cross-shard hints fold into both heuristics exactly as in BFMST, with
/// prunes only the hint justifies attributed to
/// [`PruningBound::SharedKth`].
pub fn metric_kmst_search<M: QueryMetrics, B: BoundShare>(
    tree: &mut MetricTree,
    _store: &TrajectoryStore,
    query: &Trajectory,
    period: &TimeInterval,
    config: &MstConfig,
    share: &B,
    metrics: &mut M,
) -> Result<SearchReport> {
    if config.k == 0 {
        return Ok(SearchReport::default());
    }
    if !query.covers(period) {
        return Err(SearchError::QueryOutsidePeriod {
            period: (period.start(), period.end()),
            valid: (query.start_time(), query.end_time()),
        });
    }
    if period.is_instant() {
        return Ok(SearchReport::default());
    }
    let q = query.clip(period)?;
    tree.ensure_directory(build_distance)?;

    let mut report = SearchReport::default();
    let mut upper = UpperKeys::new(config.k);
    let ceiling = config.max_dissim.unwrap_or(f64::INFINITY);
    // Exact DISSIM of every refined candidate.
    let mut completed: HashMap<TrajectoryId, f64> = HashMap::new();
    // Trajectories already decided (refined, pruned, or ineligible).
    let mut done: HashSet<TrajectoryId> = HashSet::new();
    // Memoized query-to-pivot distances.
    let mut pivot_dist: HashMap<TrajectoryId, f64> = HashMap::new();

    let mut heap: BinaryHeap<Reverse<BallQueueEntry>> = BinaryHeap::new();
    if let Some(root) = tree.ball_root() {
        heap.push(Reverse(BallQueueEntry {
            lb: 0.0,
            ball: root,
        }));
        metrics.heap_push();
    }

    while let Some(Reverse(BallQueueEntry { lb, ball })) = heap.pop() {
        metrics.heap_pop();
        if share.poll_stop() {
            report.deadline_hit = true;
            break;
        }
        // Heuristic 2, metric flavour: balls pop in non-decreasing lower
        // bound, so once the bound clears the k-th upper key nothing later
        // can qualify — stop the whole search. The cross-shard hint folds
        // in exactly as in BFMST.
        let hint = share.kth_hint();
        if config.use_heuristic2
            && (!completed.is_empty() || ceiling.is_finite() || hint.is_finite())
        {
            let local_tau = upper.kth().min(ceiling);
            let tau = local_tau.min(hint);
            if hint < local_tau {
                metrics.bound_evals(PruningBound::SharedKth, 1);
            }
            if tau.is_finite() {
                metrics.bound_evals(PruningBound::TriangleIneq, 1);
                if lb > tau {
                    metrics.early_termination();
                    let units = heap.len() as u64 + 1;
                    if hint < local_tau && !(local_tau.is_finite() && lb > local_tau) {
                        // Only the shared bound justified stopping.
                        metrics.pruned_by(PruningBound::SharedKth, units);
                    } else {
                        metrics.pruned_by(PruningBound::TriangleIneq, units);
                    }
                    report.terminated_early = true;
                    break;
                }
            }
        }

        let Some(node) = tree.ball(ball).cloned() else {
            continue;
        };
        report.nodes_visited += 1;
        let d_p = pivot_distance(
            tree,
            &q,
            period,
            node.pivot,
            &mut pivot_dist,
            &mut completed,
            &mut done,
            &mut upper,
            &mut report,
            share,
            metrics,
        )?;

        match node.kind {
            mst_index::BallKind::Inner { near, far } => {
                for child_idx in [near, far] {
                    let Some(child) = tree.ball(child_idx).cloned() else {
                        continue;
                    };
                    let d_c = pivot_distance(
                        tree,
                        &q,
                        period,
                        child.pivot,
                        &mut pivot_dist,
                        &mut completed,
                        &mut done,
                        &mut upper,
                        &mut report,
                        share,
                        metrics,
                    )?;
                    // A child ball never admits a bound weaker than its
                    // parent's: keep the max.
                    let clb = (d_c - child.radius).max(lb).max(0.0);
                    heap.push(Reverse(BallQueueEntry {
                        lb: clb,
                        ball: child_idx,
                    }));
                    metrics.heap_push();
                }
            }
            mst_index::BallKind::Leaf { members } => {
                report.leaves_visited += 1;
                for (id, dp) in members {
                    if done.contains(&id) {
                        continue;
                    }
                    let Some(t_meta) = tree.cached_trajectory(id) else {
                        return Err(SearchError::MissingTrajectory(id));
                    };
                    // The linear scan only considers trajectories covering
                    // the period; mirror its candidate ledger.
                    if !t_meta.covers(period) {
                        done.insert(id);
                        continue;
                    }
                    report.entries_matched += 1;
                    metrics.candidate_seen();
                    // Heuristic 1, metric flavour: the member's own
                    // triangle bound against the current threshold.
                    if config.use_heuristic1 {
                        let local_tau = upper.kth().min(ceiling);
                        let hint = share.kth_hint();
                        let tau = local_tau.min(hint);
                        if hint < local_tau {
                            metrics.bound_evals(PruningBound::SharedKth, 1);
                        }
                        metrics.bound_evals(PruningBound::TriangleIneq, 1);
                        let lb_m = (d_p - dp).max(lb).max(0.0);
                        if lb_m > tau {
                            done.insert(id);
                            report.candidates_rejected += 1;
                            metrics.candidate_pruned();
                            if lb_m > local_tau {
                                metrics.pruned_by(PruningBound::TriangleIneq, 1);
                            } else {
                                metrics.pruned_by(PruningBound::SharedKth, 1);
                            }
                            continue;
                        }
                    }
                    // Refine: read the trajectory's chain pages (honest
                    // buffer/disk traffic) and compute the exact DISSIM.
                    let t = tree
                        .assemble_trajectory_traced(id, metrics)?
                        .ok_or(SearchError::MissingTrajectory(id))?;
                    let d =
                        dissim_between_traced(&q, &t, period, Integration::Exact, metrics)?.approx;
                    done.insert(id);
                    completed.insert(id, d);
                    report.candidates_completed += 1;
                    metrics.candidate_refined();
                    if upper.update(id, d) {
                        let kth = upper.kth();
                        if kth.is_finite() {
                            share.publish_kth(kth);
                        }
                    }
                }
            }
        }
    }

    report.candidates_seen = completed.len() + report.candidates_rejected;
    metrics.candidates_pending(0);
    let mut all: Vec<MstMatch> = completed
        .into_iter()
        .map(|(traj, dissim)| MstMatch { traj, dissim })
        .collect();
    all.sort_by(|a, b| a.dissim.total_cmp(&b.dissim).then(a.traj.cmp(&b.traj)));
    all.retain(|m| m.dissim <= ceiling);
    all.truncate(config.k);
    report.matches = all;
    Ok(report)
}

/// Memoized exact query-to-pivot distance over `W ∩ V_P`.
///
/// Computing it is most of a refinement, so when the pivot actually covers
/// the window the value *is* its exact DISSIM and the pivot is completed
/// for free; a non-covering pivot is navigation-only (never an answer) and
/// is marked done without entering the candidate ledger — mirroring the
/// linear scan, which never considers it either.
#[allow(clippy::too_many_arguments)]
fn pivot_distance<M: QueryMetrics, B: BoundShare>(
    tree: &mut MetricTree,
    q: &Trajectory,
    period: &TimeInterval,
    pivot: TrajectoryId,
    pivot_dist: &mut HashMap<TrajectoryId, f64>,
    completed: &mut HashMap<TrajectoryId, f64>,
    done: &mut HashSet<TrajectoryId>,
    upper: &mut UpperKeys,
    report: &mut SearchReport,
    share: &B,
    metrics: &mut M,
) -> Result<f64> {
    if let Some(&d) = pivot_dist.get(&pivot) {
        return Ok(d);
    }
    let pt = tree
        .cached_trajectory(pivot)
        .cloned()
        .ok_or(SearchError::MissingTrajectory(pivot))?;
    let d = match period.intersect(&pt.time()) {
        Some(w) if !w.is_instant() => {
            dissim_between_traced(q, &pt, &w, Integration::Exact, metrics)?.approx
        }
        _ => 0.0,
    };
    pivot_dist.insert(pivot, d);
    if !done.contains(&pivot) {
        if pt.covers(period) {
            // The distance window was the whole query window: `d` is the
            // pivot's exact DISSIM.
            done.insert(pivot);
            completed.insert(pivot, d);
            report.entries_matched += 1;
            report.candidates_completed += 1;
            metrics.candidate_seen();
            metrics.candidate_refined();
            if upper.update(pivot, d) {
                let kth = upper.kth();
                if kth.is_finite() {
                    share.publish_kth(kth);
                }
            }
        } else {
            done.insert(pivot);
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{NoopSink, QueryProfile};
    use crate::scan::scan_kmst;
    use crate::share::NoShare;

    fn wavy(id: u64, n: usize) -> Trajectory {
        let pts: Vec<(f64, f64, f64)> = (0..n)
            .map(|i| {
                let t = i as f64;
                (
                    t,
                    t * 0.7 + (t * 0.31 + id as f64).sin() * 3.0,
                    id as f64 * 2.5 + (t * 0.17).cos() * (id % 5) as f64,
                )
            })
            .collect();
        Trajectory::from_txy(&pts).unwrap()
    }

    fn dataset(objects: u64, n: usize) -> (TrajectoryStore, MetricTree) {
        let trajs: Vec<Trajectory> = (0..objects).map(|id| wavy(id, n)).collect();
        let store = TrajectoryStore::from_trajectories(trajs);
        let mut tree = MetricTree::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        (store, tree)
    }

    #[test]
    fn metric_knn_matches_the_linear_scan_bit_for_bit() {
        let (store, mut tree) = dataset(24, 40);
        let period = TimeInterval::new(5.0, 35.0).unwrap();
        for qid in [0u64, 7, 19] {
            let query = store.get(TrajectoryId(qid)).unwrap().clone();
            for k in [1usize, 4, 10] {
                let truth = scan_kmst(&store, &query, &period, k, Integration::Exact).unwrap();
                let report = tree
                    .kmst_search(
                        &store,
                        &query,
                        &period,
                        &MstConfig::k(k),
                        &NoShare,
                        &mut NoopSink,
                    )
                    .unwrap();
                assert_eq!(report.matches.len(), truth.len());
                for (got, want) in report.matches.iter().zip(&truth) {
                    assert_eq!(got.traj, want.traj, "qid {qid} k {k}");
                    assert_eq!(
                        got.dissim.to_bits(),
                        want.dissim.to_bits(),
                        "qid {qid} k {k}: {} vs {}",
                        got.dissim,
                        want.dissim
                    );
                }
                assert_eq!(report.exact_recomputations, 0);
            }
        }
    }

    #[test]
    fn metric_search_prunes_and_profiles_consistently() {
        let (store, mut tree) = dataset(30, 40);
        let period = TimeInterval::new(0.0, 39.0).unwrap();
        let query = store.get(TrajectoryId(3)).unwrap().clone();
        let mut profile = QueryProfile::new();
        let report = tree
            .kmst_search(
                &store,
                &query,
                &period,
                &MstConfig::k(2),
                &NoShare,
                &mut profile,
            )
            .unwrap();
        assert_eq!(report.matches[0].traj, TrajectoryId(3));
        assert!(profile.is_consistent(), "{profile:?}");
        assert!(profile.pruning.triangle_ineq_evals > 0);
        assert!(
            report.candidates_rejected > 0 || report.terminated_early,
            "with k=2 of 30 the triangle bound must cut something: {report:?}"
        );
        // Every rejected candidate was attributed to a bound (termination
        // additionally counts discarded heap units).
        assert!(
            profile.pruning.triangle_ineq_prunes + profile.pruning.shared_kth_prunes
                >= report.candidates_rejected as u64
        );
        // Honest refinement I/O: chain pages flowed through the buffer.
        assert!(profile.nodes_accessed() > 0);
        assert!(profile.exact_piece_evals > 0);
    }

    #[test]
    fn heuristics_off_still_exact_and_refines_everything() {
        let (store, mut tree) = dataset(16, 30);
        let period = TimeInterval::new(0.0, 29.0).unwrap();
        let query = store.get(TrajectoryId(5)).unwrap().clone();
        let mut config = MstConfig::k(3);
        config.use_heuristic1 = false;
        config.use_heuristic2 = false;
        let report = tree
            .kmst_search(&store, &query, &period, &config, &NoShare, &mut NoopSink)
            .unwrap();
        let truth = scan_kmst(&store, &query, &period, 3, Integration::Exact).unwrap();
        assert_eq!(report.candidates_rejected, 0);
        assert!(!report.terminated_early);
        assert_eq!(report.candidates_completed, 16);
        for (got, want) in report.matches.iter().zip(&truth) {
            assert_eq!(
                (got.traj, got.dissim.to_bits()),
                (want.traj, want.dissim.to_bits())
            );
        }
    }

    #[test]
    fn range_mode_and_edge_cases() {
        let (store, mut tree) = dataset(12, 25);
        let period = TimeInterval::new(0.0, 24.0).unwrap();
        let query = store.get(TrajectoryId(0)).unwrap().clone();
        // k = 0: empty.
        let r = tree
            .kmst_search(
                &store,
                &query,
                &period,
                &MstConfig::k(0),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
        assert!(r.matches.is_empty());
        // Range mode: every answer within the ceiling, same set as scan.
        let theta = 40.0;
        let r = tree
            .kmst_search(
                &store,
                &query,
                &period,
                &MstConfig::within(12, theta),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
        let truth: Vec<MstMatch> = scan_kmst(&store, &query, &period, 12, Integration::Exact)
            .unwrap()
            .into_iter()
            .filter(|m| m.dissim <= theta)
            .collect();
        assert_eq!(r.matches.len(), truth.len());
        for (got, want) in r.matches.iter().zip(&truth) {
            assert_eq!(
                (got.traj, got.dissim.to_bits()),
                (want.traj, want.dissim.to_bits())
            );
        }
        // A period outside the query's validity is the same typed error
        // BFMST raises.
        let outside = TimeInterval::new(0.0, 500.0).unwrap();
        assert!(matches!(
            tree.kmst_search(
                &store,
                &query,
                &outside,
                &MstConfig::k(1),
                &NoShare,
                &mut NoopSink
            ),
            Err(SearchError::QueryOutsidePeriod { .. })
        ));
    }

    #[test]
    fn non_covering_trajectories_are_ineligible_like_the_scan() {
        // Half the population only covers a prefix of the period.
        let mut trajs: Vec<Trajectory> = (0..6).map(|id| wavy(id, 40)).collect();
        for id in 6..12u64 {
            let pts: Vec<(f64, f64, f64)> =
                (0..15).map(|i| (i as f64, i as f64, id as f64)).collect();
            trajs.push(Trajectory::from_txy(&pts).unwrap());
        }
        let store = TrajectoryStore::from_trajectories(trajs);
        let mut tree = MetricTree::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let period = TimeInterval::new(0.0, 39.0).unwrap();
        let query = store.get(TrajectoryId(1)).unwrap().clone();
        let report = tree
            .kmst_search(
                &store,
                &query,
                &period,
                &MstConfig::k(12),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
        let truth = scan_kmst(&store, &query, &period, 12, Integration::Exact).unwrap();
        assert_eq!(report.matches.len(), truth.len());
        assert_eq!(truth.len(), 6, "only the covering trajectories qualify");
        for (got, want) in report.matches.iter().zip(&truth) {
            assert_eq!(
                (got.traj, got.dissim.to_bits()),
                (want.traj, want.dissim.to_bits())
            );
        }
    }

    #[test]
    fn mbb_substrates_default_to_bfmst() {
        let (store, _) = dataset(10, 25);
        let mut rtree = Rtree3D::new();
        for (id, t) in store.iter() {
            rtree.insert_trajectory(id, t).unwrap();
        }
        let period = TimeInterval::new(0.0, 24.0).unwrap();
        let query = store.get(TrajectoryId(2)).unwrap().clone();
        let via_trait = rtree
            .kmst_search(
                &store,
                &query,
                &period,
                &MstConfig::k(4),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
        let direct = bfmst_search(
            &mut rtree,
            &store,
            &query,
            &period,
            &MstConfig::k(4),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(via_trait.matches, direct.matches);
        assert_eq!(Rtree3D::KIND, Substrate::Rtree);
        assert_eq!(TbTree::KIND, Substrate::TbTree);
        assert_eq!(StrTree::KIND, Substrate::StrTree);
        assert_eq!(MetricTree::KIND, Substrate::Metric);
        assert!(MetricTree::EXCLUSIVE_SEARCH);
        assert!(!Rtree3D::EXCLUSIVE_SEARCH);
    }
}
