//! Shared query options — the knobs every query flavour has in common.
//!
//! [`QueryOptions`] is the single carrier for the parameters that used to
//! be threaded as three parallel ad-hoc argument sets: the builder setters
//! on [`Query`](crate::Query), the batch executor's submission path, and
//! the serving layer's wire codec all speak this one struct. A frozen spec
//! ([`KmstSpec`](crate::KmstSpec), [`KnnSpec`](crate::KnnSpec), ...)
//! embeds its options, so an executor or a server can read the deadline
//! and sharing policy without knowing which query flavour it is running.

use core::time::Duration;

use mst_trajectory::TimeInterval;

/// Which index substrate a query should run against.
///
/// Carried on [`QueryOptions`] so the *query*, not server startup, selects
/// the substrate: a database hosting a metric tree refuses an explicitly
/// MBB-addressed query with a typed error instead of silently answering
/// from the wrong structure, and answer caches / cross-connection dedup
/// key on the selector so answers never leak across substrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Substrate {
    /// Run on whatever substrate the database hosts (the default — the
    /// pre-selector behaviour).
    #[default]
    Auto,
    /// The 3D R-tree MBB substrate.
    Rtree,
    /// The TB-tree (trajectory-bundle) MBB substrate.
    TbTree,
    /// The bulk-loaded STR-packed MBB substrate.
    StrTree,
    /// The ball-partitioning metric tree over whole trajectories.
    Metric,
}

impl Substrate {
    /// The selector's wire/cache tag byte — stable across releases.
    pub fn tag(self) -> u8 {
        match self {
            Substrate::Auto => 0,
            Substrate::Rtree => 1,
            Substrate::TbTree => 2,
            Substrate::StrTree => 3,
            Substrate::Metric => 4,
        }
    }

    /// Decodes a wire/cache tag byte back into a selector.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Substrate::Auto),
            1 => Some(Substrate::Rtree),
            2 => Some(Substrate::TbTree),
            3 => Some(Substrate::StrTree),
            4 => Some(Substrate::Metric),
            _ => None,
        }
    }

    /// A human-readable name for errors and logs.
    pub fn name(self) -> &'static str {
        match self {
            Substrate::Auto => "auto",
            Substrate::Rtree => "rtree",
            Substrate::TbTree => "tbtree",
            Substrate::StrTree => "strtree",
            Substrate::Metric => "metric",
        }
    }
}

/// Options shared by every query flavour: result count, time window,
/// per-query deadline, and cross-shard bound sharing.
///
/// ```
/// use core::time::Duration;
/// use mst_search::QueryOptions;
///
/// let opts = QueryOptions::new().k(5).deadline(Duration::from_millis(20));
/// assert_eq!(opts.k, 5);
/// assert_eq!(opts.deadline_us, Some(20_000));
/// assert!(opts.share_bound);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Number of results to return (default 1). Range queries ignore it —
    /// a range query returns everything in the window.
    pub k: usize,
    /// The time window the query is evaluated over. `None` means "default
    /// to the query trajectory's own validity interval" for trajectory
    /// queries; point-kNN queries require an explicit window.
    pub period: Option<TimeInterval>,
    /// Soft per-query deadline in microseconds, measured from submission.
    /// When it expires the executor stops the search gracefully and marks
    /// the outcome degraded instead of aborting. `None` (the default)
    /// means no deadline; a batch executor may substitute its own default.
    pub deadline_us: Option<u64>,
    /// Whether a sharded execution may fold other shards' kth-best values
    /// into this query's pruning threshold (default `true`). Turning it
    /// off isolates the query — useful for ablations and for callers that
    /// want per-shard answers unaffected by sibling progress.
    pub share_bound: bool,
    /// Read-your-writes token: the query must be answered from state that
    /// reflects every write at or below this LSN. A serving layer admits
    /// the query only once its visibility watermark has caught up (and
    /// refuses with a typed error when it lags — a replica behind the
    /// client's last acked write, say). `None` (the default) means any
    /// current state is acceptable.
    pub min_lsn: Option<u64>,
    /// Which index substrate the query must run against.
    /// [`Substrate::Auto`] (the default) accepts whatever the database
    /// hosts; an explicit selector makes a mismatched database refuse the
    /// query with a typed error instead of answering from the wrong
    /// structure.
    pub substrate: Substrate,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            k: 1,
            period: None,
            deadline_us: None,
            share_bound: true,
            min_lsn: None,
            substrate: Substrate::Auto,
        }
    }
}

impl QueryOptions {
    /// The default options: `k = 1`, no window, no deadline, sharing on.
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the number of results to return.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the time window the query is evaluated over.
    pub fn during(mut self, period: &TimeInterval) -> Self {
        self.period = Some(*period);
        self
    }

    /// Sets a soft deadline measured from submission. Durations beyond
    /// `u64::MAX` microseconds (≈ 584 thousand years) saturate.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline_us = Some(u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX));
        self
    }

    /// Sets a soft deadline in raw microseconds (the wire-codec form).
    pub fn deadline_us(mut self, micros: u64) -> Self {
        self.deadline_us = Some(micros);
        self
    }

    /// Removes any deadline.
    pub fn no_deadline(mut self) -> Self {
        self.deadline_us = None;
        self
    }

    /// Enables or disables cross-shard bound sharing.
    pub fn share_bound(mut self, share: bool) -> Self {
        self.share_bound = share;
        self
    }

    /// Requires the answer to reflect every write at or below `lsn` —
    /// the read-your-writes token (thread the LSN an `Ingested` ack
    /// carried into the next read).
    pub fn min_lsn(mut self, lsn: u64) -> Self {
        self.min_lsn = Some(lsn);
        self
    }

    /// Selects the index substrate the query must run against.
    pub fn substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }

    /// The canonical identity of these options for caching and
    /// cross-connection deduplication: two option sets with the same key
    /// describe the same *answer*, so an answer computed for one may be
    /// served for the other.
    ///
    /// Canonicalisation rules:
    ///
    /// * the **deadline is excluded** — it shapes how long a query may
    ///   run, not what its certified answer is, so deadline changes must
    ///   not split cache entries;
    /// * the **read-your-writes token (`min_lsn`) is excluded** — it
    ///   gates *admission* (the server refuses or delays the query until
    ///   its watermark catches up), not the answer: once admitted, the
    ///   query is answered from the same current state regardless of the
    ///   token, and caches are invalidated on every applied write, so a
    ///   cached answer an admitted query may see is always current;
    /// * period endpoints are compared by canonical bit pattern
    ///   ([`canonical_f64_bits`]): `-0.0` folds into `+0.0` and every NaN
    ///   payload folds into one canonical NaN, so semantically equal
    ///   windows hash equal;
    /// * `share_bound` is included — it changes execution, and an
    ///   execution-coalescing dedup must not merge a sharing query with
    ///   an isolation ablation;
    /// * the **substrate selector is included** — different substrates may
    ///   legitimately produce differently-profiled (and, for `Auto` vs an
    ///   explicit selector, differently-admitted) executions, so a cached
    ///   answer must never cross a substrate boundary.
    pub fn canonical_key(&self) -> OptionsKey {
        OptionsKey {
            k: u64::try_from(self.k).unwrap_or(u64::MAX),
            period_bits: self
                .period
                .map(|p| (canonical_f64_bits(p.start()), canonical_f64_bits(p.end()))),
            share_bound: self.share_bound,
            substrate: self.substrate,
        }
    }
}

/// The canonical bit pattern of a double for hashing: `-0.0` maps to
/// `+0.0` and every NaN maps to the one canonical quiet NaN, so values
/// that compare semantically equal (or are semantically interchangeable)
/// produce identical bits. All other values map to their own bits.
pub fn canonical_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        return f64::NAN.to_bits();
    }
    let bits = v.to_bits();
    if bits == (-0.0f64).to_bits() {
        return 0.0f64.to_bits();
    }
    bits
}

/// The canonical cache/dedup identity of a [`QueryOptions`] — see
/// [`QueryOptions::canonical_key`]. Hash and equality are total (floats
/// travel as canonicalised bit patterns), so the key works directly in
/// hash maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptionsKey {
    /// Result count.
    pub k: u64,
    /// Canonical bit patterns of the period endpoints, when a period is
    /// set.
    pub period_bits: Option<(u64, u64)>,
    /// Whether cross-shard bound sharing is on.
    pub share_bound: bool,
    /// The substrate selector the query carried.
    pub substrate: Substrate,
}

impl OptionsKey {
    /// Appends the key's canonical byte encoding to `out` — the building
    /// block for composite cache keys that also cover query geometry.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.k.to_le_bytes());
        match self.period_bits {
            Some((start, end)) => {
                out.push(1);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
            }
            None => out.push(0),
        }
        out.push(u8::from(self.share_bound));
        out.push(self.substrate.tag());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_single_query_defaults() {
        let o = QueryOptions::new();
        assert_eq!(o.k, 1);
        assert_eq!(o.period, None);
        assert_eq!(o.deadline_us, None);
        assert!(o.share_bound);
    }

    #[test]
    fn deadline_converts_to_microseconds_and_saturates() {
        let o = QueryOptions::new().deadline(Duration::from_millis(3));
        assert_eq!(o.deadline_us, Some(3_000));
        let o = QueryOptions::new().deadline(Duration::MAX);
        assert_eq!(o.deadline_us, Some(u64::MAX));
        assert_eq!(o.no_deadline().deadline_us, None);
    }

    fn hash_of(key: &OptionsKey) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_options_hash_equal() {
        let w = TimeInterval::new(2.0, 8.0).unwrap();
        let a = QueryOptions::new().k(5).during(&w);
        let b = QueryOptions::new().k(5).during(&w);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(hash_of(&a.canonical_key()), hash_of(&b.canonical_key()));
        // Different k, different key.
        let c = QueryOptions::new().k(6).during(&w);
        assert_ne!(a.canonical_key(), c.canonical_key());
        // Different sharing policy, different key (different execution).
        let d = QueryOptions::new().k(5).during(&w).share_bound(false);
        assert_ne!(a.canonical_key(), d.canonical_key());
        // Different substrate, different key (answers must not cross).
        let e = QueryOptions::new()
            .k(5)
            .during(&w)
            .substrate(Substrate::Metric);
        assert_ne!(a.canonical_key(), e.canonical_key());
    }

    #[test]
    fn substrate_tags_round_trip_and_stay_stable() {
        let all = [
            Substrate::Auto,
            Substrate::Rtree,
            Substrate::TbTree,
            Substrate::StrTree,
            Substrate::Metric,
        ];
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.tag() as usize, i);
            assert_eq!(Substrate::from_tag(s.tag()), Some(*s));
        }
        assert_eq!(Substrate::from_tag(5), None);
        assert_eq!(Substrate::default(), Substrate::Auto);
    }

    #[test]
    fn deadline_changes_do_not_split_cache_entries() {
        let w = TimeInterval::new(1.0, 9.0).unwrap();
        let base = QueryOptions::new().k(3).during(&w);
        let with_deadline = base.deadline_us(1_500);
        let with_other_deadline = base.deadline(Duration::from_secs(2));
        let key = base.canonical_key();
        assert_eq!(key, with_deadline.canonical_key());
        assert_eq!(key, with_other_deadline.canonical_key());
        assert_eq!(hash_of(&key), hash_of(&with_deadline.canonical_key()));
    }

    #[test]
    fn min_lsn_changes_do_not_split_cache_entries() {
        // The read-your-writes token gates admission, not the answer —
        // see the canonical_key docs for why exclusion is sound.
        let base = QueryOptions::new().k(3);
        let key = base.canonical_key();
        assert_eq!(key, base.min_lsn(42).canonical_key());
        assert_eq!(key, base.min_lsn(7).canonical_key());
        assert_eq!(hash_of(&key), hash_of(&base.min_lsn(42).canonical_key()));
    }

    #[test]
    fn negative_zero_and_nan_bits_canonicalise() {
        assert_eq!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
        assert_eq!(canonical_f64_bits(0.0), 0.0f64.to_bits());
        // Every NaN payload folds into the canonical NaN.
        let weird_nan = f64::from_bits(0x7ff8_0000_dead_beef);
        assert!(weird_nan.is_nan());
        assert_eq!(canonical_f64_bits(weird_nan), canonical_f64_bits(f64::NAN));
        // Ordinary values keep their own bits.
        assert_eq!(canonical_f64_bits(2.5), 2.5f64.to_bits());
        assert_ne!(canonical_f64_bits(2.5), canonical_f64_bits(-2.5));

        // A window starting at -0.0 keys identically to one starting at
        // +0.0: the intervals are semantically the same.
        let neg = TimeInterval::new(-0.0, 5.0).unwrap();
        let pos = TimeInterval::new(0.0, 5.0).unwrap();
        let a = QueryOptions::new().k(2).during(&neg);
        let b = QueryOptions::new().k(2).during(&pos);
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn options_key_encoding_is_injective_over_fields() {
        let w = TimeInterval::new(1.0, 4.0).unwrap();
        let keys = [
            QueryOptions::new().canonical_key(),
            QueryOptions::new().k(2).canonical_key(),
            QueryOptions::new().during(&w).canonical_key(),
            QueryOptions::new().share_bound(false).canonical_key(),
            QueryOptions::new()
                .substrate(Substrate::Metric)
                .canonical_key(),
            QueryOptions::new()
                .substrate(Substrate::Rtree)
                .canonical_key(),
        ];
        let mut encodings: Vec<Vec<u8>> = Vec::new();
        for key in &keys {
            let mut out = Vec::new();
            key.encode_into(&mut out);
            encodings.push(out);
        }
        for i in 0..encodings.len() {
            for j in (i + 1)..encodings.len() {
                assert_ne!(encodings[i], encodings[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn setters_compose() {
        let w = TimeInterval::new(1.0, 4.0).unwrap();
        let o = QueryOptions::new()
            .k(7)
            .during(&w)
            .deadline_us(500)
            .share_bound(false);
        assert_eq!(o.k, 7);
        assert_eq!(o.period, Some(w));
        assert_eq!(o.deadline_us, Some(500));
        assert!(!o.share_bound);
    }
}
