//! Shared query options — the knobs every query flavour has in common.
//!
//! [`QueryOptions`] is the single carrier for the parameters that used to
//! be threaded as three parallel ad-hoc argument sets: the builder setters
//! on [`Query`](crate::Query), the batch executor's submission path, and
//! the serving layer's wire codec all speak this one struct. A frozen spec
//! ([`KmstSpec`](crate::KmstSpec), [`KnnSpec`](crate::KnnSpec), ...)
//! embeds its options, so an executor or a server can read the deadline
//! and sharing policy without knowing which query flavour it is running.

use core::time::Duration;

use mst_trajectory::TimeInterval;

/// Options shared by every query flavour: result count, time window,
/// per-query deadline, and cross-shard bound sharing.
///
/// ```
/// use core::time::Duration;
/// use mst_search::QueryOptions;
///
/// let opts = QueryOptions::new().k(5).deadline(Duration::from_millis(20));
/// assert_eq!(opts.k, 5);
/// assert_eq!(opts.deadline_us, Some(20_000));
/// assert!(opts.share_bound);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Number of results to return (default 1). Range queries ignore it —
    /// a range query returns everything in the window.
    pub k: usize,
    /// The time window the query is evaluated over. `None` means "default
    /// to the query trajectory's own validity interval" for trajectory
    /// queries; point-kNN queries require an explicit window.
    pub period: Option<TimeInterval>,
    /// Soft per-query deadline in microseconds, measured from submission.
    /// When it expires the executor stops the search gracefully and marks
    /// the outcome degraded instead of aborting. `None` (the default)
    /// means no deadline; a batch executor may substitute its own default.
    pub deadline_us: Option<u64>,
    /// Whether a sharded execution may fold other shards' kth-best values
    /// into this query's pruning threshold (default `true`). Turning it
    /// off isolates the query — useful for ablations and for callers that
    /// want per-shard answers unaffected by sibling progress.
    pub share_bound: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            k: 1,
            period: None,
            deadline_us: None,
            share_bound: true,
        }
    }
}

impl QueryOptions {
    /// The default options: `k = 1`, no window, no deadline, sharing on.
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the number of results to return.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the time window the query is evaluated over.
    pub fn during(mut self, period: &TimeInterval) -> Self {
        self.period = Some(*period);
        self
    }

    /// Sets a soft deadline measured from submission. Durations beyond
    /// `u64::MAX` microseconds (≈ 584 thousand years) saturate.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline_us = Some(u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX));
        self
    }

    /// Sets a soft deadline in raw microseconds (the wire-codec form).
    pub fn deadline_us(mut self, micros: u64) -> Self {
        self.deadline_us = Some(micros);
        self
    }

    /// Removes any deadline.
    pub fn no_deadline(mut self) -> Self {
        self.deadline_us = None;
        self
    }

    /// Enables or disables cross-shard bound sharing.
    pub fn share_bound(mut self, share: bool) -> Self {
        self.share_bound = share;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_single_query_defaults() {
        let o = QueryOptions::new();
        assert_eq!(o.k, 1);
        assert_eq!(o.period, None);
        assert_eq!(o.deadline_us, None);
        assert!(o.share_bound);
    }

    #[test]
    fn deadline_converts_to_microseconds_and_saturates() {
        let o = QueryOptions::new().deadline(Duration::from_millis(3));
        assert_eq!(o.deadline_us, Some(3_000));
        let o = QueryOptions::new().deadline(Duration::MAX);
        assert_eq!(o.deadline_us, Some(u64::MAX));
        assert_eq!(o.no_deadline().deadline_us, None);
    }

    #[test]
    fn setters_compose() {
        let w = TimeInterval::new(1.0, 4.0).unwrap();
        let o = QueryOptions::new()
            .k(7)
            .during(&w)
            .deadline_us(500)
            .share_bound(false);
        assert_eq!(o.k, 7);
        assert_eq!(o.period, Some(w));
        assert_eq!(o.deadline_us, Some(500));
        assert!(!o.share_bound);
    }
}
