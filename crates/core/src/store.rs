use mst_trajectory::{TimeInterval, Trajectory, TrajectoryId};

/// The moving-object dataset: trajectories addressable by id.
///
/// The R-tree-like structures index individual *segments*; the store holds
/// the source trajectories, which the search needs for the exact
/// post-processing step of Section 4.4 (and which the linear-scan baseline
/// reads directly).
#[derive(Debug, Clone, Default)]
pub struct TrajectoryStore {
    trajectories: Vec<(TrajectoryId, Trajectory)>,
    /// Index into `trajectories` by id (dense ids get direct slots).
    by_id: std::collections::HashMap<TrajectoryId, usize>,
}

impl TrajectoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TrajectoryStore::default()
    }

    /// Builds a store assigning sequential ids `0..n` to the trajectories.
    pub fn from_trajectories(trajectories: Vec<Trajectory>) -> Self {
        let mut store = TrajectoryStore::new();
        for (i, t) in trajectories.into_iter().enumerate() {
            store.insert(TrajectoryId(i as u64), t);
        }
        store
    }

    /// Inserts (or replaces) a trajectory under `id`.
    pub fn insert(&mut self, id: TrajectoryId, trajectory: Trajectory) {
        if let Some(&slot) = self.by_id.get(&id) {
            self.trajectories[slot] = (id, trajectory);
        } else {
            self.by_id.insert(id, self.trajectories.len());
            self.trajectories.push((id, trajectory));
        }
    }

    /// Looks up a trajectory.
    pub fn get(&self, id: TrajectoryId) -> Option<&Trajectory> {
        self.by_id.get(&id).map(|&i| &self.trajectories[i].1)
    }

    /// Removes a trajectory, returning it when it was present. The last
    /// slot is swapped into the vacated one, so removal is O(1) and the
    /// iteration order of the *remaining* trajectories changes — callers
    /// that need determinism sort on id, as the search result mergers
    /// already do.
    pub fn remove(&mut self, id: TrajectoryId) -> Option<Trajectory> {
        let slot = self.by_id.remove(&id)?;
        let (_, removed) = self.trajectories.swap_remove(slot);
        if let Some((moved_id, _)) = self.trajectories.get(slot) {
            self.by_id.insert(*moved_id, slot);
        }
        Some(removed)
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Iterates over `(id, trajectory)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TrajectoryId, &Trajectory)> {
        self.trajectories.iter().map(|(id, t)| (*id, t))
    }

    /// Iterates over the trajectories that are valid over all of `period`
    /// (the candidates a k-MST query over that period considers).
    pub fn covering(
        &self,
        period: &TimeInterval,
    ) -> impl Iterator<Item = (TrajectoryId, &Trajectory)> {
        let period = *period;
        self.iter().filter(move |(_, t)| t.covers(&period))
    }

    /// Total number of segments across all trajectories.
    pub fn total_segments(&self) -> u64 {
        self.iter().map(|(_, t)| t.num_segments() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(t0: f64, t1: f64) -> Trajectory {
        Trajectory::from_txy(&[(t0, 0.0, 0.0), (t1, 1.0, 1.0)]).unwrap()
    }

    #[test]
    fn insert_get_replace() {
        let mut s = TrajectoryStore::new();
        s.insert(TrajectoryId(5), traj(0.0, 10.0));
        assert_eq!(s.len(), 1);
        assert!(s.get(TrajectoryId(5)).is_some());
        assert!(s.get(TrajectoryId(6)).is_none());
        s.insert(TrajectoryId(5), traj(2.0, 3.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(TrajectoryId(5)).unwrap().start_time(), 2.0);
    }

    #[test]
    fn remove_swaps_and_keeps_lookups_consistent() {
        let mut s = TrajectoryStore::new();
        s.insert(TrajectoryId(0), traj(0.0, 1.0));
        s.insert(TrajectoryId(1), traj(1.0, 2.0));
        s.insert(TrajectoryId(2), traj(2.0, 3.0));
        assert!(s.remove(TrajectoryId(7)).is_none());
        let gone = s.remove(TrajectoryId(0)).expect("was present");
        assert_eq!(gone.start_time(), 0.0);
        assert_eq!(s.len(), 2);
        assert!(s.get(TrajectoryId(0)).is_none());
        // The swapped-in trajectory is still addressable.
        assert_eq!(s.get(TrajectoryId(2)).unwrap().start_time(), 2.0);
        assert_eq!(s.get(TrajectoryId(1)).unwrap().start_time(), 1.0);
        // Removing down to empty and re-inserting works.
        s.remove(TrajectoryId(1)).unwrap();
        s.remove(TrajectoryId(2)).unwrap();
        assert!(s.is_empty());
        s.insert(TrajectoryId(2), traj(5.0, 6.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_trajectories_assigns_dense_ids() {
        let s = TrajectoryStore::from_trajectories(vec![traj(0.0, 1.0), traj(1.0, 2.0)]);
        assert_eq!(s.len(), 2);
        assert!(s.get(TrajectoryId(0)).is_some());
        assert!(s.get(TrajectoryId(1)).is_some());
        assert_eq!(s.total_segments(), 2);
    }

    #[test]
    fn covering_filters_by_period() {
        let mut s = TrajectoryStore::new();
        s.insert(TrajectoryId(0), traj(0.0, 10.0));
        s.insert(TrajectoryId(1), traj(3.0, 7.0));
        let period = TimeInterval::new(2.0, 8.0).unwrap();
        let ids: Vec<_> = s.covering(&period).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![TrajectoryId(0)]);
    }
}
