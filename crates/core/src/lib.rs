//! Index-based Most-Similar-Trajectory search (ICDE 2007).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`dissim`] — the **DISSIM** spatiotemporal dissimilarity metric
//!   (Definition 1): the definite integral of the Euclidean distance between
//!   two trajectories over a common time period; computed either in closed
//!   form or with the cheap trapezoid approximation of Lemma 1, whose error
//!   bound is tracked alongside;
//! * [`bounds`] — the pruning metrics: **LDD** (Definition 2), the
//!   speed-dependent **OPTDISSIM** / **PESDISSIM** envelopes (Definitions
//!   3–4, Lemmas 2–3) and the speed-independent **OPTDISSIMINC** /
//!   **MINDISSIMINC** (Definitions 5–6, Lemma 4), plus the
//!   [`bounds::Candidate`] bookkeeping that maintains them incrementally
//!   while the index is traversed;
//! * [`bfmst`] — the **BFMSTSearch** best-first k-MST algorithm (Section 4,
//!   Figure 7) over any [`mst_index::TrajectoryIndex`], with heuristics 1–2
//!   and the error management of Section 4.4;
//! * [`scan`] — the exact linear-scan k-MST used as ground truth and as the
//!   pruning-power denominator;
//! * [`TrajectoryStore`] — the moving-object dataset the index sits on top
//!   of (needed for the exact post-processing step).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bfmst;
pub mod bounds;
pub mod database;
pub mod descent;
pub mod dissim;
pub mod merge;
pub mod metrics;
pub mod nn;
pub mod options;
pub mod query;
pub mod scan;
pub mod selectivity;
pub mod share;
mod store;
pub mod substrate;
pub mod time_relaxed;
mod topk;

pub use bfmst::{bfmst_search, bfmst_search_source, MstConfig, SearchReport};
pub use database::MovingObjectDatabase;
pub use descent::{CandidateSource, MbbDescent, SegmentGroup};
pub use dissim::{Dissim, Integration};
pub use merge::{merge_shard_matches, merge_shard_nn, merge_shard_range, merge_shard_segments};
pub use metrics::{
    CandidateCounters, MetricsSink, NoopSink, PruningBound, PruningCounters, QueryMetrics,
    QueryProfile,
};
pub use nn::{nearest_trajectories, nearest_trajectories_source, NnMatch, NnOutcome};
pub use options::{canonical_f64_bits, OptionsKey, QueryOptions, Substrate};
pub use query::{
    KmstQuery, KmstSpec, KnnQuery, KnnSegmentsQuery, KnnSpec, Query, RangeQuery, RangeSpec,
    SegmentsSpec, TimeRelaxedQuery,
};
pub use scan::{scan_kmst, scan_kmst_traced};
pub use selectivity::{estimate_selectivity, SelectivityEstimate, SelectivityHistogram};
pub use share::{BoundShare, NoShare};
pub use store::TrajectoryStore;
pub use substrate::{metric_kmst_search, KmstSubstrate};
pub use time_relaxed::{
    time_relaxed_kmst, time_relaxed_kmst_traced, TimeRelaxedConfig, TimeRelaxedMatch,
};
pub use topk::UpperKeys;

use mst_trajectory::TrajectoryId;

/// One answer of a k-MST query: a trajectory and its dissimilarity from the
/// query over the query period (smaller is more similar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MstMatch {
    /// The matched trajectory.
    pub traj: TrajectoryId,
    /// Its DISSIM from the query (exact when the search post-processes or
    /// runs in exact mode).
    pub dissim: f64,
}

/// Errors of the search layer.
#[derive(Debug)]
pub enum SearchError {
    /// A trajectory-model operation failed.
    Trajectory(mst_trajectory::TrajectoryError),
    /// An index operation failed.
    Index(mst_index::IndexError),
    /// The query trajectory does not cover the query period.
    QueryOutsidePeriod {
        /// Requested period.
        period: (f64, f64),
        /// Query validity.
        valid: (f64, f64),
    },
    /// A candidate referenced by the index is missing from the store.
    MissingTrajectory(TrajectoryId),
    /// A [`Query`] builder was run with a required parameter missing or an
    /// inconsistent combination of settings.
    MisconfiguredQuery(&'static str),
    /// The query pinned a [`Substrate`] the executing database is not
    /// backed by.
    SubstrateMismatch {
        /// The substrate the query options demanded.
        requested: Substrate,
        /// The substrate actually backing the database.
        actual: Substrate,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Trajectory(e) => write!(f, "trajectory error: {e}"),
            SearchError::Index(e) => write!(f, "index error: {e}"),
            SearchError::QueryOutsidePeriod { period, valid } => write!(
                f,
                "query valid on [{}, {}] does not cover the query period [{}, {}]",
                valid.0, valid.1, period.0, period.1
            ),
            SearchError::MissingTrajectory(id) => {
                write!(f, "trajectory {id} indexed but missing from the store")
            }
            SearchError::MisconfiguredQuery(what) => {
                write!(f, "misconfigured query: {what}")
            }
            SearchError::SubstrateMismatch { requested, actual } => {
                write!(
                    f,
                    "query pinned substrate {} but the database runs on {}",
                    requested.name(),
                    actual.name()
                )
            }
        }
    }
}

impl std::error::Error for SearchError {}

impl From<mst_trajectory::TrajectoryError> for SearchError {
    fn from(e: mst_trajectory::TrajectoryError) -> Self {
        SearchError::Trajectory(e)
    }
}

impl From<mst_index::IndexError> for SearchError {
    fn from(e: mst_index::IndexError) -> Self {
        SearchError::Index(e)
    }
}

/// Result alias for the search crate.
pub type Result<T> = std::result::Result<T, SearchError>;
