//! Per-query observability: the quantities the paper's Section 5 evaluation
//! reports (pruning power, execution cost) as first-class query outputs.
//!
//! The search algorithms are generic over a [`QueryMetrics`] sink — an
//! extension of the index layer's [`MetricsSink`] with search-level events
//! (DISSIM piece evaluations, candidate lifecycle, per-bound pruning). The
//! [`QueryProfile`] implements both and is the standard collector: run any
//! query through [`crate::Query`] with `.profile()` and every counter below
//! is populated. Running with the [`NoopSink`] instead monomorphizes all
//! hooks away, so the observed and unobserved paths are the same code and
//! tracing can never change an answer.
//!
//! No timing lives here (xtask rule R5 keeps the wall clock out of library
//! crates): the profile counts *work* — machine-independent events — and
//! `crates/bench` pairs it with wall time.

pub use mst_index::{MetricsSink, NoopSink};

use crate::dissim::Integration;

/// The pruning bound an event refers to, one per bound family of the paper
/// (Definitions 2–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningBound {
    /// LDD, the per-gap lower bound of Definition 2 (the integrand of the
    /// speed-dependent envelopes).
    Ldd,
    /// OPTDISSIM, the candidate-level lower bound of heuristic 1.
    OptDissim,
    /// PESDISSIM, the candidate-level upper bound feeding the threshold.
    PesDissim,
    /// OPTDISSIMINC, the incremental speed-independent lower bound.
    OptDissimInc,
    /// MINDISSIMINC, the node-level bound of heuristic 2.
    MinDissimInc,
    /// The cross-shard shared kth-bound of the concurrent executor: a
    /// monotonically tightened upper bound on the *global* kth DISSIM,
    /// published by whichever shard discovers it first. An eval or prune is
    /// attributed here only when the shared bound was the binding
    /// constraint — the purely shard-local threshold alone would not have
    /// fired.
    SharedKth,
    /// The metric substrate's triangle-inequality lower bound:
    /// `max(0, DISSIM(Q, pivot) - radius)` for a covering-radius ball, or
    /// `max(0, DISSIM(Q, pivot) - d(pivot, T))` for a stored member
    /// distance. Sound for any query window by window-restriction
    /// monotonicity of the DISSIM integrand.
    TriangleIneq,
}

/// Candidate lifecycle accounting. The ledger balances by construction:
/// every candidate the search discovers ends up pruned, refined, or still
/// pending, so `seen == pruned + refined + pending` on any profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateCounters {
    /// Distinct candidate trajectories discovered.
    pub seen: u64,
    /// Candidates refined to a complete DISSIM over the period.
    pub refined: u64,
    /// Candidates rejected by a pruning bound before completion.
    pub pruned: u64,
    /// Candidates still partial when the search ended.
    pub pending: u64,
}

/// Per-bound evaluation and pruning counters — the "pruning power"
/// ingredients of the paper's Figures 8–11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruningCounters {
    /// Per-gap LDD envelope integrals evaluated (each OPTDISSIM/PESDISSIM
    /// computation evaluates one per uncovered gap).
    pub ldd_evals: u64,
    /// OPTDISSIM lower bounds computed (heuristic 1 tests).
    pub opt_dissim_evals: u64,
    /// Candidates rejected because OPTDISSIM cleared the threshold.
    pub opt_dissim_prunes: u64,
    /// PESDISSIM upper bounds computed.
    pub pes_dissim_evals: u64,
    /// PESDISSIM computations that tightened the pruning threshold's key
    /// for their candidate (PESDISSIM prunes indirectly, through the
    /// threshold it feeds).
    pub pes_dissim_tightenings: u64,
    /// Per-candidate OPTDISSIMINC bounds computed by heuristic 2.
    pub opt_dissim_inc_evals: u64,
    /// Pending candidates discarded when OPTDISSIMINC terminated the
    /// search (each provably outside the answer).
    pub opt_dissim_inc_prunes: u64,
    /// Node-level MINDISSIMINC blanket tests (`MINDIST × period`).
    pub min_dissim_inc_evals: u64,
    /// Queued nodes discarded unvisited when heuristic 2 fired.
    pub min_dissim_inc_prunes: u64,
    /// Reads of the cross-shard shared kth bound that were strictly tighter
    /// than the shard-local threshold.
    pub shared_kth_evals: u64,
    /// Prunes (candidates or queued nodes) where only the shared bound
    /// cleared the threshold — work another shard's discovery killed.
    pub shared_kth_prunes: u64,
    /// Triangle-inequality lower bounds computed by the metric substrate
    /// (one per member distance test; ball descent bounds are folded in).
    pub triangle_ineq_evals: u64,
    /// Candidates or queued balls rejected because the triangle-inequality
    /// bound cleared the threshold.
    pub triangle_ineq_prunes: u64,
}

/// One query's complete observability record.
///
/// Collects every [`MetricsSink`] and [`QueryMetrics`] event. A profile may
/// be reused across queries: counters accumulate monotonically, so per-query
/// figures come from deltas (or a fresh profile per query).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Elements pushed onto best-first priority queues.
    pub heap_pushes: u64,
    /// Elements popped off best-first priority queues.
    pub heap_pops: u64,
    /// Node accesses per tree level (index 0 = leaves; grows as needed).
    pub node_accesses: Vec<u64>,
    /// Page requests served from the buffer pool.
    pub buffer_hits: u64,
    /// Page requests that faulted through to the page store.
    pub buffer_misses: u64,
    /// Bytes of page payload handed to the node decoder.
    pub bytes_decoded: u64,
    /// Closed-form DISSIM piece integrals evaluated.
    pub exact_piece_evals: u64,
    /// Trapezoid DISSIM piece integrals evaluated.
    pub trapezoid_piece_evals: u64,
    /// Exact integrals recomputed by the Section 4.4 post-processing.
    pub exact_recomputations: u64,
    /// Candidate lifecycle ledger.
    pub candidates: CandidateCounters,
    /// Per-bound evaluation and pruning counters.
    pub pruning: PruningCounters,
    /// Heuristic-2 terminations recorded (one per query it cut short).
    pub early_terminations: u64,
    /// Queries answered from a serving layer's answer cache instead of
    /// executing (the cache merges a one-hit profile per hit; index and
    /// search counters stay untouched because no search ran).
    pub answer_cache_hits: u64,
    /// Cache-eligible queries that missed the answer cache and executed.
    pub answer_cache_misses: u64,
    /// Physical page reads retried after a retryable fault (transient I/O
    /// error or checksum mismatch).
    pub io_retries: u64,
    /// Page fetches that failed checksum verification.
    pub checksum_failures: u64,
    /// Pages quarantined after exhausting their retry budget.
    pub pages_quarantined: u64,
}

impl QueryProfile {
    /// A fresh all-zero profile.
    pub fn new() -> Self {
        QueryProfile::default()
    }

    /// Total node accesses across all levels.
    pub fn nodes_accessed(&self) -> u64 {
        self.node_accesses.iter().sum()
    }

    /// Leaf-level node accesses.
    pub fn leaf_accesses(&self) -> u64 {
        self.node_accesses.first().copied().unwrap_or(0)
    }

    /// Total DISSIM piece integrals evaluated (both schemes).
    pub fn piece_evals(&self) -> u64 {
        self.exact_piece_evals + self.trapezoid_piece_evals
    }

    /// Adds every counter of `other` into `self` — aggregation over a
    /// workload of per-query profiles.
    pub fn merge(&mut self, other: &QueryProfile) {
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        if self.node_accesses.len() < other.node_accesses.len() {
            self.node_accesses.resize(other.node_accesses.len(), 0);
        }
        for (level, n) in other.node_accesses.iter().enumerate() {
            self.node_accesses[level] += n;
        }
        self.buffer_hits += other.buffer_hits;
        self.buffer_misses += other.buffer_misses;
        self.bytes_decoded += other.bytes_decoded;
        self.exact_piece_evals += other.exact_piece_evals;
        self.trapezoid_piece_evals += other.trapezoid_piece_evals;
        self.exact_recomputations += other.exact_recomputations;
        self.candidates.seen += other.candidates.seen;
        self.candidates.refined += other.candidates.refined;
        self.candidates.pruned += other.candidates.pruned;
        self.candidates.pending += other.candidates.pending;
        self.pruning.ldd_evals += other.pruning.ldd_evals;
        self.pruning.opt_dissim_evals += other.pruning.opt_dissim_evals;
        self.pruning.opt_dissim_prunes += other.pruning.opt_dissim_prunes;
        self.pruning.pes_dissim_evals += other.pruning.pes_dissim_evals;
        self.pruning.pes_dissim_tightenings += other.pruning.pes_dissim_tightenings;
        self.pruning.opt_dissim_inc_evals += other.pruning.opt_dissim_inc_evals;
        self.pruning.opt_dissim_inc_prunes += other.pruning.opt_dissim_inc_prunes;
        self.pruning.min_dissim_inc_evals += other.pruning.min_dissim_inc_evals;
        self.pruning.min_dissim_inc_prunes += other.pruning.min_dissim_inc_prunes;
        self.pruning.shared_kth_evals += other.pruning.shared_kth_evals;
        self.pruning.shared_kth_prunes += other.pruning.shared_kth_prunes;
        self.pruning.triangle_ineq_evals += other.pruning.triangle_ineq_evals;
        self.pruning.triangle_ineq_prunes += other.pruning.triangle_ineq_prunes;
        self.early_terminations += other.early_terminations;
        self.answer_cache_hits += other.answer_cache_hits;
        self.answer_cache_misses += other.answer_cache_misses;
        self.io_retries += other.io_retries;
        self.checksum_failures += other.checksum_failures;
        self.pages_quarantined += other.pages_quarantined;
    }

    /// True when the candidate ledger balances:
    /// `seen == pruned + refined + pending`. Holds by construction for any
    /// profile populated by the search algorithms (also across accumulated
    /// queries).
    pub fn is_consistent(&self) -> bool {
        self.candidates.seen
            == self.candidates.pruned + self.candidates.refined + self.candidates.pending
    }
}

impl MetricsSink for QueryProfile {
    fn node_access(&mut self, level: u8) {
        let i = usize::from(level);
        if self.node_accesses.len() <= i {
            self.node_accesses.resize(i + 1, 0);
        }
        self.node_accesses[i] += 1;
    }

    fn buffer_hit(&mut self) {
        self.buffer_hits += 1;
    }

    fn buffer_miss(&mut self) {
        self.buffer_misses += 1;
    }

    fn bytes_decoded(&mut self, n: u64) {
        self.bytes_decoded += n;
    }

    fn heap_push(&mut self) {
        self.heap_pushes += 1;
    }

    fn heap_pop(&mut self) {
        self.heap_pops += 1;
    }

    fn io_retry(&mut self) {
        self.io_retries += 1;
    }

    fn io_checksum_failure(&mut self) {
        self.checksum_failures += 1;
    }

    fn io_quarantine(&mut self) {
        self.pages_quarantined += 1;
    }
}

/// Search-level events, extending the index layer's [`MetricsSink`]. Like
/// the base trait, every method defaults to a no-op so sinks implement only
/// what they record.
pub trait QueryMetrics: MetricsSink {
    /// One DISSIM piece integral was evaluated with `integration`.
    fn piece_eval(&mut self, integration: Integration) {
        let _ = integration;
    }

    /// A new candidate trajectory was discovered.
    fn candidate_seen(&mut self) {}

    /// A candidate was refined to a complete DISSIM over the period.
    fn candidate_refined(&mut self) {}

    /// A candidate was rejected by a pruning bound before completion.
    fn candidate_pruned(&mut self) {}

    /// `n` candidates were still partial when the search ended.
    fn candidates_pending(&mut self, n: u64) {
        let _ = n;
    }

    /// `n` evaluations of `bound` were performed.
    fn bound_evals(&mut self, bound: PruningBound, n: u64) {
        let _ = (bound, n);
    }

    /// `bound` pruned `n` units of work (candidates for the candidate-level
    /// bounds, queued nodes for MINDISSIMINC, threshold tightenings for
    /// PESDISSIM).
    fn pruned_by(&mut self, bound: PruningBound, n: u64) {
        let _ = (bound, n);
    }

    /// Heuristic 2 terminated the search before the queue drained.
    fn early_termination(&mut self) {}

    /// The Section 4.4 post-processing recomputed one exact DISSIM.
    fn exact_recomputation(&mut self) {}
}

impl QueryMetrics for NoopSink {}

impl<S: QueryMetrics + ?Sized> QueryMetrics for &mut S {
    fn piece_eval(&mut self, integration: Integration) {
        (**self).piece_eval(integration);
    }
    fn candidate_seen(&mut self) {
        (**self).candidate_seen();
    }
    fn candidate_refined(&mut self) {
        (**self).candidate_refined();
    }
    fn candidate_pruned(&mut self) {
        (**self).candidate_pruned();
    }
    fn candidates_pending(&mut self, n: u64) {
        (**self).candidates_pending(n);
    }
    fn bound_evals(&mut self, bound: PruningBound, n: u64) {
        (**self).bound_evals(bound, n);
    }
    fn pruned_by(&mut self, bound: PruningBound, n: u64) {
        (**self).pruned_by(bound, n);
    }
    fn early_termination(&mut self) {
        (**self).early_termination();
    }
    fn exact_recomputation(&mut self) {
        (**self).exact_recomputation();
    }
}

impl QueryMetrics for QueryProfile {
    fn piece_eval(&mut self, integration: Integration) {
        match integration {
            Integration::Exact => self.exact_piece_evals += 1,
            Integration::Trapezoid => self.trapezoid_piece_evals += 1,
        }
    }

    fn candidate_seen(&mut self) {
        self.candidates.seen += 1;
    }

    fn candidate_refined(&mut self) {
        self.candidates.refined += 1;
    }

    fn candidate_pruned(&mut self) {
        self.candidates.pruned += 1;
    }

    fn candidates_pending(&mut self, n: u64) {
        self.candidates.pending += n;
    }

    fn bound_evals(&mut self, bound: PruningBound, n: u64) {
        match bound {
            PruningBound::Ldd => self.pruning.ldd_evals += n,
            PruningBound::OptDissim => self.pruning.opt_dissim_evals += n,
            PruningBound::PesDissim => self.pruning.pes_dissim_evals += n,
            PruningBound::OptDissimInc => self.pruning.opt_dissim_inc_evals += n,
            PruningBound::MinDissimInc => self.pruning.min_dissim_inc_evals += n,
            PruningBound::SharedKth => self.pruning.shared_kth_evals += n,
            PruningBound::TriangleIneq => self.pruning.triangle_ineq_evals += n,
        }
    }

    fn pruned_by(&mut self, bound: PruningBound, n: u64) {
        match bound {
            PruningBound::Ldd => {}
            PruningBound::OptDissim => self.pruning.opt_dissim_prunes += n,
            PruningBound::PesDissim => self.pruning.pes_dissim_tightenings += n,
            PruningBound::OptDissimInc => self.pruning.opt_dissim_inc_prunes += n,
            PruningBound::MinDissimInc => self.pruning.min_dissim_inc_prunes += n,
            PruningBound::SharedKth => self.pruning.shared_kth_prunes += n,
            PruningBound::TriangleIneq => self.pruning.triangle_ineq_prunes += n,
        }
    }

    fn early_termination(&mut self) {
        self.early_terminations += 1;
    }

    fn exact_recomputation(&mut self) {
        self.exact_recomputations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_collects_index_events() {
        let mut p = QueryProfile::new();
        p.node_access(0);
        p.node_access(0);
        p.node_access(3);
        p.buffer_hit();
        p.buffer_miss();
        p.bytes_decoded(4096);
        p.heap_push();
        p.heap_pop();
        assert_eq!(p.node_accesses, vec![2, 0, 0, 1]);
        assert_eq!(p.nodes_accessed(), 3);
        assert_eq!(p.leaf_accesses(), 2);
        assert_eq!((p.buffer_hits, p.buffer_misses), (1, 1));
        assert_eq!(p.bytes_decoded, 4096);
        assert_eq!((p.heap_pushes, p.heap_pops), (1, 1));
    }

    #[test]
    fn profile_collects_search_events() {
        let mut p = QueryProfile::new();
        p.piece_eval(Integration::Exact);
        p.piece_eval(Integration::Trapezoid);
        p.piece_eval(Integration::Trapezoid);
        p.candidate_seen();
        p.candidate_seen();
        p.candidate_pruned();
        p.candidates_pending(1);
        p.bound_evals(PruningBound::OptDissim, 4);
        p.pruned_by(PruningBound::OptDissim, 1);
        p.bound_evals(PruningBound::MinDissimInc, 2);
        p.pruned_by(PruningBound::MinDissimInc, 7);
        p.early_termination();
        p.exact_recomputation();
        assert_eq!(p.exact_piece_evals, 1);
        assert_eq!(p.trapezoid_piece_evals, 2);
        assert_eq!(p.piece_evals(), 3);
        assert_eq!(p.candidates.seen, 2);
        assert_eq!(p.pruning.opt_dissim_evals, 4);
        assert_eq!(p.pruning.opt_dissim_prunes, 1);
        assert_eq!(p.pruning.min_dissim_inc_evals, 2);
        assert_eq!(p.pruning.min_dissim_inc_prunes, 7);
        assert_eq!(p.early_terminations, 1);
        assert_eq!(p.exact_recomputations, 1);
        assert!(p.is_consistent());
    }

    #[test]
    fn merge_adds_every_counter() {
        let mut a = QueryProfile::new();
        a.node_access(0);
        a.heap_push();
        a.candidate_seen();
        a.candidates_pending(1);
        let mut b = QueryProfile::new();
        b.node_access(2);
        b.buffer_hit();
        b.bound_evals(PruningBound::Ldd, 3);
        b.bound_evals(PruningBound::SharedKth, 2);
        b.pruned_by(PruningBound::SharedKth, 1);
        b.bound_evals(PruningBound::TriangleIneq, 5);
        b.pruned_by(PruningBound::TriangleIneq, 2);
        b.candidate_seen();
        b.candidate_pruned();
        b.io_retry();
        b.io_retry();
        b.io_checksum_failure();
        b.io_quarantine();
        b.answer_cache_hits += 3;
        b.answer_cache_misses += 4;
        a.merge(&b);
        assert_eq!(a.node_accesses, vec![1, 0, 1]);
        assert_eq!(a.heap_pushes, 1);
        assert_eq!(a.buffer_hits, 1);
        assert_eq!(a.pruning.ldd_evals, 3);
        assert_eq!(a.pruning.shared_kth_evals, 2);
        assert_eq!(a.pruning.shared_kth_prunes, 1);
        assert_eq!(a.pruning.triangle_ineq_evals, 5);
        assert_eq!(a.pruning.triangle_ineq_prunes, 2);
        assert_eq!(a.candidates.seen, 2);
        assert_eq!(a.io_retries, 2);
        assert_eq!(a.answer_cache_hits, 3);
        assert_eq!(a.answer_cache_misses, 4);
        assert_eq!(a.checksum_failures, 1);
        assert_eq!(a.pages_quarantined, 1);
        assert!(a.is_consistent());
    }

    #[test]
    fn consistency_detects_an_unbalanced_ledger() {
        let mut p = QueryProfile::new();
        p.candidate_seen();
        assert!(!p.is_consistent());
        p.candidates_pending(1);
        assert!(p.is_consistent());
    }
}
