//! The substrate-agnostic candidate/filter seam between a trajectory index
//! and the best-first search algorithms.
//!
//! BFMST and the historical NN search used to be hard-wired to the
//! MBB-specific descent: they owned the MINDIST priority queue, read pages,
//! and pushed child entries themselves, so every new index substrate meant
//! forking the search loop. This module inverts that coupling: a substrate
//! produces a [`CandidateSource`] — a priority stream of
//! `(lower_bound, candidate group)` items — and the search algorithms
//! consume it generically. [`MbbDescent`] reimplements the classic R-tree /
//! TB-tree MINDIST descent in these terms, event-for-event identical to the
//! pre-refactor inlined loops (the same heap pushes, pops, node reads, and
//! buffer traffic in the same order), so answers and profiles are
//! bit-identical. The metric substrate provides its own whole-trajectory
//! search instead (see [`crate::substrate`]): its triangle-inequality
//! bounds apply to complete trajectories, not segment groups, so it
//! overrides the search rather than the source.
//!
//! The protocol is two-phase because heuristic 2 must be able to terminate
//! a search *without* paying for the node read: [`CandidateSource::pop`]
//! surfaces the next item's lower bound (one heap pop); only if the search
//! decides to proceed does [`CandidateSource::expand`] fetch the item —
//! descending one internal node or yielding a leaf's segment entries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mst_index::mindist::trajectory_mbb_mindist;
use mst_index::{LeafEntry, Node, PageId, TrajectoryIndex};
use mst_trajectory::{TimeInterval, Trajectory};

use crate::metrics::QueryMetrics;
use crate::Result;

/// One group of candidate segment entries yielded by a source, keyed by a
/// sound lower bound on the spatial distance between the query and every
/// entry in the group over the query period.
#[derive(Debug, Clone)]
pub struct SegmentGroup {
    /// Lower bound under which the whole group was enqueued (the node's
    /// MINDIST for an MBB descent). Groups arrive in non-decreasing
    /// `lower_bound` order — the property OPTDISSIMINC soundness rests on.
    pub lower_bound: f64,
    /// The segment entries, in the substrate's natural storage order (the
    /// consumer applies whatever ordering its plane sweep needs).
    pub entries: Vec<LeafEntry>,
}

/// A priority stream of candidate segment groups, produced by an index
/// substrate and consumed generically by the best-first searches.
///
/// Protocol: call [`CandidateSource::pop`] to surface the next item's lower
/// bound, then either abandon the item (termination — its content is never
/// fetched) or call [`CandidateSource::expand`] exactly once to fetch it.
/// `expand` without a preceding un-expanded `pop` yields `Ok(None)`.
pub trait CandidateSource {
    /// Pops the next item off the priority queue and returns its lower
    /// bound, or `None` when the stream is exhausted. Reports one heap pop.
    fn pop<M: QueryMetrics>(&mut self, metrics: &mut M) -> Option<f64>;

    /// Fetches the item surfaced by the last [`CandidateSource::pop`]:
    /// either descends one internal step (enqueueing finer-grained items;
    /// returns `Ok(None)`) or yields a leaf-level [`SegmentGroup`].
    fn expand<M: QueryMetrics>(&mut self, metrics: &mut M) -> Result<Option<SegmentGroup>>;

    /// Number of items still enqueued (excluding a popped, un-expanded
    /// head) — the unit count a terminating search discards unvisited.
    fn pending(&self) -> u64;

    /// Items fetched so far (internal steps plus leaf groups).
    fn nodes_visited(&self) -> u64;

    /// Leaf groups among them.
    fn leaves_visited(&self) -> u64;
}

/// A queue element: node page keyed by its MINDIST from the query.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    mindist: f64,
    page: PageId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mindist
            .total_cmp(&other.mindist)
            .then(self.page.cmp(&other.page))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The classic MBB descent as a [`CandidateSource`]: a best-first MINDIST
/// traversal of any [`TrajectoryIndex`] (the distance-browsing strategy of
/// Hjaltason & Samet), yielding each leaf's entries as one group.
#[derive(Debug)]
pub struct MbbDescent<'a, I: TrajectoryIndex> {
    index: &'a mut I,
    query: &'a Trajectory,
    period: &'a TimeInterval,
    heap: BinaryHeap<Reverse<QueueEntry>>,
    head: Option<QueueEntry>,
    nodes_visited: u64,
    leaves_visited: u64,
}

impl<'a, I: TrajectoryIndex> MbbDescent<'a, I> {
    /// Starts a descent of `index` for `query` (already clipped to
    /// `period`), seeding the queue with the root at bound zero.
    pub fn new<M: QueryMetrics>(
        index: &'a mut I,
        query: &'a Trajectory,
        period: &'a TimeInterval,
        metrics: &mut M,
    ) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = index.root() {
            heap.push(Reverse(QueueEntry {
                mindist: 0.0,
                page: root,
            }));
            metrics.heap_push();
        }
        MbbDescent {
            index,
            query,
            period,
            heap,
            head: None,
            nodes_visited: 0,
            leaves_visited: 0,
        }
    }
}

impl<I: TrajectoryIndex> CandidateSource for MbbDescent<'_, I> {
    fn pop<M: QueryMetrics>(&mut self, metrics: &mut M) -> Option<f64> {
        let Reverse(head) = self.heap.pop()?;
        metrics.heap_pop();
        self.head = Some(head);
        Some(head.mindist)
    }

    fn expand<M: QueryMetrics>(&mut self, metrics: &mut M) -> Result<Option<SegmentGroup>> {
        let Some(head) = self.head.take() else {
            return Ok(None);
        };
        let node = self.index.read_node_traced(head.page, metrics)?;
        self.nodes_visited += 1;
        match node {
            Node::Leaf { entries, .. } => {
                self.leaves_visited += 1;
                Ok(Some(SegmentGroup {
                    lower_bound: head.mindist,
                    entries,
                }))
            }
            Node::Internal { entries, .. } => {
                for e in entries {
                    if let Some(mindist) = trajectory_mbb_mindist(self.query, &e.mbb, self.period) {
                        self.heap.push(Reverse(QueueEntry {
                            mindist,
                            page: e.child,
                        }));
                        metrics.heap_push();
                    }
                }
                Ok(None)
            }
        }
    }

    fn pending(&self) -> u64 {
        self.heap.len() as u64
    }

    fn nodes_visited(&self) -> u64 {
        self.nodes_visited
    }

    fn leaves_visited(&self) -> u64 {
        self.leaves_visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QueryProfile;
    use crate::TrajectoryStore;
    use mst_index::Rtree3D;

    fn store() -> TrajectoryStore {
        let trajs: Vec<Trajectory> = (0..6)
            .map(|i| {
                let y = f64::from(i) * 4.0;
                Trajectory::from_txy(
                    &(0..=10)
                        .map(|s| (f64::from(s), f64::from(s), y))
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            })
            .collect();
        TrajectoryStore::from_trajectories(trajs)
    }

    #[test]
    fn mbb_descent_yields_groups_in_nondecreasing_bound_order() {
        let store = store();
        let mut idx = Rtree3D::new();
        for (id, t) in store.iter() {
            idx.insert_trajectory(id, t).unwrap();
        }
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let mut metrics = QueryProfile::new();
        let mut src = MbbDescent::new(&mut idx, &q, &period, &mut metrics);
        let mut last = f64::NEG_INFINITY;
        let mut groups = 0;
        let mut entries = 0;
        while let Some(bound) = src.pop(&mut metrics) {
            assert!(bound >= last, "bounds regressed: {bound} after {last}");
            last = bound;
            if let Some(group) = src.expand(&mut metrics).unwrap() {
                assert_eq!(group.lower_bound.to_bits(), bound.to_bits());
                groups += 1;
                entries += group.entries.len();
            }
        }
        assert!(groups > 0);
        assert_eq!(entries, 60); // 6 trajectories x 10 segments
        assert_eq!(src.leaves_visited(), groups);
        assert!(src.nodes_visited() >= groups);
        assert_eq!(metrics.heap_pushes, metrics.heap_pops);
        assert_eq!(src.pending(), 0);
    }

    #[test]
    fn expand_without_pop_is_a_noop() {
        let store = store();
        let mut idx = Rtree3D::new();
        for (id, t) in store.iter() {
            idx.insert_trajectory(id, t).unwrap();
        }
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let mut metrics = QueryProfile::new();
        let mut src = MbbDescent::new(&mut idx, &q, &period, &mut metrics);
        assert!(src.expand(&mut metrics).unwrap().is_none());
        assert_eq!(src.nodes_visited(), 0);
    }

    #[test]
    fn empty_index_yields_nothing() {
        let mut idx = Rtree3D::new();
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let mut metrics = QueryProfile::new();
        let mut src = MbbDescent::new(&mut idx, &q, &period, &mut metrics);
        assert!(src.pop(&mut metrics).is_none());
        assert_eq!(metrics.heap_pushes, 0);
    }
}
