//! The DISSIM metric (Definition 1) and its trapezoid approximation
//! (Lemma 1).
//!
//! `DISSIM(Q, T) = ∫ D_{Q,T}(t) dt` over a period both trajectories cover,
//! where `D_{Q,T}` is the Euclidean distance between the two moving points.
//! The integration domain is cut at the union of both sample sets (see
//! [`mst_trajectory::cosample`]); inside each piece the distance is a single
//! trinomial `sqrt(a t^2 + b t + c)` integrated either exactly (arcsinh
//! closed form) or with the trapezoid rule plus Lemma 1's error bound.
//!
//! The trapezoid value is a *one-sided* approximation: the distance function
//! is convex on every piece, so `exact ∈ [approx - error, approx]`. The
//! search exploits both sides.

use mst_trajectory::cosample::co_segments;
use mst_trajectory::kinematics::DistanceTrinomial;
use mst_trajectory::{Segment, TimeInterval, Trajectory};

use crate::Result;

/// How the per-piece integral is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// Closed-form integral (arcsinh); `error == 0`.
    Exact,
    /// Trapezoid rule with the Lemma 1 error bound (the paper's default —
    /// much cheaper, soundness restored via error management).
    #[default]
    Trapezoid,
}

/// A dissimilarity value with its accumulated approximation error bound.
///
/// Invariant: the exact DISSIM lies in `[approx - error, approx]` (the
/// trapezoid rule over-estimates convex integrands).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dissim {
    /// The computed (possibly approximate) value.
    pub approx: f64,
    /// Upper bound on `approx - exact` (zero in exact mode).
    pub error: f64,
}

impl Dissim {
    /// The zero dissimilarity.
    pub fn zero() -> Self {
        Dissim::default()
    }

    /// Lower end of the enclosure: `approx - error`.
    pub fn lower(&self) -> f64 {
        self.approx - self.error
    }

    /// Upper end of the enclosure (the approx value itself).
    pub fn upper(&self) -> f64 {
        self.approx
    }

    /// Accumulates another piece.
    pub fn add(&mut self, other: Dissim) {
        self.approx += other.approx;
        self.error += other.error;
    }
}

/// The contribution of one co-temporal segment pair: the integral enclosure
/// plus the endpoint distances, which the gap bounds (OPTDISSIM/PESDISSIM)
/// need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Piece {
    /// The piece's time interval.
    pub interval: TimeInterval,
    /// Integral value over the interval.
    pub value: Dissim,
    /// Distance between the objects at the interval start.
    pub d_start: f64,
    /// Distance between the objects at the interval end.
    pub d_end: f64,
}

/// Evaluates one co-temporal segment pair (both segments must span the same
/// interval).
pub fn piece(q: &Segment, t: &Segment, integration: Integration) -> Result<Piece> {
    let tri = DistanceTrinomial::between(q, t)?;
    let iv = q.time();
    let (u, v) = (iv.start(), iv.end());
    let value = match integration {
        Integration::Exact => Dissim {
            approx: tri.integral_exact(u, v),
            error: 0.0,
        },
        Integration::Trapezoid => Dissim {
            approx: tri.integral_trapezoid(u, v),
            error: tri.trapezoid_error_bound(u, v),
        },
    };
    Ok(Piece {
        interval: iv,
        value,
        d_start: tri.eval(u),
        d_end: tri.eval(v),
    })
}

/// DISSIM between two trajectories over `period`, with the chosen
/// integration scheme. Both trajectories must cover the period.
///
/// ```
/// use mst_search::dissim::{dissim_between, dissim_exact, Integration};
/// use mst_trajectory::{Trajectory, TimeInterval};
///
/// // Two parallel movers 3 apart for 10 time units: DISSIM = 30.
/// let a = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)])?;
/// let b = Trajectory::from_txy(&[(0.0, 0.0, 3.0), (10.0, 10.0, 3.0)])?;
/// let period = TimeInterval::new(0.0, 10.0)?;
/// let exact = dissim_exact(&a, &b, &period)?;
/// assert!((exact - 30.0).abs() < 1e-9);
/// // The trapezoid enclosure always contains the exact value.
/// let approx = dissim_between(&a, &b, &period, Integration::Trapezoid)?;
/// assert!(approx.lower() <= exact && exact <= approx.upper());
/// # Ok::<(), mst_search::SearchError>(())
/// ```
pub fn dissim_between(
    a: &Trajectory,
    b: &Trajectory,
    period: &TimeInterval,
    integration: Integration,
) -> Result<Dissim> {
    dissim_between_traced(a, b, period, integration, &mut crate::metrics::NoopSink)
}

/// [`dissim_between`] with observability: every per-piece integral
/// evaluation is reported to `metrics`. [`dissim_between`] is this function
/// instantiated with the no-op sink.
pub fn dissim_between_traced<M: crate::metrics::QueryMetrics>(
    a: &Trajectory,
    b: &Trajectory,
    period: &TimeInterval,
    integration: Integration,
    metrics: &mut M,
) -> Result<Dissim> {
    let mut total = Dissim::zero();
    for pair in co_segments(a, b, period)? {
        let p = piece(&pair.first, &pair.second, integration)?;
        metrics.piece_eval(integration);
        total.add(p.value);
    }
    Ok(total)
}

/// Exact DISSIM between two trajectories over `period` (closed-form
/// integration; the ground truth every approximation is checked against).
pub fn dissim_exact(a: &Trajectory, b: &Trajectory, period: &TimeInterval) -> Result<f64> {
    Ok(dissim_between(a, b, period, Integration::Exact)?.approx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    fn straight(x0: f64, y0: f64, x1: f64, y1: f64, n: usize) -> Trajectory {
        // n+1 samples from t=0 to t=10 along a straight line.
        let pts: Vec<(f64, f64, f64)> = (0..=n)
            .map(|i| {
                let f = i as f64 / n as f64;
                (10.0 * f, x0 + f * (x1 - x0), y0 + f * (y1 - y0))
            })
            .collect();
        Trajectory::from_txy(&pts).unwrap()
    }

    #[test]
    fn identical_trajectories_have_zero_dissim() {
        let t = straight(0.0, 0.0, 5.0, 3.0, 7);
        let d = dissim_exact(&t, &t, &iv(0.0, 10.0)).unwrap();
        assert!(d.abs() < 1e-12);
        let approx = dissim_between(&t, &t, &iv(0.0, 10.0), Integration::Trapezoid).unwrap();
        assert!(approx.approx.abs() < 1e-12);
    }

    #[test]
    fn parallel_lines_integrate_to_offset_times_duration() {
        let a = straight(0.0, 0.0, 10.0, 0.0, 4);
        let b = straight(0.0, 2.5, 10.0, 2.5, 4);
        let d = dissim_exact(&a, &b, &iv(0.0, 10.0)).unwrap();
        assert!((d - 25.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_rate_does_not_change_dissim() {
        // The paper's Figure 1 motivation: the same movement sampled 4 vs 32
        // times must be equally (dis)similar under DISSIM.
        let coarse = straight(0.0, 0.0, 8.0, 6.0, 4);
        let fine = straight(0.0, 0.0, 8.0, 6.0, 32);
        let other = straight(1.0, 0.0, 9.0, 6.0, 10);
        let d_coarse = dissim_exact(&coarse, &other, &iv(0.0, 10.0)).unwrap();
        let d_fine = dissim_exact(&fine, &other, &iv(0.0, 10.0)).unwrap();
        assert!((d_coarse - d_fine).abs() < 1e-9);
        // And the coarse/fine pair are mutually identical in DISSIM terms.
        let self_d = dissim_exact(&coarse, &fine, &iv(0.0, 10.0)).unwrap();
        assert!(self_d.abs() < 1e-9);
    }

    #[test]
    fn dissim_is_symmetric() {
        let a = straight(0.0, 0.0, 7.0, -2.0, 5);
        let b = straight(3.0, 1.0, -1.0, 4.0, 9);
        let p = iv(0.0, 10.0);
        let ab = dissim_exact(&a, &b, &p).unwrap();
        let ba = dissim_exact(&b, &a, &p).unwrap();
        assert!((ab - ba).abs() < 1e-10);
    }

    #[test]
    fn dissim_satisfies_triangle_inequality_on_samples() {
        // DISSIM is the L1 norm (in time) of pointwise Euclidean distances,
        // so it inherits the triangle inequality.
        let a = straight(0.0, 0.0, 4.0, 4.0, 3);
        let b = straight(1.0, -1.0, 5.0, 2.0, 6);
        let c = straight(-2.0, 3.0, 0.0, 0.0, 4);
        let p = iv(0.0, 10.0);
        let ab = dissim_exact(&a, &b, &p).unwrap();
        let bc = dissim_exact(&b, &c, &p).unwrap();
        let ac = dissim_exact(&a, &c, &p).unwrap();
        assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn trapezoid_enclosure_contains_exact() {
        let a = straight(0.0, 0.0, 10.0, 5.0, 6);
        let b = straight(5.0, 8.0, -5.0, -3.0, 11);
        let p = iv(0.0, 10.0);
        let exact = dissim_exact(&a, &b, &p).unwrap();
        let approx = dissim_between(&a, &b, &p, Integration::Trapezoid).unwrap();
        assert!(exact <= approx.upper() + 1e-12);
        assert!(exact >= approx.lower() - 1e-12);
    }

    #[test]
    fn finer_sampling_tightens_the_trapezoid() {
        let other = straight(5.0, 8.0, -5.0, -3.0, 3);
        let p = iv(0.0, 10.0);
        let coarse = straight(0.0, 0.0, 10.0, 5.0, 2);
        let fine = straight(0.0, 0.0, 10.0, 5.0, 64);
        let e_coarse = dissim_between(&coarse, &other, &p, Integration::Trapezoid)
            .unwrap()
            .error;
        let e_fine = dissim_between(&fine, &other, &p, Integration::Trapezoid)
            .unwrap()
            .error;
        assert!(e_fine < e_coarse);
    }

    #[test]
    fn subperiod_dissim_is_smaller() {
        let a = straight(0.0, 0.0, 10.0, 0.0, 5);
        let b = straight(0.0, 3.0, 10.0, 3.0, 5);
        let full = dissim_exact(&a, &b, &iv(0.0, 10.0)).unwrap();
        let sub = dissim_exact(&a, &b, &iv(2.0, 5.0)).unwrap();
        assert!(sub < full);
        assert!((sub - 9.0).abs() < 1e-10); // 3 distance x 3 duration
    }

    #[test]
    fn piece_reports_endpoint_distances() {
        let q = Segment::new(
            mst_trajectory::SamplePoint::new(0.0, 0.0, 0.0),
            mst_trajectory::SamplePoint::new(2.0, 2.0, 0.0),
        )
        .unwrap();
        let t = Segment::new(
            mst_trajectory::SamplePoint::new(0.0, 0.0, 3.0),
            mst_trajectory::SamplePoint::new(2.0, 2.0, 4.0),
        )
        .unwrap();
        let p = piece(&q, &t, Integration::Exact).unwrap();
        assert!((p.d_start - 3.0).abs() < 1e-12);
        assert!((p.d_end - 4.0).abs() < 1e-12);
        assert_eq!(p.interval, iv(0.0, 2.0));
        assert_eq!(p.value.error, 0.0);
    }

    #[test]
    fn uncovered_period_errors() {
        let a = straight(0.0, 0.0, 1.0, 1.0, 3);
        let b = straight(0.0, 0.0, 1.0, 1.0, 3);
        assert!(dissim_exact(&a, &b, &iv(0.0, 20.0)).is_err());
    }
}
