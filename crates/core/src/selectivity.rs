//! Selectivity estimation for DISSIM predicates — the paper's second
//! future-work direction ("development of selectivity estimation formulae
//! for query optimization purposes").
//!
//! A query optimizer deciding between a BFMST traversal and a plain scan
//! wants a cheap estimate of how many trajectories satisfy
//! `DISSIM(Q, T) <= theta` *before* running anything. This module provides
//! two estimators:
//!
//! * [`estimate_selectivity`] — uniform sampling without replacement: draw
//!   `sample_size` covering trajectories, evaluate DISSIM exactly, report
//!   the hit fraction with its standard error (hypergeometric-corrected).
//! * [`SelectivityHistogram`] — a precomputed equi-width histogram of the
//!   DISSIM distribution against a set of *pivot* trajectories, answering
//!   estimates in O(buckets) per query without touching the dataset. This
//!   trades accuracy for amortization, the classic optimizer-statistics
//!   trade-off.
//!
//! Both estimators are deterministic given their seed.

use mst_trajectory::{TimeInterval, Trajectory};

use crate::dissim::dissim_exact;
use crate::{Result, TrajectoryStore};

/// A sampled selectivity estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityEstimate {
    /// Estimated fraction of covering trajectories with `DISSIM <= theta`.
    pub fraction: f64,
    /// Standard error of the fraction (finite-population corrected).
    pub std_err: f64,
    /// Trajectories actually evaluated.
    pub sample_size: usize,
    /// Size of the candidate population (trajectories covering the period).
    pub population: usize,
}

impl SelectivityEstimate {
    /// The estimated result cardinality.
    pub fn cardinality(&self) -> f64 {
        self.fraction * self.population as f64
    }
}

/// Minimal deterministic PRNG (splitmix64) so the estimator needs no RNG
/// dependency and stays reproducible.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Estimates the selectivity of `DISSIM(query, ·) <= theta` over `period`
/// by exact evaluation on a uniform sample (without replacement) of the
/// covering trajectories.
pub fn estimate_selectivity(
    store: &TrajectoryStore,
    query: &Trajectory,
    period: &TimeInterval,
    theta: f64,
    sample_size: usize,
    seed: u64,
) -> Result<SelectivityEstimate> {
    let candidates: Vec<&Trajectory> = store.covering(period).map(|(_, t)| t).collect();
    let population = candidates.len();
    if population == 0 || sample_size == 0 {
        return Ok(SelectivityEstimate {
            fraction: 0.0,
            std_err: 0.0,
            sample_size: 0,
            population,
        });
    }
    // Partial Fisher–Yates for sampling without replacement.
    let n = sample_size.min(population);
    let mut indices: Vec<usize> = (0..population).collect();
    let mut rng = SplitMix64(seed ^ 0x5E1EC7);
    let mut hits = 0usize;
    for i in 0..n {
        let j = i + rng.below(population - i);
        indices.swap(i, j);
        let d = dissim_exact(query, candidates[indices[i]], period)?;
        if d <= theta {
            hits += 1;
        }
    }
    let fraction = hits as f64 / n as f64;
    // Finite-population-corrected standard error of a proportion.
    let fpc = if population > 1 {
        ((population - n) as f64 / (population - 1) as f64).max(0.0)
    } else {
        0.0
    };
    let std_err = (fraction * (1.0 - fraction) / n as f64 * fpc).sqrt();
    Ok(SelectivityEstimate {
        fraction,
        std_err,
        sample_size: n,
        population,
    })
}

/// Optimizer statistics: an equi-width histogram of DISSIM values between
/// dataset trajectories and a small pivot set, built once and queried in
/// O(buckets).
///
/// The estimate for a fresh query uses the pivot whose DISSIM distribution
/// the query most plausibly shares — the pivot *closest to the query* — and
/// reads the cumulative frequency at `theta`. Coarse by construction, but
/// it never touches the dataset at estimation time.
#[derive(Debug, Clone)]
pub struct SelectivityHistogram {
    period: TimeInterval,
    pivots: Vec<Trajectory>,
    /// Per pivot: bucket upper bounds (equi-width) and cumulative counts.
    buckets: Vec<Vec<(f64, usize)>>,
    population: usize,
}

impl SelectivityHistogram {
    /// Builds statistics from `num_pivots` sampled pivot trajectories and
    /// `num_buckets` equi-width buckets per pivot.
    pub fn build(
        store: &TrajectoryStore,
        period: &TimeInterval,
        num_pivots: usize,
        num_buckets: usize,
        seed: u64,
    ) -> Result<Self> {
        assert!(num_buckets >= 1, "need at least one bucket");
        let candidates: Vec<&Trajectory> = store.covering(period).map(|(_, t)| t).collect();
        let population = candidates.len();
        let mut rng = SplitMix64(seed ^ 0x4157_0001);
        let mut pivots = Vec::new();
        let mut buckets = Vec::new();
        if population == 0 {
            return Ok(SelectivityHistogram {
                period: *period,
                pivots,
                buckets,
                population,
            });
        }
        for _ in 0..num_pivots.max(1).min(population) {
            let pivot = candidates[rng.below(population)].clip(period)?;
            let mut dists = Vec::with_capacity(population);
            for t in &candidates {
                dists.push(dissim_exact(&pivot, t, period)?);
            }
            let max = dists.iter().copied().fold(0.0, f64::max).max(1e-12);
            let width = max / num_buckets as f64;
            let mut counts = vec![0usize; num_buckets];
            for d in &dists {
                let b = ((d / width) as usize).min(num_buckets - 1);
                counts[b] += 1;
            }
            let mut cumulative = Vec::with_capacity(num_buckets);
            let mut acc = 0usize;
            for (i, c) in counts.iter().enumerate() {
                acc += c;
                cumulative.push(((i + 1) as f64 * width, acc));
            }
            pivots.push(pivot);
            buckets.push(cumulative);
        }
        Ok(SelectivityHistogram {
            period: *period,
            pivots,
            buckets,
            population,
        })
    }

    /// Number of trajectories the statistics cover.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Estimates the fraction of trajectories with `DISSIM(query, ·) <=
    /// theta`, using the pivot nearest to the query (by DISSIM) and linear
    /// interpolation inside its histogram bucket.
    pub fn estimate(&self, query: &Trajectory, theta: f64) -> Result<f64> {
        if self.population == 0 || self.pivots.is_empty() {
            return Ok(0.0);
        }
        // Nearest pivot.
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.pivots.iter().enumerate() {
            let d = dissim_exact(query, p, &self.period)?;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        // Shift the threshold by the query-to-pivot distance: by the
        // triangle inequality, DISSIM(Q, T) <= theta implies
        // DISSIM(P, T) <= theta + DISSIM(Q, P).
        let shifted = theta + best_d;
        let hist = &self.buckets[best];
        let total = self.population as f64;
        let mut prev_bound = 0.0;
        let mut prev_count = 0usize;
        for &(bound, count) in hist {
            if shifted <= bound {
                let inside = (shifted - prev_bound) / (bound - prev_bound).max(1e-300);
                let interp = prev_count as f64 + inside * (count - prev_count) as f64;
                return Ok((interp / total).clamp(0.0, 1.0));
            }
            prev_bound = bound;
            prev_count = count;
        }
        Ok(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_kmst;
    use crate::Integration;
    use mst_trajectory::TrajectoryId;

    fn lanes(n: usize) -> TrajectoryStore {
        TrajectoryStore::from_trajectories(
            (0..n)
                .map(|i| {
                    let y = i as f64;
                    Trajectory::from_txy(&[(0.0, 0.0, y), (10.0, 10.0, y)]).unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn full_sample_is_exact() {
        let store = lanes(30);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q = store.get(TrajectoryId(10)).unwrap().clone();
        // theta = 25 covers lanes within distance 2.5: lanes 8..=12 -> 5.
        let est = estimate_selectivity(&store, &q, &period, 25.0, 1000, 1).unwrap();
        assert_eq!(est.sample_size, 30);
        assert!((est.fraction - 5.0 / 30.0).abs() < 1e-12);
        assert_eq!(est.std_err, 0.0); // full census
        assert!((est.cardinality() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn partial_sample_is_close_and_bounded() {
        let store = lanes(200);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q = store.get(TrajectoryId(100)).unwrap().clone();
        // True fraction for theta = 105: lanes within 10.5 -> 21 of 200.
        let truth = 21.0 / 200.0;
        let est = estimate_selectivity(&store, &q, &period, 105.0, 60, 7).unwrap();
        assert_eq!(est.sample_size, 60);
        assert!(
            (est.fraction - truth).abs() <= 4.0 * est.std_err + 1e-9,
            "fraction {} truth {truth} stderr {}",
            est.fraction,
            est.std_err
        );
    }

    #[test]
    fn empty_population_and_zero_sample() {
        let store = lanes(5);
        let late = TimeInterval::new(100.0, 110.0).unwrap();
        let q = Trajectory::from_txy(&[(100.0, 0.0, 0.0), (110.0, 1.0, 0.0)]).unwrap();
        let est = estimate_selectivity(&store, &q, &late, 10.0, 10, 3).unwrap();
        assert_eq!(est.population, 0);
        assert_eq!(est.cardinality(), 0.0);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q2 = store.get(TrajectoryId(0)).unwrap().clone();
        let est2 = estimate_selectivity(&store, &q2, &period, 10.0, 0, 3).unwrap();
        assert_eq!(est2.sample_size, 0);
    }

    #[test]
    fn histogram_estimates_are_sane_overestimates() {
        let store = lanes(100);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let hist = SelectivityHistogram::build(&store, &period, 4, 32, 11).unwrap();
        assert_eq!(hist.population(), 100);
        let q = store.get(TrajectoryId(50)).unwrap().clone();
        // For theta covering ~11 lanes, the histogram (which shifts the
        // threshold conservatively by the pivot distance) must not
        // underestimate wildly and must stay in [0, 1].
        let est = hist.estimate(&q, 55.0).unwrap();
        let truth = 11.0 / 100.0;
        assert!((0.0..=1.0).contains(&est));
        assert!(est >= truth * 0.5, "est {est} truth {truth}");
        // Monotone in theta.
        let lo = hist.estimate(&q, 5.0).unwrap();
        let hi = hist.estimate(&q, 500.0).unwrap();
        assert!(lo <= est && est <= hi);
        assert!((hi - 1.0).abs() < 1e-9 || hi <= 1.0);
    }

    #[test]
    fn estimator_agrees_with_kmst_derived_truth() {
        // Cross-check against scan_kmst: the number of matches below theta.
        let store = lanes(40);
        let period = TimeInterval::new(0.0, 10.0).unwrap();
        let q = store.get(TrajectoryId(5)).unwrap().clone();
        let theta = 72.0;
        let all = scan_kmst(&store, &q, &period, 40, Integration::Exact).unwrap();
        let truth = all.iter().filter(|m| m.dissim <= theta).count();
        let est = estimate_selectivity(&store, &q, &period, theta, 40, 5).unwrap();
        assert_eq!(est.cardinality().round() as usize, truth);
    }
}
