//! The pruning-threshold tracker of the k-MST search.
//!
//! The BFMST algorithm prunes against the dissimilarity of the current k-th
//! most similar candidate, where a candidate's key is its exact/approximate
//! DISSIM when completed or its PESDISSIM while partial (Section 4.3). Both
//! are *upper bounds* on the candidate's true dissimilarity, so the k-th
//! smallest key over all seen candidates upper-bounds the k-th smallest true
//! DISSIM over the whole dataset — the soundness fact both heuristics rest
//! on.
//!
//! Keys only ever improve (PESDISSIM shrinks as pieces arrive; a completed
//! DISSIM replaces it), so the threshold is monotonically non-increasing and
//! can be cached: a recomputation is needed only when a key drops below the
//! cached threshold. The cache lives in [`std::cell::Cell`]s so reading the
//! threshold is the `&self` operation it logically is — every other accessor
//! (`len`, `is_empty`, `key_of`) already takes `&self`, and [`UpperKeys::kth`]
//! now matches.

use std::cell::Cell;
use std::collections::HashMap;

use mst_trajectory::TrajectoryId;

/// Tracks the best-known upper key of every candidate and serves the k-th
/// smallest key as the pruning threshold.
#[derive(Debug)]
pub struct UpperKeys {
    k: usize,
    keys: HashMap<TrajectoryId, f64>,
    /// Lazily recomputed threshold; interior mutability keeps the logically
    /// read-only [`UpperKeys::kth`] a `&self` method.
    cached_kth: Cell<f64>,
    dirty: Cell<bool>,
}

impl UpperKeys {
    /// Creates a tracker for a k-MST query (`k >= 1`).
    pub fn new(k: usize) -> Self {
        UpperKeys {
            k: k.max(1),
            keys: HashMap::new(),
            cached_kth: Cell::new(f64::INFINITY),
            dirty: Cell::new(false),
        }
    }

    /// Number of candidates with a finite key.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no candidate has a finite key yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Records `key` as candidate `id`'s current upper bound. Ignores
    /// non-finite keys and keys worse than the already-recorded one (keys
    /// must only improve). Returns `true` when the key improved — i.e. the
    /// update may have tightened the pruning threshold.
    pub fn update(&mut self, id: TrajectoryId, key: f64) -> bool {
        if !key.is_finite() {
            return false;
        }
        let entry = self.keys.entry(id).or_insert(f64::INFINITY);
        if key < *entry {
            *entry = key;
            // The threshold can only change if this key undercuts it.
            if key < self.cached_kth.get() {
                self.dirty.set(true);
            }
            true
        } else {
            false
        }
    }

    /// The current pruning threshold: the k-th smallest recorded key, or
    /// `+inf` while fewer than `k` candidates have keys.
    pub fn kth(&self) -> f64 {
        if self.dirty.get() {
            let kth = if self.keys.len() < self.k {
                f64::INFINITY
            } else {
                let mut vals: Vec<f64> = self.keys.values().copied().collect();
                let (_, kth, _) = vals.select_nth_unstable_by(self.k - 1, f64::total_cmp);
                *kth
            };
            self.cached_kth.set(kth);
            self.dirty.set(false);
        }
        self.cached_kth.get()
    }

    /// The recorded key of a candidate.
    pub fn key_of(&self, id: TrajectoryId) -> Option<f64> {
        self.keys.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> TrajectoryId {
        TrajectoryId(n)
    }

    #[test]
    fn threshold_is_infinite_below_k_candidates() {
        let mut u = UpperKeys::new(3);
        u.update(id(1), 5.0);
        u.update(id(2), 7.0);
        assert_eq!(u.kth(), f64::INFINITY);
        u.update(id(3), 6.0);
        assert_eq!(u.kth(), 7.0);
    }

    #[test]
    fn threshold_tracks_kth_smallest() {
        let mut u = UpperKeys::new(2);
        u.update(id(1), 10.0);
        u.update(id(2), 20.0);
        u.update(id(3), 30.0);
        assert_eq!(u.kth(), 20.0);
        // A new candidate undercutting the threshold moves it.
        u.update(id(4), 5.0);
        assert_eq!(u.kth(), 10.0);
        // Improving an existing candidate's key.
        u.update(id(2), 1.0);
        assert_eq!(u.kth(), 5.0);
    }

    #[test]
    fn worse_keys_are_ignored() {
        let mut u = UpperKeys::new(1);
        assert!(u.update(id(1), 3.0));
        assert!(!u.update(id(1), 8.0)); // regression attempt
        assert_eq!(u.kth(), 3.0);
        assert_eq!(u.key_of(id(1)), Some(3.0));
    }

    #[test]
    fn non_finite_keys_are_ignored() {
        let mut u = UpperKeys::new(1);
        assert!(!u.update(id(1), f64::INFINITY));
        assert!(!u.update(id(2), f64::NAN));
        assert!(u.is_empty());
        assert_eq!(u.kth(), f64::INFINITY);
    }

    #[test]
    fn k1_threshold_is_minimum() {
        let mut u = UpperKeys::new(1);
        for (i, v) in [9.0, 4.0, 6.0, 2.0, 8.0].iter().enumerate() {
            u.update(id(i as u64), *v);
        }
        assert_eq!(u.kth(), 2.0);
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn kth_is_a_shared_reference_read() {
        // The satellite fix this test pins down: reading the threshold no
        // longer demands `&mut`, so holders of a shared borrow can prune.
        let mut u = UpperKeys::new(2);
        u.update(id(1), 4.0);
        u.update(id(2), 9.0);
        let shared: &UpperKeys = &u;
        assert_eq!(shared.kth(), 9.0);
        assert_eq!(shared.kth(), 9.0); // cached path, still `&self`
    }

    #[test]
    fn update_reports_threshold_relevant_improvements() {
        let mut u = UpperKeys::new(1);
        assert!(u.update(id(1), 5.0));
        assert!(u.update(id(1), 2.0));
        assert!(!u.update(id(1), 2.0)); // equal key: no improvement
        assert!(u.update(id(2), 1.0));
    }
}
