//! The unified query builder — one front door to every query flavour.
//!
//! The database used to expose one entry point per query type
//! (`most_similar`, `within_dissim`, `nearest_segments`, ...), each with its
//! own positional-argument order and no way to observe what the search did.
//! The [`Query`] builder replaces them all:
//!
//! ```
//! use mst_search::{MovingObjectDatabase, Query};
//! use mst_trajectory::{SamplePoint, TimeInterval, TrajectoryId};
//!
//! let mut db = MovingObjectDatabase::with_rtree();
//! for i in 0..30 {
//!     let t = f64::from(i);
//!     db.append(TrajectoryId(0), SamplePoint::new(t, t, 0.0))?;
//!     db.append(TrajectoryId(1), SamplePoint::new(t, t, 3.0))?;
//! }
//! let q = db.trajectory(TrajectoryId(0)).unwrap();
//!
//! // Plain k-MST over the query's own validity period.
//! let top = Query::kmst(&q).k(2).run(&mut db)?;
//! assert_eq!(top[0].traj, TrajectoryId(0));
//!
//! // The same query, profiled: every heap operation, node access, buffer
//! // hit/miss, DISSIM piece evaluation and pruning decision is counted.
//! let (top, profile) = Query::kmst(&q).k(2).profile(&mut db)?;
//! assert_eq!(top.len(), 2);
//! assert!(profile.nodes_accessed() > 0);
//! assert!(profile.is_consistent());
//! # Ok::<(), mst_search::SearchError>(())
//! ```
//!
//! Every builder offers three terminal methods: `run` (results only, zero
//! observability overhead — the no-op sink monomorphizes away), `profile`
//! (results plus a fresh [`QueryProfile`]), and `run_traced` (results, with
//! events fed into any caller-supplied [`QueryMetrics`] sink — e.g. a
//! profile shared across a whole workload).
//!
//! The shared knobs — `k`, the time window, the deadline, bound sharing —
//! live in one [`QueryOptions`] struct that every builder embeds, the batch
//! executor reads, and the serving layer's wire codec carries verbatim.
//! Deadlines ([`KmstQuery::deadline`] and friends) are honoured by
//! deadline-aware executors (`mst-exec`, `mst-serve`), which degrade the
//! query gracefully when the budget runs out; the single-threaded `run`
//! terminals execute to completion.

use core::time::Duration;

use mst_index::{KnnMatch, LeafEntry, TrajectoryIndexWrite};
use mst_trajectory::{Mbb, Point, TimeInterval, Trajectory};

use crate::bfmst::MstConfig;
use crate::dissim::Integration;
use crate::metrics::{NoopSink, QueryMetrics, QueryProfile};
use crate::nn::NnMatch;
use crate::options::{QueryOptions, Substrate};
use crate::substrate::KmstSubstrate;
use crate::time_relaxed::{TimeRelaxedConfig, TimeRelaxedMatch};
use crate::{MovingObjectDatabase, MstMatch, Result, SearchError};

/// Entry point of the builder API: one constructor per query flavour.
///
/// See the [module documentation](crate::query) for an end-to-end example.
#[derive(Debug, Clone, Copy)]
pub struct Query;

impl Query {
    /// A k-most-similar-trajectories query (the paper's headline query):
    /// the `k` trajectories with smallest DISSIM from `query` over a period.
    ///
    /// The period defaults to the query trajectory's own validity interval;
    /// narrow it with [`KmstQuery::during`].
    pub fn kmst(query: &Trajectory) -> KmstQuery<'_> {
        KmstQuery {
            query,
            options: QueryOptions::new(),
            config: MstConfig::default(),
        }
    }

    /// A trajectory k-nearest-neighbour query: the `k` trajectories whose
    /// closest approach to `query` during the period is smallest.
    ///
    /// The period defaults to the query trajectory's own validity interval;
    /// narrow it with [`KnnQuery::during`].
    pub fn knn(query: &Trajectory) -> KnnQuery<'_> {
        KnnQuery {
            query,
            options: QueryOptions::new(),
        }
    }

    /// A point k-nearest-neighbour query: the `k` indexed segments that came
    /// closest to `location` during a time window.
    ///
    /// The window is mandatory — a stationary point has no validity interval
    /// to default to — so [`KnnSegmentsQuery::during`] must be called before
    /// running.
    pub fn knn_segments(location: Point) -> KnnSegmentsQuery {
        KnnSegmentsQuery {
            location,
            options: QueryOptions::new(),
        }
    }

    /// A classic 3D (x, y, t) range query: every indexed segment
    /// intersecting `window`.
    pub fn range(window: &Mbb) -> RangeQuery<'_> {
        RangeQuery {
            window,
            options: QueryOptions::new(),
        }
    }
}

/// Builder of a k-MST / range-MST query. Created by [`Query::kmst`].
#[derive(Debug, Clone, Copy)]
pub struct KmstQuery<'a> {
    query: &'a Trajectory,
    options: QueryOptions,
    config: MstConfig,
}

impl<'a> KmstQuery<'a> {
    /// Number of results to return (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.options.k = k;
        self.config.k = k;
        self
    }

    /// Restricts the query period (default: the query trajectory's own
    /// validity interval). The query trajectory must cover the period.
    pub fn during(mut self, period: &TimeInterval) -> Self {
        self.options.period = Some(*period);
        self
    }

    /// Sets a soft deadline, honoured by deadline-aware executors: when it
    /// expires mid-search the query is stopped gracefully and the outcome
    /// marked degraded (see `mst-exec`). The single-threaded `run`
    /// terminals ignore it and execute to completion.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options = self.options.deadline(deadline);
        self
    }

    /// Enables or disables cross-shard bound sharing in sharded executions
    /// (default on; single-database runs are unaffected).
    pub fn share_bound(mut self, share: bool) -> Self {
        self.options.share_bound = share;
        self
    }

    /// Pins the index substrate the query must run on (default
    /// [`Substrate::Auto`]: whatever the database is backed by). Running
    /// against a database backed by a different substrate is a
    /// [`SearchError::SubstrateMismatch`] — the knob exists so batch specs
    /// and wire requests can demand reproducible execution on a specific
    /// structure, and so caches never alias answers across substrates.
    pub fn substrate(mut self, substrate: Substrate) -> Self {
        self.options = self.options.substrate(substrate);
        self
    }

    /// Replaces the shared options wholesale (escape hatch for options that
    /// arrived pre-assembled, e.g. decoded from the wire). `options.k`
    /// overrides any earlier [`KmstQuery::k`].
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self.config.k = options.k;
        self
    }

    /// Turns the query into a *range-MST* query: only trajectories with
    /// DISSIM at most `theta` are returned (still at most `k` of them), and
    /// the ceiling feeds the pruning threshold from the first node on.
    pub fn within(mut self, theta: f64) -> Self {
        self.config.max_dissim = Some(theta);
        self
    }

    /// Integration scheme for per-piece DISSIM contributions (default: the
    /// paper's trapezoid rule with tracked error bound).
    pub fn integration(mut self, integration: Integration) -> Self {
        self.config.integration = integration;
        self
    }

    /// Toggles Section 4.4 error management (error-aware comparisons plus
    /// exact post-processing; default on, only meaningful with
    /// [`Integration::Trapezoid`]).
    pub fn error_management(mut self, on: bool) -> Self {
        self.config.error_management = on;
        self
    }

    /// Toggles the two search heuristics (candidate rejection by OPTDISSIM;
    /// termination by MINDISSIMINC). Both default on; disabling is for
    /// ablation studies.
    pub fn heuristics(mut self, use_heuristic1: bool, use_heuristic2: bool) -> Self {
        self.config.use_heuristic1 = use_heuristic1;
        self.config.use_heuristic2 = use_heuristic2;
        self
    }

    /// Replaces the whole search configuration at once (escape hatch for
    /// pre-built [`MstConfig`] values; overrides every earlier setter,
    /// including `k`).
    pub fn config(mut self, config: MstConfig) -> Self {
        self.config = config;
        self.options.k = config.k;
        self
    }

    /// Relaxes the time axis: instead of comparing over a fixed period, the
    /// query is shifted in time to minimize DISSIM per candidate ("same
    /// route and pace, different departure"). Carries `k` over; any period
    /// restriction is dropped — the shift search explores every feasible
    /// alignment.
    pub fn time_relaxed(self) -> TimeRelaxedQuery<'a> {
        TimeRelaxedQuery {
            query: self.query,
            config: TimeRelaxedConfig::k(self.config.k),
        }
    }

    fn resolved_period(&self) -> TimeInterval {
        self.options.period.unwrap_or_else(|| self.query.time())
    }

    /// Freezes the builder into an owned, thread-shippable [`KmstSpec`]:
    /// the period resolved, the configuration fixed, and the query
    /// trajectory cloned out of the borrow. Batch executors collect specs
    /// and run them on worker threads. Fails eagerly if the query
    /// trajectory does not cover the resolved period — the same check the
    /// search would make, surfaced before the batch is submitted.
    pub fn spec(&self) -> Result<KmstSpec> {
        let period = self.resolved_period();
        if !self.query.covers(&period) {
            return Err(SearchError::QueryOutsidePeriod {
                period: (period.start(), period.end()),
                valid: (self.query.start_time(), self.query.end_time()),
            });
        }
        let mut options = self.options;
        options.period = Some(period);
        Ok(KmstSpec {
            query: self.query.clone(),
            options,
            config: self.config,
        })
    }

    /// Runs the query with observability: search events are fed into
    /// `metrics`.
    pub fn run_traced<I: TrajectoryIndexWrite + KmstSubstrate, M: QueryMetrics>(
        &self,
        db: &mut MovingObjectDatabase<I>,
        metrics: &mut M,
    ) -> Result<Vec<MstMatch>> {
        let requested = self.options.substrate;
        if requested != Substrate::Auto && requested != I::KIND {
            return Err(SearchError::SubstrateMismatch {
                requested,
                actual: I::KIND,
            });
        }
        db.run_kmst(self.query, &self.resolved_period(), &self.config, metrics)
    }

    /// Runs the query. Observability hooks compile to nothing.
    pub fn run<I: TrajectoryIndexWrite + KmstSubstrate>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<Vec<MstMatch>> {
        self.run_traced(db, &mut NoopSink)
    }

    /// Runs the query and returns the results together with a fresh
    /// [`QueryProfile`] of everything the search did.
    pub fn profile<I: TrajectoryIndexWrite + KmstSubstrate>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<(Vec<MstMatch>, QueryProfile)> {
        let mut profile = QueryProfile::new();
        let matches = self.run_traced(db, &mut profile)?;
        Ok((matches, profile))
    }
}

/// An owned, fully resolved k-MST query, detached from the builder's
/// borrows so it can be shipped to worker threads. Produced by
/// [`KmstQuery::spec`]; consumed by batch executors, which run it against
/// each shard with [`crate::bfmst::bfmst_search_shared`] and merge with
/// [`crate::merge::merge_shard_matches`].
#[derive(Debug, Clone)]
pub struct KmstSpec {
    /// The query trajectory.
    pub query: Trajectory,
    /// The shared options, with the period resolved (`options.period` is
    /// always `Some`, and the trajectory covers it — validated at spec
    /// construction). `options.k` mirrors `config.k`.
    pub options: QueryOptions,
    /// The full search configuration.
    pub config: MstConfig,
}

impl KmstSpec {
    /// The resolved query period.
    pub fn period(&self) -> TimeInterval {
        self.options.period.unwrap_or_else(|| self.query.time())
    }
}

/// An owned, fully resolved trajectory-kNN query, detached from the
/// builder's borrows. Produced by [`KnnQuery::spec`].
#[derive(Debug, Clone)]
pub struct KnnSpec {
    /// The query trajectory.
    pub query: Trajectory,
    /// The shared options, with the period resolved (`options.period` is
    /// always `Some`, and the trajectory covers it — validated at spec
    /// construction).
    pub options: QueryOptions,
}

impl KnnSpec {
    /// The resolved query period.
    pub fn period(&self) -> TimeInterval {
        self.options.period.unwrap_or_else(|| self.query.time())
    }

    /// Number of nearest trajectories to return.
    pub fn k(&self) -> usize {
        self.options.k
    }
}

/// An owned, fully resolved point-kNN query. Produced by
/// [`KnnSegmentsQuery::spec`].
#[derive(Debug, Clone)]
pub struct SegmentsSpec {
    /// The query location.
    pub location: Point,
    /// The mandatory time window (validated present at spec construction;
    /// mirrors `options.period`).
    pub window: TimeInterval,
    /// The shared options.
    pub options: QueryOptions,
}

/// An owned, fully resolved 3D range query. Produced by
/// [`RangeQuery::spec`].
#[derive(Debug, Clone)]
pub struct RangeSpec {
    /// The spatio-temporal window.
    pub window: Mbb,
    /// The shared options (`k` and `period` are unused — the window is the
    /// query — but the deadline still applies).
    pub options: QueryOptions,
}

/// Builder of a time-relaxed k-MST query. Created by
/// [`KmstQuery::time_relaxed`].
#[derive(Debug, Clone, Copy)]
pub struct TimeRelaxedQuery<'a> {
    query: &'a Trajectory,
    config: TimeRelaxedConfig,
}

impl<'a> TimeRelaxedQuery<'a> {
    /// Number of results to return (default: inherited from the k-MST
    /// builder).
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Grid points per candidate's feasible shift range (default 64): the
    /// resolution the optimal shift is located at before refinement.
    pub fn grid_steps(mut self, steps: usize) -> Self {
        self.config.grid_steps = steps;
        self
    }

    /// Golden-section iterations inside the best grid cell (default 32).
    pub fn refine_iters(mut self, iters: usize) -> Self {
        self.config.refine_iters = iters;
        self
    }

    /// Runs the query with observability: search events are fed into
    /// `metrics`.
    pub fn run_traced<I: TrajectoryIndexWrite, M: QueryMetrics>(
        &self,
        db: &mut MovingObjectDatabase<I>,
        metrics: &mut M,
    ) -> Result<Vec<TimeRelaxedMatch>> {
        db.run_time_relaxed(self.query, &self.config, metrics)
    }

    /// Runs the query. Observability hooks compile to nothing.
    pub fn run<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<Vec<TimeRelaxedMatch>> {
        self.run_traced(db, &mut NoopSink)
    }

    /// Runs the query and returns the results together with a fresh
    /// [`QueryProfile`]. The time-relaxed search scans the store rather than
    /// the index, so only candidate and piece-evaluation counters move.
    pub fn profile<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<(Vec<TimeRelaxedMatch>, QueryProfile)> {
        let mut profile = QueryProfile::new();
        let matches = self.run_traced(db, &mut profile)?;
        Ok((matches, profile))
    }
}

/// Builder of a trajectory k-nearest-neighbour query. Created by
/// [`Query::knn`].
#[derive(Debug, Clone, Copy)]
pub struct KnnQuery<'a> {
    query: &'a Trajectory,
    options: QueryOptions,
}

impl<'a> KnnQuery<'a> {
    /// Number of results to return (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.options.k = k;
        self
    }

    /// Restricts the query period (default: the query trajectory's own
    /// validity interval). The query trajectory must cover the period.
    pub fn during(mut self, period: &TimeInterval) -> Self {
        self.options.period = Some(*period);
        self
    }

    /// Sets a soft deadline, honoured by deadline-aware executors (see
    /// [`KmstQuery::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options = self.options.deadline(deadline);
        self
    }

    /// Enables or disables cross-shard bound sharing (default on).
    pub fn share_bound(mut self, share: bool) -> Self {
        self.options.share_bound = share;
        self
    }

    /// Replaces the shared options wholesale (e.g. options decoded from
    /// the wire).
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Freezes the builder into an owned, thread-shippable [`KnnSpec`]
    /// (see [`KmstQuery::spec`] for the batch-execution story). Fails
    /// eagerly if the query trajectory does not cover the resolved period.
    pub fn spec(&self) -> Result<KnnSpec> {
        let period = self.options.period.unwrap_or_else(|| self.query.time());
        if !self.query.covers(&period) {
            return Err(SearchError::QueryOutsidePeriod {
                period: (period.start(), period.end()),
                valid: (self.query.start_time(), self.query.end_time()),
            });
        }
        let mut options = self.options;
        options.period = Some(period);
        Ok(KnnSpec {
            query: self.query.clone(),
            options,
        })
    }

    /// Runs the query with observability: search events are fed into
    /// `metrics`.
    pub fn run_traced<I: TrajectoryIndexWrite, M: QueryMetrics>(
        &self,
        db: &mut MovingObjectDatabase<I>,
        metrics: &mut M,
    ) -> Result<Vec<NnMatch>> {
        let period = self.options.period.unwrap_or_else(|| self.query.time());
        db.run_knn(self.query, &period, self.options.k, metrics)
    }

    /// Runs the query. Observability hooks compile to nothing.
    pub fn run<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<Vec<NnMatch>> {
        self.run_traced(db, &mut NoopSink)
    }

    /// Runs the query and returns the results together with a fresh
    /// [`QueryProfile`] of everything the search did.
    pub fn profile<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<(Vec<NnMatch>, QueryProfile)> {
        let mut profile = QueryProfile::new();
        let matches = self.run_traced(db, &mut profile)?;
        Ok((matches, profile))
    }
}

/// Builder of a point k-nearest-neighbour query. Created by
/// [`Query::knn_segments`].
#[derive(Debug, Clone, Copy)]
pub struct KnnSegmentsQuery {
    location: Point,
    options: QueryOptions,
}

impl KnnSegmentsQuery {
    /// Number of results to return (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.options.k = k;
        self
    }

    /// The time window to search in. Mandatory: running without it is a
    /// [`SearchError::MisconfiguredQuery`].
    pub fn during(mut self, window: &TimeInterval) -> Self {
        self.options.period = Some(*window);
        self
    }

    /// Sets a soft deadline, honoured by deadline-aware executors (see
    /// [`KmstQuery::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options = self.options.deadline(deadline);
        self
    }

    /// Replaces the shared options wholesale (e.g. options decoded from
    /// the wire).
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    fn window(&self) -> Result<TimeInterval> {
        self.options.period.ok_or(SearchError::MisconfiguredQuery(
            "a point-kNN query needs a time window: call .during(window)",
        ))
    }

    /// Freezes the builder into an owned, thread-shippable
    /// [`SegmentsSpec`]. Fails eagerly if no time window was given.
    pub fn spec(&self) -> Result<SegmentsSpec> {
        let window = self.window()?;
        Ok(SegmentsSpec {
            location: self.location,
            window,
            options: self.options,
        })
    }

    /// Runs the query with observability: search events are fed into
    /// `metrics`.
    pub fn run_traced<I: TrajectoryIndexWrite, M: QueryMetrics>(
        &self,
        db: &mut MovingObjectDatabase<I>,
        metrics: &mut M,
    ) -> Result<Vec<KnnMatch>> {
        let window = self.window()?;
        db.run_knn_segments(self.location, &window, self.options.k, metrics)
    }

    /// Runs the query. Observability hooks compile to nothing.
    pub fn run<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<Vec<KnnMatch>> {
        self.run_traced(db, &mut NoopSink)
    }

    /// Runs the query and returns the results together with a fresh
    /// [`QueryProfile`] of everything the search did.
    pub fn profile<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<(Vec<KnnMatch>, QueryProfile)> {
        let mut profile = QueryProfile::new();
        let matches = self.run_traced(db, &mut profile)?;
        Ok((matches, profile))
    }
}

/// Builder of a 3D range query. Created by [`Query::range`].
#[derive(Debug, Clone, Copy)]
pub struct RangeQuery<'a> {
    window: &'a Mbb,
    options: QueryOptions,
}

impl<'a> RangeQuery<'a> {
    /// Sets a soft deadline, honoured by deadline-aware executors (see
    /// [`KmstQuery::deadline`]). A range query has no pruning threshold to
    /// degrade through, so an expired deadline skips remaining shards.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options = self.options.deadline(deadline);
        self
    }

    /// Replaces the shared options wholesale (e.g. options decoded from
    /// the wire). Only the deadline is meaningful for a range query.
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Freezes the builder into an owned, thread-shippable [`RangeSpec`].
    pub fn spec(&self) -> RangeSpec {
        RangeSpec {
            window: *self.window,
            options: self.options,
        }
    }

    /// Runs the query with observability: node and buffer accesses are fed
    /// into `metrics`.
    pub fn run_traced<I: TrajectoryIndexWrite, M: QueryMetrics>(
        &self,
        db: &mut MovingObjectDatabase<I>,
        metrics: &mut M,
    ) -> Result<Vec<LeafEntry>> {
        db.run_range(self.window, metrics)
    }

    /// Runs the query. Observability hooks compile to nothing.
    pub fn run<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<Vec<LeafEntry>> {
        self.run_traced(db, &mut NoopSink)
    }

    /// Runs the query and returns the results together with a fresh
    /// [`QueryProfile`] of the traversal's I/O behaviour.
    pub fn profile<I: TrajectoryIndexWrite>(
        &self,
        db: &mut MovingObjectDatabase<I>,
    ) -> Result<(Vec<LeafEntry>, QueryProfile)> {
        let mut profile = QueryProfile::new();
        let matches = self.run_traced(db, &mut profile)?;
        Ok((matches, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::{SamplePoint, TrajectoryId};

    fn db_with_lines(n: u64) -> MovingObjectDatabase<mst_index::Rtree3D> {
        let mut db = MovingObjectDatabase::with_rtree();
        for id in 0..n {
            for i in 0..25 {
                let t = i as f64;
                db.append(TrajectoryId(id), SamplePoint::new(t, t, id as f64))
                    .unwrap();
            }
        }
        db
    }

    #[test]
    fn kmst_defaults_to_the_query_trajectorys_period() {
        let mut db = db_with_lines(4);
        let q = db.trajectory(TrajectoryId(1)).unwrap();
        let explicit = Query::kmst(&q).k(3).during(&q.time()).run(&mut db).unwrap();
        let defaulted = Query::kmst(&q).k(3).run(&mut db).unwrap();
        assert_eq!(explicit, defaulted);
        assert_eq!(defaulted[0].traj, TrajectoryId(1));
    }

    #[test]
    fn knn_segments_without_a_window_is_a_configuration_error() {
        let mut db = db_with_lines(2);
        let err = Query::knn_segments(Point::new(0.0, 0.0))
            .k(1)
            .run(&mut db)
            .unwrap_err();
        assert!(matches!(err, SearchError::MisconfiguredQuery(_)));
        assert!(matches!(
            Query::knn_segments(Point::new(0.0, 0.0)).spec(),
            Err(SearchError::MisconfiguredQuery(_))
        ));
    }

    #[test]
    fn builders_are_plain_data() {
        // Copy + reuse: one configured query can run against many databases.
        let mut a = db_with_lines(3);
        let mut b = db_with_lines(3);
        let q = a.trajectory(TrajectoryId(0)).unwrap();
        let query = Query::kmst(&q).k(2);
        let ra = query.run(&mut a).unwrap();
        let rb = query.run(&mut b).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn specs_freeze_the_builder_and_validate_coverage() {
        let db = db_with_lines(3);
        let q = db.trajectory(TrajectoryId(0)).unwrap();
        let spec = Query::kmst(&q).k(2).within(9.0).spec().unwrap();
        assert_eq!(spec.config.k, 2);
        assert_eq!(spec.options.k, 2);
        assert_eq!(spec.config.max_dissim, Some(9.0));
        assert_eq!(spec.period(), q.time());
        assert_eq!(spec.options.period, Some(q.time()));
        // A period the query does not cover fails at spec time, before any
        // batch is submitted.
        let outside = TimeInterval::new(0.0, 100.0).unwrap();
        assert!(matches!(
            Query::kmst(&q).during(&outside).spec(),
            Err(SearchError::QueryOutsidePeriod { .. })
        ));
        assert!(matches!(
            Query::knn(&q).k(3).during(&outside).spec(),
            Err(SearchError::QueryOutsidePeriod { .. })
        ));
        let nn_spec = Query::knn(&q).k(3).spec().unwrap();
        assert_eq!(nn_spec.k(), 3);
        assert_eq!(nn_spec.period(), q.time());
    }

    #[test]
    fn deadlines_ride_in_the_shared_options() {
        let db = db_with_lines(2);
        let q = db.trajectory(TrajectoryId(0)).unwrap();
        let spec = Query::kmst(&q)
            .k(2)
            .deadline(Duration::from_millis(5))
            .spec()
            .unwrap();
        assert_eq!(spec.options.deadline_us, Some(5_000));
        let spec = Query::knn(&q)
            .deadline(Duration::from_micros(9))
            .spec()
            .unwrap();
        assert_eq!(spec.options.deadline_us, Some(9));
        let w = q.time();
        let spec = Query::knn_segments(Point::new(1.0, 2.0))
            .during(&w)
            .k(4)
            .deadline(Duration::from_millis(1))
            .spec()
            .unwrap();
        assert_eq!(spec.window, w);
        assert_eq!(spec.options.k, 4);
        assert_eq!(spec.options.deadline_us, Some(1_000));
        let mbb = Mbb::new(0.0, 0.0, 0.0, 1.0, 1.0, 1.0);
        let spec = Query::range(&mbb).deadline(Duration::from_millis(2)).spec();
        assert_eq!(spec.options.deadline_us, Some(2_000));
        assert_eq!(spec.window, mbb);
    }

    #[test]
    fn options_escape_hatch_overrides_earlier_setters() {
        let db = db_with_lines(2);
        let q = db.trajectory(TrajectoryId(0)).unwrap();
        let opts = QueryOptions::new().k(5).share_bound(false);
        let spec = Query::kmst(&q).k(1).options(opts).spec().unwrap();
        assert_eq!(spec.config.k, 5);
        assert_eq!(spec.options.k, 5);
        assert!(!spec.options.share_bound);
    }

    #[test]
    fn profile_and_run_agree_on_results() {
        let mut db = db_with_lines(5);
        let q = db.trajectory(TrajectoryId(2)).unwrap();
        let plain = Query::kmst(&q).k(4).run(&mut db).unwrap();
        let (profiled, profile) = Query::kmst(&q).k(4).profile(&mut db).unwrap();
        assert_eq!(plain, profiled);
        assert!(profile.is_consistent());
        assert!(profile.candidates.seen >= 4);
    }
}
