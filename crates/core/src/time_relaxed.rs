//! Time-Relaxed MST queries — the extension the paper's conclusion names
//! as future work: "the minimum dissimilarity between trajectories
//! *regardless of the time instance in which the query object starts*."
//!
//! For a query `Q` of duration `L` and a candidate `T`, the time-relaxed
//! dissimilarity is `min over shift d of DISSIM(Q shifted by d, T)`, where
//! the shifted query period must stay inside `T`'s validity. The metro
//! scenario motivates it directly: a bus line that duplicates the new metro
//! *route and pace* but departs 40 minutes earlier is a perfect candidate
//! for retiming rather than retiring — the plain MST query ranks it last,
//! the time-relaxed query ranks it first with the optimal shift attached.
//!
//! `DISSIM(d)` is a piecewise-smooth function of the shift with one
//! breakpoint whenever a query timestamp crosses a candidate timestamp, so
//! a global closed-form minimizer is impractical. The implementation runs
//! a uniform grid over the feasible shift range followed by golden-section
//! refinement inside the best grid cell, and prunes candidates with a
//! shift-independent lower bound (spatial MBR separation × duration).
//! The returned shift is optimal up to the grid resolution — callers
//! control the trade-off via [`TimeRelaxedConfig::grid_steps`].

use mst_trajectory::{Rect, Trajectory, TrajectoryId};

use crate::dissim::{dissim_between_traced, Integration};
use crate::metrics::{NoopSink, QueryMetrics};
use crate::{Result, SearchError, TrajectoryStore};

/// Configuration of a time-relaxed k-MST query.
#[derive(Debug, Clone, Copy)]
pub struct TimeRelaxedConfig {
    /// Number of most similar trajectories to return.
    pub k: usize,
    /// Grid points per candidate's feasible shift range.
    pub grid_steps: usize,
    /// Golden-section iterations inside the best grid cell.
    pub refine_iters: usize,
}

impl Default for TimeRelaxedConfig {
    fn default() -> Self {
        TimeRelaxedConfig {
            k: 1,
            grid_steps: 64,
            refine_iters: 32,
        }
    }
}

impl TimeRelaxedConfig {
    /// Convenience constructor for a k-result query with default precision.
    pub fn k(k: usize) -> Self {
        TimeRelaxedConfig {
            k,
            ..TimeRelaxedConfig::default()
        }
    }
}

/// One time-relaxed match: the trajectory, the optimal start shift of the
/// query, and the dissimilarity achieved at that shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRelaxedMatch {
    /// The matched trajectory.
    pub traj: TrajectoryId,
    /// The query start shift (seconds/time units added to every query
    /// timestamp) minimizing DISSIM.
    pub shift: f64,
    /// The dissimilarity at that shift.
    pub dissim: f64,
}

/// Spatial distance between two rectangles (0 when they intersect).
fn rect_distance(a: &Rect, b: &Rect) -> f64 {
    let dx = (a.x_min - b.x_max).max(0.0).max(b.x_min - a.x_max);
    let dy = (a.y_min - b.y_max).max(0.0).max(b.y_min - a.y_max);
    (dx * dx + dy * dy).sqrt()
}

/// DISSIM of the query shifted by `d` against `t`, over the shifted period.
fn dissim_at_shift<M: QueryMetrics>(
    query: &Trajectory,
    t: &Trajectory,
    d: f64,
    metrics: &mut M,
) -> Result<f64> {
    let shifted = query.shift_time(d)?;
    let period = shifted.time();
    Ok(dissim_between_traced(&shifted, t, &period, Integration::Exact, metrics)?.approx)
}

/// Runs the time-relaxed k-MST query: for every candidate whose validity
/// can host the query's duration, minimizes DISSIM over the query's start
/// shift, and returns the k best `(trajectory, shift, dissim)` triples in
/// ascending dissimilarity.
pub fn time_relaxed_kmst(
    store: &TrajectoryStore,
    query: &Trajectory,
    config: &TimeRelaxedConfig,
) -> Result<Vec<TimeRelaxedMatch>> {
    time_relaxed_kmst_traced(store, query, config, &mut NoopSink)
}

/// [`time_relaxed_kmst`] with observability: candidates entering the shift
/// search, candidates discarded by the spatial-corridor lower bound, and
/// every per-piece DISSIM evaluation are reported to `metrics`. Candidates
/// too short to host the query never enter the ledger.
pub fn time_relaxed_kmst_traced<M: QueryMetrics>(
    store: &TrajectoryStore,
    query: &Trajectory,
    config: &TimeRelaxedConfig,
    metrics: &mut M,
) -> Result<Vec<TimeRelaxedMatch>> {
    if config.k == 0 {
        return Ok(Vec::new());
    }
    if config.grid_steps < 2 {
        return Err(SearchError::Trajectory(
            mst_trajectory::TrajectoryError::InvalidInterval {
                start: 0.0,
                end: config.grid_steps as f64,
            },
        ));
    }
    let duration = query.duration();
    let q_rect = query.mbb().rect();

    let mut results: Vec<TimeRelaxedMatch> = Vec::new();
    // The k-th best dissim so far (pruning threshold).
    let mut kth = f64::INFINITY;

    for (id, t) in store.iter() {
        if t.duration() + 1e-12 < duration {
            continue; // cannot host the query
        }
        metrics.candidate_seen();
        // Shift-independent lower bound: the spatial corridors alone keep
        // the objects at least `rect_distance` apart at every instant.
        if results.len() >= config.k {
            let lower = rect_distance(&q_rect, &t.mbb().rect()) * duration;
            if lower > kth {
                metrics.candidate_pruned();
                continue;
            }
        }

        // Feasible shift range: the shifted query period must fit in t.
        let d_min = t.start_time() - query.start_time();
        let d_max = t.end_time() - query.end_time();
        debug_assert!(d_min <= d_max + 1e-12);
        let span = (d_max - d_min).max(0.0);

        // Grid scan.
        let steps = config.grid_steps;
        let mut best_i = 0usize;
        let mut best_val = f64::INFINITY;
        for i in 0..=steps {
            let d = d_min + span * i as f64 / steps as f64;
            let v = dissim_at_shift(query, t, d, metrics)?;
            if v < best_val {
                best_val = v;
                best_i = i;
            }
        }

        // Golden-section refinement inside the bracketing cells.
        let cell = span / steps as f64;
        let mut lo = d_min + cell * best_i.saturating_sub(1) as f64;
        let mut hi = (d_min + cell * (best_i + 1) as f64).min(d_max);
        let phi = 0.618_033_988_749_894_8;
        let mut best_shift = d_min + cell * best_i as f64;
        if hi > lo {
            let mut x1 = hi - phi * (hi - lo);
            let mut x2 = lo + phi * (hi - lo);
            let mut f1 = dissim_at_shift(query, t, x1, metrics)?;
            let mut f2 = dissim_at_shift(query, t, x2, metrics)?;
            for _ in 0..config.refine_iters {
                if f1 <= f2 {
                    hi = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = hi - phi * (hi - lo);
                    f1 = dissim_at_shift(query, t, x1, metrics)?;
                } else {
                    lo = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = lo + phi * (hi - lo);
                    f2 = dissim_at_shift(query, t, x2, metrics)?;
                }
            }
            let candidate = if f1 <= f2 { x1 } else { x2 };
            let refined = dissim_at_shift(query, t, candidate, metrics)?;
            if refined < best_val {
                best_val = refined;
                best_shift = candidate;
            }
        }

        metrics.candidate_refined();
        results.push(TimeRelaxedMatch {
            traj: id,
            shift: best_shift,
            dissim: best_val,
        });
        results.sort_by(|a, b| a.dissim.total_cmp(&b.dissim).then(a.traj.cmp(&b.traj)));
        results.truncate(config.k);
        if results.len() == config.k {
            kth = results[config.k - 1].dissim;
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::Trajectory;

    /// A straight mover along x at height `y`, departing at `depart`.
    fn runner(y: f64, depart: f64, duration: f64) -> Trajectory {
        let pts: Vec<(f64, f64, f64)> = (0..=20)
            .map(|i| {
                let f = f64::from(i) / 20.0;
                (depart + f * duration, f * 10.0, y)
            })
            .collect();
        Trajectory::from_txy(&pts).unwrap()
    }

    #[test]
    fn finds_the_time_shifted_twin() {
        // Candidate 0: same path, shifted +30. Candidate 1: simultaneous
        // but 2 units away. Plain MST would prefer candidate 1; the
        // time-relaxed query must prefer the shifted twin at shift ~30.
        let mut store = TrajectoryStore::new();
        store.insert(TrajectoryId(0), runner(0.0, 30.0, 20.0));
        store.insert(TrajectoryId(1), runner(2.0, 0.0, 20.0));
        let query = runner(0.0, 0.0, 20.0);

        let got = time_relaxed_kmst(&store, &query, &TimeRelaxedConfig::k(2)).unwrap();
        assert_eq!(got[0].traj, TrajectoryId(0));
        assert!(got[0].dissim < 1e-6, "twin dissim {}", got[0].dissim);
        assert!((got[0].shift - 30.0).abs() < 1e-3, "shift {}", got[0].shift);
        assert_eq!(got[1].traj, TrajectoryId(1));
        // Candidate 1 at its best shift is still ~2 away for 20 units.
        assert!((got[1].dissim - 40.0).abs() < 1.0);
    }

    #[test]
    fn zero_shift_when_already_aligned() {
        let mut store = TrajectoryStore::new();
        store.insert(TrajectoryId(0), runner(1.0, 0.0, 20.0));
        let query = runner(0.0, 0.0, 20.0);
        let got = time_relaxed_kmst(&store, &query, &TimeRelaxedConfig::k(1)).unwrap();
        // Only one feasible shift (equal durations): d = 0.
        assert_eq!(got[0].shift, 0.0);
        assert!((got[0].dissim - 20.0).abs() < 1e-9);
    }

    #[test]
    fn skips_candidates_too_short_to_host_the_query() {
        let mut store = TrajectoryStore::new();
        store.insert(TrajectoryId(0), runner(0.0, 0.0, 5.0)); // too short
        store.insert(TrajectoryId(1), runner(3.0, 10.0, 60.0));
        let query = runner(0.0, 0.0, 20.0);
        let got = time_relaxed_kmst(&store, &query, &TimeRelaxedConfig::k(5)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].traj, TrajectoryId(1));
    }

    #[test]
    fn relaxed_dissim_never_exceeds_aligned_dissim() {
        // For every candidate covering the query's own period, the relaxed
        // minimum is at most the aligned (shift considered includes values
        // near 0 when feasible) — check on a small zoo.
        let mut store = TrajectoryStore::new();
        for i in 0..4u64 {
            store.insert(TrajectoryId(i), runner(i as f64, -10.0, 60.0));
        }
        let query = runner(0.5, 0.0, 20.0);
        let period = query.time();
        let relaxed = time_relaxed_kmst(&store, &query, &TimeRelaxedConfig::k(4)).unwrap();
        for m in &relaxed {
            let t = store.get(m.traj).unwrap();
            let aligned =
                crate::dissim::dissim_exact(&query, &t.clip(&period).unwrap(), &period).unwrap();
            assert!(
                m.dissim <= aligned + 1e-6,
                "relaxed {} > aligned {aligned} for {}",
                m.dissim,
                m.traj
            );
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        let mut store = TrajectoryStore::new();
        store.insert(TrajectoryId(0), runner(0.0, 0.0, 20.0));
        let query = runner(0.0, 0.0, 10.0);
        let got = time_relaxed_kmst(&store, &query, &TimeRelaxedConfig::k(0)).unwrap();
        assert!(got.is_empty());
    }
}
