//! The paper's pruning metrics (Section 3) and the per-candidate
//! bookkeeping that maintains them while the index is traversed.
//!
//! * [`ldd`] — Linearly Depended Dissimilarity (Definition 2): the area
//!   under a distance profile that starts at `D` and changes linearly with
//!   relative speed `V`, clamped at zero (two objects cannot have negative
//!   distance).
//! * [`gap_lower`] / [`gap_upper`] — the per-gap ingredients of OPTDISSIM
//!   (Definition 3) and PESDISSIM (Definition 4). For an interval where the
//!   candidate's movement is unknown but its distance from the query is
//!   pinned at one or both boundaries, the feasible distance functions
//!   (those with `|D'| <= Vmax`) are sandwiched pointwise between a
//!   descend-then-ascend envelope and its mirror image; integrating the
//!   envelopes yields the tightest speed-dependent bounds.
//! * [`Candidate`] — a partially retrieved trajectory: its covered
//!   intervals (with boundary distances), accumulated DISSIM enclosure, and
//!   the derived OPTDISSIM / PESDISSIM / OPTDISSIMINC values (Lemmas 2–4).

use mst_trajectory::float;
use mst_trajectory::{TimeInterval, TrajectoryId};

use crate::dissim::{Dissim, Piece};

/// Linearly Depended Dissimilarity (Definition 2): the integral of
/// `max(0, D + V t)` for `t` in `[0, dt]`, with `D >= 0`.
///
/// * if `D + V dt >= 0` the profile never touches zero:
///   `LDD = dt (D + V dt / 2)`;
/// * otherwise (necessarily `V < 0`) the object reaches the query after
///   `D / |V|` and can stay with it: `LDD = D^2 / (2 |V|)`.
pub fn ldd(d: f64, v: f64, dt: f64) -> f64 {
    debug_assert!(d >= 0.0, "distances are non-negative");
    debug_assert!(dt >= 0.0, "durations are non-negative");
    if d + v * dt >= 0.0 {
        dt * (d + v * dt * 0.5)
    } else {
        d * d / (2.0 * v.abs())
    }
}

/// Lower bound on the dissimilarity accumulated over a gap of duration `dt`
/// whose boundary distances are `left` (at the gap start) and/or `right`
/// (at the gap end); `None` marks an unconstrained boundary (leading or
/// trailing gap).
///
/// The bound integrates the pointwise-minimal feasible envelope: descend
/// from each known boundary towards the query at `vmax` (Definition 3 /
/// Lemma 2, with both legs of a middle gap evaluated from their known
/// endpoint via time reversal — areas are symmetric under it).
pub fn gap_lower(left: Option<f64>, right: Option<f64>, dt: f64, vmax: f64) -> f64 {
    debug_assert!(vmax >= 0.0);
    if dt <= 0.0 {
        return 0.0;
    }
    match (left, right) {
        (None, None) => 0.0,
        (Some(d), None) | (None, Some(d)) => ldd(d, -vmax, dt),
        (Some(dl), Some(dr)) => {
            if float::exactly_zero(vmax) {
                // Distance cannot change; any consistent profile is constant.
                return dl.min(dr) * dt;
            }
            // Trough of the two descending legs (clamped for robustness
            // against inputs that violate |dl - dr| <= vmax * dt).
            let split = (0.5 * (dt + (dl - dr) / vmax)).clamp(0.0, dt);
            ldd(dl, -vmax, split) + ldd(dr, -vmax, dt - split)
        }
    }
}

/// Upper bound counterpart of [`gap_lower`] (Definition 4 / Lemma 3): the
/// object diverges from the query at `vmax` from each known boundary.
///
/// Returns `None` when both boundaries are unknown — with no anchor the
/// distance over the gap is unbounded.
pub fn gap_upper(left: Option<f64>, right: Option<f64>, dt: f64, vmax: f64) -> Option<f64> {
    debug_assert!(vmax >= 0.0);
    if dt <= 0.0 {
        return Some(0.0);
    }
    match (left, right) {
        (None, None) => None,
        (Some(d), None) | (None, Some(d)) => Some(ldd(d, vmax, dt)),
        (Some(dl), Some(dr)) => {
            if float::exactly_zero(vmax) {
                return Some(dl.max(dr) * dt);
            }
            // Peak of the two ascending legs.
            let split = (0.5 * (dt + (dr - dl) / vmax)).clamp(0.0, dt);
            Some(ldd(dl, vmax, split) + ldd(dr, vmax, dt - split))
        }
    }
}

/// One covered interval of a partially retrieved candidate, with the
/// distances at its boundaries (the anchors the gap bounds attach to).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Covered {
    start: f64,
    end: f64,
    d_start: f64,
    d_end: f64,
}

/// A partially retrieved candidate trajectory (the "list L" of the BFMST
/// pseudocode): covered intervals, their accumulated DISSIM enclosure, and
/// the speed-dependent / speed-independent bounds.
#[derive(Debug, Clone)]
pub struct Candidate {
    traj: TrajectoryId,
    /// Sorted, disjoint, merged-when-touching covered intervals.
    covered: Vec<Covered>,
    value: Dissim,
    covered_duration: f64,
    /// Two timestamps closer than this merge into one boundary.
    merge_eps: f64,
}

impl Candidate {
    /// Creates an empty candidate; `merge_eps` should be a few ULPs of the
    /// query period's magnitude (pieces produced by clipping share exact
    /// boundary values, so the epsilon only guards against future drift).
    pub fn new(traj: TrajectoryId, merge_eps: f64) -> Self {
        Candidate {
            traj,
            covered: Vec::new(),
            value: Dissim::zero(),
            covered_duration: 0.0,
            merge_eps: merge_eps.max(0.0),
        }
    }

    /// The candidate's trajectory id.
    pub fn traj(&self) -> TrajectoryId {
        self.traj
    }

    /// The DISSIM enclosure accumulated over the covered intervals.
    pub fn value(&self) -> Dissim {
        self.value
    }

    /// Total duration currently covered.
    pub fn covered_duration(&self) -> f64 {
        self.covered_duration
    }

    /// Number of maximal covered intervals.
    pub fn num_intervals(&self) -> usize {
        self.covered.len()
    }

    /// Ingests one matched piece. Pieces must not overlap previously added
    /// ones (each index segment is retrieved exactly once); touching pieces
    /// are merged.
    pub fn add_piece(&mut self, p: &Piece) {
        self.value.add(p.value);
        self.covered_duration += p.interval.duration();
        let new = Covered {
            start: p.interval.start(),
            end: p.interval.end(),
            d_start: p.d_start,
            d_end: p.d_end,
        };
        // Insertion position: first interval starting after the new one.
        let idx = self.covered.partition_point(|c| c.start < new.start);
        let merge_left = idx > 0 && (new.start - self.covered[idx - 1].end).abs() <= self.merge_eps;
        let merge_right =
            idx < self.covered.len() && (self.covered[idx].start - new.end).abs() <= self.merge_eps;
        match (merge_left, merge_right) {
            (true, true) => {
                let right = self.covered.remove(idx);
                let left = &mut self.covered[idx - 1];
                left.end = right.end;
                left.d_end = right.d_end;
            }
            (true, false) => {
                let left = &mut self.covered[idx - 1];
                left.end = new.end;
                left.d_end = new.d_end;
            }
            (false, true) => {
                let right = &mut self.covered[idx];
                right.start = new.start;
                right.d_start = new.d_start;
            }
            (false, false) => {
                self.covered.insert(idx, new);
            }
        }
    }

    /// Number of uncovered gaps of `period`: how many per-gap LDD envelope
    /// integrals one OPTDISSIM or PESDISSIM evaluation costs — the
    /// observability layer's unit of bound-evaluation work.
    pub fn num_gaps(&self, period: &TimeInterval) -> usize {
        self.gaps(period).count()
    }

    /// True when the covered intervals tile the whole `period`.
    pub fn is_complete(&self, period: &TimeInterval) -> bool {
        self.covered.len() == 1
            && self.covered[0].start <= period.start() + self.merge_eps
            && self.covered[0].end >= period.end() - self.merge_eps
    }

    /// Iterates over the gaps of `period` not yet covered, as
    /// `(duration, left_anchor, right_anchor)` triples.
    fn gaps<'a>(
        &'a self,
        period: &TimeInterval,
    ) -> impl Iterator<Item = (f64, Option<f64>, Option<f64>)> + 'a {
        let eps = self.merge_eps;
        let start = period.start();
        let end = period.end();
        let n = self.covered.len();
        // Gap i sits before covered[i]; gap n sits after the last interval.
        (0..=n).filter_map(move |i| {
            let (gap_start, left) = if i == 0 {
                (start, None)
            } else {
                let c = &self.covered[i - 1];
                (c.end, Some(c.d_end))
            };
            let (gap_end, right) = if i == n {
                (end, None)
            } else {
                let c = &self.covered[i];
                (c.start, Some(c.d_start))
            };
            let dt = gap_end - gap_start;
            (dt > eps).then_some((dt, left, right))
        })
    }

    /// OPTDISSIM (Definition 3, with the approximation error folded in): a
    /// lower bound on the candidate's exact DISSIM over `period`.
    pub fn opt_dissim(&self, period: &TimeInterval, vmax: f64) -> f64 {
        let mut total = self.value.lower();
        for (dt, left, right) in self.gaps(period) {
            total += gap_lower(left, right, dt, vmax);
        }
        total
    }

    /// PESDISSIM (Definition 4): an upper bound on the candidate's exact
    /// DISSIM over `period` (`f64::INFINITY` when a gap has no anchor).
    pub fn pes_dissim(&self, period: &TimeInterval, vmax: f64) -> f64 {
        let mut total = self.value.upper();
        for (dt, left, right) in self.gaps(period) {
            match gap_upper(left, right, dt, vmax) {
                Some(u) => total += u,
                None => return f64::INFINITY,
            }
        }
        total
    }

    /// OPTDISSIMINC (Definition 5): when nodes are reported in increasing
    /// MINDIST order, every unretrieved piece is at least `mindist` away, so
    /// the candidate's DISSIM is at least the covered enclosure's lower end
    /// plus `mindist × uncovered duration`.
    pub fn opt_dissim_inc(&self, period: &TimeInterval, mindist: f64) -> f64 {
        let uncovered = (period.duration() - self.covered_duration).max(0.0);
        self.value.lower() + mindist * uncovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissim::{dissim_exact, piece, Integration};
    use mst_trajectory::cosample::co_segments;
    use mst_trajectory::Trajectory;

    fn iv(a: f64, b: f64) -> TimeInterval {
        TimeInterval::new(a, b).unwrap()
    }

    #[test]
    fn ldd_matches_hand_computed_areas() {
        // Constant distance.
        assert_eq!(ldd(3.0, 0.0, 4.0), 12.0);
        // Diverging: trapezoid 2..10 over dt=4 -> (2+10)/2*4 = 24.
        assert_eq!(ldd(2.0, 2.0, 4.0), 24.0);
        // Approaching but never reaching: 5 -> 1 over dt=4 -> 12.
        assert_eq!(ldd(5.0, -1.0, 4.0), 12.0);
        // Reaching the query at t=2, then zero: triangle 4*2/2 = 4.
        assert_eq!(ldd(4.0, -2.0, 4.0), 4.0);
        // Exactly reaching zero at dt: triangle.
        assert_eq!(ldd(4.0, -1.0, 4.0), 8.0);
        // Zero duration.
        assert_eq!(ldd(7.0, 3.0, 0.0), 0.0);
    }

    #[test]
    fn middle_gap_envelopes_match_brute_force() {
        // Brute force: minimize / maximize the integral over piecewise
        // constant-slope profiles with |slope| <= vmax and pinned endpoints,
        // via dynamic programming on a grid.
        let (dl, dr, dt, vmax) = (3.0, 2.0, 5.0, 1.5);
        let lower = gap_lower(Some(dl), Some(dr), dt, vmax);
        let upper = gap_upper(Some(dl), Some(dr), dt, vmax).unwrap();
        // Analytic envelope integrals (independent derivation): pointwise
        // min is max(0, dl - v*t, dr - v*(dt-t)); max is min(dl + v*t,
        // dr + v*(dt-t)). Integrate numerically on a fine grid.
        let n = 200_000;
        let (mut lo, mut hi) = (0.0, 0.0);
        for i in 0..n {
            let t = dt * (i as f64 + 0.5) / n as f64;
            lo += (dl - vmax * t).max(dr - vmax * (dt - t)).max(0.0);
            hi += (dl + vmax * t).min(dr + vmax * (dt - t));
        }
        lo *= dt / n as f64;
        hi *= dt / n as f64;
        assert!((lower - lo).abs() < 1e-3, "lower={lower} grid={lo}");
        assert!((upper - hi).abs() < 1e-3, "upper={upper} grid={hi}");
    }

    #[test]
    fn middle_gap_touching_zero() {
        // dl=0, dr=8, dt=10, v=1: object must leave at full speed at the
        // end; minimal area is the final ascent triangle 8^2/2 = 32.
        let lower = gap_lower(Some(0.0), Some(8.0), 10.0, 1.0);
        assert!((lower - 32.0).abs() < 1e-12);
        // Upper: ascend from 0 and meet the line descending (backwards in
        // time) from 8: split at (10 + 8)/2 = 9, peak 9: areas
        // ldd(0,1,9)=40.5 and ldd(8,1,1)=8.5 -> 49.
        let upper = gap_upper(Some(0.0), Some(8.0), 10.0, 1.0).unwrap();
        assert!((upper - 49.0).abs() < 1e-12);
    }

    #[test]
    fn one_sided_gaps() {
        // Trailing gap anchored at 6, vmax 2, dt 5: lower bound descends and
        // reaches zero at t=3: area 9. Upper diverges: ldd(6,2,5)=55.
        assert_eq!(gap_lower(Some(6.0), None, 5.0, 2.0), 9.0);
        assert_eq!(gap_upper(Some(6.0), None, 5.0, 2.0), Some(55.0));
        // Leading gap is symmetric.
        assert_eq!(gap_lower(None, Some(6.0), 5.0, 2.0), 9.0);
        assert_eq!(gap_upper(None, Some(6.0), 5.0, 2.0), Some(55.0));
        // Fully unconstrained.
        assert_eq!(gap_lower(None, None, 5.0, 2.0), 0.0);
        assert_eq!(gap_upper(None, None, 5.0, 2.0), None);
    }

    #[test]
    fn zero_vmax_pins_the_distance() {
        assert_eq!(gap_lower(Some(3.0), Some(3.0), 2.0, 0.0), 6.0);
        assert_eq!(gap_upper(Some(3.0), Some(3.0), 2.0, 0.0), Some(6.0));
    }

    /// Builds two concrete trajectories, feeds a *subset* of their matched
    /// pieces to a [`Candidate`], and checks the Lemma 2/3 sandwich
    /// `OPTDISSIM <= exact DISSIM <= PESDISSIM`.
    #[test]
    fn candidate_bounds_sandwich_exact_dissim() {
        let q = Trajectory::from_txy(&[
            (0.0, 0.0, 0.0),
            (2.0, 2.0, 1.0),
            (5.0, 3.0, -1.0),
            (8.0, 6.0, 0.0),
            (10.0, 7.0, 2.0),
        ])
        .unwrap();
        let t = Trajectory::from_txy(&[
            (0.0, 1.0, 1.0),
            (3.0, 2.0, 3.0),
            (6.0, 5.0, 2.0),
            (10.0, 6.0, -1.0),
        ])
        .unwrap();
        let period = iv(0.0, 10.0);
        let exact = dissim_exact(&q, &t, &period).unwrap();
        let vmax = q.max_speed() + t.max_speed();

        let pairs = co_segments(&q, &t, &period).unwrap();
        // Feed only pieces 0, 2, 3, 5 (leaving gaps), in scrambled order.
        let keep = [3usize, 0, 5, 2];
        let mut cand = Candidate::new(TrajectoryId(0), 1e-9);
        for &i in &keep {
            let p = piece(&pairs[i].first, &pairs[i].second, Integration::Trapezoid).unwrap();
            cand.add_piece(&p);
        }
        assert!(!cand.is_complete(&period));
        let opt = cand.opt_dissim(&period, vmax);
        let pes = cand.pes_dissim(&period, vmax);
        assert!(
            opt <= exact + 1e-9 && exact <= pes + 1e-9,
            "opt={opt} exact={exact} pes={pes}"
        );
        // The incremental bound with mindist = 0 degenerates to the covered
        // lower end, which must also lower-bound the exact value.
        assert!(cand.opt_dissim_inc(&period, 0.0) <= exact + 1e-9);
        // And with any mindist it stays below exact as long as mindist lower
        // bounds the distances on the gaps (0 always does; a huge value
        // would not, which is exactly why MINDIST ordering matters).
    }

    #[test]
    fn candidate_completes_from_shuffled_pieces() {
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let t = Trajectory::from_txy(&[
            (0.0, 0.0, 2.0),
            (2.5, 2.0, 2.0),
            (5.0, 5.0, 3.0),
            (7.5, 8.0, 2.0),
            (10.0, 10.0, 2.0),
        ])
        .unwrap();
        let period = iv(0.0, 10.0);
        let pairs = co_segments(&q, &t, &period).unwrap();
        let order = [2usize, 0, 3, 1];
        assert_eq!(pairs.len(), 4);
        let mut cand = Candidate::new(TrajectoryId(7), 1e-9);
        for (step, &i) in order.iter().enumerate() {
            assert!(!cand.is_complete(&period));
            let p = piece(&pairs[i].first, &pairs[i].second, Integration::Exact).unwrap();
            cand.add_piece(&p);
            let _ = step;
        }
        assert!(cand.is_complete(&period));
        assert_eq!(cand.num_intervals(), 1);
        assert!((cand.covered_duration() - 10.0).abs() < 1e-12);
        // Once complete, the enclosure pins the exact value (exact mode).
        let exact = dissim_exact(&q, &t, &period).unwrap();
        assert!((cand.value().approx - exact).abs() < 1e-9);
        // Bounds collapse onto the value: no gaps remain.
        let vmax = q.max_speed() + t.max_speed();
        assert!((cand.opt_dissim(&period, vmax) - exact).abs() < 1e-9);
        assert!((cand.pes_dissim(&period, vmax) - exact).abs() < 1e-9);
    }

    #[test]
    fn pes_infinite_until_first_piece_anchors_it() {
        let cand = Candidate::new(TrajectoryId(1), 1e-9);
        let period = iv(0.0, 10.0);
        assert_eq!(cand.pes_dissim(&period, 1.0), f64::INFINITY);
        assert_eq!(cand.opt_dissim(&period, 1.0), 0.0);
    }

    #[test]
    fn opt_dissim_inc_scales_with_uncovered_duration() {
        let q = Trajectory::from_txy(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]).unwrap();
        let t = Trajectory::from_txy(&[(0.0, 0.0, 1.0), (10.0, 10.0, 1.0)]).unwrap();
        let period = iv(0.0, 10.0);
        let pairs = co_segments(&q, &t, &iv(0.0, 4.0)).unwrap();
        let mut cand = Candidate::new(TrajectoryId(3), 1e-9);
        for pr in &pairs {
            let p = piece(&pr.first, &pr.second, Integration::Exact).unwrap();
            cand.add_piece(&p);
        }
        // Covered [0,4] at distance 1 -> value 4; uncovered 6 at mindist 2
        // -> 12.
        let inc = cand.opt_dissim_inc(&period, 2.0);
        assert!((inc - 16.0).abs() < 1e-9);
    }
}
