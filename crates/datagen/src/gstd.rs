//! GSTD-style synthetic moving-object generator.
//!
//! Reproduces the generator configuration of the paper's performance study
//! (Table 2): objects start at random positions in the unit square, pick a
//! random heading at every step, and move with speeds drawn from a normal
//! or lognormal distribution; each object's position is sampled ~2000
//! times. Objects that hit the world border are reflected back inside
//! (GSTD's "adjustment" option).

use mst_prng::Rng;
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryBuilder};

/// Per-step speed model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedDistribution {
    /// Speeds `exp(N(mu, sigma^2))`.
    Lognormal {
        /// Location of the underlying normal (`ln` of the median speed).
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
    },
    /// Speeds `N(mean, std^2)`, truncated at zero.
    Normal {
        /// Mean speed.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
}

impl SpeedDistribution {
    /// Lognormal speeds with the given median (`mu = ln(median)`) — the
    /// paper's Table 2 uses lognormal with `sigma = 0.6`.
    pub fn lognormal_with_median(median: f64, sigma: f64) -> Self {
        SpeedDistribution::Lognormal {
            mu: median.ln(),
            sigma,
        }
    }

    fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            SpeedDistribution::Lognormal { mu, sigma } => rng.lognormal(mu, sigma),
            SpeedDistribution::Normal { mean, std } => rng.normal(mean, std).max(0.0),
        }
    }
}

/// Configuration of a GSTD-style generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GstdConfig {
    /// Number of moving objects.
    pub num_objects: usize,
    /// Position samples per object (the paper: ~2000).
    pub samples_per_object: usize,
    /// Time between consecutive samples.
    pub time_step: f64,
    /// Speed model, in world units per time unit. The world is the unit
    /// square, so with 2000 steps a median speed around `5e-4` lets objects
    /// roam a substantial region without crossing the world repeatedly.
    pub speed: SpeedDistribution,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl GstdConfig {
    /// The paper's synthetic dataset `S{num_objects}` (e.g. 100 objects →
    /// 200K segment entries): lognormal speeds with sigma 0.6, 2000 samples.
    pub fn paper_dataset(num_objects: usize, seed: u64) -> Self {
        GstdConfig {
            num_objects,
            samples_per_object: 2000,
            time_step: 1.0,
            speed: SpeedDistribution::lognormal_with_median(5.0e-4, 0.6),
            seed,
        }
    }

    /// Generates the dataset: `num_objects` trajectories, each with
    /// `samples_per_object` samples at `0, dt, 2 dt, ...`, moving inside
    /// the unit square.
    pub fn generate(&self) -> Vec<Trajectory> {
        assert!(self.num_objects > 0, "need at least one object");
        assert!(
            self.samples_per_object >= 2,
            "trajectories need >= 2 samples"
        );
        assert!(self.time_step > 0.0, "time must advance");
        let mut rng = Rng::seed_from(self.seed);
        let mut out = Vec::with_capacity(self.num_objects);
        for _ in 0..self.num_objects {
            let mut x: f64 = rng.f64();
            let mut y: f64 = rng.f64();
            let mut b = TrajectoryBuilder::with_capacity(self.samples_per_object);
            for step in 0..self.samples_per_object {
                let t = step as f64 * self.time_step;
                b.push(SamplePoint::new(t, x, y))
                    .expect("generated samples are finite and ordered");
                // Random heading, sampled speed; reflect at the borders.
                let heading = rng.f64_range(0.0, std::f64::consts::TAU);
                let dist = self.speed.sample(&mut rng) * self.time_step;
                x = reflect(x + dist * heading.cos());
                y = reflect(y + dist * heading.sin());
            }
            out.push(b.build().expect("at least two samples"));
        }
        out
    }
}

/// Reflects a coordinate back into `[0, 1]` (GSTD's border adjustment).
fn reflect(v: f64) -> f64 {
    // Fold the real line onto [0, 2) then mirror the upper half.
    let m = v.rem_euclid(2.0);
    if m <= 1.0 {
        m
    } else {
        2.0 - m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflect_keeps_unit_interval() {
        assert_eq!(reflect(0.5), 0.5);
        assert!((reflect(1.2) - 0.8).abs() < 1e-12);
        assert!((reflect(-0.3) - 0.3).abs() < 1e-12);
        assert!((reflect(2.5) - 0.5).abs() < 1e-12);
        for i in -50..50 {
            let v = f64::from(i) * 0.173;
            let r = reflect(v);
            assert!((0.0..=1.0).contains(&r), "reflect({v}) = {r}");
        }
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = GstdConfig {
            num_objects: 7,
            samples_per_object: 50,
            time_step: 2.0,
            speed: SpeedDistribution::lognormal_with_median(0.01, 0.6),
            seed: 42,
        };
        let data = cfg.generate();
        assert_eq!(data.len(), 7);
        for t in &data {
            assert_eq!(t.num_points(), 50);
            assert_eq!(t.start_time(), 0.0);
            assert_eq!(t.end_time(), 98.0);
            for p in t.points() {
                assert!((0.0..=1.0).contains(&p.x));
                assert!((0.0..=1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GstdConfig::paper_dataset(3, 9);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let c = GstdConfig::paper_dataset(3, 10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn lognormal_speeds_have_requested_median() {
        let cfg = GstdConfig {
            num_objects: 20,
            samples_per_object: 500,
            time_step: 1.0,
            speed: SpeedDistribution::lognormal_with_median(1.0e-3, 0.6),
            seed: 7,
        };
        let data = cfg.generate();
        // Collect per-step travel distances (equal to speeds, dt = 1) —
        // border reflections shorten a handful, so compare medians loosely.
        let mut speeds: Vec<f64> = Vec::new();
        for t in &data {
            for s in t.segments() {
                speeds.push(s.speed());
            }
        }
        speeds.sort_by(f64::total_cmp);
        let median = speeds[speeds.len() / 2];
        assert!(
            (median / 1.0e-3) > 0.8 && (median / 1.0e-3) < 1.25,
            "median speed {median}"
        );
    }

    #[test]
    fn normal_speeds_never_go_negative() {
        let cfg = GstdConfig {
            num_objects: 5,
            samples_per_object: 200,
            time_step: 1.0,
            speed: SpeedDistribution::Normal {
                mean: 1.0e-3,
                std: 2.0e-3, // wide: would often sample negative untruncated
            },
            seed: 3,
        };
        // Trajectory construction itself would fail on NaN; additionally all
        // motion must be finite and bounded.
        for t in cfg.generate() {
            assert!(t.max_speed().is_finite());
        }
    }

    #[test]
    fn paper_dataset_matches_table2_shape() {
        let data = GstdConfig::paper_dataset(10, 1).generate();
        let entries: usize = data.iter().map(|t| t.num_segments()).sum();
        // 10 objects x 1999 segments ≈ 20K entries (Table 2 reports 2000
        // per object at dataset scale).
        assert_eq!(entries, 10 * 1999);
    }
}
