//! Plain-text dataset interchange.
//!
//! Real trajectory datasets (the Trucks data the paper used came as text
//! files from the R-tree portal) are flat sample lists. This module reads
//! and writes that shape:
//!
//! ```text
//! # anything after '#' is a comment; blank lines are ignored
//! # one sample per line: <trajectory id> <t> <x> <y>
//! 0 0.0 12.5 7.25
//! 0 30.0 13.1 7.9
//! 1 0.0 -3.0 2.0
//! ...
//! ```
//!
//! Samples of one trajectory must appear in temporal order; trajectories
//! may interleave (files sorted by time work as well as files sorted by
//! id). Floating-point values are written with full round-trip precision.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

use mst_trajectory::{SamplePoint, Trajectory, TrajectoryBuilder, TrajectoryId};

/// Errors raised while reading a dataset file.
#[derive(Debug)]
pub enum DatasetIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A trajectory was invalid as a whole (e.g. only one sample).
    BadTrajectory {
        /// The offending trajectory.
        id: TrajectoryId,
        /// The underlying validation error.
        reason: String,
    },
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "I/O error: {e}"),
            DatasetIoError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
            DatasetIoError::BadTrajectory { id, reason } => {
                write!(f, "trajectory {id}: {reason}")
            }
        }
    }
}

impl std::error::Error for DatasetIoError {}

impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

/// Writes a dataset as `id t x y` lines (with a descriptive header).
pub fn write_dataset<W: Write>(
    mut w: W,
    trajectories: impl IntoIterator<Item = (TrajectoryId, impl std::borrow::Borrow<Trajectory>)>,
) -> Result<(), DatasetIoError> {
    writeln!(w, "# mst trajectory dataset: <id> <t> <x> <y> per line")?;
    for (id, t) in trajectories {
        for p in t.borrow().points() {
            writeln!(w, "{} {} {} {}", id.0, p.t, p.x, p.y)?;
        }
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`] (or hand-assembled in the
/// same shape). Returns `(id, trajectory)` pairs ordered by first
/// appearance in the file.
pub fn read_dataset<R: BufRead>(r: R) -> Result<Vec<(TrajectoryId, Trajectory)>, DatasetIoError> {
    let mut builders: Vec<(TrajectoryId, TrajectoryBuilder)> = Vec::new();
    let mut slots: HashMap<TrajectoryId, usize> = HashMap::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let mut next_field = |name: &str| {
            fields.next().ok_or_else(|| DatasetIoError::Parse {
                line: lineno + 1,
                reason: format!("missing field <{name}>"),
            })
        };
        let id: u64 = next_field("id")?
            .parse()
            .map_err(|e| DatasetIoError::Parse {
                line: lineno + 1,
                reason: format!("bad id: {e}"),
            })?;
        let mut num = |name: &str| -> Result<f64, DatasetIoError> {
            next_field(name)?
                .parse()
                .map_err(|e| DatasetIoError::Parse {
                    line: lineno + 1,
                    reason: format!("bad {name}: {e}"),
                })
        };
        let (t, x, y) = (num("t")?, num("x")?, num("y")?);
        if fields.next().is_some() {
            return Err(DatasetIoError::Parse {
                line: lineno + 1,
                reason: "trailing fields after <y>".into(),
            });
        }
        let id = TrajectoryId(id);
        let slot = *slots.entry(id).or_insert_with(|| {
            builders.push((id, TrajectoryBuilder::new()));
            builders.len() - 1
        });
        builders[slot]
            .1
            .push(SamplePoint::new(t, x, y))
            .map_err(|e| DatasetIoError::Parse {
                line: lineno + 1,
                reason: e.to_string(),
            })?;
    }
    builders
        .into_iter()
        .map(|(id, b)| {
            b.build()
                .map(|t| (id, t))
                .map_err(|e| DatasetIoError::BadTrajectory {
                    id,
                    reason: e.to_string(),
                })
        })
        .collect()
}

/// Saves a dataset to a file.
pub fn save_to_path<P: AsRef<std::path::Path>>(
    path: P,
    trajectories: impl IntoIterator<Item = (TrajectoryId, impl std::borrow::Borrow<Trajectory>)>,
) -> Result<(), DatasetIoError> {
    let file = std::fs::File::create(path)?;
    write_dataset(std::io::BufWriter::new(file), trajectories)
}

/// Loads a dataset from a file.
pub fn load_from_path<P: AsRef<std::path::Path>>(
    path: P,
) -> Result<Vec<(TrajectoryId, Trajectory)>, DatasetIoError> {
    let file = std::fs::File::open(path)?;
    read_dataset(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GstdConfig;

    #[test]
    fn roundtrip_preserves_everything_bitwise() {
        let data = GstdConfig {
            num_objects: 5,
            samples_per_object: 30,
            ..GstdConfig::paper_dataset(5, 3)
        }
        .generate();
        let pairs: Vec<(TrajectoryId, &Trajectory)> = data
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajectoryId(i as u64), t))
            .collect();
        let mut buf = Vec::new();
        write_dataset(&mut buf, pairs).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back.len(), 5);
        for (i, (id, t)) in back.iter().enumerate() {
            assert_eq!(*id, TrajectoryId(i as u64));
            assert_eq!(t, &data[i]);
        }
    }

    #[test]
    fn interleaved_and_commented_input_parses() {
        let text = "\
# a fleet of two
0 0.0 1.0 2.0   # depot
1 0.0 5.0 5.0
0 1.0 1.5 2.5
1 2.0 6.0 6.0
";
        let back = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, TrajectoryId(0));
        assert_eq!(back[0].1.num_points(), 2);
        assert_eq!(back[1].1.points()[1].x, 6.0);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let bad_field = "0 0.0 1.0\n";
        match read_dataset(bad_field.as_bytes()) {
            Err(DatasetIoError::Parse { line: 1, reason }) => {
                assert!(reason.contains("missing field"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_number = "# header\n0 zero 1.0 2.0\n";
        match read_dataset(bad_number.as_bytes()) {
            Err(DatasetIoError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        let trailing = "0 0.0 1.0 2.0 3.0\n";
        assert!(matches!(
            read_dataset(trailing.as_bytes()),
            Err(DatasetIoError::Parse { .. })
        ));
        let out_of_order = "0 5.0 1.0 2.0\n0 4.0 1.0 2.0\n";
        assert!(matches!(
            read_dataset(out_of_order.as_bytes()),
            Err(DatasetIoError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn single_sample_trajectory_is_rejected_as_a_whole() {
        let text = "0 0.0 1.0 2.0\n1 0.0 0.0 0.0\n1 1.0 1.0 1.0\n";
        match read_dataset(text.as_bytes()) {
            Err(DatasetIoError::BadTrajectory { id, .. }) => assert_eq!(id, TrajectoryId(0)),
            other => panic!("expected BadTrajectory, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mst_dataset_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.txt");
        let data = crate::TrucksConfig::small(3, 1).generate();
        let pairs: Vec<(TrajectoryId, &Trajectory)> = data
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajectoryId(i as u64), t))
            .collect();
        save_to_path(&path, pairs).unwrap();
        let back = load_from_path(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(&back[1].1, &data[1]);
        std::fs::remove_file(&path).ok();
    }
}
