//! TD-TR trajectory compression (Meratnia & By, EDBT 2004).
//!
//! A Douglas–Peucker variant whose error measure is the *time-synchronized
//! Euclidean distance* (SED): a point is compared against where the object
//! *would have been at that point's timestamp* if it moved linearly between
//! the two retained anchor points. The paper compresses every Trucks
//! trajectory with TD-TR at tolerances `p` between 0.1% and 10% of the
//! trajectory length to manufacture query trajectories that are "similar
//! but not identical" to their originals (Figures 8–9).

use mst_trajectory::{SamplePoint, Trajectory};

/// Time-synchronized Euclidean distance of `p` w.r.t. the anchor segment
/// `(s, e)`: the distance between `p` and the linearly interpolated position
/// at `p.t`.
pub fn synchronized_distance(p: &SamplePoint, s: &SamplePoint, e: &SamplePoint) -> f64 {
    debug_assert!(s.t < e.t && s.t <= p.t && p.t <= e.t);
    let f = (p.t - s.t) / (e.t - s.t);
    let ix = s.x + f * (e.x - s.x);
    let iy = s.y + f * (e.y - s.y);
    let dx = p.x - ix;
    let dy = p.y - iy;
    (dx * dx + dy * dy).sqrt()
}

/// Compresses `trajectory` with TD-TR at the given absolute `tolerance`.
///
/// The first and last samples are always retained; every dropped sample's
/// SED w.r.t. the compressed trajectory is at most `tolerance`.
pub fn td_tr(trajectory: &Trajectory, tolerance: f64) -> Trajectory {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let pts = trajectory.points();
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    // Explicit stack instead of recursion: trajectories can be long.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_idx) = (0.0f64, lo + 1);
        for i in (lo + 1)..hi {
            let d = synchronized_distance(&pts[i], &pts[lo], &pts[hi]);
            if d > worst {
                worst = d;
                worst_idx = i;
            }
        }
        if worst > tolerance {
            keep[worst_idx] = true;
            stack.push((lo, worst_idx));
            stack.push((worst_idx, hi));
        }
    }
    let kept: Vec<SamplePoint> = pts
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect();
    Trajectory::new(kept).expect("first/last retained, order preserved")
}

/// Compresses with the paper's parameterization: tolerance `p` expressed as
/// a fraction of the trajectory's spatial length (e.g. `0.001` for the
/// paper's "0.1%").
pub fn td_tr_fraction(trajectory: &Trajectory, p: f64) -> Trajectory {
    td_tr(trajectory, p * trajectory.spatial_length())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_txy(pts).unwrap()
    }

    /// A jagged path: straight line plus alternating small bumps and one
    /// large detour.
    fn jagged() -> Trajectory {
        let mut pts = Vec::new();
        for i in 0..=40 {
            let t = f64::from(i);
            let bump = if i % 2 == 0 { 0.0 } else { 0.05 };
            let detour = if i == 20 { 3.0 } else { 0.0 };
            pts.push((t, t, bump + detour));
        }
        traj(&pts)
    }

    #[test]
    fn zero_tolerance_keeps_every_deviating_point() {
        let t = jagged();
        let c = td_tr(&t, 0.0);
        assert_eq!(c.num_points(), t.num_points());
    }

    #[test]
    fn collinear_constant_speed_points_collapse() {
        // Perfectly linear in space *and* time: everything between the
        // endpoints is redundant under SED.
        let t = traj(&[
            (0.0, 0.0, 0.0),
            (1.0, 1.0, 1.0),
            (2.0, 2.0, 2.0),
            (3.0, 3.0, 3.0),
        ]);
        let c = td_tr(&t, 1e-12);
        assert_eq!(c.num_points(), 2);
    }

    #[test]
    fn sed_differs_from_plain_perpendicular_distance() {
        // Spatially collinear but with non-uniform timing: the object
        // lingers, so its synchronized position differs. Plain DP would drop
        // the middle point; TD-TR keeps it at tight tolerance.
        let t = traj(&[(0.0, 0.0, 0.0), (9.0, 1.0, 0.0), (10.0, 10.0, 0.0)]);
        let mid = t.points()[1];
        let d = synchronized_distance(&mid, &t.points()[0], &t.points()[2]);
        assert!((d - 8.0).abs() < 1e-12); // interpolated x at t=9 is 9.0
        let c = td_tr(&t, 1.0);
        assert_eq!(c.num_points(), 3);
    }

    #[test]
    fn tolerance_monotonically_reduces_vertices() {
        let t = jagged();
        let mut last = usize::MAX;
        for tol in [0.0, 0.01, 0.06, 0.5, 5.0] {
            let c = td_tr(&t, tol);
            assert!(c.num_points() <= last);
            last = c.num_points();
        }
        // Huge tolerance leaves only the endpoints.
        assert_eq!(last, 2);
    }

    #[test]
    fn all_dropped_points_are_within_tolerance() {
        let t = jagged();
        let tol = 0.2;
        let c = td_tr(&t, tol);
        // Every original sample must be within tol of the compressed
        // trajectory's synchronized position.
        for p in t.points() {
            let pos = c.position_at(p.t).unwrap();
            let d = ((p.x - pos.x).powi(2) + (p.y - pos.y).powi(2)).sqrt();
            assert!(d <= tol + 1e-9, "sample at t={} deviates {d}", p.t);
        }
        // The large detour must have been retained.
        assert!(c.points().iter().any(|p| p.y > 2.0));
    }

    #[test]
    fn endpoints_always_survive() {
        let t = jagged();
        let c = td_tr(&t, 100.0);
        assert_eq!(c.points()[0], t.points()[0]);
        assert_eq!(
            c.points()[c.num_points() - 1],
            t.points()[t.num_points() - 1]
        );
    }

    #[test]
    fn fraction_parameterization_scales_with_length() {
        let t = jagged();
        let fine = td_tr_fraction(&t, 0.0001);
        let coarse = td_tr_fraction(&t, 0.05);
        assert!(fine.num_points() > coarse.num_points());
    }
}
