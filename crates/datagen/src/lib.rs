//! Workload generators for the MST reproduction (Section 5.1 of the paper).
//!
//! * [`gstd`] — a reimplementation of the subset of the GSTD spatiotemporal
//!   data generator (Theodoridis, Silva & Nascimento, SSD 1999) the paper
//!   uses: random initial distribution, random heading, normal/lognormal
//!   speeds, ~2000 position samples per object.
//! * [`trucks`] — a synthetic substitute for the real "Trucks" fleet
//!   dataset (273 trajectories, ~112K segments) whose original distribution
//!   site is offline; see DESIGN.md for why the substitution preserves the
//!   quality experiment's stress.
//! * [`tdtr`] — the TD-TR trajectory compression of Meratnia & By (EDBT
//!   2004): Douglas–Peucker under the time-synchronized Euclidean distance,
//!   used by the paper to produce "similar but not identical" query
//!   trajectories (Figures 8–9).
//! * [`io`] — plain-text dataset reading/writing (`id t x y` per line), so
//!   real datasets in the Trucks format can be dropped in.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod gstd;
pub mod io;
pub mod tdtr;
pub mod trucks;

pub use gstd::{GstdConfig, SpeedDistribution};
pub use tdtr::{td_tr, td_tr_fraction};
pub use trucks::TrucksConfig;
